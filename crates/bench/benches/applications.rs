//! Microbenchmarks of the packet-processing applications: trie lookups
//! (binary and multibit), AES-128, the rolling hash, NetFlow accounting,
//! and full per-packet chain turns on the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use pp_click::prelude::*;
use pp_net::prelude::*;
use pp_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn bench_tries(c: &mut Criterion) {
    let mut g = c.benchmark_group("lpm");
    let prefixes = generate_bgp_table(32_000, 42);
    let mut m = Machine::new(MachineConfig::westmere());
    let bin = BinaryRadixTrie::build(m.allocator(MemDomain(0)), &prefixes);
    let multi = MultibitTrie::build(m.allocator(MemDomain(0)), &prefixes);
    let mut rng = SmallRng::seed_from_u64(7);

    g.bench_function("binary_host", |b| {
        b.iter(|| black_box(bin.lookup_host(rng.random())))
    });
    g.bench_function("multibit_host", |b| {
        b.iter(|| black_box(multi.lookup_host(rng.random())))
    });
    g.bench_function("binary_simulated", |b| {
        b.iter(|| {
            let mut ctx = m.ctx(CoreId(0));
            black_box(bin.lookup(&mut ctx, rng.random()))
        })
    });
    g.finish();
}

fn bench_aes(c: &mut Criterion) {
    let mut g = c.benchmark_group("aes128");
    let aes = Aes128::new([7u8; 16]);
    g.bench_function("encrypt_block", |b| {
        let block = [0x42u8; 16];
        b.iter(|| black_box(aes.encrypt_block(block)))
    });
    g.bench_function("ctr_keystream_256b", |b| {
        b.iter(|| black_box(aes.ctr_keystream_traced(1, 0, 256, &mut |_, _| {})))
    });
    g.finish();
}

fn bench_rolling_hash(c: &mut Criterion) {
    c.bench_function("rabin/roll_1kb", |b| {
        let data = vec![0xA5u8; 1024];
        b.iter(|| {
            let mut h = RollingHash::new();
            let mut anchors = 0u32;
            for &byte in &data {
                if let Some(v) = h.roll(byte) {
                    if v % 16 == 0 {
                        anchors += 1;
                    }
                }
            }
            black_box(anchors)
        })
    });
}

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    let data = vec![0x5Au8; 1500];
    g.bench_function("rfc1071_1500b", |b| {
        b.iter(|| black_box(pp_net::checksum::checksum(&data)))
    });
    g.bench_function("incremental_update", |b| {
        b.iter(|| black_box(pp_net::checksum::update16(0x1234, 0x4000, 0x3f00)))
    });
    g.finish();
}

fn bench_packet_build(c: &mut Criterion) {
    c.bench_function("packet/build_udp_64b", |b| {
        let builder = PacketBuilder::default();
        b.iter(|| {
            black_box(builder.udp(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1,
                2,
                &[0u8; 18],
            ))
        })
    });
}

fn bench_chain_turns(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain_turn");
    g.sample_size(10);
    for kind in [ChainKind::Ip, ChainKind::Mon, ChainKind::Fw] {
        g.bench_function(kind.name(), |b| {
            let mut m = Machine::new(MachineConfig::westmere());
            let spec = FlowSpec::small(kind, 3);
            let built = build_flow(&mut m, MemDomain(0), &spec);
            let mut engine = Engine::new(m);
            engine.set_task(CoreId(0), Box::new(built.task));
            // Warm the caches once.
            engine.run_until(2_000_000);
            let mut deadline = engine.machine.core(CoreId(0)).clock;
            b.iter(|| {
                // Advance by ~100 packets of simulated work per iteration.
                deadline += 300_000;
                engine.run_until(deadline);
            });
        });
    }
    g.finish();
}

fn bench_traffic_gen(c: &mut Criterion) {
    c.bench_function("trafficgen/next_packet", |b| {
        let mut g = TrafficGen::new(TrafficSpec::flow_population(64, 10_000, 5));
        b.iter(|| black_box(g.next_packet()))
    });
}

fn bench_dpi(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpi");
    let sigs = generate_signatures(1500, 42);
    g.bench_function("build_1500_signatures", |b| {
        b.iter(|| black_box(AhoCorasick::build(&sigs)))
    });
    let ac = AhoCorasick::build(&sigs);
    let mut tg = TrafficGen::new(TrafficSpec::dpi_tease(512, 1_000, 1500, 42, 5));
    let payloads: Vec<Vec<u8>> =
        (0..64).map(|_| tg.next_packet().payload().unwrap().to_vec()).collect();
    g.bench_function("scan_teaser_payload", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % payloads.len();
            black_box(ac.find_all(&payloads[i]))
        })
    });
    g.finish();
}

fn bench_nat(c: &mut Criterion) {
    let mut g = c.benchmark_group("nat");
    let mut m = Machine::new(MachineConfig::westmere());
    let mut nat =
        Nat::new(m.allocator(MemDomain(0)), NatConfig::default(), CostModel::default());
    let mut tg = TrafficGen::new(TrafficSpec::flow_population(64, 10_000, 9));
    let mut packets: Vec<Packet> = (0..256).map(|_| tg.next_packet()).collect();
    g.bench_function("translate_established", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % packets.len();
            let mut ctx = m.ctx(CoreId(0));
            black_box(nat.process(&mut ctx, &mut packets[i]))
        })
    });
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier");
    let rules = generate_classifier_rules(16_000, 42);
    let mut m = Machine::new(MachineConfig::westmere());
    let mut cls = TupleSpaceClassifier::new(
        m.allocator(MemDomain(0)),
        &rules,
        &[],
        CostModel::default(),
    );
    let mut tg = TrafficGen::new(TrafficSpec::random_dst(64, 11));
    let keys: Vec<FlowKey> =
        (0..256).map(|_| tg.next_packet().flow_key().unwrap()).collect();
    g.bench_function("tuple_space_16k_rules", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            let mut ctx = m.ctx(CoreId(0));
            black_box(cls.classify(&mut ctx, &keys[i]))
        })
    });
    g.bench_function("linear_scan_16k_rules", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(rules.iter().position(|r| r.matches(&keys[i])))
        })
    });
    g.finish();
}

fn bench_rewrite(c: &mut Criterion) {
    c.bench_function("packet/rewrite_src_checksummed", |b| {
        let builder = PacketBuilder::default();
        let mut p = builder.udp_checksummed(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            53,
            &[0u8; 64],
        );
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let port = if flip { 61000 } else { 1000 };
            p.rewrite_src(Ipv4Addr::new(203, 0, 113, 1), port).unwrap();
            black_box(&p);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tries, bench_aes, bench_rolling_hash, bench_checksum,
              bench_packet_build, bench_chain_turns, bench_traffic_gen,
              bench_dpi, bench_nat, bench_classifier, bench_rewrite
}
criterion_main!(benches);
