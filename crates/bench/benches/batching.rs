//! Criterion microbenchmarks of scalar vs batched graph execution.
//!
//! Two angles on the same speedup:
//!
//! * **simulated cycles** — how many packets one slice of simulated time
//!   retires through a realistic chain at each batch size (the number the
//!   `repro batch` experiment sweeps); and
//! * **host ns/turn** — how fast the simulator itself executes each path,
//!   since the batched path also removes host-side dispatch and borrow
//!   traffic from the hot loop.

use criterion::{criterion_group, criterion_main, Criterion};
use pp_click::pipelines::{build_flow, ChainKind, FlowSpec};
use pp_sim::config::MachineConfig;
use pp_sim::engine::{CoreTask, Engine};
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, MemDomain};
use std::hint::black_box;

/// Build an IP flow at test scale with the given batch size (0 = scalar).
fn flow_engine(batch: usize) -> Engine {
    let mut m = Machine::new(MachineConfig::westmere());
    let mut spec = FlowSpec::small(ChainKind::Ip, 11);
    spec.batch_size = batch;
    let built = build_flow(&mut m, MemDomain(0), &spec);
    let mut e = Engine::new(m);
    e.set_task(CoreId(0), Box::new(built.task));
    e
}

fn bench_graph_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_execution");
    for (name, batch) in [("scalar", 0usize), ("batch_8", 8), ("batch_32", 32)] {
        g.bench_function(name, |b| {
            let mut e = flow_engine(batch);
            // Warm the caches once so the loop measures steady state.
            e.run_until(1_000_000);
            let mut t_end = e.machine.core(CoreId(0)).clock;
            b.iter(|| {
                // Advance by one ~50k-cycle slice of simulated time.
                t_end += 50_000;
                e.run_until(t_end);
                black_box(e.machine.core(CoreId(0)).counters.total().packets)
            });
        });
    }
    g.finish();
}

fn bench_turn_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("turn_host_cost");
    for (name, batch) in [("scalar_turn", 0usize), ("batch_32_turn", 32)] {
        g.bench_function(name, |b| {
            let mut m = Machine::new(MachineConfig::westmere());
            let mut spec = FlowSpec::small(ChainKind::Ip, 11);
            spec.batch_size = batch;
            let mut task = build_flow(&mut m, MemDomain(0), &spec).task;
            b.iter(|| {
                let mut ctx = m.ctx(CoreId(0));
                black_box(task.run_turn(&mut ctx))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .measurement_time(std::time::Duration::from_millis(300))
        .warm_up_time(std::time::Duration::from_millis(50));
    targets = bench_graph_execution, bench_turn_cost
}
criterion_main!(benches);
