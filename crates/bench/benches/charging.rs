//! Criterion microbenchmarks of the **lockstep charging engine** vs the
//! production serial walk (`ExecCtx::read_batch_lockstep` vs
//! `ExecCtx::read_batch`), isolated from packet machinery.
//!
//! Scenarios bracket the engine's design space so future PRs can see the
//! crossover point:
//!
//! * `hits_disjoint` — 64 sequential lines, all L1-resident after warmup,
//!   pairwise-disjoint sets at every level (the probe pass's best case);
//! * `hits_colliding` — 64 lines forced into one L1 set cohort (stride =
//!   one L1 way span), so commits interleave within shared sets;
//! * `l3_stream` — a rotating window over an L2-busting region: most
//!   probes descend to the (12 MB, host-cache-cold) L3 metadata, the
//!   latency the level-major probe exists to overlap;
//! * `duplicates` — one hot line repeated 64×: the duplicate-detection
//!   path plus canonical in-commit walks.
//!
//! Each scenario runs through both paths; results are identical (that is
//! property-tested elsewhere) — only wall time differs.

use criterion::{criterion_group, criterion_main, Criterion};
use pp_sim::config::MachineConfig;
use pp_sim::machine::Machine;
use pp_sim::types::{Addr, CoreId, MemDomain};
use std::hint::black_box;

const BATCH: usize = 64;
const MLP: u32 = 8;

/// Sequential lines: pairwise-disjoint sets at L1 (64 sets), L2, and L3.
fn disjoint_addrs(base: Addr) -> Vec<Addr> {
    (0..BATCH as u64).map(|i| base + i * 64).collect()
}

/// One L1-set cohort: stride of 64 lines puts every address in L1 set 0
/// (and every 8th in the same L2 set).
fn colliding_addrs(base: Addr) -> Vec<Addr> {
    (0..BATCH as u64).map(|i| base + i * 64 * 64).collect()
}

/// One hot line, repeated.
fn duplicate_addrs(base: Addr) -> Vec<Addr> {
    vec![base; BATCH]
}

fn bench_batch(
    c: &mut Criterion,
    group: &str,
    mk_addrs: impl Fn(Addr) -> Vec<Addr>,
    rotate: bool,
) {
    let mut g = c.benchmark_group(group);
    for (name, lockstep) in [("lockstep", true), ("serial", false)] {
        g.bench_function(name, |b| {
            let mut m = Machine::new(MachineConfig::westmere());
            let base = MemDomain(0).base();
            // Region >> L2 so the rotating variants keep missing into L3.
            let region_lines: u64 = 1 << 15; // 2 MiB
            let mut offset = 0u64;
            let addrs = mk_addrs(base);
            // Warm up the static variants so they measure the hit path.
            if !rotate {
                let mut ctx = m.ctx(CoreId(0));
                ctx.read_batch(&addrs, MLP);
                ctx.read_batch(&addrs, MLP);
            }
            let mut rotated: Vec<Addr> = addrs.clone();
            b.iter(|| {
                let batch: &[Addr] = if rotate {
                    offset = (offset + BATCH as u64) % region_lines;
                    rotated.clear();
                    rotated.extend(addrs.iter().map(|&a| a + offset * 64));
                    &rotated
                } else {
                    &addrs
                };
                let mut ctx = m.ctx(CoreId(0));
                if lockstep {
                    ctx.read_batch_lockstep(batch, MLP);
                } else {
                    ctx.read_batch(batch, MLP);
                }
                black_box(ctx.now())
            });
        });
    }
    g.finish();
}

fn bench_hits_disjoint(c: &mut Criterion) {
    bench_batch(c, "charge_hits_disjoint", disjoint_addrs, false);
}

fn bench_hits_colliding(c: &mut Criterion) {
    bench_batch(c, "charge_hits_colliding", colliding_addrs, false);
}

fn bench_l3_stream(c: &mut Criterion) {
    bench_batch(c, "charge_l3_stream", disjoint_addrs, true);
}

fn bench_duplicates(c: &mut Criterion) {
    bench_batch(c, "charge_duplicates", duplicate_addrs, false);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .measurement_time(std::time::Duration::from_millis(300))
        .warm_up_time(std::time::Duration::from_millis(50));
    targets = bench_hits_disjoint, bench_hits_colliding, bench_l3_stream,
        bench_duplicates
}
criterion_main!(benches);
