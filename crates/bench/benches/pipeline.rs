//! Criterion microbenchmarks of scalar vs burst cross-core handoff in the
//! §2.2 pipeline configuration.
//!
//! Two angles on the same amortization:
//!
//! * **simulated cycles** — how many packets one slice of simulated time
//!   moves through a two-stage pipeline at each handoff burst size (the
//!   number the `repro pipeline-batch` experiment sweeps); and
//! * **host ns/turn** — how fast the simulator executes one sink-stage
//!   dequeue turn, since the burst path also removes host-side borrow and
//!   dispatch traffic from the hot loop.

use criterion::{criterion_group, criterion_main, Criterion};
use pp_click::pipelines::{build_pipeline, ChainKind, FlowSpec, PipelineSpec};
use pp_sim::config::MachineConfig;
use pp_sim::engine::Engine;
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, MemDomain};
use std::hint::black_box;

/// Build an IP pipeline at test scale with the given handoff burst
/// (0 = scalar), both stages on socket 0.
fn pipeline_engine(burst: usize) -> Engine {
    let mut m = Machine::new(MachineConfig::westmere());
    let spec = FlowSpec::small(ChainKind::Ip, 11);
    let pipe = PipelineSpec::new(MemDomain(0)).with_burst(burst);
    let (src, sink, _q) = build_pipeline(&mut m, MemDomain(0), MemDomain(0), &spec, &pipe);
    let mut e = Engine::new(m);
    e.set_task(CoreId(0), Box::new(src));
    e.set_task(CoreId(1), Box::new(sink));
    e
}

fn bench_pipeline_handoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_handoff");
    for (name, burst) in [("scalar", 0usize), ("burst_8", 8), ("burst_32", 32)] {
        g.bench_function(name, |b| {
            let mut e = pipeline_engine(burst);
            // Warm the caches once so the loop measures steady state.
            e.run_until(1_000_000);
            let mut t_end = e.machine.max_clock();
            b.iter(|| {
                // Advance by one ~50k-cycle slice of simulated time.
                t_end += 50_000;
                e.run_until(t_end);
                black_box(e.machine.core(CoreId(1)).counters.total().packets)
            });
        });
    }
    g.finish();
}

fn bench_sink_turn_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("sink_turn_host_cost");
    for (name, burst) in [("scalar_turn", 0usize), ("burst_32_turn", 32)] {
        g.bench_function(name, |b| {
            let mut m = Machine::new(MachineConfig::westmere());
            let spec = FlowSpec::small(ChainKind::Ip, 11);
            let pipe = PipelineSpec::new(MemDomain(0)).with_burst(burst);
            let (mut src, mut sink, _q) =
                build_pipeline(&mut m, MemDomain(0), MemDomain(0), &spec, &pipe);
            use pp_sim::engine::CoreTask;
            b.iter(|| {
                // Keep the queue stocked so every sink turn dequeues.
                {
                    let mut ctx = m.ctx(CoreId(0));
                    let _ = src.run_turn(&mut ctx);
                }
                let mut ctx = m.ctx(CoreId(1));
                black_box(sink.run_turn(&mut ctx))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .measurement_time(std::time::Duration::from_millis(300))
        .warm_up_time(std::time::Duration::from_millis(50));
    targets = bench_pipeline_handoff, bench_sink_turn_cost
}
criterion_main!(benches);
