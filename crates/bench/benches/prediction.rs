//! Benchmarks of the prediction toolkit itself: curve interpolation, the
//! analytical models, placement enumeration, and a full quick-scale
//! profile-and-predict cycle (the paper's "simple offline profiling").

use criterion::{criterion_group, criterion_main, Criterion};
use pp_core::prelude::*;
use std::hint::black_box;

fn bench_curve(c: &mut Criterion) {
    let curve = SensitivityCurve::from_points(
        (1..=16).map(|i| (i as f64 * 20e6, (i as f64).sqrt() * 8.0)).collect(),
    );
    c.bench_function("predict/curve_interpolate", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 7e6;
            if x > 300e6 {
                x = 0.0;
            }
            black_box(curve.interpolate(x))
        })
    });
}

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("model");
    g.bench_function("eq1_worst_case", |b| {
        b.iter(|| black_box(worst_case_drop(PAPER_DELTA_SECS, 21.3e6)))
    });
    let model = CacheModel {
        cache_lines: 196_608.0,
        target_working_lines: 114_688.0,
        target_hits_per_sec: 21.3e6,
    };
    g.bench_function("appendix_a_conversion", |b| {
        b.iter(|| black_box(model.conversion_rate(137e6)))
    });
    g.finish();
}

fn bench_placement_enumeration(c: &mut Criterion) {
    c.bench_function("placement/enumerate_3type_12flow", |b| {
        let mut flows = vec![FlowType::Mon; 4];
        flows.extend(vec![FlowType::Fw; 4]);
        flows.extend(vec![FlowType::Re; 4]);
        b.iter(|| black_box(enumerate_placements(&flows, 6).len()))
    });
}

fn bench_quick_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("solo_profile_quick", |b| {
        b.iter(|| black_box(SoloProfile::measure(FlowType::Fw, ExpParams::quick())))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_curve, bench_models, bench_placement_enumeration, bench_quick_profile
}
criterion_main!(benches);
