//! Microbenchmarks of the simulator substrate: cache lookups, the full
//! demand-access path, the memory-controller queue model, and DMA delivery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pp_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("l1_hit", |b| {
        let mut cache = Cache::new(CacheGeom::new(32 * 1024, 8));
        cache.insert(0x1000, false, 0);
        b.iter(|| black_box(cache.access(0x1000, false, 0)));
    });
    g.bench_function("miss_insert_evict", |b| {
        let mut cache = Cache::new(CacheGeom::new(32 * 1024, 8));
        let mut addr = 0u64;
        b.iter(|| {
            cache.access(addr, false, 0);
            cache.insert(addr, false, 0);
            addr += 64;
        });
    });
    g.finish();
}

fn bench_access_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.bench_function("demand_access_l1_hit", |b| {
        let mut m = Machine::new(MachineConfig::westmere());
        let a = MemDomain(0).base() + 0x100;
        m.ctx(CoreId(0)).read(a);
        b.iter(|| {
            let mut ctx = m.ctx(CoreId(0));
            black_box(ctx.read(a));
        });
    });
    g.bench_function("demand_access_random_12mb", |b| {
        let mut m = Machine::new(MachineConfig::westmere());
        let base = m.allocator(MemDomain(0)).alloc_lines(12 << 20);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let a = base + rng.random_range(0..(12u64 << 20) / 64) * 64;
            let mut ctx = m.ctx(CoreId(0));
            black_box(ctx.read(a));
        });
    });
    g.bench_function("dma_deliver_1500b", |b| {
        let mut m = Machine::new(MachineConfig::westmere());
        let buf = m.allocator(MemDomain(0)).alloc_lines(2048);
        b.iter(|| m.dma_deliver(SocketId(0), buf, 1500, 0));
    });
    g.finish();
}

fn bench_memctrl(c: &mut Criterion) {
    c.bench_function("memctrl/demand_read", |b| {
        let mut m = MemCtrl::new(11);
        let mut now = 0u64;
        b.iter(|| {
            now += 20;
            black_box(m.demand_read(now))
        });
    });
}

fn bench_counters(c: &mut Criterion) {
    c.bench_function("counters/bump_tagged", |b| {
        let mut cc = pp_sim::counters::CoreCounters::new();
        cc.push_tag("hot");
        b.iter(|| cc.bump(|x| x.l3_refs += 1));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cache, bench_access_path, bench_memctrl, bench_counters
}
criterion_main!(benches);

#[allow(dead_code)]
fn silence(b: BatchSize) -> BatchSize {
    b
}
