//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <subcommand> [--quick] [--jobs N] [--levels N] [--out DIR] [--seed N]
//!
//! subcommands:
//!   table1     Table 1  — solo-run characteristics
//!   fig2       Fig. 2   — 25-pair contention matrix + averages
//!   fig4       Fig. 4   — cache vs memctrl contention (SYN ramps)
//!   fig5       Fig. 5   — SYN curves vs realistic competitors
//!   fig6       Fig. 6   — Eq. 1 worst-case bound
//!   fig7       Fig. 7   — hit→miss conversion, measured vs model
//!   fig8       Fig. 8   — prediction errors (25 pairs)
//!   fig9       Fig. 9   — prediction for the mixed workload
//!   fig10      Fig. 10  — best/worst placement study
//!   pipeline   §2.2     — pipeline vs parallel
//!   pipeline-batch extras — burst-mode cross-core handoff sweep (throughput + latency)
//!   throttle   §4       — containing hidden aggressiveness
//!   ablate     extras   — DCA / associativity / lookup-structure / prefetch ablations
//!   extended   extras   — prediction generality on DPI / NAT / CLASS
//!   cat        extras   — L3 way-partitioning (isolation vs prediction)
//!   mixes      extras   — error distribution over random 6-flow mixes
//!   batch      extras   — vectorized-execution batch-size sweep
//!   adaptive   extras   — adaptive batch control: latency-budgeted batch
//!                         choice (model-driven, measurement-verified) +
//!                         predictor re-validation at batch 64
//!   tables     extras   — internet-scale lookup structures (binary radix
//!                         vs multibit vs DIR-24-8) in the DRAM-resident
//!                         regime: F/b + p re-fit, sensitivity curves,
//!                         held-out predictor check (TABLES_results.json)
//!   perf       extras   — simulator self-benchmark (wall-clock, BENCH_sim.json)
//!   chaos      extras   — fault injection + graceful degradation: seeded
//!                         disturbance timelines vs the runtime guard's
//!                         ladder (CHAOS_results.json)
//!   fleet-chaos extras  — the tenant supervisor under sustained faults:
//!                         circuit-breaker admission, core failover,
//!                         drift re-calibration (FLEET_CHAOS_results.json)
//!   cluster-chaos extras — the fleet controller over N machines: crash
//!                         detection + re-placement, telemetry blackout,
//!                         SLA-priority shedding (CLUSTER_CHAOS_results.json)
//!   all        everything above, in order (except perf: wall-dependent)
//! ```
//!
//! `--quick` runs test-scale structures with short windows (for smoke
//! runs); default is paper scale. `--packets N` sizes the measurement
//! window so a scalar flow covers roughly N packets — one knob for
//! simulation size shared by every sweep (it overrides the base window
//! regardless of flag order). `--jobs N` shards each sweep's independent
//! scenario points across N host threads (default: available cores;
//! `--jobs 1` is the exact serial path; `--threads` is the pre-PR-9 alias).
//! Results are bit-for-bit identical at any job count — each point builds
//! its own engine from its own derived seed and results merge in canonical
//! order; `repro perf` always times sequentially regardless. `--seed N`
//! replaces the master seed every derived seed (workload structure,
//! fault-plan jitter, supervisor probe jitter) mixes from — replay a
//! failing chaos/fleet-chaos/cluster-chaos timeline by passing the seed
//! the report named. Results land in `results/*.csv`.

use pp_bench::experiments;
use pp_bench::RunCtx;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|fig2|fig4|fig5|fig6|fig7|fig8|fig9|fig10|pipeline|pipeline-batch|throttle|ablate|extended|cat|mixes|batch|adaptive|tables|perf|chaos|fleet-chaos|cluster-chaos|all> \
         [--quick] [--packets N] [--jobs N] [--levels N] [--out DIR] [--seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args[0].clone();
    // Parse everything first, then apply in a fixed precedence (--quick
    // selects the base context, --packets then resizes its window), so
    // flag order on the command line never silently discards a flag.
    let mut quick = false;
    let mut packets: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut levels: Option<u8> = None;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut seed: Option<u64> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            // `--threads` is the pre-PR-9 spelling of `--jobs`; both shard
            // the sweep's independent points across host worker threads.
            "--jobs" | "--threads" => {
                i += 1;
                jobs =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--packets" => {
                i += 1;
                packets =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--levels" => {
                i += 1;
                levels =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--out" => {
                i += 1;
                out_dir = Some(args.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--seed" => {
                i += 1;
                seed =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }
    let mut ctx = if quick { RunCtx::quick() } else { RunCtx::paper() };
    if let Some(n) = packets {
        ctx.params = ctx.params.with_packets(n);
    }
    if let Some(j) = jobs {
        ctx.jobs = j.max(1);
    }
    if let Some(l) = levels {
        ctx.levels = l;
    }
    if let Some(o) = out_dir {
        ctx.out_dir = o;
    }
    if let Some(s) = seed {
        ctx.params.seed = s;
    }

    println!(
        "repro: {} (scale: {:?}, warmup {} ms, window {} ms, {} jobs, {} ramp levels)",
        cmd, ctx.params.scale, ctx.params.warmup_ms, ctx.params.window_ms, ctx.jobs, ctx.levels
    );
    let t0 = Instant::now();
    match cmd.as_str() {
        "table1" => {
            experiments::table1::run(&ctx);
        }
        "fig2" => {
            experiments::fig2::run(&ctx);
        }
        "fig4" => {
            experiments::fig4::run(&ctx);
        }
        "fig5" => {
            experiments::fig5::run(&ctx);
        }
        "fig6" => {
            experiments::fig6::run(&ctx);
        }
        "fig7" => {
            experiments::fig7::run(&ctx);
        }
        "fig8" => {
            experiments::fig8::run(&ctx);
        }
        "fig9" => {
            experiments::fig9::run(&ctx);
        }
        "fig10" => {
            experiments::fig10::run(&ctx);
        }
        "pipeline" => {
            experiments::pipeline::run(&ctx);
        }
        "pipeline-batch" => {
            experiments::pipeline_batch::run(&ctx);
        }
        "throttle" => {
            experiments::throttle::run(&ctx);
        }
        "ablate" => {
            experiments::ablations::run(&ctx);
        }
        "extended" => {
            experiments::extended::run(&ctx);
        }
        "cat" => {
            experiments::partition::run(&ctx);
        }
        "mixes" => {
            experiments::mixes::run(&ctx);
        }
        "batch" => {
            experiments::batch::run(&ctx);
        }
        "adaptive" => {
            experiments::adaptive::run(&ctx);
        }
        "tables" => {
            experiments::tables::run(&ctx);
        }
        "perf" => {
            experiments::perf::run(&ctx);
        }
        "chaos" => {
            experiments::chaos::run(&ctx);
        }
        "fleet-chaos" => {
            experiments::fleet_chaos::run(&ctx);
        }
        "cluster-chaos" => {
            experiments::cluster_chaos::run(&ctx);
        }
        "all" => {
            experiments::table1::run(&ctx);
            experiments::fig2::run(&ctx);
            experiments::fig4::run(&ctx);
            experiments::fig5::run(&ctx);
            experiments::fig6::run(&ctx);
            experiments::fig7::run(&ctx);
            let f8 = experiments::fig8::run(&ctx);
            experiments::fig9::run_with(&ctx, Some(&f8.predictor));
            experiments::fig10::run(&ctx);
            experiments::pipeline::run(&ctx);
            experiments::pipeline_batch::run(&ctx);
            experiments::throttle::run(&ctx);
            experiments::ablations::run(&ctx);
            let ext = experiments::extended::run(&ctx);
            experiments::mixes::run_with(&ctx, Some(&ext.predictor));
            experiments::partition::run(&ctx);
            experiments::batch::run(&ctx);
            experiments::adaptive::run(&ctx);
            experiments::tables::run(&ctx);
            experiments::chaos::run(&ctx);
            experiments::fleet_chaos::run(&ctx);
            experiments::cluster_chaos::run(&ctx);
        }
        _ => usage(),
    }
    println!("\n[done in {:.1}s]", t0.elapsed().as_secs_f64());
}
