//! Ablation studies on the design choices ARCHITECTURE.md calls out.
//!
//! These go beyond the paper's figures: each ablation switches one modeling
//! or implementation decision and re-measures a contention-sensitive
//! scenario, quantifying how much that choice contributes to the observed
//! behaviour.
//!
//! * **DCA on/off** — the paper's platform DMAs packets into the L3
//!   (Direct Cache Access). Without it every header read goes to DRAM.
//! * **L3 associativity** — the paper argues its results are generic LRU
//!   phenomena, not artifacts of 16-way associativity; we sweep it.
//! * **Binary vs multibit trie** — same routes, different memory shape:
//!   the lookup structure determines the flow's sensitivity profile.
//! * **SYN memory-level parallelism** — how the competitors' MLP changes
//!   the pressure they exert at equal refs/sec.

use crate::RunCtx;
use pp_click::pipelines::{build_flow, ChainKind, FlowSpec};
use pp_core::prelude::*;
use pp_sim::config::MachineConfig;
use pp_sim::engine::Engine;
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, MemDomain};

/// Measured drop of a MON-vs-5-SYN_MAX co-run under a given machine config.
/// Returns `(solo pps, drop %)`. Shared with the partitioning experiment.
pub(crate) fn mon_drop_under(cfg: MachineConfig, ctx: &RunCtx) -> (f64, f64) {
    let scale = ctx.params.scale;
    let build = |machine: &mut Machine, core: u16, kind: ChainKind, seed: u64| {
        let mut spec = match scale {
            Scale::Paper => FlowSpec::new(kind, seed),
            Scale::Test => FlowSpec::small(kind, seed),
        };
        spec.structure_seed = 0xFEED;
        let b = build_flow(machine, MemDomain(0), &spec);
        (CoreId(core), b.task)
    };

    // Solo.
    let mut machine = Machine::new(cfg.clone());
    let (c, t) = build(&mut machine, 0, ChainKind::Mon, 1);
    let mut e = Engine::new(machine);
    e.set_task(c, Box::new(t));
    let warm = ctx.params.warmup_cycles(e.machine.config());
    let win = ctx.params.window_cycles(e.machine.config());
    let solo = e.measure(warm, win).core(CoreId(0)).unwrap().metrics.pps;

    // Contended.
    let mut machine = Machine::new(cfg);
    let (c, t) = build(&mut machine, 0, ChainKind::Mon, 1);
    let mut tasks = vec![(c, t)];
    for i in 1..=5u16 {
        let (c, t) = build(
            &mut machine,
            i,
            ChainKind::Syn(pp_click::elements::synthetic::SynParams::max(i as u64)),
            100 + i as u64,
        );
        tasks.push((c, t));
    }
    let mut e = Engine::new(machine);
    for (c, t) in tasks {
        e.set_task(c, Box::new(t));
    }
    let co = e.measure(warm, win).core(CoreId(0)).unwrap().metrics.pps;
    (solo, (solo - co) / solo * 100.0)
}

/// Run all ablations and report.
pub fn run(ctx: &RunCtx) {
    ctx.heading("Ablations — how much does each design choice matter?");

    // 1. DCA.
    let mut t = Table::new(
        "DCA (NIC DMA into L3) on/off: MON solo throughput and drop vs 5 SYN_MAX",
        &["dca", "solo Mpps", "drop (%)"],
    );
    for dca in [true, false] {
        let mut cfg = MachineConfig::westmere();
        cfg.dca = dca;
        let (solo, drop) = mon_drop_under(cfg, ctx);
        t.row(vec![dca.to_string(), fmt_f(solo / 1e6, 3), fmt_f(drop, 2)]);
    }
    ctx.emit("ablate_dca", &t);

    // 2. L3 associativity.
    let mut t = Table::new(
        "L3 associativity sweep (same capacity): the contention effect is not an associativity artifact",
        &["ways", "solo Mpps", "drop (%)"],
    );
    for ways in [4u32, 8, 16, 32] {
        let mut cfg = MachineConfig::westmere();
        cfg.l3 = pp_sim::config::CacheGeom::new(cfg.l3.size_bytes, ways);
        let (solo, drop) = mon_drop_under(cfg, ctx);
        t.row(vec![ways.to_string(), fmt_f(solo / 1e6, 3), fmt_f(drop, 2)]);
    }
    ctx.emit("ablate_associativity", &t);

    // 3. Lookup-structure choice: binary radix trie vs multibit trie under
    //    identical contention (both route identically; footprints differ).
    let mut t = Table::new(
        "Lookup structure: Click-style binary radix trie vs leaf-pushed multibit trie (IP flow)",
        &["structure", "solo Mpps", "drop vs 5 SYN_MAX (%)", "L3 refs/pkt solo"],
    );
    for (label, config_text) in [
        ("binary radix", "RADIX"),
        ("multibit", "MULTIBIT"),
    ] {
        let scale = ctx.params.scale;
        let n_prefixes = match scale {
            Scale::Paper => 128_000,
            Scale::Test => 32_000,
        };
        let cfg_text = |seed: u64| {
            let class =
                if config_text == "RADIX" { "RadixIPLookup" } else { "MultibitIPLookup" };
            format!(
                "chk :: CheckIPHeader; rt :: {class}(PREFIXES {n_prefixes}, SEED {seed}); \
                 ttl :: DecIPTTL; out :: ToDevice; chk -> rt -> ttl -> out;"
            )
        };
        let run_one = |with_syn: bool| -> (f64, f64) {
            use pp_click::config::{build_config, BuildCtx};
            use pp_click::cost::CostModel;
            use pp_click::flow::{FlowTask, FrameworkChurn};
            use pp_net::gen::traffic::{TrafficGen, TrafficSpec};
            use pp_sim::nic::NicQueue;
            use std::cell::RefCell;
            use std::rc::Rc;
            let mut machine = Machine::new(MachineConfig::westmere());
            let cost = CostModel::default();
            let nic = Rc::new(RefCell::new(NicQueue::new(
                machine.allocator(MemDomain(0)),
                256,
                512,
                2048,
            )));
            let built = {
                let mut bctx = BuildCtx {
                    machine: &mut machine,
                    domain: MemDomain(0),
                    nic: nic.clone(),
                    cost,
                    seed: 0xFEED,
                };
                build_config(&cfg_text(0xFEED), &mut bctx).expect("valid config")
            };
            let churn = FrameworkChurn::new(machine.allocator(MemDomain(0)), &cost);
            let task = FlowTask::new(
                label,
                TrafficGen::new(TrafficSpec::random_dst(64, 5)),
                nic,
                built.graph,
                cost,
            )
            .with_churn(churn);
            let mut syn_tasks = Vec::new();
            if with_syn {
                for i in 1..=5u16 {
                    let mut spec = match scale {
                        Scale::Paper => FlowSpec::new(
                            ChainKind::Syn(
                                pp_click::elements::synthetic::SynParams::max(i as u64),
                            ),
                            100 + i as u64,
                        ),
                        Scale::Test => FlowSpec::small(
                            ChainKind::Syn(
                                pp_click::elements::synthetic::SynParams::max(i as u64),
                            ),
                            100 + i as u64,
                        ),
                    };
                    spec.structure_seed = 0xFEED;
                    let b = build_flow(&mut machine, MemDomain(0), &spec);
                    syn_tasks.push((CoreId(i), b.task));
                }
            }
            let mut e = Engine::new(machine);
            e.set_task(CoreId(0), Box::new(task));
            for (c, t) in syn_tasks {
                e.set_task(c, Box::new(t));
            }
            let warm = ctx.params.warmup_cycles(e.machine.config());
            let win = ctx.params.window_cycles(e.machine.config());
            let m = e.measure(warm, win);
            let cm = m.core(CoreId(0)).unwrap();
            (cm.metrics.pps, cm.metrics.l3_refs_per_packet)
        };
        let (solo_pps, refs_solo) = run_one(false);
        let (co_pps, _) = run_one(true);
        t.row(vec![
            label.to_string(),
            fmt_f(solo_pps / 1e6, 3),
            fmt_f((solo_pps - co_pps) / solo_pps * 100.0, 2),
            fmt_f(refs_solo, 2),
        ]);
    }
    ctx.emit("ablate_lookup_structure", &t);
    println!(
        "the multibit trie does the same routing with far fewer L3 refs/packet — a\n\
         downstream user can trade lookup-structure memory shape against sensitivity"
    );

    // 4. Hardware prefetcher. Two instructive non-results and one real
    //    effect: FW's 1000-rule scan is L2-resident after warmup (nothing
    //    left to prefetch), MON's hash probes are stride-free (untrainable)
    //    — but the *framework's* sequential per-packet metadata walk is a
    //    textbook stream, so the streamer hides a slice of the misses that
    //    contention converts, shrinking MON's drop under SYN_MAX pressure.
    let mut t = Table::new(
        "L2 stream prefetcher on/off",
        &["prefetch", "FW solo Mpps", "MON solo Mpps", "MON drop vs 5 SYN_MAX (%)"],
    );
    for enabled in [false, true] {
        let mut cfg = MachineConfig::westmere();
        cfg.prefetch.enabled = enabled;
        let fw = solo_pps_under(cfg.clone(), ChainKind::Fw, ctx);
        let (mon_solo, mon_drop) = mon_drop_under(cfg, ctx);
        t.row(vec![
            enabled.to_string(),
            fmt_f(fw / 1e6, 3),
            fmt_f(mon_solo / 1e6, 3),
            fmt_f(mon_drop, 2),
        ]);
    }
    ctx.emit("ablate_prefetch", &t);
    println!(
        "FW's scan lives in L2 after warmup and MON's probes are stride-free — neither\n\
         trains the streamer. What does is the framework's sequential per-packet metadata\n\
         walk: prefetching it hides misses that contention would otherwise convert, which\n\
         is why MON's drop (not its solo rate) is where the streamer shows up"
    );
}

/// Solo throughput of one flow kind under a machine config.
fn solo_pps_under(cfg: MachineConfig, kind: ChainKind, ctx: &RunCtx) -> f64 {
    let mut spec = match ctx.params.scale {
        Scale::Paper => FlowSpec::new(kind, 1),
        Scale::Test => FlowSpec::small(kind, 1),
    };
    spec.structure_seed = 0xFEED;
    let mut machine = Machine::new(cfg);
    let b = build_flow(&mut machine, MemDomain(0), &spec);
    let mut e = Engine::new(machine);
    e.set_task(CoreId(0), Box::new(b.task));
    let warm = ctx.params.warmup_cycles(e.machine.config());
    let win = ctx.params.window_cycles(e.machine.config());
    e.measure(warm, win).core(CoreId(0)).unwrap().metrics.pps
}
