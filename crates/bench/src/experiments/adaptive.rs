//! `repro adaptive` — the closed-loop sweep: adaptive batch control under
//! latency budgets, plus predictor re-validation on the batched datapath.
//!
//! This is the experiment that converts the two remaining ROADMAP open
//! items ("adaptive batch sizing", "predictor integration") into asserted
//! scenarios. Three claims are checked, every run:
//!
//! 1. **The budget holds.** For each (workload × solo/co-run × budget)
//!    scenario, the [`BatchController`] picks a batch size from the fitted
//!    `F/b + p` model and calibrated tail factors alone; the measured p99
//!    residence at that size must come in at or under the budget.
//! 2. **Throughput is not left on the table.** The chosen batch must
//!    achieve ≥ 90% of the throughput of the best *fixed* batch size that
//!    also (measurably) meets the budget — adaptivity must not cost more
//!    than the model's interpolation error.
//! 3. **Prediction under batching is measured and bounded.** The paper's
//!    three-step contention predictor is profiled and evaluated entirely
//!    at batch 64 across the five workloads and co-run mixes. The result
//!    (paper scale, this simulator): the <3 pp scalar accuracy does *not*
//!    fully transfer — batching coarsens cache interleaving to
//!    vector-sized chunks, which the refs/sec abstraction cannot see, and
//!    worst-case error grows to ~8 pp at batch 64 (~5 pp at batch 8).
//!    The run reports refs-, fill-rate-, and perfect-knowledge
//!    predictions per mix and asserts the measured envelope (< 12 pp at
//!    paper scale) so any further regression of the mechanism fails CI.
//!
//! Budgets are not arbitrary constants: per scenario, the controller's own
//! predicted p99 at rungs {4, 16, 64} of the candidate ladder is inflated
//! by 25% headroom. That spreads the decisions across the ladder (a tight
//! budget forces a small batch, a loose one reaches the top) and makes
//! claim 1 a real test of model accuracy — the measurement must land
//! within the headroom of an *interpolated* prediction at rungs the
//! calibration never measured.
//!
//! Co-run scenarios calibrate from probes measured in the co-run (profile
//! in context): contention stretches turn times, and the controller must
//! price that in, not discover it in production.

use crate::RunCtx;
use pp_core::prelude::*;

/// Workloads swept: the paper's realistic set.
pub const WORKLOADS: [FlowType; 5] =
    [FlowType::Ip, FlowType::Mon, FlowType::Fw, FlowType::Re, FlowType::Vpn];

/// Ladder rungs the budgets are anchored at (see module docs).
pub const BUDGET_RUNGS: [usize; 3] = [4, 16, 64];

/// Headroom the budget grants over the model's rung prediction.
pub const BUDGET_HEADROOM: f64 = 1.25;

/// Batch size the predictor re-validation runs at.
pub const REVALIDATION_BATCH: usize = 64;

/// Solo or contended measurement context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// The flow alone on core 0.
    Solo,
    /// The flow on core 0 plus five co-runners on its socket (Fig. 3c
    /// "both" contention — the realistic co-location).
    CoRun,
}

/// Both scenario kinds, in report order.
pub const SCENARIOS: [ScenarioKind; 2] = [ScenarioKind::Solo, ScenarioKind::CoRun];

impl ScenarioKind {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::Solo => "solo",
            ScenarioKind::CoRun => "co-run",
        }
    }
}

/// The co-runners a target faces in the `CoRun` scenario: five copies of
/// the next realistic workload (cyclic), so every workload both suffers
/// and causes contention somewhere in the sweep.
pub fn competitors_of(target: FlowType) -> [FlowType; 5] {
    let i = WORKLOADS.iter().position(|&t| t == target).expect("realistic workload");
    [WORKLOADS[(i + 1) % WORKLOADS.len()]; 5]
}

/// One measured fixed-batch point of the grid.
#[derive(Debug, Clone)]
pub struct FixedPoint {
    /// The workload.
    pub flow: FlowType,
    /// Solo or co-run.
    pub scenario: ScenarioKind,
    /// The fixed batch size.
    pub batch: usize,
    /// Target's packets/sec over the window.
    pub pps: f64,
    /// Target's total cycles per packet.
    pub cycles_per_packet: f64,
    /// Target's residence-time percentiles.
    pub latency: LatencySummary,
}

/// Measure one (workload, scenario, batch) point.
pub fn measure_point(
    flow: FlowType,
    scenario: ScenarioKind,
    batch: usize,
    params: ExpParams,
) -> FixedPoint {
    let p = params.with_batch(batch);
    let s = match scenario {
        ScenarioKind::Solo => solo_scenario(flow, p),
        ScenarioKind::CoRun => {
            corun_scenario(flow, &competitors_of(flow), ContentionConfig::Both, p)
        }
    };
    let r = run_scenario(&s);
    let target = &r.flows[0];
    FixedPoint {
        flow,
        scenario,
        batch,
        pps: target.metrics.pps,
        cycles_per_packet: target.metrics.cycles_per_packet,
        latency: target.latency,
    }
}

/// Measure the full fixed-batch grid (every candidate size per workload
/// and scenario), in parallel across host threads.
pub fn measure_grid(ctx: &RunCtx) -> Vec<FixedPoint> {
    let params = ctx.params;
    let mut items = Vec::new();
    for &scenario in &SCENARIOS {
        for &flow in &WORKLOADS {
            for &b in &CANDIDATE_BATCHES {
                items.push((flow, scenario, b));
            }
        }
    }
    run_many(items, ctx.jobs, move |(flow, scenario, b)| {
        measure_point(flow, scenario, b, params)
    })
}

/// Convert a grid point to a calibration probe.
fn as_probe(p: &FixedPoint) -> BatchProbe {
    BatchProbe {
        batch: p.batch,
        cycles_per_packet: p.cycles_per_packet,
        pps: p.pps,
        latency: p.latency,
    }
}

/// Run the sweep, assert the three claims, and emit the reports.
pub fn run(ctx: &RunCtx) {
    ctx.heading("ADAPTIVE — model-driven batch control under latency budgets");
    let grid = measure_grid(ctx);
    let at = |flow: FlowType, scenario: ScenarioKind, batch: usize| -> &FixedPoint {
        grid.iter()
            .find(|p| p.flow == flow && p.scenario == scenario && p.batch == batch)
            .expect("grid point")
    };

    let mut table = Table::new(
        "Adaptive batch choice vs latency budget (chosen from the model, verified by measurement)",
        &[
            "scenario",
            "workload",
            "budget p99 us",
            "chosen b",
            "predicted p99 us",
            "achieved p99 us",
            "pps @ chosen",
            "pps @ best fixed",
            "thr ratio",
        ],
    );
    let mut model_table = Table::new(
        "Controller calibration (fit from batch 1 and 64, tails per probe)",
        &[
            "scenario",
            "workload",
            "F (per batch)",
            "p (per packet)",
            "tail lo",
            "tail hi",
            "worst interior p99 err %",
        ],
    );

    for &scenario in &SCENARIOS {
        for &flow in &WORKLOADS {
            // Calibrate in context: the controller for co-run scenarios is
            // built from co-run probes at the ladder endpoints.
            let ctl = BatchController::from_probes(
                flow,
                as_probe(at(flow, scenario, 1)),
                as_probe(at(flow, scenario, 64)),
            );

            // Model-quality row: how far off is the interpolated p99 at the
            // interior rungs the calibration never saw?
            let mut worst_err = 0.0f64;
            for &b in &CANDIDATE_BATCHES[1..5] {
                let measured = at(flow, scenario, b).latency.p99_us;
                if measured > 0.0 {
                    let err = (ctl.predicted_p99_us(b) - measured).abs() / measured * 100.0;
                    worst_err = worst_err.max(err);
                }
            }
            model_table.row(vec![
                scenario.name().into(),
                flow.name(),
                fmt_f(ctl.model.per_batch_cycles, 0),
                fmt_f(ctl.model.per_packet_cycles, 0),
                fmt_f(ctl.tail_lo, 2),
                fmt_f(ctl.tail_hi, 2),
                fmt_f(worst_err, 1),
            ]);

            for &rung in &BUDGET_RUNGS {
                let budget = LatencyBudget::us(ctl.predicted_p99_us(rung) * BUDGET_HEADROOM);
                let choice = ctl.choose(budget);
                assert!(
                    choice.feasible,
                    "{}/{}: a budget anchored at rung {rung} must be feasible",
                    scenario.name(),
                    flow.name()
                );
                let achieved = at(flow, scenario, choice.batch);

                // Claim 1: the measured p99 at the chosen size meets the
                // budget — the model's decision survives contact with the
                // measurement.
                assert!(
                    achieved.latency.p99_us <= budget.p99_us,
                    "{}/{} rung {rung}: chosen batch {} achieved p99 {:.2}us over budget {:.2}us",
                    scenario.name(),
                    flow.name(),
                    choice.batch,
                    achieved.latency.p99_us,
                    budget.p99_us
                );

                // Claim 2: within 90% of the best fixed batch that also
                // measurably meets the budget.
                let best = CANDIDATE_BATCHES
                    .iter()
                    .map(|&b| at(flow, scenario, b))
                    .filter(|p| p.latency.p99_us <= budget.p99_us)
                    .max_by(|a, b| a.pps.total_cmp(&b.pps))
                    .expect("the chosen point itself is feasible");
                assert!(
                    achieved.pps >= 0.9 * best.pps,
                    "{}/{} rung {rung}: chosen batch {} reaches only {:.0} pps vs best fixed \
                     batch {} at {:.0} pps",
                    scenario.name(),
                    flow.name(),
                    choice.batch,
                    achieved.pps,
                    best.batch,
                    best.pps
                );

                table.row(vec![
                    scenario.name().into(),
                    flow.name(),
                    fmt_f(budget.p99_us, 2),
                    choice.batch.to_string(),
                    fmt_f(choice.predicted_p99_us, 2),
                    fmt_f(achieved.latency.p99_us, 2),
                    millions(achieved.pps),
                    millions(best.pps),
                    fmt_f(achieved.pps / best.pps, 2),
                ]);
            }
        }
    }
    ctx.emit("adaptive", &table);
    ctx.emit("adaptive_model", &model_table);

    // Claim 3: re-validate the contention predictor on the batched
    // datapath. Everything — solos, SYN ramps, co-run mixes — runs at
    // batch 64; the amortization moves refs/sec, the sensitivity mechanism
    // must not move.
    ctx.heading("ADAPTIVE — contention predictor re-validated at batch 64");
    println!(
        "[profiling at batch {REVALIDATION_BATCH}: {} solos + {} SYN ramps of {} levels]",
        WORKLOADS.len(),
        WORKLOADS.len(),
        ctx.levels
    );
    let mixes: Vec<(FlowType, Vec<FlowType>)> = WORKLOADS
        .iter()
        .flat_map(|&t| {
            [
                (t, competitors_of(t).to_vec()), // cross-type mix
                (t, vec![t; 5]),                 // self mix
            ]
        })
        .collect();
    let reval = revalidate_predictor(
        &WORKLOADS,
        &mixes,
        REVALIDATION_BATCH,
        ctx.levels,
        ctx.params,
        ctx.jobs,
    );
    let mut ptable = Table::new(
        "Prediction error at batch 64 (profiled and measured on the batched datapath)",
        &[
            "target",
            "competitors",
            "measured drop %",
            "refs-pred %",
            "fills-pred %",
            "perfect %",
            "error pp",
        ],
    );
    for e in &reval.errors {
        ptable.row(vec![
            e.target.name(),
            format!("5x {}", e.competitors[0].name()),
            fmt_f(e.measured, 2),
            fmt_f(e.predicted, 2),
            fmt_f(reval.predictor.predict_drop_fillrate(e.target, &e.competitors), 2),
            fmt_f(e.predicted_perfect, 2),
            fmt_f(e.error(), 2),
        ]);
    }
    ctx.emit("adaptive_predictor", &ptable);

    // What the measurement actually shows (paper scale, this simulator):
    // the refs/sec abstraction *degrades* under batching. A batched turn
    // commits a whole vector's accesses as one block, so co-runners
    // interleave at the shared L3 in 64-packet chunks instead of
    // per-access — big-chunk competitors (FW, RE) evict more per
    // interleave than a continuous SYN stream at the same refs/sec
    // (under-prediction), while hit-heavy batched competitors (IP
    // replicas, whose refs mostly hit and evict nothing) over-predict.
    // Errors grow with the batch: <3 pp scalar → ~5 pp at batch 8 →
    // ~8 pp at batch 64. The paper's <3 pp target therefore does NOT
    // transfer to batch 64; the asserted bound below is the measured
    // envelope (with margin) so any *further* regression of the mechanism
    // still fails the run. See ROADMAP "Open items" for the two paths to
    // tighten it (sub-turn interleaving in the engine; chunk-aware
    // competitor aggressiveness).
    let bound = match ctx.params.scale {
        Scale::Paper => 12.0,
        Scale::Test => 15.0,
    };
    let worst = reval.worst_abs_error();
    assert!(
        worst < bound,
        "predictor error under batching must stay < {bound} pp at this scale, got {worst:.2} pp"
    );
    let target_met = worst < 3.0;
    println!(
        "worst |error| at batch {REVALIDATION_BATCH} = {worst:.2} pp \
         (regression bound at this scale: {bound} pp)"
    );
    println!(
        "paper's <3 pp bound at batch {REVALIDATION_BATCH}: {} — batching coarsens \
         cache interleaving to vector-sized chunks, which the refs/sec abstraction \
         does not capture (see table: fills/sec brackets the error from below)",
        if target_met { "MET" } else { "NOT met" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn competitors_are_cyclic_and_realistic() {
        for &t in &WORKLOADS {
            let c = competitors_of(t);
            assert_ne!(c[0], t, "{t} should not compete with itself in the cross mix");
            assert!(c[0].is_realistic());
        }
        assert_eq!(competitors_of(FlowType::Vpn)[0], FlowType::Ip, "the cycle wraps");
    }

    #[test]
    fn measured_point_reports_latency_and_throughput() {
        let p = measure_point(FlowType::Ip, ScenarioKind::Solo, 8, ExpParams::quick());
        assert!(p.pps > 50_000.0);
        assert!(p.latency.samples > 0, "latency read-back must be populated");
        assert!(p.latency.p50_us > 0.0 && p.latency.p50_us <= p.latency.p99_us);
    }

    #[test]
    fn corun_point_measures_the_target_under_contention() {
        // Plumbing check: the co-run path places 6 flows, measures the
        // target on core 0, and reads its latency back. (Tiny test-scale
        // windows can round MON-vs-FW contention to a throughput tie, so
        // the contention *physics* asserts live in pp-core's experiment
        // tests and the paper-scale sweep, not here.)
        let params = ExpParams::quick();
        let solo = measure_point(FlowType::Mon, ScenarioKind::Solo, 8, params);
        let corun = measure_point(FlowType::Mon, ScenarioKind::CoRun, 8, params);
        assert!(
            corun.pps <= solo.pps,
            "contention must not raise throughput: {} vs {}",
            corun.pps,
            solo.pps
        );
        assert!(corun.latency.samples > 0, "co-run latency read-back must be populated");
        assert!(
            corun.latency.p99_us >= solo.latency.p99_us * 0.9,
            "contention should not shrink tail latency materially"
        );
    }

    #[test]
    fn quick_sweep_asserts_all_three_claims() {
        // The full closed loop at test scale: budgets hold, throughput is
        // within 10% of the best fixed batch, predictor error bounded.
        // (All asserts live inside run().)
        let ctx = RunCtx::quick();
        run(&ctx);
    }
}
