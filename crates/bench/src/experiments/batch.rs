//! Batch-size sweep: vectorized execution through the element graph.
//!
//! The successor literature to the paper (VPP, batched Click, the NFV
//! dataplane benchmarks) attributes much of modern dataplane throughput to
//! *vector processing*: per-element framework costs — dispatch, I-cache
//! refill, NIC descriptor-ring and free-list transactions — are paid once
//! per batch instead of once per packet. This experiment sweeps the batch
//! size over {1, 4, 8, 16, 32, 64} for the standard application mixes and
//! reports throughput plus the per-packet cycle breakdown (framework+hop
//! vs application work), verifying two properties:
//!
//! * **batch = 1 is the scalar path, bit for bit** — identical packet,
//!   drop, and cycle counters, so the sweep is anchored to the paper's
//!   scalar numbers; and
//! * **framework+hop cycles/packet fall monotonically with batch size**,
//!   following the `F/b + p` amortization model
//!   ([`BatchAmortization`]).

use crate::RunCtx;
use pp_click::pipelines::build_flow;
use pp_core::prelude::*;
use pp_sim::config::MachineConfig;
use pp_sim::engine::Engine;
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, MemDomain};

/// Batch sizes swept (1 = the scalar anchor).
pub const BATCH_SIZES: [usize; 6] = [1, 4, 8, 16, 32, 64];

/// Workloads swept: the paper's realistic set.
pub const WORKLOADS: [FlowType; 5] =
    [FlowType::Ip, FlowType::Mon, FlowType::Fw, FlowType::Re, FlowType::Vpn];

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// The workload.
    pub flow: FlowType,
    /// Batch size (0 = the scalar path run for the anchor check).
    pub batch: usize,
    /// Packets/sec over the window.
    pub pps: f64,
    /// Total cycles per packet.
    pub cycles_per_packet: f64,
    /// Framework + dispatch-hop + driver-overhead cycles per packet: the
    /// churn tag plus all untagged charges (per-packet overhead and
    /// element hops are charged outside any function tag).
    pub framework_hop_cycles_per_packet: f64,
    /// Median per-packet residence time (receive→completion) over the
    /// window, microseconds — the latency cost of batching.
    pub p50_us: f64,
    /// 99th-percentile residence time, microseconds.
    pub p99_us: f64,
    /// Window totals (for the scalar anchor comparison).
    pub counts: pp_sim::counters::Counts,
    /// Per-tag window deltas.
    pub tags: Vec<(&'static str, pp_sim::counters::Counts)>,
}

/// Measure one (workload, batch) point. `batch == 0` runs the scalar path.
pub fn measure_point(flow: FlowType, batch: usize, params: ExpParams) -> BatchPoint {
    let cfg = MachineConfig::westmere();
    let mut machine = Machine::new(cfg);
    let mut spec = flow.spec(params.scale, params.seed);
    spec.structure_seed = flow.structure_seed(params.seed);
    spec.batch_size = batch;
    let built = build_flow(&mut machine, MemDomain(0), &spec);
    let lat = built.task.latency_handle();
    let mut engine = Engine::new(machine);
    engine.set_task(CoreId(0), Box::new(built.task));
    let warmup = params.warmup_cycles(engine.machine.config());
    let window = params.window_cycles(engine.machine.config());
    engine.run_until(warmup);
    lat.borrow_mut().reset(); // window latencies only, like the counters
    let meas = engine.measure(0, window);
    let cm = meas.core(CoreId(0)).expect("flow core measured");

    let total = cm.counts.total;
    let packets = total.packets.max(1) as f64;
    let tagged_cycles: u64 = cm.counts.tags.iter().map(|(_, c)| c.cycles()).sum();
    let framework_tag = cm.counts.tag("framework").map(|c| c.cycles()).unwrap_or(0);
    let untagged = total.cycles().saturating_sub(tagged_cycles);
    let freq_ghz = engine.machine.config().freq_ghz;
    let us = |cycles: u64| cycles as f64 / (freq_ghz * 1e3);
    let lat = lat.borrow();
    BatchPoint {
        flow,
        batch,
        pps: cm.metrics.pps,
        cycles_per_packet: total.cycles() as f64 / packets,
        framework_hop_cycles_per_packet: (untagged + framework_tag) as f64 / packets,
        p50_us: us(lat.p50()),
        p99_us: us(lat.p99()),
        counts: total,
        tags: cm.counts.tags.clone(),
    }
}

/// Run the full sweep (scalar anchor plus every batch size per workload).
pub fn measure(ctx: &RunCtx) -> Vec<BatchPoint> {
    let params = ctx.params;
    let mut items: Vec<(FlowType, usize)> = Vec::new();
    for &flow in &WORKLOADS {
        items.push((flow, 0)); // scalar anchor
        for &b in &BATCH_SIZES {
            items.push((flow, b));
        }
    }
    run_many(items, ctx.jobs, move |(flow, batch)| {
        measure_point(flow, batch, params)
    })
}

/// Run, verify the anchors and monotonicity, and emit the report.
pub fn run(ctx: &RunCtx) {
    ctx.heading("BATCH — vectorized execution sweep (framework amortization)");
    let points = measure(ctx);
    let per_flow = |flow: FlowType| -> Vec<&BatchPoint> {
        points.iter().filter(|p| p.flow == flow).collect()
    };

    let mut table = Table::new(
        "Batch-size sweep: throughput, per-packet framework+hop cycles, latency",
        &[
            "workload",
            "batch",
            "pps",
            "cycles/pkt",
            "fw+hop cyc/pkt",
            "p50 us",
            "p99 us",
            "speedup vs b=1",
        ],
    );
    for &flow in &WORKLOADS {
        let pts = per_flow(flow);
        let scalar = pts.iter().find(|p| p.batch == 0).expect("scalar anchor");
        let b1 = pts.iter().find(|p| p.batch == 1).expect("batch=1 anchor");

        // Anchor: batch=1 must reproduce the scalar measurements exactly.
        assert_eq!(
            scalar.counts, b1.counts,
            "{flow}: batch=1 must be bit-for-bit the scalar path"
        );
        for (tag, counts) in &scalar.tags {
            let b1c = b1.tags.iter().find(|(t, _)| t == tag).map(|(_, c)| c);
            assert_eq!(Some(counts), b1c, "{flow}: tag {tag} must match at batch=1");
        }

        let mut last_fw = f64::INFINITY;
        for p in pts.iter().filter(|p| p.batch >= 1) {
            assert!(
                p.framework_hop_cycles_per_packet < last_fw,
                "{flow}: framework+hop cycles/packet must fall monotonically \
                 ({last_fw:.1} -> {:.1} at batch {})",
                p.framework_hop_cycles_per_packet,
                p.batch
            );
            last_fw = p.framework_hop_cycles_per_packet;
            table.row(vec![
                flow.name(),
                p.batch.to_string(),
                millions(p.pps),
                fmt_f(p.cycles_per_packet, 1),
                fmt_f(p.framework_hop_cycles_per_packet, 1),
                fmt_f(p.p50_us, 2),
                fmt_f(p.p99_us, 2),
                fmt_f(b1.cycles_per_packet / p.cycles_per_packet, 2),
            ]);
        }
    }
    ctx.emit("batch", &table);

    // Fit the F/b + p amortization model per workload from the endpoints
    // and report its interpolation error at the interior sizes.
    let mut fit_table = Table::new(
        "Amortization model F/b + p (fit from batch 1 and 64)",
        &["workload", "F (per batch)", "p (per packet)", "max speedup", "worst interp err %"],
    );
    for &flow in &WORKLOADS {
        let pts = per_flow(flow);
        let at = |b: usize| {
            pts.iter().find(|p| p.batch == b).map(|p| p.cycles_per_packet).unwrap()
        };
        let model = BatchAmortization::fit((1.0, at(1)), (64.0, at(64)));
        let mut worst = 0.0f64;
        for &b in &BATCH_SIZES[1..5] {
            let err =
                (model.cycles_per_packet(b as f64) - at(b)).abs() / at(b) * 100.0;
            worst = worst.max(err);
        }
        fit_table.row(vec![
            flow.name(),
            fmt_f(model.per_batch_cycles, 0),
            fmt_f(model.per_packet_cycles, 0),
            fmt_f(model.max_speedup(), 2),
            fmt_f(worst, 1),
        ]);
    }
    ctx.emit("batch_model", &fit_table);
}

/// FNV-1a over a `Counts` bundle (helper for the output-digest pin below).
#[doc(hidden)]
pub fn digest_counts(h: &mut u64, c: &pp_sim::counters::Counts) {
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for v in [
        c.instructions,
        c.compute_cycles,
        c.stall_cycles,
        c.l1_refs,
        c.l1_hits,
        c.l2_refs,
        c.l2_hits,
        c.l3_refs,
        c.l3_hits,
        c.l3_misses,
        c.remote_accesses,
        c.packets,
    ] {
        mix(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned output digests for `repro batch` measurement points, captured
    /// on the PRE-PR-3 implementation (AoS cache, no fast path, linear tag
    /// search, default codegen). The hot-path overhaul promises bit-for-bit
    /// identical simulation results; this is the end-to-end receipt — if a
    /// "fast path" ever changes a counter anywhere in the pipeline, these
    /// digests move.
    #[test]
    fn fast_path_leaves_batch_output_digests_unchanged() {
        let expected: [(FlowType, usize, u64); 6] = [
            (FlowType::Ip, 0, 0xf4de_a8f3_7a4c_8a14),
            (FlowType::Ip, 1, 0xf4de_a8f3_7a4c_8a14),
            (FlowType::Ip, 8, 0xd188_364e_af20_fc15),
            (FlowType::Mon, 0, 0xb82c_02a3_fac2_9981),
            (FlowType::Mon, 1, 0xb82c_02a3_fac2_9981),
            (FlowType::Mon, 8, 0x45f9_2bbf_4b8c_f221),
        ];
        for (flow, batch, want) in expected {
            let p = measure_point(flow, batch, ExpParams::quick());
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            digest_counts(&mut h, &p.counts);
            for (name, c) in &p.tags {
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                digest_counts(&mut h, c);
            }
            assert_eq!(
                h, want,
                "{flow} batch={batch}: simulation output digest changed — \
                 the hot path is no longer bit-for-bit equivalent"
            );
        }
    }

    #[test]
    fn quick_sweep_is_anchored_and_monotone() {
        // The full invariants (anchor equality + monotone framework cycles)
        // are asserted inside run(); exercise them at test scale.
        let ctx = RunCtx::quick();
        run(&ctx);
    }

    #[test]
    fn batching_beats_scalar_for_ip_at_test_scale() {
        let params = ExpParams::quick();
        let scalar = measure_point(FlowType::Ip, 1, params);
        let batched = measure_point(FlowType::Ip, 32, params);
        assert!(
            batched.pps > scalar.pps * 1.05,
            "32-packet batches should lift IP throughput ≥5%: {} -> {}",
            scalar.pps,
            batched.pps
        );
    }
}
