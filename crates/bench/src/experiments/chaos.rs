//! `repro chaos` — fault injection + graceful degradation (robustness).
//!
//! The predictability story so far assumed a polite world: fixed co-runner
//! sets, steady offered load, lossless NICs. This sweep scripts impolite
//! worlds — traffic bursts, flash-crowd competitor churn, frequency
//! derating, buffer-pool and queue pressure, packet corruption — on the
//! simulated timeline via a seeded [`FaultPlan`], and drives the
//! [`RuntimeGuard`]'s degradation ladder against them. Per scenario it
//! asserts the robustness claims:
//!
//! * **bounded recovery** — after the last fault clears, the guard returns
//!   to [`DegradeLevel::Normal`] within [`RECOVERY_BOUND`] windows;
//! * **zero silent loss** — the [`DropStats`] ledger conserves: every
//!   offered packet is either processed or attributed to a named drop
//!   channel (wire overflow, NIC exhaustion, queue full, element drop,
//!   shed);
//! * **no unbounded queue growth** — the pipeline scenario's cross-core
//!   ring never exceeds its (possibly clamped) capacity;
//! * **the null fault plan is free** — an empty plan produces zero drops,
//!   zero guard transitions, and an empty injector trace, running the
//!   exact same datapath the pinned digest tests certify bit-for-bit.
//!
//! Ladder actuation maps guard levels onto the `TaskControls` knobs:
//! shrink-batch re-sizes the live flow to the
//! [`BatchController`]'s tight-budget choice, throttle paces admission to
//! `THROTTLE_HEADROOM`× the calibrated cycles/packet (lossless, upstream
//! backpressure), shed drops `SHED_PER_MILLE`‰ at the wire — explicit and
//! counted. Self-inflicted degradation (shed drops, throttled throughput)
//! is excluded from the guard's *loss* signal so the controller does not
//! chase its own tail; it still appears in the conservation ledger.
//!
//! Results land in `chaos.csv` and `CHAOS_results.json` (machine-readable,
//! uploaded as a CI artifact).

use crate::experiments::results_json::{save_results_json, JsonRow};
use crate::RunCtx;
use pp_click::pipelines::{build_pipeline, PipelineSpec};
use pp_core::prelude::*;
use pp_sim::config::MachineConfig;
use pp_sim::engine::{CoreTask, Engine};
use pp_sim::fault::{DropStats, FaultInjector, FaultKind, FaultPlan, TaskControls};
use pp_sim::latency::LatencyHistogram;
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, MemDomain};
use std::cell::RefCell;
use std::rc::Rc;

/// Windows allowed between the last fault clearing and the guard standing
/// at Normal on a clean window (the deepest ladder walk — climbing back
/// from Shed — needs 4 rungs × 3 clean windows).
pub const RECOVERY_BOUND: u32 = 14;
/// Windows simulated past the last fault to observe the climb-back.
const RECOVERY_TAIL: u32 = 15;
/// Clean calibration windows used to fit the guard envelope.
const CALIB_WINDOWS: u32 = 3;
/// Datapath batch size for the target flow (the PR-4/5 vectorized path).
const FULL_BATCH: usize = 32;
/// Admission pace at the Throttle rung, as a multiple of the calibrated
/// cycles/packet (1.1 ⇒ admit ~91% of capacity nominally). Effective
/// admission runs ~9% under the nominal target (poll overhead plus
/// credit quantization, worse at short windows), so the constant leaves
/// real margin: even with shed on top, degraded throughput stays above
/// the 70% envelope floor and the guard can climb back.
const THROTTLE_HEADROOM: f64 = 1.1;
/// Wire-drop fraction at the Shed rung (50‰: with throttle's effective
/// ~0.83 admission, 0.83 × 0.95 ≈ 0.79 > the 0.70 floor).
const SHED_PER_MILLE: u16 = 50;

/// One chaos scenario: a workload topology plus a fault timeline.
#[derive(Debug, Clone)]
struct FlowScenario {
    name: &'static str,
    plan: FaultPlan,
    /// Baseline offered load as a fraction of calibrated capacity
    /// (`None` = line rate, no pacing).
    offered_load: Option<f64>,
    /// Envelope throughput floor as a fraction of the calibrated pps.
    envelope_floor: f64,
}

/// Everything one scenario run produced — the table row, the JSON record,
/// and the raw numbers the robustness assertions check. `PartialEq`
/// compares every field (float fields included, exactly) — the determinism
/// harness uses it to pin parallel runs bit-for-bit against serial.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Main-loop windows simulated (calibration windows excluded).
    pub windows: u32,
    /// Deepest ladder level the guard reached.
    pub peak_level: DegradeLevel,
    /// Ladder level at the end of the run.
    pub final_level: DegradeLevel,
    /// Re-probe requests issued (backoff-paced while degraded).
    pub reprobes: u32,
    /// Guard ladder transitions recorded.
    pub transitions: usize,
    /// Injector trace length (fault begin/end events fired).
    pub fault_events: usize,
    /// Final loss ledger (reset after warmup, so it covers exactly the
    /// measured windows).
    pub drops: DropStats,
    /// Packets retired by the target over the measured windows.
    pub processed: u64,
    /// Mean calibrated throughput (packets/sec) before any fault.
    pub calib_pps: f64,
    /// Worst per-window throughput seen in the main loop.
    pub min_pps: f64,
    /// Windows from the last fault clearing until the guard stood at
    /// Normal on a clean window (`None` = never recovered).
    pub recovery_windows: Option<u32>,
    /// `offered − processed − undelivered` (0 = exact conservation; the
    /// churn and pipeline scenarios tolerate boundary slack).
    pub conservation_slack: i64,
    /// Deepest cross-core queue backlog observed (pipeline scenario only).
    pub max_backlog: usize,
}

/// Summarize and reset a per-window latency histogram.
fn drain_latency(lat: &Rc<RefCell<LatencyHistogram>>, freq_ghz: f64) -> LatencySummary {
    let s = LatencySummary::from_histogram(&lat.borrow(), freq_ghz);
    lat.borrow_mut().reset();
    s
}

/// The guard's loss signal for one window: unchosen drops only — shed is
/// the controller's own (counted) action, not evidence against the model.
fn observed_loss(cur: &DropStats, prev: &DropStats) -> f64 {
    let offered = cur.offered.saturating_sub(prev.offered);
    let lost = cur.total_dropped().saturating_sub(prev.total_dropped());
    let shed = cur.shed.saturating_sub(prev.shed);
    lost.saturating_sub(shed) as f64 / offered.max(1) as f64
}

/// Map a ladder level onto the live knobs.
///
/// Shrink-batch and throttle deliberately do NOT stack: the batch shrinks
/// only at its own rung. Shrinking trades throughput for tail latency; if
/// the guard keeps descending, latency was not the problem — the throttle
/// rung restores the full batch (full amortization, maximum capacity) and
/// attacks throughput by cutting admission instead. Stacking them would
/// deadlock: a throttle pace calibrated at the full batch over-admits a
/// shrunk datapath, so the wire overflows forever and no window ever
/// comes back clean.
fn apply_ladder(
    controls: &TaskControls,
    level: DegradeLevel,
    offered_pace: u64,
    throttle_pace: u64,
    shrink_batch: usize,
) {
    let pace = if level >= DegradeLevel::Throttle {
        // Backpressure: admit no faster than the throttle pace (larger
        // cycles-per-packet = slower), regardless of what the disturbance
        // offers. Lossless by construction — unadmitted load stays
        // upstream.
        offered_pace.max(throttle_pace)
    } else {
        offered_pace
    };
    controls.pace_cycles.set(pace);
    let batch = if level == DegradeLevel::ShrinkBatch { shrink_batch } else { FULL_BATCH };
    controls.batch_override.set(batch);
    controls
        .shed_per_mille
        .set(if level == DegradeLevel::Shed { SHED_PER_MILLE } else { 0 });
}

/// Park or spawn the flash-crowd competitors (SYN_MAX on cores 1..=n,
/// same socket as the target — the worst co-runners the paper knows).
fn set_churn(
    engine: &mut Engine,
    parked: &mut [Option<Box<dyn CoreTask>>],
    n: usize,
    scale: Scale,
    seed: u64,
    active: bool,
) {
    for (i, slot) in parked.iter_mut().enumerate().take(n) {
        let core = CoreId((1 + i) as u16);
        if active {
            let task = slot.take().unwrap_or_else(|| {
                let built = FlowType::SynMax.build(
                    &mut engine.machine,
                    MemDomain(0),
                    scale,
                    seed ^ (0x1111 * (i as u64 + 1)),
                );
                Box::new(built.task)
            });
            // Joining cores start at the fleet's clock — a flash crowd
            // arrives now, it does not replay the past.
            engine.machine.core_mut(core).clock = engine.machine.max_clock();
            engine.set_task(core, task);
        } else if let Some(task) = engine.take_task(core) {
            *slot = Some(task);
        }
    }
}

/// Run one single-flow chaos scenario end to end.
fn run_flow_scenario(
    ctx: &RunCtx,
    sc: &FlowScenario,
    controller: &BatchController,
) -> ScenarioOutcome {
    let params = ctx.params;
    let seed = params.seed ^ 0xC4A05;
    let mut machine = Machine::new(MachineConfig::westmere());
    let flow = FlowType::Ip;
    let built = flow.build_with_structure(
        &mut machine,
        MemDomain(0),
        params.scale,
        seed,
        flow.structure_seed(seed),
        FULL_BATCH,
    );
    let lat = built.task.latency_handle();
    let drops = built.task.drop_handle();
    let controls = built.task.controls_handle();
    let nic = built.task.nic_handle();
    let mut engine = Engine::new(machine);
    engine.set_task(CoreId(0), Box::new(built.task));

    let window = params.window_cycles(engine.machine.config());
    let warmup = params.warmup_cycles(engine.machine.config());
    let freq = engine.machine.config().freq_ghz;
    engine.run_until(warmup);
    lat.borrow_mut().reset();
    drops.borrow_mut().reset();

    let mut processed: u64 = 0;
    let core0 = CoreId(0);

    // Capacity probe: one unpaced window fixes cycles/packet, from which
    // the baseline pace (scenarios below line rate) and the throttle pace
    // derive.
    let cap = engine.measure(0, window);
    let cap_pkts = cap.core(core0).expect("target measured").counts.total.packets.max(1);
    processed += cap_pkts;
    let cycles_per_pkt = window as f64 / cap_pkts as f64;
    drain_latency(&lat, freq);
    let throttle_pace = (cycles_per_pkt * THROTTLE_HEADROOM).max(1.0) as u64;
    let baseline_pace = match sc.offered_load {
        Some(load) => (cycles_per_pkt / load).max(1.0) as u64,
        None => 0,
    };
    controls.pace_cycles.set(baseline_pace);

    // Calibration: fit the envelope at the baseline operating point.
    let (mut pps_sum, mut p99_max) = (0.0f64, 0.0f64);
    for _ in 0..CALIB_WINDOWS {
        let m = engine.measure(0, window);
        let c = m.core(core0).expect("target measured");
        processed += c.counts.total.packets;
        pps_sum += c.metrics.pps;
        p99_max = p99_max.max(drain_latency(&lat, freq).p99_us);
    }
    let calib_pps = pps_sum / CALIB_WINDOWS as f64;
    let envelope = GuardEnvelope {
        min_pps: sc.envelope_floor * calib_pps,
        max_p99_us: (1.5 * p99_max).max(5.0),
        max_loss_frac: 0.005,
    };
    // The shrink rung's target: the largest batch the cost model predicts
    // to hold the *healthy* tail, clamped to [FULL/4, FULL/2] — strictly
    // below the full batch so the rung always changes something, but
    // never so small that the de-amortized fixed cost drops capacity
    // below the baseline admission rate (which would manufacture wire
    // overflow out of the rung itself).
    let shrink_batch = controller
        .choose(LatencyBudget::us(p99_max.max(1.0)))
        .batch
        .clamp(FULL_BATCH / 4, FULL_BATCH / 2);

    let mut guard = RuntimeGuard::new(envelope, GuardConfig::default());
    let mut injector = FaultInjector::new(sc.plan.clone());
    let last_fault = sc.plan.last_window();
    let total = last_fault + RECOVERY_TAIL.max(8);

    let mut parked: Vec<Option<Box<dyn CoreTask>>> = (0..5).map(|_| None).collect();
    let mut offered_pace = baseline_pace;
    let mut prev = *drops.borrow();
    let mut peak = DegradeLevel::Normal;
    let mut reprobes = 0u32;
    let mut min_pps = f64::INFINITY;
    let mut recovery: Option<u32> = None;

    for w in 0..total {
        let fired: Vec<_> = injector.advance(w).to_vec();
        for t in fired {
            match t.kind {
                FaultKind::RateBurst { multiplier } => {
                    offered_pace = if t.begin {
                        (baseline_pace / multiplier.max(1) as u64).max(1)
                    } else {
                        baseline_pace
                    };
                }
                FaultKind::CompetitorChurn { competitors } => {
                    set_churn(
                        &mut engine,
                        &mut parked,
                        competitors as usize,
                        params.scale,
                        seed,
                        t.begin,
                    );
                }
                FaultKind::FreqDerate { stall_cycles } => {
                    controls.stall_cycles.set(if t.begin { stall_cycles as u64 } else { 0 });
                }
                FaultKind::PoolPressure { seize } => {
                    let mut n = nic.borrow_mut();
                    if t.begin {
                        n.seize_buffers(seize as usize);
                    } else {
                        n.release_seized();
                    }
                }
                FaultKind::Corruption { per_mille } => {
                    controls.corrupt_per_mille.set(if t.begin { per_mille } else { 0 });
                }
                // Queue pressure targets the pipeline topology (below).
                FaultKind::QueuePressure { .. } => {}
                // Machine-scoped kinds are cluster-driver territory
                // (`repro cluster-chaos`); a single-machine plan never
                // schedules them.
                FaultKind::MachineCrash { .. }
                | FaultKind::SocketDerate { .. }
                | FaultKind::TelemetryLoss
                | FaultKind::TelemetryDelay { .. } => {}
            }
            // A disturbance arriving mid-degradation must not undo the
            // ladder's pace decision.
            apply_ladder(&controls, guard.level(), offered_pace, throttle_pace, shrink_batch);
        }

        let m = engine.measure(0, window);
        let c = m.core(core0).expect("target measured");
        processed += c.counts.total.packets;
        min_pps = min_pps.min(c.metrics.pps);
        let cur = *drops.borrow();
        let obs = WindowObservation {
            pps: c.metrics.pps,
            p99_us: drain_latency(&lat, freq).p99_us,
            loss_frac: observed_loss(&cur, &prev),
        };
        let clean = guard.envelope().violation(&obs).is_none();
        if std::env::var_os("CHAOS_DEBUG").is_some() {
            eprintln!(
                "[{}] w{w}: pps {:.3e} p99 {:.1}us loss {:.3} viol {:?} level {}",
                sc.name,
                obs.pps,
                obs.p99_us,
                obs.loss_frac,
                guard.envelope().violation(&obs),
                guard.level()
            );
        }
        let d = guard.observe(&obs);
        prev = cur;
        peak = peak.max(d.level);
        if d.reprobe_now {
            // A full system would re-run the probe and refit the envelope
            // via `RuntimeGuard::set_envelope`; here the model is the
            // ground truth, so a re-probe is a (counted) no-op.
            reprobes += 1;
        }
        apply_ladder(&controls, d.level, offered_pace, throttle_pace, shrink_batch);
        if recovery.is_none() && w >= last_fault && d.level == DegradeLevel::Normal && clean {
            recovery = Some(w - last_fault);
        }
    }
    // Competitors left running would keep contending past their event's
    // end; the injector emits the matching end transition, so by here the
    // fleet must be back to the target alone.
    debug_assert_eq!(engine.active_cores(), vec![core0]);

    let final_drops = *drops.borrow();
    let slack = final_drops.offered as i64
        - processed as i64
        - final_drops.undelivered() as i64;
    ScenarioOutcome {
        name: sc.name,
        windows: total,
        peak_level: peak,
        final_level: guard.level(),
        reprobes,
        transitions: guard.transitions().len(),
        fault_events: injector.trace().len(),
        drops: final_drops,
        processed,
        calib_pps,
        min_pps,
        recovery_windows: recovery,
        conservation_slack: slack,
        max_backlog: 0,
    }
}

/// The pipeline scenario: queue pressure on a two-core Ip pipeline. The
/// guard here is an observer (the split stages expose no live knobs — the
/// interesting claims are backpressure, bounded backlog, and recovery).
fn run_pipeline_scenario(ctx: &RunCtx, name: &'static str, plan: FaultPlan) -> ScenarioOutcome {
    let params = ctx.params;
    let seed = params.seed ^ 0x9199;
    const QUEUE_CAP: usize = 128;
    const BURST: usize = 8;
    let mut machine = Machine::new(MachineConfig::westmere());
    let spec = FlowType::Ip.spec(params.scale, seed);
    let pipe = PipelineSpec { queue_domain: MemDomain(0), queue_capacity: QUEUE_CAP, burst: BURST };
    let (src, sink, queue) =
        build_pipeline(&mut machine, MemDomain(0), MemDomain(0), &spec, &pipe);
    let drops = src.drop_handle();
    let lat = sink.latency_handle();
    let mut engine = Engine::new(machine);
    engine.set_task(CoreId(0), Box::new(src));
    engine.set_task(CoreId(1), Box::new(sink));

    let window = params.window_cycles(engine.machine.config());
    let warmup = params.warmup_cycles(engine.machine.config());
    let freq = engine.machine.config().freq_ghz;
    engine.run_until(warmup);
    lat.borrow_mut().reset();
    drops.borrow_mut().reset();

    let sink_core = CoreId(1);
    let mut processed: u64 = 0;
    let (mut pps_sum, mut p99_max) = (0.0f64, 0.0f64);
    for _ in 0..CALIB_WINDOWS {
        let m = engine.measure(0, window);
        let c = m.core(sink_core).expect("sink measured");
        processed += c.counts.total.packets;
        pps_sum += c.metrics.pps;
        p99_max = p99_max.max(drain_latency(&lat, freq).p99_us);
    }
    let calib_pps = pps_sum / CALIB_WINDOWS as f64;
    let envelope = GuardEnvelope {
        min_pps: 0.7 * calib_pps,
        max_p99_us: (1.5 * p99_max).max(5.0),
        max_loss_frac: 0.005,
    };
    let mut guard = RuntimeGuard::new(envelope, GuardConfig::default());
    let mut injector = FaultInjector::new(plan.clone());
    let last_fault = plan.last_window();
    let total = last_fault + RECOVERY_TAIL.max(8);

    let mut prev = *drops.borrow();
    let mut peak = DegradeLevel::Normal;
    let mut reprobes = 0u32;
    let mut min_pps = f64::INFINITY;
    let mut max_backlog = 0usize;
    let mut recovery: Option<u32> = None;

    for w in 0..total {
        let fired: Vec<_> = injector.advance(w).to_vec();
        for t in fired {
            if let FaultKind::QueuePressure { cap } = t.kind {
                let mut q = queue.borrow_mut();
                if t.begin {
                    q.set_capacity_limit(cap as usize);
                } else {
                    q.clear_capacity_limit();
                }
            }
        }
        let m = engine.measure(0, window);
        let c = m.core(sink_core).expect("sink measured");
        processed += c.counts.total.packets;
        min_pps = min_pps.min(c.metrics.pps);
        max_backlog = max_backlog.max(queue.borrow().len());
        let cur = *drops.borrow();
        let obs = WindowObservation {
            pps: c.metrics.pps,
            p99_us: drain_latency(&lat, freq).p99_us,
            loss_frac: observed_loss(&cur, &prev),
        };
        let clean = guard.envelope().violation(&obs).is_none();
        let d = guard.observe(&obs);
        prev = cur;
        peak = peak.max(d.level);
        if d.reprobe_now {
            reprobes += 1;
        }
        if recovery.is_none() && w >= last_fault && d.level == DegradeLevel::Normal && clean {
            recovery = Some(w - last_fault);
        }
    }

    let final_drops = *drops.borrow();
    // Front-stage element drops never reach the sink, and up to a ring of
    // packets is legitimately in flight at any boundary.
    let slack = final_drops.offered as i64
        - processed as i64
        - final_drops.undelivered() as i64
        - final_drops.element_dropped as i64;
    ScenarioOutcome {
        name,
        windows: total,
        peak_level: peak,
        final_level: guard.level(),
        reprobes,
        transitions: guard.transitions().len(),
        fault_events: injector.trace().len(),
        drops: final_drops,
        processed,
        calib_pps,
        min_pps,
        recovery_windows: recovery,
        conservation_slack: slack,
        max_backlog,
    }
}

/// The scenario roster: one per fault family, plus the null plan. Every
/// plan seed mixes the CLI master seed (`--seed`) so a failing timeline
/// can be replayed exactly.
fn flow_scenarios(seed: u64) -> Vec<FlowScenario> {
    vec![
        FlowScenario {
            name: "rate-burst",
            // 8× the baseline offered rate for 8 windows (±1 window of
            // seeded jitter): long enough for the ladder to reach the
            // throttle rung and prove it stops the loss mid-fault.
            plan: FaultPlan::seeded(seed ^ 0xA11CE).with_jittered(
                2,
                10,
                1,
                FaultKind::RateBurst { multiplier: 8 },
            ),
            offered_load: Some(0.7),
            envelope_floor: 0.7,
        },
        FlowScenario {
            name: "churn",
            // A flash crowd: four SYN_MAX aggressors appear on the
            // target's socket, then vanish.
            plan: FaultPlan::seeded(seed ^ 0xB0B)
                .with(2, 6, FaultKind::CompetitorChurn { competitors: 4 }),
            offered_load: None,
            envelope_floor: 0.9,
        },
        FlowScenario {
            name: "freq-derate",
            // Long enough (10 violating windows) to walk the full ladder
            // into Shed — nothing short of load shedding answers a core
            // that simply got slower.
            plan: FaultPlan::seeded(seed ^ 0xD0D0)
                .with(2, 12, FaultKind::FreqDerate { stall_cycles: 100_000 }),
            offered_load: None,
            envelope_floor: 0.7,
        },
        FlowScenario {
            name: "pool-pressure",
            // Seize 496 of the 512 NIC buffers: a 32-packet rx can fill
            // only half its batch — until the shrink rung fits the batch
            // to the starved pool.
            plan: FaultPlan::seeded(seed ^ 0xF00D).with(2, 6, FaultKind::PoolPressure { seize: 496 }),
            offered_load: None,
            envelope_floor: 0.7,
        },
        FlowScenario {
            name: "corruption",
            // 200‰ of frames arrive with a flipped checksum byte and must
            // die in CheckIpHeader — counted, not silent.
            plan: FaultPlan::seeded(seed ^ 0xC0DE).with(2, 6, FaultKind::Corruption { per_mille: 200 }),
            offered_load: None,
            envelope_floor: 0.7,
        },
        FlowScenario {
            name: "empty-plan",
            plan: FaultPlan::empty(),
            offered_load: None,
            envelope_floor: 0.7,
        },
    ]
}

/// One self-contained unit of parallel work: a scenario plus everything
/// needed to run it. Jobs hold only plain config data (`Send`), so
/// `run_many` can shard them across host threads; each worker builds its
/// own `Machine`/`Engine` (engines are `Rc`-based and must never cross a
/// thread boundary) from the scenario's derived seed.
#[derive(Debug, Clone)]
enum ChaosJob {
    /// A single-flow scenario from [`flow_scenarios`].
    Flow(FlowScenario),
    /// The two-core pipeline scenario (queue pressure).
    Pipeline { name: &'static str, plan: FaultPlan },
}

impl ChaosJob {
    fn name(&self) -> &'static str {
        match self {
            ChaosJob::Flow(sc) => sc.name,
            ChaosJob::Pipeline { name, .. } => name,
        }
    }

    fn plan(&self) -> &FaultPlan {
        match self {
            ChaosJob::Flow(sc) => &sc.plan,
            ChaosJob::Pipeline { plan, .. } => plan,
        }
    }
}

/// The full roster as parallel jobs, in canonical (reporting) order.
fn roster(seed: u64) -> Vec<ChaosJob> {
    flow_scenarios(seed)
        .into_iter()
        .map(ChaosJob::Flow)
        .chain(std::iter::once(ChaosJob::Pipeline {
            name: "queue-pressure",
            // Clamp the 128-slot ring to a single slot: partial-burst
            // backpressure degenerates to scalar handoffs, de-amortizing
            // the per-burst fixed costs on both stages.
            plan: FaultPlan::seeded(seed ^ 0x5EA)
                .with(2, 6, FaultKind::QueuePressure { cap: 1 }),
        }))
        .collect()
}

/// Canonical scenario names, in sweep order — the vocabulary accepted by
/// [`measure_scenarios`].
pub fn scenario_names() -> Vec<&'static str> {
    roster(0).iter().map(ChaosJob::name).collect()
}

/// Every scenario's fault plan under master seed `seed`, by name. Each
/// plan's seed is a per-scenario mix of the master seed (never a
/// sequential draw from one RNG), so a scenario's resolved timeline is
/// independent of which other scenarios run — the determinism proptests
/// pin exactly that.
pub fn scenario_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    roster(seed).iter().map(|j| (j.name(), j.plan().clone())).collect()
}

/// Measure a subset of the roster (by name), sharded across `ctx.jobs`
/// host threads, outcomes merged in canonical scenario order. Passing
/// [`scenario_names`] runs the full sweep. Results are bit-for-bit
/// identical at any job count: each scenario derives its own seeds and
/// builds its own engine, and the shrink-rung calibration is
/// subset-independent.
pub fn measure_scenarios(ctx: &RunCtx, names: &[&str]) -> Vec<ScenarioOutcome> {
    let controller = BatchController::calibrate(FlowType::Ip, ctx.params, ctx.jobs);
    let jobs: Vec<ChaosJob> = roster(ctx.params.seed)
        .into_iter()
        .filter(|j| names.contains(&j.name()))
        .collect();
    run_many(jobs, ctx.jobs, |job| match job {
        ChaosJob::Flow(sc) => run_flow_scenario(ctx, &sc, &controller),
        ChaosJob::Pipeline { name, plan } => run_pipeline_scenario(ctx, name, plan),
    })
}

/// The `CHAOS_results.json` records for a set of outcomes (one flat row
/// per scenario, canonical order preserved).
pub fn json_rows(outcomes: &[ScenarioOutcome]) -> Vec<JsonRow> {
    outcomes
        .iter()
        .map(|o| {
            JsonRow::new()
                .str("scenario", o.name)
                .num("windows", o.windows)
                .str("peak_level", o.peak_level)
                .num("reprobes", o.reprobes)
                .num("transitions", o.transitions)
                .num("fault_events", o.fault_events)
                .num("offered", o.drops.offered)
                .num("processed", o.processed)
                .num("nic_rx_exhausted", o.drops.nic_rx_exhausted)
                .num("queue_full", o.drops.queue_full)
                .num("element_dropped", o.drops.element_dropped)
                .num("wire_overflow", o.drops.wire_overflow)
                .num("shed", o.drops.shed)
                .num("drained", o.drops.drained)
                .opt_num("recovery_windows", o.recovery_windows)
                .num("conservation_slack", o.conservation_slack)
                .num("max_backlog", o.max_backlog)
        })
        .collect()
}

/// Per-scenario robustness assertions (the sweep's acceptance criteria).
fn check(o: &ScenarioOutcome) {
    let n = o.name;
    assert_eq!(
        o.final_level,
        DegradeLevel::Normal,
        "[{n}] guard must stand down once faults clear"
    );
    let rec = o.recovery_windows
        .unwrap_or_else(|| panic!("[{n}] guard never recovered"));
    assert!(
        rec <= RECOVERY_BOUND,
        "[{n}] recovery took {rec} windows (bound {RECOVERY_BOUND})"
    );
    match n {
        "rate-burst" => {
            assert!(o.drops.wire_overflow > 0, "[{n}] burst must overflow the wire");
            assert!(
                o.peak_level >= DegradeLevel::Throttle,
                "[{n}] sustained overload must reach the throttle rung, got {}",
                o.peak_level
            );
            assert_eq!(o.conservation_slack, 0, "[{n}] ledger must conserve exactly");
        }
        "churn" => {
            assert!(
                o.peak_level >= DegradeLevel::Reprobe,
                "[{n}] a flash crowd must trip the guard"
            );
            assert!(o.min_pps < o.calib_pps, "[{n}] contention must dent throughput");
            assert!(
                o.conservation_slack.unsigned_abs() <= 2 * FULL_BATCH as u64,
                "[{n}] slack {} exceeds a measurement boundary's in-flight bound",
                o.conservation_slack
            );
        }
        "freq-derate" => {
            assert_eq!(
                o.peak_level,
                DegradeLevel::Shed,
                "[{n}] a slower core defeats every milder rung"
            );
            assert!(o.drops.shed > 0, "[{n}] shed drops must be counted");
            assert_eq!(o.conservation_slack, 0, "[{n}] ledger must conserve exactly");
        }
        "pool-pressure" => {
            assert!(o.drops.nic_rx_exhausted > 0, "[{n}] starved pool must surface rx drops");
            assert!(o.peak_level >= DegradeLevel::Reprobe, "[{n}] guard must react");
            assert_eq!(o.conservation_slack, 0, "[{n}] ledger must conserve exactly");
        }
        "corruption" => {
            assert!(
                o.drops.element_dropped > 0,
                "[{n}] corrupted frames must die in CheckIpHeader, visibly"
            );
            assert!(o.peak_level >= DegradeLevel::Reprobe, "[{n}] guard must react");
            assert_eq!(o.conservation_slack, 0, "[{n}] ledger must conserve exactly");
        }
        "queue-pressure" => {
            assert!(
                o.min_pps < 0.7 * o.calib_pps,
                "[{n}] a clamped ring must throttle the pipeline"
            );
            assert!(
                o.max_backlog <= 128,
                "[{n}] backlog {} outgrew the ring",
                o.max_backlog
            );
            assert!(o.peak_level >= DegradeLevel::Reprobe, "[{n}] guard must react");
            assert!(
                o.conservation_slack.unsigned_abs() <= (128 + 2 * 8) as u64,
                "[{n}] slack {} exceeds ring + burst in-flight bound",
                o.conservation_slack
            );
        }
        "empty-plan" => {
            assert_eq!(o.fault_events, 0, "[{n}] null plan must fire nothing");
            assert_eq!(o.transitions, 0, "[{n}] guard must never move");
            assert_eq!(o.peak_level, DegradeLevel::Normal, "[{n}] no degradation");
            assert_eq!(o.drops.total_dropped(), 0, "[{n}] zero loss on the null plan");
            assert_eq!(o.conservation_slack, 0, "[{n}] ledger must conserve exactly");
        }
        other => panic!("unknown scenario {other}"),
    }
}

/// Run the chaos sweep: every scenario, the summary table, the JSON
/// artifact, and the robustness assertions.
pub fn run(ctx: &RunCtx) -> Vec<ScenarioOutcome> {
    ctx.heading("Chaos — fault injection + graceful degradation");
    println!("calibrating the batch controller (shrink-batch rung)…");
    let names = scenario_names();
    println!(
        "running {} scenarios across {} jobs: {}…",
        names.len(),
        ctx.jobs.min(names.len()),
        names.join(", ")
    );
    let outcomes = measure_scenarios(ctx, &names);

    let mut table = Table::new(
        "Chaos sweep: guard response and loss accounting per fault scenario",
        &[
            "scenario", "windows", "peak", "reprobes", "offered", "processed", "lost",
            "loss%", "recov(win)", "slack",
        ],
    );
    for o in &outcomes {
        table.row(vec![
            o.name.to_string(),
            o.windows.to_string(),
            o.peak_level.to_string(),
            o.reprobes.to_string(),
            o.drops.offered.to_string(),
            o.processed.to_string(),
            o.drops.total_dropped().to_string(),
            format!("{:.2}", 100.0 * o.drops.loss_frac()),
            o.recovery_windows.map(|r| r.to_string()).unwrap_or_else(|| "—".into()),
            o.conservation_slack.to_string(),
        ]);
    }
    ctx.emit("chaos", &table);

    // CHAOS_results.json lands in the repository root (CI uploads it).
    save_results_json("CHAOS_results.json", "scenarios", &json_rows(&outcomes));

    for o in &outcomes {
        check(o);
    }
    println!(
        "chaos: {} scenarios — bounded recovery, zero silent loss, bounded backlog",
        outcomes.len()
    );
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_sweep_holds_its_claims_at_test_scale() {
        let mut ctx = RunCtx::quick();
        // Short windows keep the sweep fast; every claim in `check` is
        // asserted inside `run`.
        ctx.params.warmup_ms = 0.5;
        ctx.params.window_ms = 1.5;
        ctx.out_dir = std::env::temp_dir();
        let outcomes = run(&ctx);
        assert_eq!(outcomes.len(), 7);
    }
}
