//! `repro cluster-chaos` — the fleet controller over a cluster of
//! machines that crash, lie by omission, and come back (robustness, PR 8).
//!
//! `repro fleet-chaos` proved one machine's tenants survive sustained
//! faults under a supervisor with perfect information. This sweep removes
//! that luxury: a [`Cluster`] of independent [`Engine`] machines
//! advances on a shared measurement-window axis, and the
//! [`FleetController`] sees the world only through heartbeats and a lossy,
//! delayable [`TelemetryChannel`] per machine. The driver maps each
//! [`FleetAction`] onto the mechanisms:
//!
//! * `ProbeMachine` — counted, free: probes are liveness traffic, not
//!   placement decisions;
//! * `DeclareDead` — the machine's residents are orphaned; the driver
//!   already parked their tasks at the crash transition (in-flight pacing
//!   credit forfeited through `on_migrate` as counted `drained` loss);
//! * `Replace` — install the tenant's task on the first free placement
//!   core of the destination machine, clock-aligned to that machine's
//!   fleet clock, with the retired-packet counter re-anchored so the
//!   conservation ledger stays exact across the move;
//! * `Park` — no admitted machine (or none affordable): every parked
//!   window refuses the tenant's expected offered load as counted
//!   `drained` loss — loss, but chosen and ledgered, never silent.
//!
//! Scenarios and the claims they assert:
//!
//! * **machine-crash-restart** — machine 0 dies mid-run and restarts 10
//!   windows later. The controller suspects on heartbeat silence, probes
//!   on capped backoff, declares death, and re-places both orphans across
//!   the survivors within [`REPLACEMENT_BOUND`] windows of the crash; the
//!   restart heartbeat sends them home budget-free. Healthy machines
//!   suffer zero collateral: no parks, interference bounded.
//! * **telemetry-blackout** — machine 2's telemetry goes dark for 10
//!   windows while a socket derate degrades its datapath, then the
//!   channel returns with a 2-window delay. The controller holds its
//!   last-known-good estimates (never reading silence as rate 0) and
//!   makes **zero** decisions end to end — blindness bounds the decision
//!   rate by construction, stale estimates never trigger sheds.
//! * **cascading-overload** — machine 0 (three tenants, priorities
//!   2/1/0) dies for good and the survivors have one free slot each. The
//!   controller re-places in SLA-priority order: the two higher classes
//!   land, the lowest parks with counted loss — degradation by SLA
//!   class, not collapse of every tenant.
//! * **cluster-empty-plan** — the null plan under a live controller is
//!   bit-for-bit identical (per-core clocks, retired packets, ledgers,
//!   digest) to a controller-free cluster: the control plane is free
//!   when idle.
//!
//! Every scenario asserts the conservation law per tenant, fleet-wide and
//! exactly: `offered = processed + undelivered`, with `processed` flushed
//! from raw per-core counters anchored at every placement change — a
//! tenant's packets may be spread across three machines by the end of a
//! run, and the anchors are what let one ledger close over all of them.
//!
//! Results land in `cluster_chaos.csv` and `CLUSTER_CHAOS_results.json`
//! (machine-readable, uploaded as a CI artifact). Scenario seeds mix the
//! CLI master seed, so `--seed N` replays a failing timeline exactly.

use crate::experiments::results_json::{save_results_json, JsonRow};
use crate::RunCtx;
use pp_core::prelude::*;
use pp_sim::cluster::{Cluster, MachineId, TelemetryChannel};
use pp_sim::config::MachineConfig;
use pp_sim::engine::{CoreTask, Engine};
use pp_sim::fault::{DropStats, FaultInjector, FaultKind, FaultPlan, TaskControls};
use pp_sim::latency::LatencyHistogram;
use pp_sim::types::{CoreId, MemDomain};
use std::cell::RefCell;
use std::rc::Rc;

/// Machines in the cluster.
const MACHINES: usize = 3;
/// Placement cores per machine (cores 0..SLOTS of socket 0); also the
/// controller's `machine_capacity`, so slot scarcity is decided by the
/// controller, not discovered by the driver.
const SLOTS: usize = 3;
/// Fixed per-tenant batch (the cluster sweep exercises placement, not
/// batch choice — `repro batch` and `repro fleet-chaos` own that axis).
const BATCH: usize = 16;
/// Clean calibration windows per scenario.
const CALIB_WINDOWS: u32 = 2;
/// Offered load for every paced tenant, as a fraction of its measured
/// capacity under home-machine contention.
const OFFERED_LOAD: f64 = 0.75;
/// Controller-side delivered-rate floor, as a fraction of calibrated pps
/// (deliberately loose: the cluster scenarios exercise death and
/// blindness, and a refugee joining a survivor must not read as overload).
const FLOOR_FRAC: f64 = 0.4;
/// Windows simulated past the last scripted event.
const CLUSTER_TAIL: u32 = 12;
/// When machine 0 crashes in the scripted scenarios.
const CRASH_AT: u32 = 4;
/// Crash-to-replacement bound (windows): heartbeat timeout, two probes on
/// capped backoff, then death and same-tick re-placement.
pub const REPLACEMENT_BOUND: u32 = 10;
/// Healthy-machine tenants must keep this fraction of calibrated
/// throughput even while hosting a refugee (looser than fleet-chaos's
/// bound: a third co-runner was not part of their calibration).
pub const INTERFERENCE_FLOOR: f64 = 0.5;
/// Minimum heartbeat-silence the blackout scenario must demonstrate
/// surviving without a decision.
pub const BLACKOUT_STALENESS_FLOOR: u32 = 8;
/// The flow classes profiled for re-placement admission.
const PROFILE: [FlowType; 3] = [FlowType::Ip, FlowType::Mon, FlowType::Fw];

/// One tenant spec: flow class, SLA priority (higher = more important),
/// home machine.
type TenantSpec = (FlowType, u8, usize);

/// The standard fleet: two tenants per machine, one free slot each.
fn default_fleet() -> Vec<TenantSpec> {
    vec![
        (FlowType::Ip, 2, 0),
        (FlowType::Mon, 1, 0),
        (FlowType::Ip, 2, 1),
        (FlowType::Mon, 1, 1),
        (FlowType::Ip, 2, 2),
        (FlowType::Mon, 1, 2),
    ]
}

/// One cluster scenario: a machine-scoped fault timeline plus the fleet
/// it strikes.
#[derive(Debug, Clone)]
struct ClusterScenario {
    name: &'static str,
    plan: FaultPlan,
    fleet: Vec<TenantSpec>,
    /// Window after which recovery is expected.
    last_event: u32,
}

/// One tenant's outcome within a scenario. `PartialEq` compares every
/// field exactly (floats included) for the determinism harness.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTenantOutcome {
    /// The tenant's flow class.
    pub flow: FlowType,
    /// SLA priority (higher = more important).
    pub priority: u8,
    /// Home machine index.
    pub home: usize,
    /// Machine hosting the tenant at the end of the run (`None` = parked).
    pub final_machine: Option<usize>,
    /// Mean calibrated throughput before any fault.
    pub calib_pps: f64,
    /// Worst per-window throughput while running (main loop only).
    pub min_pps: f64,
    /// Final loss ledger (covers capacity probe + calibration + main loop).
    pub drops: DropStats,
    /// Packets retired, flushed from raw core counters across every
    /// machine the tenant touched.
    pub processed: u64,
    /// `offered − processed − undelivered` (0 = exact conservation).
    pub conservation_slack: i64,
}

/// Everything one cluster scenario produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Main-loop windows simulated.
    pub windows: u32,
    /// Placement decisions the controller made (probes excluded).
    pub decisions: u64,
    /// Budget-charged cross-machine re-placements.
    pub replacements: u32,
    /// Liveness probes sent to suspect machines.
    pub probes: u32,
    /// Tenants the controller parked (action order).
    pub parked_tenants: Vec<usize>,
    /// Window the dead machine was declared (`None` = never).
    pub declare_dead_window: Option<u32>,
    /// Window of the first re-placement (`None` = none).
    pub first_replacement_window: Option<u32>,
    /// Worst telemetry staleness any tenant reached (windows).
    pub max_staleness: u32,
    /// Smallest rate estimate the controller ever held for any tenant
    /// that had reported at least once (`∞` = never sampled) — the
    /// "blackout must not read as rate 0" witness.
    pub min_rate_estimate: f64,
    /// Per-tenant outcomes, in fleet order.
    pub tenants: Vec<ClusterTenantOutcome>,
    /// FNV-1a digest over (machine, core, clock, retired packets) for
    /// every placement core — the empty-plan identity witness.
    pub digest: u64,
}

/// Driver-side runtime state for one tenant.
struct TenantRt {
    id: TenantId,
    flow: FlowType,
    priority: u8,
    home: usize,
    /// Current placement (`None` = parked, task boxed in `parked`).
    loc: Option<(usize, CoreId)>,
    lat: Rc<RefCell<LatencyHistogram>>,
    drops: Rc<RefCell<DropStats>>,
    controls: Rc<TaskControls>,
    parked: Option<Box<dyn CoreTask>>,
    /// Cycles per packet under home contention (pacing reference).
    cpp: f64,
    offered_pace: u64,
    calib_pps: f64,
    min_pps: f64,
    prev: DropStats,
    /// Exact packets retired, flushed from the occupied core's raw
    /// counter at every placement change (see the module docs).
    processed: u64,
    /// The occupied core's retired-packet total at (re-)installation —
    /// the anchor `processed` flushes against.
    counter_base: u64,
}

/// Raw retired-packet total of one core (pending events included).
fn core_packets(engine: &Engine, core: CoreId) -> u64 {
    engine.machine.core(core).counters.total().packets
}

/// Summarize and reset a per-window latency histogram.
fn drain_latency(lat: &Rc<RefCell<LatencyHistogram>>, freq_ghz: f64) -> LatencySummary {
    let s = LatencySummary::from_histogram(&lat.borrow(), freq_ghz);
    lat.borrow_mut().reset();
    s
}

/// Unchosen loss fraction for one window (shed and drained are the
/// control plane's own actions — excluded from the signal, fully counted
/// in the conservation ledger).
fn observed_loss(cur: &DropStats, prev: &DropStats) -> f64 {
    let offered = cur.offered.saturating_sub(prev.offered);
    let lost = cur.total_dropped().saturating_sub(prev.total_dropped());
    let chosen = (cur.shed + cur.drained).saturating_sub(prev.shed + prev.drained);
    lost.saturating_sub(chosen) as f64 / offered.max(1) as f64
}

/// Expected offered arrivals in one window for a parked tenant — what the
/// wire would have delivered, refused and ledgered as `drained`.
fn parked_arrivals(t: &TenantRt, window: u64) -> u64 {
    window / t.offered_pace.max(1)
}

/// Flush the tenant's retired-packet delta from its occupied core into
/// `processed` — called at every placement change and at the end of the
/// run, so the ledger closes over every machine the tenant touched.
fn flush_processed(t: &mut TenantRt, cluster: &Cluster) {
    if let Some((m, core)) = t.loc {
        let eng = cluster.engine(MachineId(m));
        t.processed += core_packets(eng, core) - t.counter_base;
        t.counter_base = core_packets(eng, core);
    }
}

/// Remove the tenant's task from its engine through the counted drain
/// path and park the carcass.
fn park_tenant(t: &mut TenantRt, cluster: &mut Cluster) {
    flush_processed(t, cluster);
    if let Some((m, core)) = t.loc.take() {
        let mut task =
            cluster.engine_mut(MachineId(m)).take_task(core).expect("located tenant");
        task.on_migrate();
        t.parked = Some(task);
    }
}

/// First free placement core on machine `m`.
fn free_slot(cluster: &Cluster, m: MachineId) -> Option<CoreId> {
    (0..SLOTS as u16).map(CoreId).find(|&c| !cluster.engine(m).has_task(c))
}

/// FNV-1a over a stream of words — the cross-run identity digest.
fn fnv1a64(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Shared planning state (profiled once, used by every scenario).
struct ClusterPlanCtx<'a> {
    admission: AdmissionController<'a>,
    slas: Vec<Sla>,
}

/// Build the cluster and run one scenario end to end. `controlled =
/// false` runs the identical measurement schedule without a fleet
/// controller (the empty-plan twin).
#[allow(clippy::needless_range_loop)]
fn run_cluster_scenario(
    ctx: &RunCtx,
    sc: &ClusterScenario,
    plan_ctx: &ClusterPlanCtx<'_>,
    controlled: bool,
) -> ClusterOutcome {
    let params = ctx.params;
    let seed = params.seed ^ 0xC10577;
    let mut cluster = Cluster::new_uniform(MACHINES, &MachineConfig::westmere());
    let mut tenants: Vec<TenantRt> = Vec::new();
    let mut next_core = [0u16; MACHINES];
    for (ti, &(flow, priority, home)) in sc.fleet.iter().enumerate() {
        assert!((next_core[home] as usize) < SLOTS, "fleet overfills machine {home}");
        let core = CoreId(next_core[home]);
        next_core[home] += 1;
        let eng = cluster.engine_mut(MachineId(home));
        let built = flow.build_with_structure(
            &mut eng.machine,
            MemDomain(0),
            params.scale,
            seed ^ (0x1111 * (ti as u64 + 1)),
            flow.structure_seed(seed),
            BATCH,
        );
        tenants.push(TenantRt {
            id: TenantId(ti),
            flow,
            priority,
            home,
            loc: Some((home, core)),
            lat: built.task.latency_handle(),
            drops: built.task.drop_handle(),
            controls: built.task.controls_handle(),
            parked: None,
            cpp: 1.0,
            offered_pace: 1,
            calib_pps: 0.0,
            min_pps: f64::INFINITY,
            prev: DropStats::default(),
            processed: 0,
            counter_base: 0,
        });
        eng.set_task(core, Box::new(built.task));
    }

    let cfg = cluster.engine(MachineId(0)).machine.config().clone();
    let window = params.window_cycles(&cfg);
    let warmup = params.warmup_cycles(&cfg);
    let freq = cfg.freq_ghz;
    cluster.run_all_until(warmup);
    for t in tenants.iter_mut() {
        t.lat.borrow_mut().reset();
        t.drops.borrow_mut().reset();
        let (m, core) = t.loc.expect("placed at home");
        t.counter_base = core_packets(cluster.engine(MachineId(m)), core);
    }

    // Capacity probe: one unpaced window under home contention fixes each
    // tenant's cycles/packet, from which the offered pace derives.
    let ms = cluster.measure_all(0, window);
    for t in tenants.iter_mut() {
        let (m, core) = t.loc.expect("placed at home");
        let cm = ms[m].as_ref().expect("machine up").core(core).expect("tenant measured");
        t.cpp = window as f64 / cm.counts.total.packets.max(1) as f64;
        t.offered_pace = (t.cpp / OFFERED_LOAD).max(1.0) as u64;
        t.controls.pace_cycles.set(t.offered_pace);
        drain_latency(&t.lat, freq);
    }

    // Calibration: the paced operating point each floor derives from.
    let mut pps_sum = vec![0.0f64; tenants.len()];
    for _ in 0..CALIB_WINDOWS {
        let ms = cluster.measure_all(0, window);
        for t in tenants.iter_mut() {
            let (m, core) = t.loc.expect("placed at home");
            pps_sum[t.id.0] +=
                ms[m].as_ref().expect("machine up").core(core).expect("measured").metrics.pps;
            drain_latency(&t.lat, freq);
        }
    }
    for t in tenants.iter_mut() {
        t.calib_pps = pps_sum[t.id.0] / CALIB_WINDOWS as f64;
        t.prev = *t.drops.borrow();
    }

    let mut ctrl = controlled.then(|| {
        let mut c = FleetController::new(FleetConfig {
            machine_capacity: SLOTS,
            ..FleetConfig::default()
        });
        for _ in 0..MACHINES {
            c.add_machine();
        }
        for t in &tenants {
            let id = c.add_tenant(t.flow, t.priority, MachineId(t.home));
            assert_eq!(id, t.id, "controller ids mirror fleet order");
            c.set_floor(id, FLOOR_FRAC * t.calib_pps);
        }
        c
    });
    let mut channels: Vec<TelemetryChannel<(TenantId, TelemetryReport)>> =
        (0..MACHINES).map(|_| TelemetryChannel::new()).collect();

    let mut injector = FaultInjector::new(sc.plan.clone());
    let total = sc.last_event + CLUSTER_TAIL;
    let mut derate = [0u64; MACHINES];
    let mut probes = 0u32;
    let mut parked_tenants: Vec<usize> = Vec::new();
    let mut declare_dead_window = None;
    let mut first_replacement_window = None;
    let mut max_staleness = 0u32;
    let mut min_rate_estimate = f64::INFINITY;

    for w in 0..total {
        // 1. Scripted machine-scoped faults.
        let fired: Vec<_> = injector.advance(w).to_vec();
        for tr in &fired {
            let m = tr.target.map(|j| j as usize).expect("cluster faults are targeted");
            match tr.kind {
                FaultKind::MachineCrash { .. } => {
                    if tr.begin {
                        // Power loss: in-flight work on every resident is
                        // forfeited through the counted drain path.
                        for t in tenants.iter_mut() {
                            if t.loc.map(|(tm, _)| tm) == Some(m) {
                                park_tenant(t, &mut cluster);
                            }
                        }
                        cluster.set_up(MachineId(m), false);
                    } else {
                        // Restart: the machine comes back empty; its
                        // heartbeat below announces the recovery.
                        cluster.set_up(MachineId(m), true);
                    }
                }
                FaultKind::SocketDerate { stall_cycles } => {
                    derate[m] = if tr.begin { stall_cycles as u64 } else { 0 };
                }
                FaultKind::TelemetryLoss => channels[m].set_loss(tr.begin),
                FaultKind::TelemetryDelay { windows } => {
                    channels[m].set_delay(if tr.begin { windows } else { 0 });
                }
                _ => panic!("machine-scoped plan only in the cluster sweep"),
            }
        }
        // Derates strike machines; the stall follows current placement.
        for t in &tenants {
            if let Some((m, _)) = t.loc {
                t.controls.stall_cycles.set(derate[m]);
            }
        }

        // 2. Heartbeats: a direct function of machine up-ness, on a
        // separate path from telemetry — a telemetry blackout must *not*
        // look like death.
        if let Some(ctrl) = ctrl.as_mut() {
            for m in cluster.machine_ids() {
                if cluster.is_up(m) {
                    ctrl.heartbeat(m, w);
                }
            }
        }

        // 3. Whatever the control plane delivered this window.
        if let Some(ctrl) = ctrl.as_mut() {
            for ch in channels.iter_mut() {
                for (tid, rep) in ch.recv(w) {
                    ctrl.ingest(tid, &rep);
                }
            }
        }

        // 4. One control tick; the admission gate wraps predictor
        // re-admission against the machine's current residents.
        let actions = if let Some(ctrl) = ctrl.as_mut() {
            let placed: Vec<(FlowType, Option<usize>)> =
                tenants.iter().map(|t| (t.flow, t.loc.map(|(m, _)| m))).collect();
            let mut gate = |m: MachineId, flow: FlowType| {
                let resident: Vec<FlowType> = placed
                    .iter()
                    .filter(|(_, l)| *l == Some(m.index()))
                    .map(|(f, _)| *f)
                    .collect();
                plan_ctx.admission.readmit(&resident, &plan_ctx.slas, flow).admitted()
            };
            ctrl.tick(w, &mut gate)
        } else {
            Vec::new()
        };
        for a in actions {
            match a {
                FleetAction::ProbeMachine { .. } => probes += 1,
                FleetAction::DeclareDead { .. } => {
                    declare_dead_window.get_or_insert(w);
                }
                FleetAction::Replace { tenant, to } => {
                    let t = &mut tenants[tenant.0];
                    // From a refuge (return-home) or from the parked box.
                    let task = if t.loc.is_some() {
                        flush_processed(t, &cluster);
                        let (m, core) = t.loc.take().expect("checked");
                        let mut task = cluster
                            .engine_mut(MachineId(m))
                            .take_task(core)
                            .expect("located tenant");
                        task.on_migrate();
                        task
                    } else {
                        t.parked.take().expect("parked task present")
                    };
                    let dest = free_slot(&cluster, to)
                        .expect("controller capacity keeps a slot free");
                    let eng = cluster.engine_mut(to);
                    // Join at the destination's fleet clock, like a churn
                    // join — machines share no clock, only the window axis.
                    let now = eng.machine.max_clock();
                    eng.machine.core_mut(dest).clock = now;
                    eng.set_task(dest, task);
                    t.loc = Some((to.index(), dest));
                    t.counter_base = core_packets(cluster.engine(to), dest);
                    t.controls.pace_cycles.set(t.offered_pace);
                    t.controls.stall_cycles.set(derate[to.index()]);
                    first_replacement_window.get_or_insert(w);
                }
                FleetAction::Park { tenant } => {
                    park_tenant(&mut tenants[tenant.0], &mut cluster);
                    parked_tenants.push(tenant.0);
                }
            }
        }
        if let Some(ctrl) = ctrl.as_ref() {
            for t in &tenants {
                if let Some(s) = ctrl.staleness(t.id, w) {
                    max_staleness = max_staleness.max(s);
                }
                if let Some(r) = ctrl.rate_estimate(t.id) {
                    min_rate_estimate = min_rate_estimate.min(r);
                }
            }
        }

        // 5. One measured window per machine (down machines skip: their
        // clocks freeze). Each running tenant's report goes onto its
        // machine's telemetry channel — delivery is the channel's problem.
        let ms = cluster.measure_all(0, window);
        for t in tenants.iter_mut() {
            let Some((m, core)) = t.loc else { continue };
            let cm = ms[m]
                .as_ref()
                .expect("located tenants ride up machines")
                .core(core)
                .expect("running tenant measured");
            t.min_pps = t.min_pps.min(cm.metrics.pps);
            let cur = *t.drops.borrow();
            let rep = TelemetryReport {
                window: w,
                pps: cm.metrics.pps,
                p99_us: drain_latency(&t.lat, freq).p99_us,
                loss_frac: observed_loss(&cur, &t.prev),
            };
            t.prev = cur;
            channels[m].send(w, (t.id, rep));
        }

        // 6. Parked tenants refuse their offered load, counted.
        for t in tenants.iter_mut() {
            if t.loc.is_none() {
                let refused = parked_arrivals(t, window);
                let mut d = t.drops.borrow_mut();
                d.offered += refused;
                d.drained += refused;
            }
        }
    }

    // Close the ledger: flush every running tenant from its final core
    // (parked tenants were flushed when they were taken off their engine).
    for t in tenants.iter_mut() {
        flush_processed(t, &cluster);
    }
    let digest = fnv1a64((0..MACHINES).flat_map(|m| {
        let eng = cluster.engine(MachineId(m));
        (0..SLOTS as u16).flat_map(move |c| {
            let core = eng.machine.core(CoreId(c));
            [m as u64, c as u64, core.clock, core.counters.total().packets]
        })
    }));

    let (decisions, replacements) = match &ctrl {
        Some(c) => (c.decisions(), c.replacements_used()),
        None => (0, 0),
    };
    ClusterOutcome {
        name: sc.name,
        windows: total,
        decisions,
        replacements,
        probes,
        parked_tenants,
        declare_dead_window,
        first_replacement_window,
        max_staleness,
        min_rate_estimate,
        tenants: tenants
            .iter()
            .map(|t| {
                let drops = *t.drops.borrow();
                let slack =
                    drops.offered as i64 - t.processed as i64 - drops.undelivered() as i64;
                ClusterTenantOutcome {
                    flow: t.flow,
                    priority: t.priority,
                    home: t.home,
                    final_machine: t.loc.map(|(m, _)| m),
                    calib_pps: t.calib_pps,
                    min_pps: t.min_pps,
                    drops,
                    processed: t.processed,
                    conservation_slack: slack,
                }
            })
            .collect(),
        digest,
    }
}

/// The scenario roster. Seeds mix the CLI master seed so `--seed` replays
/// a failing timeline exactly.
fn scenarios(seed: u64) -> Vec<ClusterScenario> {
    vec![
        ClusterScenario {
            name: "machine-crash-restart",
            // Machine 0 dies at w4 and restarts 10 windows later.
            plan: FaultPlan::seeded(seed ^ 0xC1A5).with_machine_crash(CRASH_AT, 10, 0),
            fleet: default_fleet(),
            last_event: CRASH_AT + 10,
        },
        ClusterScenario {
            name: "telemetry-blackout",
            // Machine 2's control plane goes dark while its datapath
            // degrades; the channel returns with a 2-window delay. Only
            // the *reports* are struck — the machine never stops beating.
            plan: FaultPlan::seeded(seed ^ 0xB1AD)
                .with_target(4, 14, 2, FaultKind::TelemetryLoss)
                .with_target(6, 12, 2, FaultKind::SocketDerate { stall_cycles: 20_000 })
                .with_target(14, 18, 2, FaultKind::TelemetryDelay { windows: 2 }),
            fleet: default_fleet(),
            last_event: 18,
        },
        ClusterScenario {
            name: "cascading-overload",
            // Machine 0 carries three tenants (priorities 2/1/0) and dies
            // for good — the restart lands far past the horizon. The
            // survivors have one free slot each: someone must lose.
            plan: FaultPlan::seeded(seed ^ 0xCA5C).with_machine_crash(CRASH_AT, 60, 0),
            fleet: vec![
                (FlowType::Ip, 2, 0),
                (FlowType::Fw, 1, 0),
                (FlowType::Mon, 0, 0),
                (FlowType::Ip, 2, 1),
                (FlowType::Mon, 1, 1),
                (FlowType::Ip, 2, 2),
                (FlowType::Mon, 1, 2),
            ],
            last_event: 12,
        },
        ClusterScenario {
            name: "cluster-empty-plan",
            plan: FaultPlan::empty(),
            fleet: default_fleet(),
            last_event: 0,
        },
    ]
}

/// Canonical scenario names, in sweep order — the vocabulary accepted by
/// [`measure_scenarios`].
pub fn scenario_names() -> Vec<&'static str> {
    scenarios(0).iter().map(|s| s.name).collect()
}

/// Every scenario's fault plan under master seed `seed`, by name. Plan
/// seeds are per-scenario mixes of the master seed, never sequential
/// draws, so each timeline is independent of which other scenarios run.
pub fn scenario_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    scenarios(seed).into_iter().map(|s| (s.name, s.plan)).collect()
}

/// Measure a subset of the roster (by name), sharded across `ctx.jobs`
/// host threads, outcomes merged in canonical scenario order. Each job is
/// plain `Send` config; the worker builds its own `Cluster` of engines
/// from the scenario's derived seed. When `cluster-empty-plan` is
/// selected, its controller-free twin rides along as one more parallel
/// job and the bit-for-bit identity (FNV digest over every core's clock
/// and retired-packet counter, plus per-tenant ledgers) is asserted here.
pub fn measure_scenarios(ctx: &RunCtx, names: &[&str]) -> Vec<ClusterOutcome> {
    let predictor = Predictor::profile(&PROFILE, ctx.levels.min(3), ctx.params, ctx.jobs);
    let admission = AdmissionController::new(&predictor);
    let slas: Vec<Sla> =
        PROFILE.iter().map(|&f| Sla { flow: f, max_drop_pct: 40.0 }).collect();
    let plan_ctx = ClusterPlanCtx { admission, slas };

    let selected: Vec<ClusterScenario> = scenarios(ctx.params.seed)
        .into_iter()
        .filter(|s| names.contains(&s.name))
        .collect();
    let mut work: Vec<(ClusterScenario, bool)> =
        selected.iter().cloned().map(|s| (s, true)).collect();
    let twin_idx = selected.iter().position(|s| s.name == "cluster-empty-plan");
    if let Some(i) = twin_idx {
        work.push((selected[i].clone(), false));
    }
    let mut results = run_many(work, ctx.jobs, |(sc, controlled)| {
        run_cluster_scenario(ctx, &sc, &plan_ctx, controlled)
    });
    if let Some(i) = twin_idx {
        let twin = results.pop().expect("twin job present");
        let outcome = &results[i];
        // Bit-for-bit identity across N machines: same digest, same
        // per-tenant ledgers — an idle control plane is free.
        assert_eq!(
            outcome.digest, twin.digest,
            "[cluster-empty-plan] core clocks/counters diverged"
        );
        for (a, b) in outcome.tenants.iter().zip(twin.tenants.iter()) {
            assert_eq!(a.processed, b.processed, "[cluster-empty-plan] {}", a.flow);
            assert_eq!(a.drops, b.drops, "[cluster-empty-plan] {} ledger", a.flow);
        }
        println!("empty-plan digest {:#018x} (twin identical)", outcome.digest);
    }
    results
}

/// The `CLUSTER_CHAOS_results.json` records (one flat row per tenant per
/// scenario, canonical order preserved).
pub fn json_rows(outcomes: &[ClusterOutcome]) -> Vec<JsonRow> {
    outcomes
        .iter()
        .flat_map(|o| {
            o.tenants.iter().map(move |t| {
                JsonRow::new()
                    .str("scenario", o.name)
                    .str("tenant", t.flow)
                    .num("priority", t.priority)
                    .num("home", t.home)
                    .opt_num("final_machine", t.final_machine)
                    .num("calib_pps", format!("{:.1}", t.calib_pps))
                    .num("min_pps", format!("{:.1}", t.min_pps))
                    .num("offered", t.drops.offered)
                    .num("processed", t.processed)
                    .num("drained", t.drops.drained)
                    .num("total_dropped", t.drops.total_dropped())
                    .num("conservation_slack", t.conservation_slack)
                    .num("decisions", o.decisions)
                    .num("replacements", o.replacements)
                    .num("probes", o.probes)
                    .num("max_staleness", o.max_staleness)
                    .opt_num("declared_dead_at", o.declare_dead_window)
                    .opt_num("first_replacement_at", o.first_replacement_window)
            })
        })
        .collect()
}

/// Per-scenario assertions — the sweep's acceptance criteria.
fn check(o: &ClusterOutcome) {
    let n = o.name;
    for t in &o.tenants {
        assert_eq!(
            t.conservation_slack, 0,
            "[{n}/{}@m{}] fleet-wide ledger must conserve exactly",
            t.flow, t.home
        );
        assert!(t.drops.offered > 0, "[{n}/{}@m{}] tenant saw traffic", t.flow, t.home);
    }
    let healthy_bound = |t: &ClusterTenantOutcome| {
        assert_eq!(
            t.final_machine,
            Some(t.home),
            "[{n}/{}@m{}] healthy tenant must stay home",
            t.flow,
            t.home
        );
        assert!(
            t.min_pps >= INTERFERENCE_FLOOR * t.calib_pps,
            "[{n}/{}@m{}] interference bound: min {:.3e} < {:.2} × calib {:.3e}",
            t.flow,
            t.home,
            t.min_pps,
            INTERFERENCE_FLOOR,
            t.calib_pps
        );
    };
    match n {
        "machine-crash-restart" => {
            let dead = o.declare_dead_window.expect("crash must be declared");
            let first = o.first_replacement_window.expect("orphans must be re-placed");
            assert!(
                first - CRASH_AT <= REPLACEMENT_BOUND,
                "[{n}] re-placement took {} windows (bound {REPLACEMENT_BOUND})",
                first - CRASH_AT
            );
            assert!(dead <= first, "[{n}] replacement follows the declaration");
            assert_eq!(o.probes, 2, "[{n}] two probes on capped backoff before death");
            assert_eq!(o.replacements, 2, "[{n}] both orphans cost budget exactly once");
            // DeclareDead + 2 orphan placements + 2 budget-free returns.
            assert_eq!(o.decisions, 5, "[{n}] decision count is exact and bounded");
            assert!(o.parked_tenants.is_empty(), "[{n}] zero healthy-machine collateral");
            for t in &o.tenants {
                if t.home == 0 {
                    assert_eq!(
                        t.final_machine,
                        Some(0),
                        "[{n}/{}] restart must send the refugee home",
                        t.flow
                    );
                    assert!(t.drops.drained > 0, "[{n}/{}] crash loss counted", t.flow);
                } else {
                    healthy_bound(t);
                }
            }
        }
        "telemetry-blackout" => {
            assert_eq!(
                o.decisions, 0,
                "[{n}] blindness bounds the decision rate: hold, don't flap"
            );
            assert_eq!(o.probes, 0, "[{n}] heartbeats never stopped — no liveness doubt");
            assert!(
                o.max_staleness >= BLACKOUT_STALENESS_FLOOR,
                "[{n}] the blackout must actually blind the controller \
                 (max staleness {} < {BLACKOUT_STALENESS_FLOOR})",
                o.max_staleness
            );
            let min_calib =
                o.tenants.iter().map(|t| t.calib_pps).fold(f64::INFINITY, f64::min);
            assert!(
                o.min_rate_estimate >= FLOOR_FRAC * min_calib,
                "[{n}] silence must hold last-known-good, never read as rate 0 \
                 (min estimate {:.3e})",
                o.min_rate_estimate
            );
            for t in &o.tenants {
                // The derated machine's tenants dip by design; everyone
                // stays home either way.
                assert_eq!(t.final_machine, Some(t.home), "[{n}/{}] nobody moves", t.flow);
                if t.home != 2 {
                    healthy_bound(t);
                }
            }
        }
        "cascading-overload" => {
            assert_eq!(o.replacements, 2, "[{n}] the two higher classes are re-placed");
            // DeclareDead + 2 placements + 1 park.
            assert_eq!(o.decisions, 4, "[{n}] shed by SLA class, then hold");
            assert_eq!(o.parked_tenants.len(), 1, "[{n}] exactly one tenant parks");
            let parked = &o.tenants[o.parked_tenants[0]];
            assert_eq!(parked.priority, 0, "[{n}] the lowest SLA class parks");
            assert_eq!(parked.final_machine, None, "[{n}] no slot ever frees up");
            assert!(parked.drops.drained > 0, "[{n}] parked loss is counted, not silent");
            for t in &o.tenants {
                if t.home == 0 && t.priority > 0 {
                    let m = t.final_machine.expect("re-placed refugee is running");
                    assert_ne!(m, 0, "[{n}/{}] the dead machine never hosts", t.flow);
                } else if t.home != 0 {
                    assert!(
                        t.min_pps >= INTERFERENCE_FLOOR * t.calib_pps,
                        "[{n}/{}@m{}] survivor interference bound",
                        t.flow,
                        t.home
                    );
                }
            }
        }
        "cluster-empty-plan" => {
            assert_eq!(o.decisions, 0, "[{n}] the idle control plane decides nothing");
            assert_eq!(o.probes, 0);
            assert!(o.parked_tenants.is_empty());
            for t in &o.tenants {
                assert_eq!(t.drops.drained, 0, "[{n}/{}] nothing drained", t.flow);
                assert_eq!(t.final_machine, Some(t.home));
            }
        }
        other => panic!("unknown scenario {other}"),
    }
}

/// Run the cluster-chaos sweep: profile admission once, run every
/// scenario, check the empty-plan identity, emit the table + JSON
/// artifact, assert.
pub fn run(ctx: &RunCtx) -> Vec<ClusterOutcome> {
    ctx.heading("Cluster chaos — the fleet controller under machine death and lying telemetry");
    println!("profiling re-placement admission…");
    let names = scenario_names();
    println!(
        "running {} scenarios (+ the controller-free twin) across {} jobs: {}…",
        names.len(),
        ctx.jobs.min(names.len() + 1),
        names.join(", ")
    );
    let outcomes = measure_scenarios(ctx, &names);

    let mut table = Table::new(
        "Cluster chaos: fleet-controller response per tenant per scenario",
        &[
            "scenario", "tenant", "prio", "home", "end", "offered", "processed",
            "drained", "lost", "min/calib", "slack",
        ],
    );
    for o in &outcomes {
        for t in &o.tenants {
            table.row(vec![
                o.name.to_string(),
                t.flow.to_string(),
                t.priority.to_string(),
                format!("m{}", t.home),
                t.final_machine.map(|m| format!("m{m}")).unwrap_or_else(|| "parked".into()),
                t.drops.offered.to_string(),
                t.processed.to_string(),
                t.drops.drained.to_string(),
                t.drops.total_dropped().to_string(),
                format!("{:.2}", t.min_pps / t.calib_pps.max(1.0)),
                t.conservation_slack.to_string(),
            ]);
        }
    }
    ctx.emit("cluster_chaos", &table);

    // CLUSTER_CHAOS_results.json lands in the repository root (CI artifact).
    save_results_json("CLUSTER_CHAOS_results.json", "tenants", &json_rows(&outcomes));

    for o in &outcomes {
        check(o);
    }
    println!(
        "cluster-chaos: {} scenarios × {MACHINES} machines — bounded re-placement, \
         blind windows decide nothing, shed by SLA class, exact fleet-wide conservation",
        outcomes.len(),
    );
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_chaos_holds_its_claims_at_test_scale() {
        let mut ctx = RunCtx::quick();
        ctx.params.warmup_ms = 0.5;
        ctx.params.window_ms = 1.5;
        ctx.out_dir = std::env::temp_dir();
        let outcomes = run(&ctx);
        assert_eq!(outcomes.len(), 4);
    }
}
