//! Extension beyond the paper: does the prediction method generalize to
//! *new* applications it was never designed around?
//!
//! The paper's §6 argues the whole point of a programmable platform is that
//! operators will deploy emerging processing types (deep packet inspection
//! is named explicitly). A prediction method that only works for the five
//! workloads it was developed against would be of limited use, so we add
//! three applications the paper does not evaluate — DPI (Aho-Corasick over
//! teaser traffic), NAT (binding + session tables with in-place header
//! rewrite), and CLASS (tuple-space multi-dimensional classification) — and
//! repeat the §4 validation:
//!
//! 1. an extended Table 1 (solo characteristics of all 8 types);
//! 2. pairwise prediction for every extended target against all 8
//!    competitor types, and for the original 5 targets against the 3 new
//!    competitor types (39 never-measured mixes in total);
//! 3. a Fig. 9-style mixed workload carrying the new types.
//!
//! The paper's claims hold if prediction errors stay in the same few-pp
//! band as Figs. 8/9 — evidence the method keys on the right quantity
//! (competing refs/sec), not on anything specific to the original five.

use crate::RunCtx;
use pp_core::prelude::*;
use std::collections::BTreeMap;

/// All eight types: the paper's five plus the three extensions.
pub fn all_types() -> Vec<FlowType> {
    REALISTIC.iter().chain(EXTENDED.iter()).copied().collect()
}

/// The per-socket mixed workload carrying the new types.
pub const MIX: [FlowType; 6] = [
    FlowType::Dpi,
    FlowType::Nat,
    FlowType::Class,
    FlowType::Mon,
    FlowType::Re,
    FlowType::Vpn,
];

/// Output of the extension experiment.
pub struct ExtendedOutput {
    /// Solo profiles of all 8 types.
    pub profiles: Vec<SoloProfile>,
    /// Pairwise prediction comparisons (39 mixes), paper's method.
    pub errors: Vec<PredictionError>,
    /// Fill-rate-method predictions, aligned with `errors`.
    pub fill_predictions: Vec<f64>,
    /// Mixed-workload rows: `(flow, measured, paper pred, fill-rate pred)`.
    pub mix_rows: Vec<(FlowType, f64, f64, f64)>,
    /// The predictor (8 solos + 8 SYN ramps).
    pub predictor: Predictor,
}

impl ExtendedOutput {
    /// Worst pairwise |error| of the paper's method.
    pub fn worst_pair_error(&self) -> f64 {
        self.errors.iter().map(|e| e.error().abs()).fold(0.0, f64::max)
    }

    /// Worst pairwise |error| of the fill-rate refinement.
    pub fn worst_pair_error_fillrate(&self) -> f64 {
        self.errors
            .iter()
            .zip(&self.fill_predictions)
            .map(|(e, &fp)| (fp - e.measured).abs())
            .fold(0.0, f64::max)
    }

    /// Worst mixed-workload |error| (paper's Fig. 9 band: 1.26 pp) for
    /// `(paper method, fill-rate method)`.
    pub fn worst_mix_error(&self) -> (f64, f64) {
        let paper = self
            .mix_rows
            .iter()
            .map(|(_, m, p, _)| (p - m).abs())
            .fold(0.0, f64::max);
        let fills = self
            .mix_rows
            .iter()
            .map(|(_, m, _, f)| (f - m).abs())
            .fold(0.0, f64::max);
        (paper, fills)
    }

    /// Average |error| over pairs with the given target:
    /// `(paper method, fill-rate method)`.
    pub fn avg_abs_error(&self, target: FlowType) -> (f64, f64) {
        let mut paper = Vec::new();
        let mut fills = Vec::new();
        for (e, &fp) in self.errors.iter().zip(&self.fill_predictions) {
            if e.target == target {
                paper.push(e.error().abs());
                fills.push((fp - e.measured).abs());
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        (avg(&paper), avg(&fills))
    }
}

/// Run and report the extension experiment.
pub fn run(ctx: &RunCtx) -> ExtendedOutput {
    ctx.heading("Extension — prediction generality on DPI / NAT / CLASS");
    let types = all_types();

    // 1. Extended Table 1.
    println!("[profiling: 8 solos + 8 SYN ramps of {} levels]", ctx.levels);
    let predictor = Predictor::profile(&types, ctx.levels, ctx.params, ctx.jobs);
    let profiles: Vec<SoloProfile> =
        types.iter().map(|&t| predictor.solo(t).unwrap().clone()).collect();

    let mut t1 = Table::new(
        "Table 1 (extended): solo characteristics of all 8 types",
        &[
            "flow",
            "CPI",
            "L3 refs/s (M)",
            "L3 hits/s (M)",
            "cycles/pkt",
            "L3 refs/pkt",
            "L3 miss/pkt",
            "L2 hits/pkt",
            "Mpps",
            "WS (MB)",
        ],
    );
    for p in &profiles {
        t1.row(vec![
            p.flow.name(),
            fmt_f(p.cpi, 2),
            millions(p.l3_refs_per_sec),
            millions(p.l3_hits_per_sec),
            fmt_f(p.cycles_per_packet, 0),
            fmt_f(p.l3_refs_per_packet, 2),
            fmt_f(p.l3_misses_per_packet, 2),
            fmt_f(p.l2_hits_per_packet, 2),
            fmt_f(p.pps / 1e6, 3),
            fmt_f(p.working_set_bytes as f64 / (1 << 20) as f64, 1),
        ]);
    }
    ctx.emit("ext_table1", &t1);

    // 2. Pairwise prediction on never-measured mixes. Extended targets face
    // all 8 competitor types; original targets face the 3 new competitors.
    let mut pairs: Vec<(FlowType, FlowType)> = Vec::new();
    for &t in &EXTENDED {
        for &c in &types {
            pairs.push((t, c));
        }
    }
    for &t in &REALISTIC {
        for &c in &EXTENDED {
            pairs.push((t, c));
        }
    }
    let params = ctx.params;
    let solos: BTreeMap<FlowType, FlowResult> = types
        .iter()
        .map(|&t| (t, predictor.solo(t).unwrap().raw.clone()))
        .collect();
    let outcomes = run_many(pairs.clone(), ctx.jobs, |(t, c)| {
        corun_against_solo(&solos[&t], t, &[c; 5], ContentionConfig::Both, params)
    });
    let errors: Vec<PredictionError> = pairs
        .iter()
        .zip(&outcomes)
        .map(|(&(t, c), o)| PredictionError {
            target: t,
            predicted: predictor.predict_drop(t, &[c; 5]),
            predicted_perfect: predictor.predict_drop_perfect(t, o.competing_refs_per_sec),
            measured: o.drop_pct,
            competitors: vec![c; 5],
        })
        .collect();
    let fill_predictions: Vec<f64> =
        pairs.iter().map(|&(t, c)| predictor.predict_drop_fillrate(t, &[c; 5])).collect();

    let mut pt = Table::new(
        "Pairwise prediction on never-measured mixes (target vs 5 co-runners)",
        &[
            "target",
            "competitors",
            "measured (%)",
            "paper method (%)",
            "|err| (pp)",
            "fill-rate method (%)",
            "|err| (pp)",
        ],
    );
    for (e, &fp) in errors.iter().zip(&fill_predictions) {
        pt.row(vec![
            e.target.name(),
            format!("5x {}", e.competitors[0].name()),
            fmt_f(e.measured, 2),
            fmt_f(e.predicted, 2),
            fmt_f(e.error().abs(), 2),
            fmt_f(fp, 2),
            fmt_f((fp - e.measured).abs(), 2),
        ]);
    }
    ctx.emit("ext_pairs", &pt);

    let tmp = ExtendedOutput {
        profiles: profiles.clone(),
        errors: errors.clone(),
        fill_predictions: fill_predictions.clone(),
        mix_rows: Vec::new(),
        predictor,
    };
    let mut avg = Table::new(
        "Average |error| per target (Fig. 8(c) analogue)",
        &["target", "paper method (pp)", "fill-rate method (pp)", "solo L3 hits/s (M)"],
    );
    for p in &profiles {
        let (paper, fills) = tmp.avg_abs_error(p.flow);
        avg.row(vec![
            p.flow.name(),
            fmt_f(paper, 2),
            fmt_f(fills, 2),
            millions(p.l3_hits_per_sec),
        ]);
    }
    ctx.emit("ext_avg_error", &avg);
    let ExtendedOutput { profiles, errors, fill_predictions, predictor, .. } = tmp;

    // 3. Mixed workload with the new types on both sockets.
    let placement = Placement { socket0: MIX.to_vec(), socket1: MIX.to_vec() };
    let solo_pps: BTreeMap<FlowType, f64> =
        MIX.iter().map(|&t| (t, predictor.solo(t).unwrap().pps)).collect();
    let eval = evaluate_measured(&placement, &solo_pps, ctx.params);
    let mix_rows: Vec<(FlowType, f64, f64, f64)> = eval
        .per_flow
        .iter()
        .enumerate()
        .map(|(i, &(flow, measured))| {
            let idx = i % MIX.len();
            let competitors: Vec<FlowType> = MIX
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != idx)
                .map(|(_, &c)| c)
                .collect();
            (
                flow,
                measured,
                predictor.predict_drop(flow, &competitors),
                predictor.predict_drop_fillrate(flow, &competitors),
            )
        })
        .collect();

    let mut mt = Table::new(
        "Mixed workload (DPI, NAT, CLASS, MON, RE, VPN per socket)",
        &[
            "flow",
            "socket",
            "measured (%)",
            "paper method (%)",
            "|err| (pp)",
            "fill-rate method (%)",
            "|err| (pp)",
        ],
    );
    for (i, (flow, measured, paper, fills)) in mix_rows.iter().enumerate() {
        mt.row(vec![
            format!("{}#{}", flow.name(), i % MIX.len()),
            format!("{}", i / MIX.len()),
            fmt_f(*measured, 2),
            fmt_f(*paper, 2),
            fmt_f((paper - measured).abs(), 2),
            fmt_f(*fills, 2),
            fmt_f((fills - measured).abs(), 2),
        ]);
    }
    ctx.emit("ext_mix", &mt);

    let out = ExtendedOutput { profiles, errors, fill_predictions, mix_rows, predictor };
    let (mix_paper, mix_fills) = out.worst_mix_error();
    println!(
        "worst pairwise |error| over {} mixes: paper method {:.2} pp, fill-rate method {:.2} pp\n\
         worst mixed-workload |error|: paper method {:.2} pp, fill-rate method {:.2} pp\n\
         (the paper's own five types stay within its <3 pp band under its method — see fig8;\n\
          the fill-rate refinement is what restores that band for hot-spot workloads like DPI)",
        out.errors.len(),
        out.worst_pair_error(),
        out.worst_pair_error_fillrate(),
        mix_paper,
        mix_fills,
    );
    out
}
