//! Figure 10: the benefit of contention-aware scheduling — per-combination
//! best vs worst flow-to-core placement, and the per-flow breakdown for the
//! 6 MON / 6 FW combination.

use crate::RunCtx;
use pp_core::prelude::*;
use std::collections::BTreeMap;

/// A 12-flow combination studied in Fig. 10(a).
pub struct Combo {
    /// Display label.
    pub label: &'static str,
    /// The 12 flows.
    pub flows: Vec<FlowType>,
}

/// The combinations we study: a realistic set spanning mixes of
/// sensitive/aggressive/neutral types, plus the adversarial SYN_MAX mix.
pub fn combos() -> Vec<Combo> {
    let six = |t: FlowType, u: FlowType| {
        let mut v = vec![t; 6];
        v.extend(vec![u; 6]);
        v
    };
    vec![
        Combo { label: "6IP+6MON", flows: six(FlowType::Ip, FlowType::Mon) },
        Combo { label: "6MON+6FW", flows: six(FlowType::Mon, FlowType::Fw) },
        Combo { label: "6MON+6RE", flows: six(FlowType::Mon, FlowType::Re) },
        Combo { label: "6FW+6RE", flows: six(FlowType::Fw, FlowType::Re) },
        Combo { label: "6MON+6VPN", flows: six(FlowType::Mon, FlowType::Vpn) },
        Combo {
            label: "4MON+4FW+4RE",
            flows: {
                let mut v = vec![FlowType::Mon; 4];
                v.extend(vec![FlowType::Fw; 4]);
                v.extend(vec![FlowType::Re; 4]);
                v
            },
        },
        Combo { label: "6SYN_MAX+6FW", flows: six(FlowType::SynMax, FlowType::Fw) },
    ]
}

/// One combination's study result.
pub struct ComboResult {
    /// Display label.
    pub label: &'static str,
    /// Number of distinct placements evaluated.
    pub placements: usize,
    /// Best placement (lowest average drop).
    pub best: PlacementEval,
    /// Worst placement.
    pub worst: PlacementEval,
}

impl ComboResult {
    /// The scheduling benefit: worst minus best average drop (pp).
    pub fn benefit(&self) -> f64 {
        self.worst.avg_drop - self.best.avg_drop
    }
}

/// Output of the Fig. 10 reproduction.
pub struct Fig10Output {
    /// Per-combination results.
    pub results: Vec<ComboResult>,
}

impl Fig10Output {
    /// Largest benefit among realistic combinations (paper: ~2 pp).
    pub fn max_realistic_benefit(&self) -> f64 {
        self.results
            .iter()
            .filter(|r| !r.label.contains("SYN"))
            .map(|r| r.benefit())
            .fold(0.0, f64::max)
    }

    /// Benefit of the adversarial SYN_MAX mix (paper: ~6 pp).
    pub fn synmax_benefit(&self) -> Option<f64> {
        self.results.iter().find(|r| r.label.contains("SYN")).map(|r| r.benefit())
    }
}

/// Run and report the Fig. 10 reproduction.
pub fn run(ctx: &RunCtx) -> Fig10Output {
    ctx.heading("Figure 10 — benefit of contention-aware scheduling (best vs worst placement)");

    // Solo throughput per involved type, measured once.
    let mut types: Vec<FlowType> = combos().iter().flat_map(|c| c.flows.clone()).collect();
    types.sort();
    types.dedup();
    let solos = SoloProfile::measure_all(&types, ctx.params, ctx.jobs);
    let solo_pps: BTreeMap<FlowType, f64> = solos.iter().map(|p| (p.flow, p.pps)).collect();

    let mut results = Vec::new();
    for combo in combos() {
        let (best, worst, all) =
            study_measured(&combo.flows, &solo_pps, ctx.params, ctx.jobs);
        println!(
            "  {}: {} placements, best {:.2}% (avg) worst {:.2}% -> benefit {:.2} pp",
            combo.label,
            all.len(),
            best.avg_drop,
            worst.avg_drop,
            worst.avg_drop - best.avg_drop
        );
        results.push(ComboResult {
            label: combo.label,
            placements: all.len(),
            best,
            worst,
        });
    }
    let out = Fig10Output { results };

    let mut a = Table::new(
        "Fig 10(a): average drop under best/worst placement",
        &["combination", "placements", "best avg (%)", "worst avg (%)", "benefit (pp)"],
    );
    for r in &out.results {
        a.row(vec![
            r.label.to_string(),
            r.placements.to_string(),
            fmt_f(r.best.avg_drop, 2),
            fmt_f(r.worst.avg_drop, 2),
            fmt_f(r.benefit(), 2),
        ]);
    }
    ctx.emit("fig10a", &a);

    // Fig 10(b): per-flow drops for 6 MON / 6 FW.
    if let Some(mf) = out.results.iter().find(|r| r.label == "6MON+6FW") {
        let mut b = Table::new(
            "Fig 10(b): per-flow drop, 6 MON / 6 FW",
            &["flow", "best placement (%)", "worst placement (%)"],
        );
        for i in 0..mf.best.per_flow.len() {
            let (f_best, d_best) = mf.best.per_flow[i];
            let (_, d_worst) = mf.worst.per_flow[i];
            b.row(vec![
                format!("{}#{}", f_best.name(), i),
                fmt_f(d_best, 2),
                fmt_f(d_worst, 2),
            ]);
        }
        ctx.emit("fig10b", &b);
        println!(
            "  best placement: {}\n  worst placement: {}",
            mf.best.placement.describe(),
            mf.worst.placement.describe()
        );
    }
    println!(
        "max realistic benefit {:.2} pp (paper ~2), SYN_MAX benefit {:.2} pp (paper ~6)",
        out.max_realistic_benefit(),
        out.synmax_benefit().unwrap_or(0.0)
    );
    out
}
