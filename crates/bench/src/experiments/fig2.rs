//! Figure 2: the effect of resource contention — each realistic type
//! co-run with 5 flows of each realistic type (25 pairs), plus the per-
//! target averages.

use crate::RunCtx;
use pp_core::prelude::*;

/// The paper's Fig. 2(b) averages, in `REALISTIC` order.
pub const PAPER_FIG2B: [f64; 5] = [18.81, 20.86, 4.65, 6.34, 9.84];

/// Output of the Fig. 2 reproduction.
pub struct Fig2Output {
    /// One co-run outcome per (target, competitor-type) pair, in
    /// row-major `REALISTIC × REALISTIC` order.
    pub outcomes: Vec<CoRunOutcome>,
    /// Measured solos, in `REALISTIC` order.
    pub solos: Vec<FlowResult>,
}

impl Fig2Output {
    /// Drop of `target` against 5 copies of `competitor`.
    pub fn drop(&self, target: FlowType, competitor: FlowType) -> f64 {
        let ti = REALISTIC.iter().position(|&t| t == target).unwrap();
        let ci = REALISTIC.iter().position(|&t| t == competitor).unwrap();
        self.outcomes[ti * REALISTIC.len() + ci].drop_pct
    }

    /// Fig. 2(b): average drop per target across the five scenarios.
    pub fn averages(&self) -> Vec<f64> {
        REALISTIC
            .iter()
            .map(|&t| {
                REALISTIC.iter().map(|&c| self.drop(t, c)).sum::<f64>()
                    / REALISTIC.len() as f64
            })
            .collect()
    }
}

/// Measure the 25-pair matrix (solos computed once per target).
pub fn measure(ctx: &RunCtx) -> Fig2Output {
    let solo_results: Vec<FlowResult> = run_many(REALISTIC.to_vec(), ctx.jobs, |t| {
        run_scenario(&solo_scenario(t, ctx.params)).flows[0].clone()
    });
    let pairs: Vec<(usize, usize)> = (0..REALISTIC.len())
        .flat_map(|t| (0..REALISTIC.len()).map(move |c| (t, c)))
        .collect();
    let solos = solo_results.clone();
    let params = ctx.params;
    let outcomes = run_many(pairs, ctx.jobs, move |(ti, ci)| {
        corun_against_solo(
            &solo_results[ti],
            REALISTIC[ti],
            &[REALISTIC[ci]; 5],
            ContentionConfig::Both,
            params,
        )
    });
    Fig2Output { outcomes, solos }
}

/// Run and report the Fig. 2 reproduction.
pub fn run(ctx: &RunCtx) -> Fig2Output {
    ctx.heading("Figure 2 — contention-induced drop for every pair of types");
    let out = measure(ctx);

    let mut headers = vec!["target".to_string()];
    headers.extend(REALISTIC.iter().map(|c| format!("5x {} (%)", c.name())));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut a = Table::new("Fig 2(a): drop of target vs 5 co-runners of each type", &header_refs);
    for &t in &REALISTIC {
        let mut row = vec![t.name()];
        for &c in &REALISTIC {
            row.push(fmt_f(out.drop(t, c), 2));
        }
        a.row(row);
    }
    ctx.emit("fig2a", &a);

    let mut b = Table::new(
        "Fig 2(b): average drop per target",
        &["target", "avg drop (%)", "paper (%)"],
    );
    for (i, &t) in REALISTIC.iter().enumerate() {
        b.row(vec![
            t.name(),
            fmt_f(out.averages()[i], 2),
            fmt_f(PAPER_FIG2B[i], 2),
        ]);
    }
    ctx.emit("fig2b", &b);
    out
}
