//! Figure 4: the effect of contention for different resources — drop vs
//! competing SYN refs/sec under the three Fig. 3 configurations
//! (cache-only, memory-controller-only, both).

use crate::RunCtx;
use pp_core::prelude::*;

/// One measured curve: a target type under one configuration.
pub struct Fig4Curve {
    /// The configuration.
    pub config: ContentionConfig,
    /// The target type.
    pub target: FlowType,
    /// The measured sensitivity curve.
    pub curve: SensitivityCurve,
}

/// All of Fig. 4's curves (3 configurations × 5 targets).
pub struct Fig4Output {
    /// The curves, config-major.
    pub curves: Vec<Fig4Curve>,
}

impl Fig4Output {
    /// The curve for a `(config, target)` pair.
    pub fn curve(&self, config: ContentionConfig, target: FlowType) -> &SensitivityCurve {
        &self
            .curves
            .iter()
            .find(|c| c.config == config && c.target == target)
            .expect("curve measured")
            .curve
    }

    /// Maximum drop of a target under a configuration.
    pub fn max_drop(&self, config: ContentionConfig, target: FlowType) -> f64 {
        self.curve(config, target).max_drop()
    }
}

/// Measure all Fig. 4 curves.
pub fn measure(ctx: &RunCtx) -> Fig4Output {
    // Solo once per target, reused across all three configurations.
    let solos: Vec<FlowResult> = run_many(REALISTIC.to_vec(), ctx.jobs, |t| {
        run_scenario(&solo_scenario(t, ctx.params)).flows[0].clone()
    });
    let mut curves = Vec::new();
    for config in [
        ContentionConfig::CacheOnly,
        ContentionConfig::MemCtrlOnly,
        ContentionConfig::Both,
    ] {
        for (i, &target) in REALISTIC.iter().enumerate() {
            let (curve, _) = SensitivityCurve::measure_with_solo(
                &solos[i],
                target,
                config,
                ctx.levels,
                ctx.params,
                ctx.jobs,
            );
            curves.push(Fig4Curve { config, target, curve });
        }
    }
    Fig4Output { curves }
}

/// Run and report the Fig. 4 reproduction.
pub fn run(ctx: &RunCtx) -> Fig4Output {
    ctx.heading("Figure 4 — contention for different resources (SYN ramps)");
    let out = measure(ctx);

    // Full series CSV.
    let mut series = Table::new(
        "Fig 4: all series",
        &["config", "target", "competing L3 refs/s (M)", "drop (%)"],
    );
    for c in &out.curves {
        for &(x, y) in c.curve.points() {
            series.row(vec![
                c.config.name().to_string(),
                c.target.name(),
                millions(x),
                fmt_f(y, 2),
            ]);
        }
    }
    let path = ctx.out_dir.join("fig4.csv");
    let _ = series.write_csv(&path);
    println!("[saved {} ({} points)]", path.display(), series.len());

    // Summary: max drop per (config, target) — the paper's headline is
    // MON ≤ ~32% cache-only vs ≤ ~6% memctrl-only.
    let mut summary = Table::new(
        "Fig 4 summary: max drop (%) per configuration",
        &["target", "cache-only (4a)", "memctrl-only (4b)", "both (4c)"],
    );
    for &t in &REALISTIC {
        summary.row(vec![
            t.name(),
            fmt_f(out.max_drop(ContentionConfig::CacheOnly, t), 2),
            fmt_f(out.max_drop(ContentionConfig::MemCtrlOnly, t), 2),
            fmt_f(out.max_drop(ContentionConfig::Both, t), 2),
        ]);
    }
    ctx.emit("fig4_summary", &summary);
    println!(
        "paper: cache is the dominant factor — MON suffers up to 32% cache-only \
         but at most 6% memctrl-only"
    );
    out
}
