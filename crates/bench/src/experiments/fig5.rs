//! Figure 5: the merge of Figs. 2(a) and 4(c) — SYN-ramp curves overlaid
//! with realistic-competitor points, demonstrating that a workload's
//! aggressiveness is determined by its refs/sec, not by what it computes.

use crate::experiments::fig2;
use crate::RunCtx;
use pp_core::prelude::*;

/// Output of the Fig. 5 reproduction.
pub struct Fig5Output {
    /// SYN curves per target (the "(S)" series).
    pub syn_curves: Vec<(FlowType, SensitivityCurve)>,
    /// Realistic points per target: `(target, competitor, x, y)` (the
    /// "(R)" points).
    pub realistic_points: Vec<(FlowType, FlowType, f64, f64)>,
}

impl Fig5Output {
    /// For each realistic point, the vertical distance to the SYN curve at
    /// the same competing refs/sec — the paper's claim is that this gap is
    /// small (same refs/sec ⇒ same damage, regardless of competitor type).
    pub fn curve_gaps(&self) -> Vec<(FlowType, FlowType, f64)> {
        self.realistic_points
            .iter()
            .map(|&(t, c, x, y)| {
                let curve =
                    &self.syn_curves.iter().find(|(ct, _)| *ct == t).unwrap().1;
                (t, c, (y - curve.interpolate(x)).abs())
            })
            .collect()
    }
}

/// Run and report the Fig. 5 reproduction.
pub fn run(ctx: &RunCtx) -> Fig5Output {
    ctx.heading("Figure 5 — SYN curves vs realistic competitors (aggressiveness ≡ refs/sec)");

    // SYN curves in the realistic (Both) configuration.
    let solos: Vec<FlowResult> = run_many(REALISTIC.to_vec(), ctx.jobs, |t| {
        run_scenario(&solo_scenario(t, ctx.params)).flows[0].clone()
    });
    let mut syn_curves = Vec::new();
    for (i, &t) in REALISTIC.iter().enumerate() {
        let (curve, _) = SensitivityCurve::measure_with_solo(
            &solos[i],
            t,
            ContentionConfig::Both,
            ctx.levels,
            ctx.params,
            ctx.jobs,
        );
        syn_curves.push((t, curve));
    }

    // Realistic points from the Fig. 2 measurement.
    let f2 = fig2::measure(ctx);
    let mut realistic_points = Vec::new();
    for &t in &REALISTIC {
        for &c in &REALISTIC {
            let ti = REALISTIC.iter().position(|&x| x == t).unwrap();
            let ci = REALISTIC.iter().position(|&x| x == c).unwrap();
            let o = &f2.outcomes[ti * REALISTIC.len() + ci];
            realistic_points.push((t, c, o.competing_refs_per_sec, o.drop_pct));
        }
    }
    let out = Fig5Output { syn_curves, realistic_points };

    // CSV with both series.
    let mut series = Table::new(
        "Fig 5: series",
        &["target", "series", "competitor", "competing L3 refs/s (M)", "drop (%)"],
    );
    for (t, curve) in &out.syn_curves {
        for &(x, y) in curve.points() {
            series.row(vec![
                t.name(),
                "SYN".into(),
                "SYN".into(),
                millions(x),
                fmt_f(y, 2),
            ]);
        }
    }
    for &(t, c, x, y) in &out.realistic_points {
        series.row(vec![t.name(), "realistic".into(), c.name(), millions(x), fmt_f(y, 2)]);
    }
    let path = ctx.out_dir.join("fig5.csv");
    let _ = series.write_csv(&path);
    println!("[saved {} ({} points)]", path.display(), series.len());

    // The claim, quantified: realistic points sit near the SYN curve.
    let gaps = out.curve_gaps();
    let mut t = Table::new(
        "Fig 5 check: |realistic drop − SYN curve at same refs/sec|",
        &["target", "competitor", "gap (pp)"],
    );
    for (tt, c, gap) in &gaps {
        t.row(vec![tt.name(), c.name(), fmt_f(*gap, 2)]);
    }
    ctx.emit("fig5_gaps", &t);
    let avg_gap = gaps.iter().map(|g| g.2).sum::<f64>() / gaps.len() as f64;
    println!(
        "average |gap| = {avg_gap:.2} pp — the paper's observation is that \
         equal refs/sec cause roughly equal damage regardless of competitor type"
    );
    out
}
