//! Figure 6: estimated maximum performance drop as a function of the solo
//! cache hits/sec (Equation 1, κ = 1), for δ ∈ {30, 43.75, 60} ns, with the
//! five workloads placed on the δ = 43.75 ns curve.

use crate::RunCtx;
use pp_core::prelude::*;

/// Paper's Fig. 6 spot values at δ = 43.75 ns (worst-case drop %).
pub const PAPER_FIG6_POINTS: [(&str, f64); 5] =
    [("IP", 47.0), ("MON", 48.0), ("FW", 9.0), ("RE", 19.0), ("VPN", 24.0)];

/// Output: the three curves plus the measured workload points.
pub struct Fig6Output {
    /// `(delta_ns, hits/sec, worst-case drop %)` samples.
    pub curves: Vec<(f64, f64, f64)>,
    /// `(flow, solo hits/sec, worst-case drop %)` at δ = 43.75 ns.
    pub points: Vec<(FlowType, f64, f64)>,
}

/// Run and report the Fig. 6 reproduction.
pub fn run(ctx: &RunCtx) -> Fig6Output {
    ctx.heading("Figure 6 — worst-case drop vs solo hits/sec (Equation 1, κ=1)");

    let mut curves = Vec::new();
    for delta_ns in [30.0, 43.75, 60.0] {
        let mut h = 0.0;
        while h <= 60e6 {
            curves.push((delta_ns, h, worst_case_drop(delta_ns * 1e-9, h) * 100.0));
            h += 1e6;
        }
    }

    // The workload points use *our* profiled solo hits/sec.
    let profiles = SoloProfile::measure_all(&REALISTIC, ctx.params, ctx.jobs);
    let points: Vec<(FlowType, f64, f64)> = profiles
        .iter()
        .map(|p| {
            (
                p.flow,
                p.l3_hits_per_sec,
                worst_case_drop(PAPER_DELTA_SECS, p.l3_hits_per_sec) * 100.0,
            )
        })
        .collect();

    let mut series = Table::new(
        "Fig 6: Eq.1 curves",
        &["delta (ns)", "hits/s (M)", "worst-case drop (%)"],
    );
    for &(d, h, y) in &curves {
        series.row(vec![fmt_f(d, 2), millions(h), fmt_f(y, 2)]);
    }
    let path = ctx.out_dir.join("fig6_curves.csv");
    let _ = series.write_csv(&path);
    println!("[saved {} ({} samples)]", path.display(), series.len());

    let mut pts = Table::new(
        "Fig 6 points (δ = 43.75 ns)",
        &["flow", "solo hits/s (M)", "worst-case drop (%)", "paper (%)"],
    );
    for (i, &(f, h, y)) in points.iter().enumerate() {
        pts.row(vec![
            f.name(),
            millions(h),
            fmt_f(y, 1),
            fmt_f(PAPER_FIG6_POINTS[i].1, 1),
        ]);
    }
    ctx.emit("fig6_points", &pts);
    Fig6Output { curves, points }
}
