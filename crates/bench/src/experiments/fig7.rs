//! Figure 7: measured and model-estimated hit→miss conversion rate of a
//! MON flow vs competing refs/sec (cache-only configuration), including the
//! per-function breakdown (`radix_ip_lookup`, `flow_statistics`,
//! `check_ip_header`, `skb_recycle`).

use crate::RunCtx;
use pp_core::prelude::*;
use pp_sim::types::CACHE_LINE;

/// The functions the paper profiles in Fig. 7.
pub const FIG7_FUNCTIONS: [&str; 4] =
    ["radix_ip_lookup", "flow_statistics", "check_ip_header", "skb_recycle"];

/// One measured ramp level.
pub struct Fig7Point {
    /// Competing refs/sec during the co-run.
    pub competing_refs_per_sec: f64,
    /// Overall measured conversion rate (0..1).
    pub measured: f64,
    /// Appendix A model estimate (0..1).
    pub model: f64,
    /// Per-function measured conversion rates, in [`FIG7_FUNCTIONS`] order.
    pub per_function: [f64; 4],
}

/// Output of the Fig. 7 reproduction.
pub struct Fig7Output {
    /// Ramp points, sorted by competition.
    pub points: Vec<Fig7Point>,
    /// The model used (exposes W, Ht, C actually plugged in).
    pub model: CacheModel,
}

fn hits_per_packet(r: &FlowResult, tag: Option<&str>) -> f64 {
    let packets = r.counts.packets.max(1) as f64;
    match tag {
        None => r.counts.l3_hits as f64 / packets,
        Some(t) => {
            r.tags
                .iter()
                .find(|(n, _)| *n == t)
                .map(|(_, c)| c.l3_hits as f64)
                .unwrap_or(0.0)
                / packets
        }
    }
}

fn conversion(solo_hpp: f64, co_hpp: f64) -> f64 {
    if solo_hpp <= 1e-9 {
        0.0
    } else {
        ((solo_hpp - co_hpp) / solo_hpp).clamp(0.0, 1.0)
    }
}

/// Run and report the Fig. 7 reproduction.
pub fn run(ctx: &RunCtx) -> Fig7Output {
    ctx.heading("Figure 7 — hit→miss conversion of MON: measured vs Appendix-A model");

    let solo = run_scenario(&solo_scenario(FlowType::Mon, ctx.params)).flows[0].clone();
    let solo_hpp = hits_per_packet(&solo, None);
    let solo_fn_hpp: Vec<f64> =
        FIG7_FUNCTIONS.iter().map(|t| hits_per_packet(&solo, Some(t))).collect();

    // Appendix A inputs from the profile: C = L3 lines, W = the flow's
    // working set in lines, Ht = solo hits/sec.
    let cfg = pp_sim::config::MachineConfig::westmere();
    let model = CacheModel {
        cache_lines: cfg.l3.num_lines() as f64,
        target_working_lines: (solo.working_set_bytes / CACHE_LINE) as f64,
        target_hits_per_sec: solo.metrics.l3_hits_per_sec,
    };

    let levels: Vec<u8> = (0..ctx.levels).collect();
    let params = ctx.params;
    let n_levels = ctx.levels;
    let solo_for_runs = solo.clone();
    let outcomes = run_many(levels, ctx.jobs, move |level| {
        corun_against_solo(
            &solo_for_runs,
            FlowType::Mon,
            &[FlowType::Syn { level, levels: n_levels }; 5],
            ContentionConfig::CacheOnly,
            params,
        )
    });

    let mut points: Vec<Fig7Point> = outcomes
        .iter()
        .map(|o| {
            let co_hpp = hits_per_packet(&o.corun, None);
            let mut per_function = [0.0; 4];
            for (i, t) in FIG7_FUNCTIONS.iter().enumerate() {
                per_function[i] =
                    conversion(solo_fn_hpp[i], hits_per_packet(&o.corun, Some(t)));
            }
            Fig7Point {
                competing_refs_per_sec: o.competing_refs_per_sec,
                measured: conversion(solo_hpp, co_hpp),
                model: model.conversion_rate(o.competing_refs_per_sec),
                per_function,
            }
        })
        .collect();
    points.sort_by(|a, b| a.competing_refs_per_sec.total_cmp(&b.competing_refs_per_sec));

    let mut t = Table::new(
        "Fig 7: conversion rate vs competing refs/sec",
        &[
            "competing L3 refs/s (M)",
            "measured (%)",
            "model (%)",
            "radix_ip_lookup (%)",
            "flow_statistics (%)",
            "check_ip_header (%)",
            "skb_recycle (%)",
        ],
    );
    for p in &points {
        t.row(vec![
            millions(p.competing_refs_per_sec),
            fmt_f(p.measured * 100.0, 1),
            fmt_f(p.model * 100.0, 1),
            fmt_f(p.per_function[0] * 100.0, 1),
            fmt_f(p.per_function[1] * 100.0, 1),
            fmt_f(p.per_function[2] * 100.0, 1),
            fmt_f(p.per_function[3] * 100.0, 1),
        ]);
    }
    ctx.emit("fig7", &t);
    println!(
        "paper: flow_statistics converts heavily (uniform table access), \
         check_ip_header/skb_recycle stay near zero (hot per-packet lines), \
         radix_ip_lookup sits in between (hot trie roots); the model captures \
         the sharp-then-flat shape but overestimates the level"
    );
    Fig7Output { points, model }
}
