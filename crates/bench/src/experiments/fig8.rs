//! Figure 8: prediction errors for the 25 two-type workloads — our
//! prediction (solo-profiled competition) and the perfect-knowledge variant
//! (actual competing refs/sec).

use crate::RunCtx;
use pp_core::prelude::*;

/// Paper's Fig. 8(c) average absolute errors, in `REALISTIC` order:
/// `(ours, perfect-knowledge)`.
pub const PAPER_FIG8C: [(f64, f64); 5] =
    [(1.96, 1.39), (1.92, 1.41), (0.44, 0.35), (1.97, 1.44), (1.00, 0.69)];

/// Output of the Fig. 8 reproduction.
pub struct Fig8Output {
    /// All 25 prediction-vs-measurement comparisons (target-major).
    pub errors: Vec<PredictionError>,
    /// The predictor used (reused by Fig. 9 when running `all`).
    pub predictor: Predictor,
}

impl Fig8Output {
    /// Average absolute error of our prediction for one target.
    pub fn avg_abs_error(&self, target: FlowType) -> f64 {
        let errs: Vec<f64> = self
            .errors
            .iter()
            .filter(|e| e.target == target)
            .map(|e| e.error().abs())
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    /// Average absolute error of the perfect-knowledge prediction.
    pub fn avg_abs_error_perfect(&self, target: FlowType) -> f64 {
        let errs: Vec<f64> = self
            .errors
            .iter()
            .filter(|e| e.target == target)
            .map(|e| e.error_perfect().abs())
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    /// Worst absolute error of our prediction (the paper claims < 3%).
    pub fn worst_abs_error(&self) -> f64 {
        self.errors.iter().map(|e| e.error().abs()).fold(0.0, f64::max)
    }
}

/// Run and report the Fig. 8 reproduction.
pub fn run(ctx: &RunCtx) -> Fig8Output {
    ctx.heading("Figure 8 — prediction errors for 25 two-type workloads");

    println!("[profiling: 5 solos + 5 SYN ramps of {} levels]", ctx.levels);
    let predictor = Predictor::profile(&REALISTIC, ctx.levels, ctx.params, ctx.jobs);

    // Measure the 25 pairs (reusing the predictor's solo profiles).
    let pairs: Vec<(usize, usize)> = (0..REALISTIC.len())
        .flat_map(|t| (0..REALISTIC.len()).map(move |c| (t, c)))
        .collect();
    let params = ctx.params;
    let solos: Vec<FlowResult> =
        REALISTIC.iter().map(|&t| predictor.solo(t).unwrap().raw.clone()).collect();
    let outcomes = run_many(pairs.clone(), ctx.jobs, move |(ti, ci)| {
        corun_against_solo(
            &solos[ti],
            REALISTIC[ti],
            &[REALISTIC[ci]; 5],
            ContentionConfig::Both,
            params,
        )
    });

    let errors: Vec<PredictionError> = pairs
        .iter()
        .zip(&outcomes)
        .map(|(&(ti, ci), o)| {
            let target = REALISTIC[ti];
            let competitors = vec![REALISTIC[ci]; 5];
            PredictionError {
                target,
                predicted: predictor.predict_drop(target, &competitors),
                predicted_perfect: predictor
                    .predict_drop_perfect(target, o.competing_refs_per_sec),
                measured: o.drop_pct,
                competitors,
            }
        })
        .collect();
    let out = Fig8Output { errors, predictor };

    // Fig 8(a): signed errors of our prediction.
    let mut headers = vec!["target".to_string()];
    headers.extend(REALISTIC.iter().map(|c| format!("5x {}", c.name())));
    let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut a = Table::new("Fig 8(a): our prediction error (pp)", &href);
    let mut b = Table::new("Fig 8(b): perfect-knowledge error (pp)", &href);
    for (ti, &t) in REALISTIC.iter().enumerate() {
        let mut ra = vec![t.name()];
        let mut rb = vec![t.name()];
        for ci in 0..REALISTIC.len() {
            let e = &out.errors[ti * REALISTIC.len() + ci];
            ra.push(fmt_f(e.error(), 2));
            rb.push(fmt_f(e.error_perfect(), 2));
        }
        a.row(ra);
        b.row(rb);
    }
    ctx.emit("fig8a", &a);
    ctx.emit("fig8b", &b);

    let mut c = Table::new(
        "Fig 8(c): average |error| per target",
        &["target", "ours (pp)", "paper ours", "perfect (pp)", "paper perfect"],
    );
    for (i, &t) in REALISTIC.iter().enumerate() {
        c.row(vec![
            t.name(),
            fmt_f(out.avg_abs_error(t), 2),
            fmt_f(PAPER_FIG8C[i].0, 2),
            fmt_f(out.avg_abs_error_perfect(t), 2),
            fmt_f(PAPER_FIG8C[i].1, 2),
        ]);
    }
    ctx.emit("fig8c", &c);
    println!(
        "worst |error| = {:.2} pp (paper: all errors below 3 pp)",
        out.worst_abs_error()
    );
    out
}
