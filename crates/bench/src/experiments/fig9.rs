//! Figure 9: prediction for a mixed workload — 2 MON, 2 VPN, 1 FW, 1 RE
//! per processor — measured vs predicted drop for every flow.

use crate::RunCtx;
use pp_core::prelude::*;
use std::collections::BTreeMap;

/// The per-socket mix (the paper's "2 MON, 2 VPN, 1 FW and 1 RE flow per
/// processor").
pub const MIX: [FlowType; 6] = [
    FlowType::Mon,
    FlowType::Mon,
    FlowType::Vpn,
    FlowType::Vpn,
    FlowType::Fw,
    FlowType::Re,
];

/// One bar of Fig. 9.
pub struct Fig9Row {
    /// The flow (with its socket-local index).
    pub flow: FlowType,
    /// Measured drop (%).
    pub measured: f64,
    /// Predicted drop (%).
    pub predicted: f64,
}

/// Output of the Fig. 9 reproduction.
pub struct Fig9Output {
    /// One row per flow (12: both sockets).
    pub rows: Vec<Fig9Row>,
}

impl Fig9Output {
    /// Maximum absolute prediction error (paper: 1.26 pp).
    pub fn max_abs_error(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| (r.predicted - r.measured).abs())
            .fold(0.0, f64::max)
    }
}

/// Run and report, optionally reusing an existing predictor (from Fig. 8).
pub fn run_with(ctx: &RunCtx, predictor: Option<&Predictor>) -> Fig9Output {
    ctx.heading("Figure 9 — mixed workload: measured vs predicted drop per flow");

    let owned;
    let predictor = match predictor {
        Some(p) => p,
        None => {
            println!("[profiling: 4 types + SYN ramps]");
            owned = Predictor::profile(
                &[FlowType::Mon, FlowType::Vpn, FlowType::Fw, FlowType::Re],
                ctx.levels,
                ctx.params,
                ctx.jobs,
            );
            &owned
        }
    };

    // Both sockets carry the same mix (12 flows total).
    let placement = Placement { socket0: MIX.to_vec(), socket1: MIX.to_vec() };
    let solo_pps: BTreeMap<FlowType, f64> = MIX
        .iter()
        .map(|&t| (t, predictor.solo(t).expect("profiled").pps))
        .collect();
    let eval = evaluate_measured(&placement, &solo_pps, ctx.params);

    let rows: Vec<Fig9Row> = eval
        .per_flow
        .iter()
        .enumerate()
        .map(|(i, &(flow, measured))| {
            let side = if i < MIX.len() { &placement.socket0 } else { &placement.socket1 };
            let idx = i % MIX.len();
            let competitors: Vec<FlowType> = side
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != idx)
                .map(|(_, &c)| c)
                .collect();
            Fig9Row { flow, measured, predicted: predictor.predict_drop(flow, &competitors) }
        })
        .collect();
    let out = Fig9Output { rows };

    let mut t = Table::new(
        "Fig 9: mixed workload (2 MON, 2 VPN, 1 FW, 1 RE per socket)",
        &["flow", "socket", "measured drop (%)", "predicted drop (%)", "|error| (pp)"],
    );
    for (i, r) in out.rows.iter().enumerate() {
        t.row(vec![
            format!("{}#{}", r.flow.name(), i % MIX.len()),
            format!("{}", i / MIX.len()),
            fmt_f(r.measured, 2),
            fmt_f(r.predicted, 2),
            fmt_f((r.predicted - r.measured).abs(), 2),
        ]);
    }
    ctx.emit("fig9", &t);
    println!(
        "max |error| = {:.2} pp (paper: 1.26 pp)",
        out.max_abs_error()
    );
    out
}

/// Run standalone.
pub fn run(ctx: &RunCtx) -> Fig9Output {
    run_with(ctx, None)
}
