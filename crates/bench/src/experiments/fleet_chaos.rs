//! `repro fleet-chaos` — the tenant supervisor under sustained multi-tenant
//! faults (robustness, PR 7).
//!
//! `repro chaos` proved one flow survives a disturbance; this sweep proves
//! the *fleet* does. Three tenants (IP, MON, FW) are planned onto socket 0
//! by [`plan_socket`] (admission + per-flow batch choice), admitted to a
//! [`Supervisor`] built [`from_plan`](Supervisor::from_plan), and driven
//! through seeded per-tenant fault timelines
//! ([`FaultPlan::with_target`]). The driver maps each
//! [`SupervisorAction`] onto the mechanisms:
//!
//! * `Continue` — enforce the ladder level on the tenant's `TaskControls`
//!   (same non-stacking actuation as `repro chaos`);
//! * `Migrate` — [`Engine::migrate_task`] to a healthy spare core: the
//!   drain hook forfeits in-flight pacing credit as counted `drained`
//!   loss, the next window re-probes the envelope on the new placement
//!   (fresh `set_model`), and the planned batch is re-asserted;
//! * `Evict` — take the task out of the engine (drain via the same
//!   counted path) and, for every parked window, refuse the tenant's
//!   expected offered load as counted `drained` loss — eviction is loss,
//!   but *chosen and ledgered*, never silent;
//! * `Probe` — re-install the tenant (clock-aligned, like the chaos
//!   churn joins) for exactly one half-open trial window, after an
//!   [`AdmissionController::readmit`] check that prediction still admits
//!   the candidate next to the resident flows;
//! * `Recalibrate` — re-fit the model from the measured window
//!   ([`Supervisor::set_model`]) instead of degrading on a stale envelope.
//!
//! Scenarios and the claims they assert:
//!
//! * **sick-core** — a targeted frequency derate strikes tenant 0's core.
//!   In-place degradation cannot fix a slow core; the supervisor migrates
//!   the tenant to a healthy spare within the migration budget and the
//!   tenant recovers. Healthy co-tenants stay inside the interference
//!   bound.
//! * **poison-evict** — a corruption pathology *follows* tenant 1 (its
//!   own traffic is bad, so no placement helps): migration burns the
//!   budget without curing it, the ladder bottoms out at Shed, the
//!   breaker trips, the tenant parks with counted `drained` loss, a
//!   half-open probe during the fault fails (doubling the backoff), and
//!   the probe after the fault clears re-admits it.
//! * **drift** — a mild *environment* change (not a scripted fault: the
//!   injector never reports it) derates tenant 2 inside its envelope.
//!   The guard stays at Normal; the drift detector flags the stale model
//!   and one re-calibration re-fits it — zero degradation, zero loss.
//! * **fleet-empty-plan** — the null plan under a live supervisor is
//!   bit-for-bit identical (clocks, counters, ledgers) to a
//!   supervisor-free run: the control plane is free when idle.
//!
//! Every scenario additionally asserts the PR 6 conservation law per
//! tenant: `offered = processed + undelivered`, exactly — the `drained`
//! category keeps the ledger closed through migrations and evictions.
//! `processed` is read from the raw core counters, anchored at every
//! placement change — *not* by summing measurement windows. The windows
//! cannot close a ledger on a multi-core socket: `Engine::measure`
//! re-anchors each window at the fleet's max clock, so a core that lags
//! it (every paced core lags the line-rate tenant's turn overshoot) first
//! replays catch-up turns that land between the windows' snapshots.
//! Those turns are real, counted work — only the raw counters see all of
//! them.
//!
//! Loss-signal composition rule (extends PR 6's): shed drops *and*
//! drained drops are excluded from the guard's loss signal — both are the
//! control plane's own chosen actions, and a guard chasing its
//! supervisor's drain would never converge. Both still appear in the
//! conservation ledger.
//!
//! Results land in `fleet_chaos.csv` and `FLEET_CHAOS_results.json`
//! (machine-readable, uploaded as a CI artifact).

use crate::experiments::results_json::{save_results_json, JsonRow};
use crate::RunCtx;
use pp_core::prelude::*;
use pp_sim::config::MachineConfig;
use pp_sim::engine::{CoreTask, Engine};
use pp_sim::fault::{DropStats, FaultInjector, FaultKind, FaultPlan, TaskControls};
use pp_sim::latency::LatencyHistogram;
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, MemDomain};
use std::cell::RefCell;
use std::rc::Rc;

/// The fleet: one tenant per entry, resident on cores 0..N of socket 0.
const FLEET: [FlowType; 3] = [FlowType::Ip, FlowType::Mon, FlowType::Fw];
/// Cores available for placement (socket 0 of the Westmere config); cores
/// beyond the fleet are healthy spares for failover.
const SOCKET_CORES: usize = 6;
/// Clean calibration windows used to fit each tenant's envelope.
const CALIB_WINDOWS: u32 = 3;
/// Offered load for paced tenants, as a fraction of solo capacity
/// (tenant 2 runs at line rate so capacity drift shows in pps).
const OFFERED_LOAD: f64 = 0.75;
/// Envelope throughput floor as a fraction of calibrated pps.
const ENVELOPE_FLOOR: f64 = 0.7;
/// Admission pace at the Throttle rung (see `repro chaos` for margins).
const THROTTLE_HEADROOM: f64 = 1.1;
/// Wire-drop fraction at the Shed rung.
const SHED_PER_MILLE: u16 = 50;
/// Windows simulated past the last scripted event.
const FLEET_TAIL: u32 = 18;
/// Windows allowed between the last fault clearing (or the re-admission)
/// and the tenant standing clean at Normal.
pub const FLEET_RECOVERY_BOUND: u32 = 20;
/// Healthy co-tenants must keep at least this fraction of their
/// calibrated throughput while a sibling tenant is faulted — the stated
/// interference bound (generous: quick-scale pacing runs ~9% under
/// nominal before any interference).
pub const INTERFERENCE_FLOOR: f64 = 0.55;

/// One fleet scenario: a (possibly targeted) fault timeline plus an
/// optional un-scripted environment change for the drift detector.
#[derive(Debug, Clone)]
struct FleetScenario {
    name: &'static str,
    plan: FaultPlan,
    /// `(tenant, derate fraction, window)`: from `window` on, the tenant's
    /// per-turn cost grows by `fraction` — applied directly, *not* through
    /// the injector, so no window is ever flagged `fault_active`. This
    /// models the world changing under a correct controller, which is
    /// exactly what drift detection exists for.
    env_change: Option<(usize, f64, u32)>,
    /// Window after which recovery is expected (fault end / env change).
    last_event: u32,
}

/// One tenant's outcome within a scenario. `PartialEq` compares every
/// field exactly (floats included) for the determinism harness.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// The tenant's flow type.
    pub flow: FlowType,
    /// Supervisor lifetime counters (trips, probes, migrations, …).
    pub stats: TenantStats,
    /// Deepest ladder level the tenant's guard reached.
    pub peak_level: DegradeLevel,
    /// Ladder level at the end of the run.
    pub final_level: DegradeLevel,
    /// Whether the tenant ended the run admitted (not parked).
    pub final_running: bool,
    /// Guard ladder moves recorded (ring-capped).
    pub guard_transitions: u64,
    /// Mean calibrated throughput before any fault.
    pub calib_pps: f64,
    /// Worst per-window throughput while running.
    pub min_pps: f64,
    /// Final loss ledger (covers capacity probe + calibration + main loop).
    pub drops: DropStats,
    /// Packets retired over all measured windows.
    pub processed: u64,
    /// `offered − processed − undelivered` (0 = exact conservation).
    pub conservation_slack: i64,
    /// Windows from the scenario's last event until the tenant stood
    /// clean at Normal (`None` = never).
    pub recovery_windows: Option<u32>,
}

/// Everything one fleet scenario produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Main-loop windows simulated.
    pub windows: u32,
    /// Per-tenant outcomes, in fleet order (IP, MON, FW).
    pub tenants: Vec<TenantOutcome>,
}

/// Driver-side runtime state for one tenant.
struct TenantRt {
    id: TenantId,
    flow: FlowType,
    core: CoreId,
    batch: usize,
    lat: Rc<RefCell<LatencyHistogram>>,
    drops: Rc<RefCell<DropStats>>,
    controls: Rc<TaskControls>,
    /// Boxed task while evicted (the engine owns it while running).
    parked: Option<Box<dyn CoreTask>>,
    /// Solo-probe cycles per packet (at the planned batch, under fleet
    /// contention — the pacing and accounting reference).
    cpp: f64,
    baseline_pace: u64,
    offered_pace: u64,
    throttle_pace: u64,
    /// Persistent environment derate (drift scenario), cycles per turn.
    env_stall: u64,
    /// One-window envelope re-fit pending after a migration.
    reprobe_pending: bool,
    calib_pps: f64,
    min_pps: f64,
    peak: DegradeLevel,
    prev: DropStats,
    /// Exact packets retired by this tenant, flushed from the occupied
    /// core's raw counter at every placement change (see the module docs:
    /// windowed deltas cannot close the ledger on a multi-core socket).
    processed: u64,
    /// The occupied core's retired-packet total when this tenant was
    /// (re-)installed on it — the anchor `processed` flushes against.
    counter_base: u64,
    recovery: Option<u32>,
}

/// Raw retired-packet total of one core (pending events included).
fn core_packets(engine: &Engine, core: CoreId) -> u64 {
    engine.machine.core(core).counters.total().packets
}

/// Summarize and reset a per-window latency histogram.
fn drain_latency(lat: &Rc<RefCell<LatencyHistogram>>, freq_ghz: f64) -> LatencySummary {
    let s = LatencySummary::from_histogram(&lat.borrow(), freq_ghz);
    lat.borrow_mut().reset();
    s
}

/// The guard's loss signal: unchosen drops only. Shed (PR 6) *and*
/// drained (PR 7) are the control plane's own actions — excluded here,
/// fully counted in the conservation ledger.
fn observed_loss(cur: &DropStats, prev: &DropStats) -> f64 {
    let offered = cur.offered.saturating_sub(prev.offered);
    let lost = cur.total_dropped().saturating_sub(prev.total_dropped());
    let chosen = (cur.shed + cur.drained).saturating_sub(prev.shed + prev.drained);
    lost.saturating_sub(chosen) as f64 / offered.max(1) as f64
}

/// Map a ladder level onto one tenant's live knobs. Identical
/// non-stacking rules to `repro chaos`: shrink and throttle never stack,
/// and the full planned batch returns at the throttle rung.
fn apply_ladder(t: &TenantRt, level: DegradeLevel) {
    let pace = if level >= DegradeLevel::Throttle {
        t.offered_pace.max(t.throttle_pace)
    } else {
        t.offered_pace
    };
    t.controls.pace_cycles.set(pace);
    let batch = if level == DegradeLevel::ShrinkBatch {
        (t.batch / 2).max(4)
    } else {
        t.batch
    };
    t.controls.batch_override.set(batch);
    t.controls
        .shed_per_mille
        .set(if level == DegradeLevel::Shed { SHED_PER_MILLE } else { 0 });
}

/// Re-apply every tenant's stall knob from core sickness + environment
/// derate (placement-dependent: a migration away from a sick core cures
/// the sickness term, the environment term follows the tenant).
fn refresh_stalls(tenants: &[TenantRt], sick: &[u64; SOCKET_CORES]) {
    for t in tenants {
        if t.parked.is_none() {
            t.controls.stall_cycles.set(sick[t.core.index()] + t.env_stall);
        }
    }
}

/// First healthy, vacant socket-0 core (the migration/readmission target).
fn healthy_spare(engine: &Engine, sick: &[u64; SOCKET_CORES]) -> Option<CoreId> {
    (0..SOCKET_CORES as u16)
        .map(CoreId)
        .find(|&c| !engine.has_task(c) && sick[c.index()] == 0)
}

/// Expected offered arrivals in one window for a parked tenant — what the
/// wire would have delivered, refused and ledgered as `drained`.
fn parked_arrivals(t: &TenantRt, window: u64) -> u64 {
    window
        .checked_div(t.offered_pace)
        .unwrap_or((window as f64 / t.cpp) as u64)
}

/// Shared fleet planning state (built once, used by every scenario).
struct FleetPlanCtx<'a> {
    plan: SocketPlan,
    admission: AdmissionController<'a>,
    slas: Vec<Sla>,
}

/// Build the fleet and run one scenario end to end. `supervised = false`
/// runs the identical measurement schedule without a supervisor (the
/// empty-plan twin).
#[allow(clippy::needless_range_loop)]
fn run_fleet_scenario(
    ctx: &RunCtx,
    sc: &FleetScenario,
    plan_ctx: &FleetPlanCtx<'_>,
    supervised: bool,
) -> (FleetOutcome, Vec<u64>) {
    let params = ctx.params;
    let seed = params.seed ^ 0xF1EE7;
    let mut machine = Machine::new(MachineConfig::westmere());
    let mut tenants: Vec<TenantRt> = Vec::new();
    let mut built_tasks = Vec::new();
    for (i, &(flow, choice)) in plan_ctx.plan.batches.iter().enumerate() {
        let built = flow.build_with_structure(
            &mut machine,
            MemDomain(0),
            params.scale,
            seed ^ (0x1111 * (i as u64 + 1)),
            flow.structure_seed(seed),
            choice.batch,
        );
        tenants.push(TenantRt {
            id: TenantId(i),
            flow,
            core: CoreId(i as u16),
            batch: choice.batch,
            lat: built.task.latency_handle(),
            drops: built.task.drop_handle(),
            controls: built.task.controls_handle(),
            parked: None,
            cpp: 1.0,
            baseline_pace: 0,
            offered_pace: 0,
            throttle_pace: 1,
            env_stall: 0,
            reprobe_pending: false,
            calib_pps: 0.0,
            min_pps: f64::INFINITY,
            peak: DegradeLevel::Normal,
            prev: DropStats::default(),
            processed: 0,
            counter_base: 0,
            recovery: None,
        });
        built_tasks.push(built.task);
    }
    let mut engine = Engine::new(machine);
    for (i, task) in built_tasks.into_iter().enumerate() {
        engine.set_task(CoreId(i as u16), Box::new(task));
    }

    let window = params.window_cycles(engine.machine.config());
    let warmup = params.warmup_cycles(engine.machine.config());
    let freq = engine.machine.config().freq_ghz;
    engine.run_until(warmup);
    for t in tenants.iter_mut() {
        t.lat.borrow_mut().reset();
        t.drops.borrow_mut().reset();
        t.counter_base = core_packets(&engine, t.core);
    }

    // Capacity probe: one unpaced window under full fleet contention fixes
    // each tenant's cycles/packet, from which the paces derive. The last
    // tenant stays at line rate (capacity drift must show in pps).
    let cap = engine.measure(0, window);
    for t in tenants.iter_mut() {
        let pkts = cap.core(t.core).expect("tenant measured").counts.total.packets.max(1);
        t.cpp = window as f64 / pkts as f64;
        t.throttle_pace = (t.cpp * THROTTLE_HEADROOM).max(1.0) as u64;
        t.baseline_pace = if t.id.0 + 1 < FLEET.len() {
            (t.cpp / OFFERED_LOAD).max(1.0) as u64
        } else {
            0
        };
        t.offered_pace = t.baseline_pace;
        t.controls.pace_cycles.set(t.baseline_pace);
        drain_latency(&t.lat, freq);
    }

    // Calibration: fit each envelope at the fleet's operating point.
    let mut pps_sum = vec![0.0f64; tenants.len()];
    let mut p99_max = vec![0.0f64; tenants.len()];
    for _ in 0..CALIB_WINDOWS {
        let m = engine.measure(0, window);
        for t in tenants.iter_mut() {
            let c = m.core(t.core).expect("tenant measured");
            pps_sum[t.id.0] += c.metrics.pps;
            p99_max[t.id.0] = p99_max[t.id.0].max(drain_latency(&t.lat, freq).p99_us);
        }
    }
    let envelopes: Vec<GuardEnvelope> = tenants
        .iter_mut()
        .map(|t| {
            t.calib_pps = pps_sum[t.id.0] / CALIB_WINDOWS as f64;
            GuardEnvelope {
                min_pps: ENVELOPE_FLOOR * t.calib_pps,
                max_p99_us: (1.5 * p99_max[t.id.0]).max(5.0),
                max_loss_frac: 0.005,
            }
        })
        .collect();

    // The supervisor: admitted from the socket plan with the *predicted*
    // envelopes, then immediately re-fitted from the measured calibration
    // (the same probe→set_model protocol the drift path uses at run time).
    let mut sup = supervised.then(|| {
        let cfg = SupervisorConfig { seed, ..SupervisorConfig::default() };
        let mut s = Supervisor::from_plan(cfg, &plan_ctx.plan, |flow| {
            let t = tenants.iter().find(|t| t.flow == flow).expect("planned tenant");
            let pred = t.calib_pps; // placeholder; refit below
            (
                GuardEnvelope {
                    min_pps: ENVELOPE_FLOOR * pred,
                    max_p99_us: f64::INFINITY,
                    max_loss_frac: 0.005,
                },
                pred,
            )
        })
        .expect("socket plan must be viable");
        for t in &tenants {
            s.set_model(t.id, t.calib_pps, envelopes[t.id.0]);
        }
        s
    });

    let mut injector = FaultInjector::new(sc.plan.clone());
    let total = sc.last_event + FLEET_TAIL;
    // Core sickness map (stall cycles per turn); a FreqDerate fault
    // targeted at a tenant strikes the core the tenant occupies *now* and
    // stays on that core until the end transition heals it — migrating
    // away cures the tenant, not the core.
    let mut sick = [0u64; SOCKET_CORES];
    let mut sick_core_of_event: Vec<Option<usize>> = vec![None; sc.plan.events.len()];
    for t in tenants.iter_mut() {
        t.prev = *t.drops.borrow();
    }
    for t in &tenants {
        apply_ladder(t, DegradeLevel::Normal);
    }

    for w in 0..total {
        // 1. Scripted faults.
        let fired: Vec<_> = injector.advance(w).to_vec();
        for tr in &fired {
            let target = tr.target.map(|j| j as usize);
            match (tr.kind, target) {
                (FaultKind::FreqDerate { stall_cycles }, Some(j)) => {
                    if tr.begin {
                        let core = tenants[j].core.index();
                        sick[core] = stall_cycles as u64;
                        sick_core_of_event[tr.event] = Some(core);
                    } else if let Some(core) = sick_core_of_event[tr.event].take() {
                        sick[core] = 0;
                    }
                }
                (FaultKind::Corruption { per_mille }, Some(j)) => {
                    // A pathology in the tenant's own traffic: the knob
                    // travels with the task, so no placement cures it.
                    tenants[j].controls.corrupt_per_mille.set(if tr.begin {
                        per_mille
                    } else {
                        0
                    });
                }
                (FaultKind::RateBurst { multiplier }, Some(j)) => {
                    tenants[j].offered_pace = if tr.begin {
                        (tenants[j].baseline_pace / multiplier.max(1) as u64).max(1)
                    } else {
                        tenants[j].baseline_pace
                    };
                }
                _ => {}
            }
        }
        // 2. Un-scripted environment change (drift scenario only).
        if let Some((j, frac, at)) = sc.env_change {
            if w == at {
                let t = &mut tenants[j];
                t.env_stall = (frac * t.batch as f64 * t.cpp) as u64;
            }
        }
        refresh_stalls(&tenants, &sick);

        // 3. Parked tenants decide *before* the window runs: stay parked
        // (counted refusal) or re-enter for a half-open trial.
        if let Some(sup) = sup.as_mut() {
            for j in 0..tenants.len() {
                let id = tenants[j].id;
                if sup.is_running(id) {
                    continue;
                }
                let d = sup.tick_parked(id);
                match d.action {
                    SupervisorAction::Probe => {
                        // Prediction gate first: re-admitting next to the
                        // resident flows must keep every SLA.
                        let resident: Vec<FlowType> = tenants
                            .iter()
                            .filter(|t| t.parked.is_none())
                            .map(|t| t.flow)
                            .collect();
                        let verdict = plan_ctx.admission.readmit(
                            &resident,
                            &plan_ctx.slas,
                            tenants[j].flow,
                        );
                        assert!(
                            verdict.admitted(),
                            "re-admission prediction must hold for this fleet"
                        );
                        let dest = healthy_spare(&engine, &sick)
                            .expect("a healthy core must be free for the trial");
                        let task =
                            tenants[j].parked.take().expect("parked task present");
                        // Trial joins at the fleet clock, like a churn join.
                        let now = engine.machine.max_clock();
                        engine.machine.core_mut(dest).clock = now;
                        engine.set_task(dest, task);
                        tenants[j].core = dest;
                        tenants[j].counter_base = core_packets(&engine, dest);
                        apply_ladder(&tenants[j], DegradeLevel::Normal);
                        refresh_stalls(&tenants, &sick);
                    }
                    SupervisorAction::Evict { .. } => {
                        let t = &mut tenants[j];
                        let refused = parked_arrivals(t, window);
                        let mut d = t.drops.borrow_mut();
                        d.offered += refused;
                        d.drained += refused;
                    }
                    _ => {}
                }
            }
        }

        // 4. One measured window for the whole fleet.
        let m = engine.measure(0, window);

        // 5. Running tenants observe and act.
        for j in 0..tenants.len() {
            if tenants[j].parked.is_some() {
                continue;
            }
            let c = m.core(tenants[j].core).expect("running tenant measured");
            tenants[j].min_pps = tenants[j].min_pps.min(c.metrics.pps);
            let cur = *tenants[j].drops.borrow();
            if std::env::var_os("FLEET_DEBUG").is_some() {
                eprintln!(
                    "[{}] w{w} t{j}: pkts {} offeredΔ {} lostΔ {} pps {:.3e}",
                    sc.name,
                    c.counts.total.packets,
                    cur.offered - tenants[j].prev.offered,
                    cur.total_dropped() - tenants[j].prev.total_dropped(),
                    c.metrics.pps,
                );
            }
            let obs = WindowObservation {
                pps: c.metrics.pps,
                p99_us: drain_latency(&tenants[j].lat, freq).p99_us,
                loss_frac: observed_loss(&cur, &tenants[j].prev),
            };
            tenants[j].prev = cur;
            let Some(sup) = sup.as_mut() else { continue };
            let id = tenants[j].id;
            // A migration's re-probe: first window on the new placement
            // re-fits the envelope before it is judged.
            if tenants[j].reprobe_pending {
                tenants[j].reprobe_pending = false;
                sup.set_model(
                    id,
                    obs.pps,
                    GuardEnvelope { min_pps: ENVELOPE_FLOOR * obs.pps, ..envelopes[j] },
                );
            }
            let fault_active = injector.active_for(w, j as u8).next().is_some();
            let sibling = healthy_spare(&engine, &sick).is_some();
            let d = sup.observe(id, &obs, sibling, fault_active);
            tenants[j].peak = tenants[j].peak.max(d.level);
            let clean = obs.pps >= ENVELOPE_FLOOR * tenants[j].calib_pps;
            match d.action {
                SupervisorAction::Continue | SupervisorAction::Readmit => {
                    apply_ladder(&tenants[j], d.level);
                }
                SupervisorAction::Migrate => {
                    let dest = healthy_spare(&engine, &sick)
                        .expect("sibling availability was just checked");
                    let from = tenants[j].core;
                    tenants[j].processed +=
                        core_packets(&engine, from) - tenants[j].counter_base;
                    assert!(engine.migrate_task(from, dest), "legal migration");
                    tenants[j].core = dest;
                    tenants[j].counter_base = core_packets(&engine, dest);
                    tenants[j].reprobe_pending = true;
                    // Re-assert the planned batch on the new placement and
                    // restore Normal knobs (the guard was reset).
                    apply_ladder(&tenants[j], DegradeLevel::Normal);
                    refresh_stalls(&tenants, &sick);
                }
                SupervisorAction::Evict { .. } => {
                    tenants[j].peak = DegradeLevel::Shed;
                    tenants[j].processed +=
                        core_packets(&engine, tenants[j].core) - tenants[j].counter_base;
                    let mut task =
                        engine.take_task(tenants[j].core).expect("running tenant");
                    // Drain through the counted path (in-flight pacing
                    // credit becomes `drained`), then park the carcass.
                    task.on_migrate();
                    tenants[j].parked = Some(task);
                }
                SupervisorAction::Recalibrate => {
                    // The model is stale, the tenant is healthy: re-fit
                    // from the measured window, do not degrade.
                    sup.set_model(
                        id,
                        obs.pps,
                        GuardEnvelope { min_pps: ENVELOPE_FLOOR * obs.pps, ..envelopes[j] },
                    );
                    apply_ladder(&tenants[j], d.level);
                }
                SupervisorAction::Probe => unreachable!("probe comes from tick_parked"),
            }
            if tenants[j].recovery.is_none()
                && w >= sc.last_event
                && sup.is_running(id)
                && sup.guard(id).level() == DegradeLevel::Normal
                && (clean || sc.env_change.is_some())
            {
                tenants[j].recovery = Some(w - sc.last_event);
            }
        }
    }

    // Close the ledger: flush each running tenant's retired-packet count
    // from its occupied core (parked tenants were flushed at eviction).
    for t in tenants.iter_mut() {
        if t.parked.is_none() {
            t.processed += core_packets(&engine, t.core) - t.counter_base;
            t.counter_base = core_packets(&engine, t.core);
        }
    }
    let clocks: Vec<u64> = (0..SOCKET_CORES as u16)
        .map(|c| engine.machine.core(CoreId(c)).clock)
        .collect();
    let outcome = FleetOutcome {
        name: sc.name,
        windows: total,
        tenants: tenants
            .iter()
            .map(|t| {
                let drops = *t.drops.borrow();
                let slack =
                    drops.offered as i64 - t.processed as i64 - drops.undelivered() as i64;
                let (stats, final_level, running, transitions) = match &sup {
                    Some(s) => (
                        s.stats(t.id),
                        s.guard(t.id).level(),
                        s.is_running(t.id),
                        s.guard(t.id).transitions_recorded(),
                    ),
                    None => (TenantStats::default(), DegradeLevel::Normal, true, 0),
                };
                TenantOutcome {
                    flow: t.flow,
                    stats,
                    peak_level: t.peak,
                    final_level,
                    final_running: running,
                    guard_transitions: transitions,
                    calib_pps: t.calib_pps,
                    min_pps: t.min_pps,
                    drops,
                    processed: t.processed,
                    conservation_slack: slack,
                    recovery_windows: t.recovery,
                }
            })
            .collect(),
    };
    (outcome, clocks)
}

/// The scenario roster. Seeds mix the CLI master seed so `--seed` replays
/// a failing timeline exactly.
fn scenarios(seed: u64) -> Vec<FleetScenario> {
    vec![
        FleetScenario {
            name: "sick-core",
            // Tenant 0's core derates hard for 12 windows; only failover
            // fixes a slow core.
            plan: FaultPlan::seeded(seed ^ 0x51C0)
                .with_target(2, 14, 0, FaultKind::FreqDerate { stall_cycles: 100_000 }),
            env_change: None,
            last_event: 14,
        },
        FleetScenario {
            name: "poison-evict",
            // Tenant 1's own traffic turns 200‰ corrupt: no placement
            // helps, so the budgeted migrations fail, the ladder bottoms
            // out at Shed, and the breaker takes over.
            plan: FaultPlan::seeded(seed ^ 0xE71C)
                .with_target(2, 30, 1, FaultKind::Corruption { per_mille: 200 }),
            env_change: None,
            last_event: 30,
        },
        FleetScenario {
            name: "drift",
            // The environment quietly slows tenant 2 by ~20% — inside the
            // envelope, outside the model's tolerance.
            plan: FaultPlan::seeded(seed ^ 0xD81F7),
            env_change: Some((2, 0.25, 4)),
            last_event: 12,
        },
        FleetScenario {
            name: "fleet-empty-plan",
            plan: FaultPlan::empty(),
            env_change: None,
            last_event: 0,
        },
    ]
}

/// Canonical scenario names, in sweep order — the vocabulary accepted by
/// [`measure_scenarios`].
pub fn scenario_names() -> Vec<&'static str> {
    scenarios(0).iter().map(|s| s.name).collect()
}

/// Every scenario's fault plan under master seed `seed`, by name. Plan
/// seeds are per-scenario mixes of the master seed, never sequential
/// draws, so each timeline is independent of which other scenarios run.
pub fn scenario_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    scenarios(seed).into_iter().map(|s| (s.name, s.plan)).collect()
}

/// Measure a subset of the roster (by name), sharded across `ctx.jobs`
/// host threads, outcomes merged in canonical scenario order. Each job is
/// plain `Send` config; the worker builds its own `Machine`/`Engine` from
/// the scenario's derived seed. When `fleet-empty-plan` is selected, its
/// supervisor-free twin rides along as one more parallel job and the
/// bit-for-bit identity (core clocks, packets, ledgers) is asserted here.
pub fn measure_scenarios(ctx: &RunCtx, names: &[&str]) -> Vec<FleetOutcome> {
    let controllers: Vec<BatchController> = FLEET
        .iter()
        .map(|&f| BatchController::calibrate(f, ctx.params, ctx.jobs))
        .collect();
    let predictor = Predictor::profile(&FLEET, ctx.levels.min(3), ctx.params, ctx.jobs);
    let admission = AdmissionController::new(&predictor);
    let slas: Vec<Sla> =
        FLEET.iter().map(|&f| Sla { flow: f, max_drop_pct: 40.0 }).collect();
    let plan = plan_socket(&controllers, &admission, &FLEET, &slas, &[]);
    assert!(plan.viable(), "the fleet must be admissible before supervision");
    let plan_ctx = FleetPlanCtx { plan, admission, slas };

    let selected: Vec<FleetScenario> = scenarios(ctx.params.seed)
        .into_iter()
        .filter(|s| names.contains(&s.name))
        .collect();
    let mut work: Vec<(FleetScenario, bool)> =
        selected.iter().cloned().map(|s| (s, true)).collect();
    let twin_idx = selected.iter().position(|s| s.name == "fleet-empty-plan");
    if let Some(i) = twin_idx {
        work.push((selected[i].clone(), false));
    }
    let mut results = run_many(work, ctx.jobs, |(sc, supervised)| {
        run_fleet_scenario(ctx, &sc, &plan_ctx, supervised)
    });
    if let Some(i) = twin_idx {
        let (twin, twin_clocks) = results.pop().expect("twin job present");
        let (outcome, clocks) = &results[i];
        // Bit-for-bit identity: same clocks, same packets, same ledgers —
        // an idle control plane is free.
        assert_eq!(clocks, &twin_clocks, "[fleet-empty-plan] core clocks diverged");
        for (a, b) in outcome.tenants.iter().zip(twin.tenants.iter()) {
            assert_eq!(a.processed, b.processed, "[fleet-empty-plan] {}", a.flow);
            assert_eq!(a.drops, b.drops, "[fleet-empty-plan] {} ledger", a.flow);
        }
    }
    results.into_iter().map(|(o, _)| o).collect()
}

/// The `FLEET_CHAOS_results.json` records (one flat row per tenant per
/// scenario, canonical order preserved).
pub fn json_rows(outcomes: &[FleetOutcome]) -> Vec<JsonRow> {
    outcomes
        .iter()
        .flat_map(|o| {
            o.tenants.iter().map(move |t| {
                JsonRow::new()
                    .str("scenario", o.name)
                    .str("tenant", t.flow)
                    .str("peak_level", t.peak_level)
                    .str("final_level", t.final_level)
                    .num("final_running", t.final_running)
                    .num("trips", t.stats.trips)
                    .num("failed_probes", t.stats.failed_probes)
                    .num("migrations", t.stats.migrations)
                    .num("recalibrations", t.stats.recalibrations)
                    .num("evicted_windows", t.stats.evicted_windows)
                    .num("guard_transitions", t.guard_transitions)
                    .num("offered", t.drops.offered)
                    .num("processed", t.processed)
                    .num("drained", t.drops.drained)
                    .num("shed", t.drops.shed)
                    .num("element_dropped", t.drops.element_dropped)
                    .num("wire_overflow", t.drops.wire_overflow)
                    .num("total_dropped", t.drops.total_dropped())
                    .opt_num("recovery_windows", t.recovery_windows)
                    .num("conservation_slack", t.conservation_slack)
            })
        })
        .collect()
}

/// Per-scenario, per-tenant assertions — the sweep's acceptance criteria.
fn check(o: &FleetOutcome) {
    let n = o.name;
    for t in &o.tenants {
        assert_eq!(
            t.conservation_slack, 0,
            "[{n}/{}] ledger must conserve exactly through migrations and evictions",
            t.flow
        );
    }
    let healthy_bound = |t: &TenantOutcome| {
        assert_eq!(t.stats.trips, 0, "[{n}/{}] healthy tenant must not trip", t.flow);
        assert_eq!(t.stats.migrations, 0, "[{n}/{}] healthy tenant must not move", t.flow);
        assert!(
            t.min_pps >= INTERFERENCE_FLOOR * t.calib_pps,
            "[{n}/{}] interference bound: min {:.3e} < {:.2} × calib {:.3e}",
            t.flow,
            t.min_pps,
            INTERFERENCE_FLOOR,
            t.calib_pps
        );
    };
    match n {
        "sick-core" => {
            let t = &o.tenants[0];
            assert_eq!(t.stats.migrations, 1, "[{n}] one failover cures a sick core");
            assert_eq!(t.stats.trips, 0, "[{n}] no eviction needed");
            assert!(t.final_running && t.final_level == DegradeLevel::Normal);
            let rec = t.recovery_windows.expect("sick-core tenant must recover");
            assert!(rec <= FLEET_RECOVERY_BOUND, "[{n}] recovery took {rec} windows");
            healthy_bound(&o.tenants[1]);
            healthy_bound(&o.tenants[2]);
        }
        "poison-evict" => {
            let t = &o.tenants[1];
            assert_eq!(
                t.stats.migrations, 2,
                "[{n}] the budget bounds a flapping tenant's moves"
            );
            assert!(t.stats.trips >= 1, "[{n}] Shed windows must trip the breaker");
            assert!(
                t.stats.failed_probes >= 1,
                "[{n}] the mid-fault probe must fail and double the delay"
            );
            assert!(t.stats.evicted_windows > 0, "[{n}] parked windows counted");
            assert!(t.drops.drained > 0, "[{n}] eviction loss must be counted, never silent");
            assert!(t.drops.element_dropped > 0, "[{n}] corruption drops are visible");
            assert_eq!(t.peak_level, DegradeLevel::Shed, "[{n}] ladder bottomed out");
            assert!(
                t.final_running && t.final_level == DegradeLevel::Normal,
                "[{n}] the post-fault probe must re-admit the tenant"
            );
            let rec = t.recovery_windows.expect("evicted tenant must be re-admitted");
            assert!(rec <= FLEET_RECOVERY_BOUND, "[{n}] re-admission took {rec} windows");
            healthy_bound(&o.tenants[0]);
            healthy_bound(&o.tenants[2]);
        }
        "drift" => {
            let t = &o.tenants[2];
            assert_eq!(
                t.stats.recalibrations, 1,
                "[{n}] sustained clean divergence re-fits the model once"
            );
            assert_eq!(t.guard_transitions, 0, "[{n}] drift must not degrade");
            assert_eq!(t.peak_level, DegradeLevel::Normal, "[{n}] ladder untouched");
            assert_eq!(t.stats.trips, 0);
            assert_eq!(t.stats.migrations, 0);
            assert_eq!(t.drops.total_dropped(), 0, "[{n}] drift costs zero packets");
            healthy_bound(&o.tenants[0]);
            healthy_bound(&o.tenants[1]);
        }
        "fleet-empty-plan" => {
            for t in &o.tenants {
                assert_eq!(t.guard_transitions, 0, "[{n}] no ladder moves");
                assert_eq!(t.stats.trips, 0);
                assert_eq!(t.stats.migrations, 0);
                assert_eq!(t.stats.recalibrations, 0);
                assert_eq!(t.drops.drained, 0, "[{n}] nothing drained");
            }
        }
        other => panic!("unknown scenario {other}"),
    }
}

/// Run the fleet-chaos sweep: plan the socket, run every scenario, check
/// the empty-plan identity, emit the table + JSON artifact, assert.
pub fn run(ctx: &RunCtx) -> Vec<FleetOutcome> {
    ctx.heading("Fleet chaos — the tenant supervisor under sustained faults");
    println!("planning the socket (profiles + batch calibration)…");
    let names = scenario_names();
    println!(
        "running {} scenarios (+ the supervisor-free twin) across {} jobs: {}…",
        names.len(),
        ctx.jobs.min(names.len() + 1),
        names.join(", ")
    );
    let outcomes = measure_scenarios(ctx, &names);

    let mut table = Table::new(
        "Fleet chaos: supervisor response per tenant per scenario",
        &[
            "scenario", "tenant", "peak", "trips", "probes-failed", "migrations",
            "recal", "evicted-win", "offered", "processed", "drained", "lost",
            "recov(win)", "slack",
        ],
    );
    for o in &outcomes {
        for t in &o.tenants {
            table.row(vec![
                o.name.to_string(),
                t.flow.to_string(),
                t.peak_level.to_string(),
                t.stats.trips.to_string(),
                t.stats.failed_probes.to_string(),
                t.stats.migrations.to_string(),
                t.stats.recalibrations.to_string(),
                t.stats.evicted_windows.to_string(),
                t.drops.offered.to_string(),
                t.processed.to_string(),
                t.drops.drained.to_string(),
                t.drops.total_dropped().to_string(),
                t.recovery_windows.map(|r| r.to_string()).unwrap_or_else(|| "—".into()),
                t.conservation_slack.to_string(),
            ]);
        }
    }
    ctx.emit("fleet_chaos", &table);

    // FLEET_CHAOS_results.json lands in the repository root (CI artifact).
    save_results_json("FLEET_CHAOS_results.json", "tenants", &json_rows(&outcomes));

    for o in &outcomes {
        check(o);
    }
    println!(
        "fleet-chaos: {} scenarios × {} tenants — bounded recovery or clean eviction, \
         exact conservation, interference bounded, empty plan bit-for-bit free",
        outcomes.len(),
        FLEET.len()
    );
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_chaos_holds_its_claims_at_test_scale() {
        let mut ctx = RunCtx::quick();
        ctx.params.warmup_ms = 0.5;
        ctx.params.window_ms = 1.5;
        ctx.out_dir = std::env::temp_dir();
        let outcomes = run(&ctx);
        assert_eq!(outcomes.len(), 4);
    }
}
