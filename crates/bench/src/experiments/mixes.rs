//! Prediction robustness over random mixes — beyond the paper's
//! evaluation.
//!
//! The paper validates its predictor on 25 homogeneous pairs (Fig. 8) and
//! one hand-picked mixed workload (Fig. 9). An operator consolidating
//! middlebox functions will see arbitrary mixes, so we sweep many *random*
//! 6-flow combinations over all eight workload types and report the error
//! **distribution** (mean / p50 / p95 / max) for the paper's method and
//! the fill-rate refinement. Every mix is predicted from offline profiles
//! only — none of the measured combinations is ever used for fitting.

use crate::RunCtx;
use pp_core::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One flow's outcome within one random mix.
#[derive(Debug, Clone)]
pub struct MixRow {
    /// Mix index.
    pub mix: usize,
    /// The flow.
    pub flow: FlowType,
    /// Measured drop (%).
    pub measured: f64,
    /// Paper-method prediction (%).
    pub predicted: f64,
    /// Fill-rate-method prediction (%).
    pub predicted_fillrate: f64,
}

/// Output of the sweep.
pub struct MixesOutput {
    /// Per-flow rows (`n_mixes` × 6).
    pub rows: Vec<MixRow>,
}

/// Distribution summary of absolute errors.
#[derive(Debug, Clone, Copy)]
pub struct ErrorStats {
    /// Mean absolute error (pp).
    pub mean: f64,
    /// Median (pp).
    pub p50: f64,
    /// 95th percentile (pp).
    pub p95: f64,
    /// Maximum (pp).
    pub max: f64,
}

fn stats(mut errs: Vec<f64>) -> ErrorStats {
    errs.sort_by(f64::total_cmp);
    let n = errs.len().max(1);
    let q = |p: f64| errs[(((n - 1) as f64) * p).round() as usize];
    ErrorStats {
        mean: errs.iter().sum::<f64>() / n as f64,
        p50: q(0.50),
        p95: q(0.95),
        max: errs.last().copied().unwrap_or(0.0),
    }
}

impl MixesOutput {
    /// Error distribution of the paper's method.
    pub fn paper_stats(&self) -> ErrorStats {
        stats(self.rows.iter().map(|r| (r.predicted - r.measured).abs()).collect())
    }

    /// Error distribution of the fill-rate refinement.
    pub fn fillrate_stats(&self) -> ErrorStats {
        stats(
            self.rows
                .iter()
                .map(|r| (r.predicted_fillrate - r.measured).abs())
                .collect(),
        )
    }
}

/// Number of random mixes at paper scale (quick runs use fewer).
const N_MIXES_PAPER: usize = 24;
const N_MIXES_QUICK: usize = 8;

/// Run and report the sweep, optionally reusing a profiled predictor.
pub fn run_with(ctx: &RunCtx, predictor: Option<&Predictor>) -> MixesOutput {
    ctx.heading("Random mixes — prediction error distribution over arbitrary 6-flow mixes");
    let types: Vec<FlowType> = REALISTIC.iter().chain(EXTENDED.iter()).copied().collect();

    let owned;
    let predictor = match predictor {
        Some(p) => p,
        None => {
            println!("[profiling: 8 solos + 8 SYN ramps of {} levels]", ctx.levels);
            owned = Predictor::profile(&types, ctx.levels, ctx.params, ctx.jobs);
            &owned
        }
    };

    let n_mixes = match ctx.params.scale {
        Scale::Paper => N_MIXES_PAPER,
        Scale::Test => N_MIXES_QUICK,
    };
    let mut rng = SmallRng::seed_from_u64(ctx.params.seed ^ 0x0031_7C55);
    let mixes: Vec<Vec<FlowType>> = (0..n_mixes)
        .map(|_| (0..6).map(|_| types[rng.random_range(0..types.len())]).collect())
        .collect();

    // Measure every mix (6 flows on socket 0, NUMA-local, as in §2.2).
    let params = ctx.params;
    let results = run_many(mixes.clone(), ctx.jobs, |mix| {
        let scenario = Scenario {
            flows: mix
                .iter()
                .enumerate()
                .map(|(i, &flow)| FlowPlacement {
                    core: pp_sim::types::CoreId(i as u16),
                    flow,
                    domain: pp_sim::types::MemDomain(0),
                })
                .collect(),
            params,
        };
        run_scenario(&scenario)
    });

    let mut rows = Vec::new();
    for (mi, (mix, res)) in mixes.iter().zip(&results).enumerate() {
        for (i, &flow) in mix.iter().enumerate() {
            let solo = predictor.solo(flow).expect("profiled").pps;
            let measured = (solo - res.flows[i].metrics.pps) / solo * 100.0;
            let competitors: Vec<FlowType> = mix
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, &c)| c)
                .collect();
            rows.push(MixRow {
                mix: mi,
                flow,
                measured,
                predicted: predictor.predict_drop(flow, &competitors),
                predicted_fillrate: predictor.predict_drop_fillrate(flow, &competitors),
            });
        }
    }
    let out = MixesOutput { rows };

    let mut t = Table::new(
        format!("Per-flow predictions over {n_mixes} random mixes"),
        &[
            "mix",
            "flow",
            "measured (%)",
            "paper method (%)",
            "|err| (pp)",
            "fill-rate (%)",
            "|err| (pp)",
        ],
    );
    for r in &out.rows {
        t.row(vec![
            r.mix.to_string(),
            r.flow.name(),
            fmt_f(r.measured, 2),
            fmt_f(r.predicted, 2),
            fmt_f((r.predicted - r.measured).abs(), 2),
            fmt_f(r.predicted_fillrate, 2),
            fmt_f((r.predicted_fillrate - r.measured).abs(), 2),
        ]);
    }
    ctx.emit("mixes", &t);

    let ps = out.paper_stats();
    let fs = out.fillrate_stats();
    let mut s = Table::new(
        "Absolute-error distribution (pp)",
        &["method", "mean", "p50", "p95", "max"],
    );
    s.row(vec![
        "paper (refs/sec)".into(),
        fmt_f(ps.mean, 2),
        fmt_f(ps.p50, 2),
        fmt_f(ps.p95, 2),
        fmt_f(ps.max, 2),
    ]);
    s.row(vec![
        "fill-rate (misses/sec)".into(),
        fmt_f(fs.mean, 2),
        fmt_f(fs.p50, 2),
        fmt_f(fs.p95, 2),
        fmt_f(fs.max, 2),
    ]);
    ctx.emit("mixes_summary", &s);
    out
}

/// Run standalone.
pub fn run(ctx: &RunCtx) -> MixesOutput {
    run_with(ctx, None)
}
