//! One module per table/figure of the paper's evaluation, plus the §2.2
//! pipeline-vs-parallel study, the §4 containment demo, and the extension
//! studies (new applications, cache partitioning, prediction robustness,
//! the machine-level and cluster-level chaos harnesses).

pub mod ablations;
pub mod adaptive;
pub mod batch;
pub mod chaos;
pub mod cluster_chaos;
pub mod extended;
pub mod fig10;
pub mod fleet_chaos;
pub mod mixes;
pub mod partition;
pub mod results_json;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod perf;
pub mod pipeline;
pub mod pipeline_batch;
pub mod table1;
pub mod tables;
pub mod throttle;
