//! Cache partitioning (Intel CAT) — the isolation endgame the paper
//! predates.
//!
//! The paper makes contention *predictable*; hardware way-partitioning
//! (Intel Cache Allocation Technology, introduced years later) makes it
//! largely *disappear*. This experiment quantifies that trade on the same
//! simulated platform:
//!
//! * **Isolation** — the most sensitive flow (MON) vs the most aggressive
//!   competitors (5× SYN_MAX), with the L3's 16 ways either shared or
//!   split evenly among the socket's cores. Partitioning caps the damage
//!   at the cost of a smaller private slice.
//! * **Worst-case placement** — the paper's Fig. 10(b) worst case (six MON
//!   flows on one socket) with and without CAT: partitioned, each flow
//!   keeps near-solo performance and placement stops mattering at all.
//!
//! The upshot for an operator: the paper's profiling+prediction machinery
//! is what you need on *shared* caches; CAT turns the same platform into
//! one where prediction is trivial because each flow's effective cache is
//! private. Both are forms of predictability — one statistical, one by
//! construction.

use crate::experiments::ablations::mon_drop_under;
use crate::RunCtx;
use pp_click::pipelines::{build_flow, ChainKind, FlowSpec};
use pp_core::prelude::*;
use pp_sim::config::MachineConfig;
use pp_sim::engine::Engine;
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, MemDomain};

/// Per-flow drops of six MON flows sharing one socket under a config.
/// Returns (per-flow drop %, average drop %). The solo baseline uses the
/// *same* config, so CAT's static capacity cost is separated from its
/// contention protection.
fn six_mon_drops(cfg: MachineConfig, ctx: &RunCtx) -> (Vec<f64>, f64) {
    let scale = ctx.params.scale;
    let mk_spec = |seed: u64| {
        let mut spec = match scale {
            Scale::Paper => FlowSpec::new(ChainKind::Mon, seed),
            Scale::Test => FlowSpec::small(ChainKind::Mon, seed),
        };
        spec.structure_seed = 0xFEED;
        spec
    };

    // Solo baseline (one MON alone on core 0).
    let mut machine = Machine::new(cfg.clone());
    let b = build_flow(&mut machine, MemDomain(0), &mk_spec(1));
    let mut e = Engine::new(machine);
    e.set_task(CoreId(0), Box::new(b.task));
    let warm = ctx.params.warmup_cycles(e.machine.config());
    let win = ctx.params.window_cycles(e.machine.config());
    let solo = e.measure(warm, win).core(CoreId(0)).unwrap().metrics.pps;

    // Six MON flows on cores 0..5.
    let mut machine = Machine::new(cfg);
    let mut tasks = Vec::new();
    for i in 0..6u16 {
        let b = build_flow(&mut machine, MemDomain(0), &mk_spec(1 + i as u64));
        tasks.push((CoreId(i), b.task));
    }
    let mut e = Engine::new(machine);
    for (c, t) in tasks {
        e.set_task(c, Box::new(t));
    }
    let meas = e.measure(warm, win);
    let drops: Vec<f64> = (0..6u16)
        .map(|i| {
            let pps = meas.core(CoreId(i)).unwrap().metrics.pps;
            (solo - pps) / solo * 100.0
        })
        .collect();
    let avg = drops.iter().sum::<f64>() / drops.len() as f64;
    (drops, avg)
}

/// Run and report the partitioning study.
pub fn run(ctx: &RunCtx) {
    ctx.heading("Cache partitioning (CAT) — isolating flows instead of predicting them");

    // 1. Most-sensitive vs most-aggressive, shared vs partitioned L3.
    let mut t = Table::new(
        "MON vs 5x SYN_MAX: shared L3 vs equal way-partitioning",
        &["L3", "MON solo Mpps", "drop vs 5 SYN_MAX (%)"],
    );
    let (solo_shared, drop_shared) = mon_drop_under(MachineConfig::westmere(), ctx);
    let (solo_cat, drop_cat) =
        mon_drop_under(MachineConfig::westmere().with_equal_cat(), ctx);
    t.row(vec![
        "shared (16 ways)".into(),
        fmt_f(solo_shared / 1e6, 3),
        fmt_f(drop_shared, 2),
    ]);
    t.row(vec![
        "equal CAT (3/3/3/3/2/2)".into(),
        fmt_f(solo_cat / 1e6, 3),
        fmt_f(drop_cat, 2),
    ]);
    ctx.emit("cat_isolation", &t);

    // 2. The paper's worst placement (6 MON on one socket), both ways.
    let (drops_shared, avg_shared) = six_mon_drops(MachineConfig::westmere(), ctx);
    let (drops_cat, avg_cat) =
        six_mon_drops(MachineConfig::westmere().with_equal_cat(), ctx);
    let mut t = Table::new(
        "Six MON flows on one socket (Fig. 10(b)'s worst case), per-flow drop vs same-config solo",
        &["flow", "shared L3 (%)", "equal CAT (%)"],
    );
    for i in 0..6 {
        t.row(vec![
            format!("MON#{i}"),
            fmt_f(drops_shared[i], 2),
            fmt_f(drops_cat[i], 2),
        ]);
    }
    t.row(vec!["average".into(), fmt_f(avg_shared, 2), fmt_f(avg_cat, 2)]);
    ctx.emit("cat_six_mon", &t);

    println!(
        "shared: the contention the whole paper is about ({avg_shared:.1}% average drop).\n\
         partitioned: each flow keeps its slice — contention drop collapses to {avg_cat:.1}%\n\
         (residual = DMA fills and memory-controller queueing, which CAT does not isolate).\n\
         The static cost of the smaller slice shows in the solo column: {:.3} -> {:.3} Mpps.",
        solo_shared / 1e6,
        solo_cat / 1e6,
    );
}
