//! `repro perf` — the simulator's self-benchmark: simulated packets per
//! *wall-clock* second.
//!
//! Every other experiment in this harness measures the modeled platform;
//! this one measures the model itself. The quantity that caps how many
//! packets, cores, and sweep points we can afford is the wall-clock cost of
//! one simulated access, so `repro perf` drives the standard five workloads
//! (solo, core 0) through a fixed simulated window and reports
//!
//! * **kpps(wall)** — simulated packets retired per wall second,
//! * **Maccess/s(wall)** — simulated L1 references per wall second (the raw
//!   speed of the charging pipeline), and
//! * the speedup of both quantities against the checked-in baseline
//!   (`baselines/sim_perf_baseline.txt`, refreshed in PR 5 on the
//!   post-pooling/post-shortcut pipeline; its optional fifth column added
//!   the accesses-per-wall-sec figure, reported as a delta but not gated).
//!
//! Results land in `BENCH_sim.json` (machine-readable, uploaded as a CI
//! artifact). When a baseline entry exists for a measured point, the run
//! **fails** (exit 1) if throughput regressed below
//! `REPRO_PERF_MIN_RATIO` × baseline (default 0.8, i.e. a >20% regression),
//! seeding the perf trajectory the ROADMAP asks for.
//!
//! Timing notes: structure construction and warmup are excluded; each point
//! runs the window `REPS` times and keeps the best rate (standard practice
//! for wall benchmarks — the best run has the fewest scheduler artifacts).
//! Simulated results are identical across repeats (the simulation is
//! deterministic), so repeats cost wall time only.

use crate::RunCtx;
use pp_click::pipelines::build_flow;
use pp_core::prelude::*;
use pp_sim::config::MachineConfig;
use pp_sim::engine::Engine;
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, MemDomain};
use std::io::Write as _;
use std::time::Instant;

/// Batch sizes benchmarked: the scalar anchor and the vector sweet spot.
pub const BATCHES: [usize; 2] = [1, 64];

/// Workloads benchmarked: the paper's realistic five.
pub const WORKLOADS: [FlowType; 5] =
    [FlowType::Ip, FlowType::Mon, FlowType::Fw, FlowType::Re, FlowType::Vpn];

/// Window repeats per point (best-of).
const REPS: usize = 3;

/// Window repeats per arm of the pre-touch A/B (best-of, interleaved).
const AB_REPS: usize = 5;

/// One measured point of the self-benchmark.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// The workload.
    pub flow: FlowType,
    /// Batch size.
    pub batch: usize,
    /// Simulated packets retired in one window.
    pub sim_packets: u64,
    /// Simulated L1 references (loads+stores) in one window.
    pub sim_accesses: u64,
    /// Wall seconds for the best repeat of the window.
    pub wall_secs: f64,
    /// Simulated packets per wall second (best repeat).
    pub pkts_per_wall_sec: f64,
    /// Simulated accesses per wall second (best repeat).
    pub accesses_per_wall_sec: f64,
}

/// Measure one (workload, batch) point: build, warm up, then wall-time the
/// measurement window `REPS` times and keep the best rate.
pub fn measure_point(flow: FlowType, batch: usize, params: ExpParams) -> PerfPoint {
    let cfg = MachineConfig::westmere();
    let mut machine = Machine::new(cfg);
    let mut spec = flow.spec(params.scale, params.seed);
    spec.structure_seed = flow.structure_seed(params.seed);
    spec.batch_size = batch;
    let built = build_flow(&mut machine, MemDomain(0), &spec);
    let mut engine = Engine::new(machine);
    engine.set_task(CoreId(0), Box::new(built.task));
    let warmup = params.warmup_cycles(engine.machine.config());
    let window = params.window_cycles(engine.machine.config());
    engine.run_until(warmup);

    // Keep the best repeat's own (packets, accesses, wall) triple — the
    // consecutive windows retire slightly different packet counts, so
    // rates must never mix one repeat's numerator with another's wall.
    let mut best: Option<PerfPoint> = None;
    let mut t_end = warmup;
    for _ in 0..REPS {
        let before = engine.machine.core(CoreId(0)).counters.snapshot().total;
        let t0 = Instant::now();
        t_end += window;
        engine.run_until(t_end);
        let wall = t0.elapsed().as_secs_f64();
        let after = engine.machine.core(CoreId(0)).counters.snapshot().total;
        let sim_packets = after.packets - before.packets;
        let sim_accesses = after.l1_refs - before.l1_refs;
        let point = PerfPoint {
            flow,
            batch,
            sim_packets,
            sim_accesses,
            wall_secs: wall,
            pkts_per_wall_sec: sim_packets as f64 / wall,
            accesses_per_wall_sec: sim_accesses as f64 / wall,
        };
        if best.as_ref().is_none_or(|b| point.pkts_per_wall_sec > b.pkts_per_wall_sec) {
            best = Some(point);
        }
    }
    best.expect("REPS >= 1")
}

/// A/B the host pre-touch lever (`pp_net::hostopt`) on one workload:
/// same engine, same simulated stream, windows timed with the lever
/// alternating on/off (on first) so host-clock drift hits both arms
/// equally. Returns `(best_on, best_off)`. The lever is host-only and
/// charge-free, so the simulated packet counts per window are identical
/// across arms — only the wall clock differs.
pub fn measure_pretouch_ab(
    flow: FlowType,
    batch: usize,
    params: ExpParams,
) -> (PerfPoint, PerfPoint) {
    let cfg = MachineConfig::westmere();
    let mut machine = Machine::new(cfg);
    let mut spec = flow.spec(params.scale, params.seed);
    spec.structure_seed = flow.structure_seed(params.seed);
    spec.batch_size = batch;
    let built = build_flow(&mut machine, MemDomain(0), &spec);
    let mut engine = Engine::new(machine);
    engine.set_task(CoreId(0), Box::new(built.task));
    let warmup = params.warmup_cycles(engine.machine.config());
    let window = params.window_cycles(engine.machine.config());
    engine.run_until(warmup);

    let prev = pp_net::hostopt::host_pretouch();
    let mut best: [Option<PerfPoint>; 2] = [None, None];
    let mut t_end = warmup;
    for rep in 0..2 * AB_REPS {
        let arm_on = rep % 2 == 0;
        pp_net::hostopt::set_host_pretouch(arm_on);
        let before = engine.machine.core(CoreId(0)).counters.snapshot().total;
        let t0 = Instant::now();
        t_end += window;
        engine.run_until(t_end);
        let wall = t0.elapsed().as_secs_f64();
        let after = engine.machine.core(CoreId(0)).counters.snapshot().total;
        let sim_packets = after.packets - before.packets;
        let sim_accesses = after.l1_refs - before.l1_refs;
        let point = PerfPoint {
            flow,
            batch,
            sim_packets,
            sim_accesses,
            wall_secs: wall,
            pkts_per_wall_sec: sim_packets as f64 / wall,
            accesses_per_wall_sec: sim_accesses as f64 / wall,
        };
        let slot = &mut best[if arm_on { 0 } else { 1 }];
        if slot.as_ref().is_none_or(|b| point.pkts_per_wall_sec > b.pkts_per_wall_sec) {
            *slot = Some(point);
        }
    }
    pp_net::hostopt::set_host_pretouch(prev);
    let [on, off] = best;
    (on.expect("AB_REPS >= 1"), off.expect("AB_REPS >= 1"))
}

/// Scale key used in the baseline file and `BENCH_sim.json`.
fn scale_key(scale: Scale) -> &'static str {
    match scale {
        Scale::Paper => "paper",
        Scale::Test => "quick",
    }
}

/// Checked-in baseline path (pre-optimization numbers; see module docs).
fn baseline_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/sim_perf_baseline.txt")
}

/// One baseline entry: scale key, workload, batch, packets/wall-sec, and
/// (in baselines refreshed since PR 5) accesses/wall-sec.
#[derive(Debug, Clone)]
struct BaselineEntry {
    scale: String,
    workload: String,
    batch: usize,
    pps: f64,
    /// Accesses per wall second; `None` for pre-PR-5 baseline files whose
    /// lines carry only the throughput column.
    aps: Option<f64>,
}

/// Parse the baseline file: lines of `<scale> <workload> <batch> <pps>
/// [<accesses-per-wall-sec>]` (the last column is optional for
/// backward compatibility). Missing file or malformed lines are tolerated
/// (no baseline, no gate).
fn load_baseline() -> Vec<BaselineEntry> {
    let Ok(text) = std::fs::read_to_string(baseline_path()) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            Some(BaselineEntry {
                scale: it.next()?.to_string(),
                workload: it.next()?.to_string(),
                batch: it.next()?.parse().ok()?,
                pps: it.next()?.parse().ok()?,
                aps: it.next().and_then(|v| v.parse().ok()),
            })
        })
        .collect()
}

/// Regression gate ratio (current/baseline must be ≥ this).
fn min_ratio() -> f64 {
    std::env::var("REPRO_PERF_MIN_RATIO")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.8)
}

/// Run the self-benchmark, emit the table + `BENCH_sim.json`, and enforce
/// the regression gate against the checked-in baseline.
pub fn run(ctx: &RunCtx) {
    ctx.heading("PERF — simulator self-benchmark (wall-clock speed of the model)");
    let params = ctx.params;
    let skey = scale_key(params.scale);
    let baseline = load_baseline();
    let base_for = |flow: &FlowType, batch: usize| -> Option<&BaselineEntry> {
        baseline
            .iter()
            .find(|e| e.scale == skey && e.workload == flow.name() && e.batch == batch)
    };

    // Wall-clock points must run sequentially on an unloaded process —
    // never through run_many — or they time each other's contention. The
    // `--jobs` flag is therefore deliberately ignored for timing; both the
    // requested and the actually-used counts are recorded per row so the
    // regression gate only ever compares like-for-like (timing_jobs = 1
    // on both sides of every baseline comparison).
    let timing_jobs = 1usize;
    if ctx.jobs != timing_jobs {
        println!("[--jobs {} requested; wall timing always runs {timing_jobs} job]", ctx.jobs);
    }
    let mut points = Vec::new();
    for &flow in &WORKLOADS {
        for &batch in &BATCHES {
            points.push(measure_point(flow, batch, params));
        }
    }

    let mut table = Table::new(
        "Simulator self-benchmark (wall-clock; best of 3 windows)",
        &[
            "workload",
            "batch",
            "sim pkts",
            "wall ms",
            "kpps (wall)",
            "Maccess/s (wall)",
            "baseline kpps",
            "speedup",
            "baseline Macc/s",
            "acc speedup",
        ],
    );
    let mut failures = Vec::new();
    let mut json_points = Vec::new();
    for p in &points {
        let base = base_for(&p.flow, p.batch);
        let speedup = base.map(|b| p.pkts_per_wall_sec / b.pps);
        let base_aps = base.and_then(|b| b.aps);
        let acc_speedup = base_aps.map(|a| p.accesses_per_wall_sec / a);
        if let (Some(b), Some(s)) = (base, speedup) {
            if s < min_ratio() {
                failures.push(format!(
                    "{}@{}: {:.0} pkts/wall-s vs baseline {:.0} (ratio {:.2} < {:.2})",
                    p.flow.name(),
                    p.batch,
                    p.pkts_per_wall_sec,
                    b.pps,
                    s,
                    min_ratio()
                ));
            }
        }
        table.row(vec![
            p.flow.name(),
            p.batch.to_string(),
            p.sim_packets.to_string(),
            fmt_f(p.wall_secs * 1e3, 1),
            fmt_f(p.pkts_per_wall_sec / 1e3, 1),
            fmt_f(p.accesses_per_wall_sec / 1e6, 1),
            base.map(|b| fmt_f(b.pps / 1e3, 1)).unwrap_or_else(|| "-".into()),
            speedup.map(|s| fmt_f(s, 2)).unwrap_or_else(|| "-".into()),
            base_aps.map(|a| fmt_f(a / 1e6, 1)).unwrap_or_else(|| "-".into()),
            acc_speedup.map(|s| fmt_f(s, 2)).unwrap_or_else(|| "-".into()),
        ]);
        json_points.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"batch\": {}, \"sim_packets\": {}, ",
                "\"wall_secs\": {:.6}, \"pkts_per_wall_sec\": {:.1}, ",
                "\"accesses_per_wall_sec\": {:.1}, ",
                "\"requested_jobs\": {}, \"timing_jobs\": {}, ",
                "\"baseline_pkts_per_wall_sec\": {}, \"speedup_vs_baseline\": {}, ",
                "\"baseline_accesses_per_wall_sec\": {}, ",
                "\"accesses_speedup_vs_baseline\": {}}}"
            ),
            p.flow.name(),
            p.batch,
            p.sim_packets,
            p.wall_secs,
            p.pkts_per_wall_sec,
            p.accesses_per_wall_sec,
            ctx.jobs,
            timing_jobs,
            base.map(|b| format!("{:.1}", b.pps)).unwrap_or_else(|| "null".into()),
            speedup.map(|s| format!("{s:.3}")).unwrap_or_else(|| "null".into()),
            base_aps.map(|a| format!("{a:.1}")).unwrap_or_else(|| "null".into()),
            acc_speedup.map(|s| format!("{s:.3}")).unwrap_or_else(|| "null".into()),
        ));
    }
    ctx.emit("perf", &table);

    // BENCH_sim.json lands in the repository root (CI uploads it).
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"min_ratio\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
        skey,
        min_ratio(),
        json_points.join(",\n")
    );
    match std::fs::File::create("BENCH_sim.json").and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => println!("[saved BENCH_sim.json]"),
        Err(e) => eprintln!("[warn] could not write BENCH_sim.json: {e}"),
    }

    // Pre-touch lever A/B (PR 10): the batched walks host-pre-touch each
    // lane's dependent line (software-prefetch analogue; charge-free).
    // Worth keeping only if it wins wall-clock, so measure it on the
    // batched lookup-heavy point — IP at batch 64 drives the binary-radix
    // batched walk — with interleaved windows on one engine. On a 1-CPU
    // container single-digit-percent deltas are noise; call it a win only
    // beyond 3%.
    let (on, off) = measure_pretouch_ab(FlowType::Ip, 64, params);
    let ratio = on.pkts_per_wall_sec / off.pkts_per_wall_sec;
    let mut ab = Table::new(
        "Host pre-touch lever A/B (IP @ batch 64; interleaved windows, best of 5 per arm)",
        &["lever", "sim pkts", "wall ms", "kpps (wall)", "vs off"],
    );
    for (label, p, r) in [("pre-touch on", &on, Some(ratio)), ("pre-touch off", &off, None)] {
        ab.row(vec![
            label.to_string(),
            p.sim_packets.to_string(),
            fmt_f(p.wall_secs * 1e3, 1),
            fmt_f(p.pkts_per_wall_sec / 1e3, 1),
            r.map(|r| fmt_f(r, 3)).unwrap_or_else(|| "1.000".into()),
        ]);
    }
    ctx.emit("perf_pretouch", &ab);
    if ratio >= 1.03 {
        println!(
            "[pre-touch verdict: WIN ({ratio:.3}x) — enable for real runs with \
             PP_HOST_PRETOUCH=1; simulated results are identical either way]"
        );
    } else {
        println!(
            "[pre-touch verdict: NO WIN ({ratio:.3}x) — lever stays default-off \
             (charge-free; simulated results identical either way)]"
        );
    }

    if !failures.is_empty() {
        eprintln!("\nPERF REGRESSION against {}:", baseline_path());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if baseline.iter().any(|e| e.scale == skey) {
        println!(
            "[perf gate passed: no point below {:.0}% of baseline]",
            min_ratio() * 100.0
        );
    } else {
        println!("[no baseline for scale '{skey}': gate skipped]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_point_measures_something() {
        let p = measure_point(FlowType::Ip, 64, ExpParams::quick());
        assert!(p.sim_packets > 0, "window must retire packets");
        assert!(p.pkts_per_wall_sec > 0.0);
        assert!(p.accesses_per_wall_sec > p.pkts_per_wall_sec, "several accesses per packet");
    }

    #[test]
    fn baseline_parser_tolerates_comments_and_garbage() {
        // The real file may be absent in some checkouts; the parser itself
        // is exercised through load_baseline's format on a scratch file.
        let parsed = load_baseline();
        for e in parsed {
            assert!(e.scale == "quick" || e.scale == "paper");
            assert!(e.batch >= 1);
            assert!(e.pps > 0.0);
            if let Some(aps) = e.aps {
                assert!(aps > e.pps, "several accesses per packet");
            }
        }
    }
}
