//! §2.2: pipeline vs parallel parallelization.
//!
//! The paper's finding: for realistic workloads the parallel
//! (run-to-completion) approach always wins, because pipelining adds 10–15
//! extra cache misses per packet (descriptor/header handoff, cross-core
//! buffer recycling). Only a crafted workload — >200 random accesses per
//! packet into a structure twice the L3 size — can favor pipelining, by
//! giving each pipeline stage a private-L3-resident working set.

use crate::RunCtx;
use pp_core::prelude::*;
use pp_click::cost::CostModel;
use pp_click::pipelines::{
    build_pipeline, two_phase_parallel, two_phase_pipeline, PipelineSpec, TwoPhaseParams,
};
use pp_sim::config::MachineConfig;
use pp_sim::engine::Engine;
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, MemDomain};

/// One workload's parallel-vs-pipeline comparison.
///
/// "Misses" follow the paper's usage: private-cache misses per packet
/// (i.e., references that reach the shared L3 — cross-core transfers land
/// there), not DRAM misses.
pub struct PipelineRow {
    /// Workload label.
    pub label: String,
    /// Parallel mode: total packets/sec with 2 cores (one flow each).
    pub parallel_pps: f64,
    /// Parallel mode: L3 references per packet.
    pub parallel_misses_per_pkt: f64,
    /// Pipeline mode: packets/sec with the same 2 cores.
    pub pipeline_pps: f64,
    /// Pipeline mode: combined L3 references per packet (both stages).
    pub pipeline_misses_per_pkt: f64,
}

impl PipelineRow {
    /// Extra misses per packet introduced by pipelining (paper: 10–15).
    pub fn extra_misses(&self) -> f64 {
        self.pipeline_misses_per_pkt - self.parallel_misses_per_pkt
    }

    /// Throughput ratio pipeline/parallel (<1 means parallel wins).
    pub fn speedup(&self) -> f64 {
        self.pipeline_pps / self.parallel_pps
    }
}

fn measure_parallel_pair(ctx: &RunCtx, flow: FlowType) -> (f64, f64) {
    // Two independent full chains on cores 0 and 1 (same socket, local
    // data) — parallel mode on two cores.
    let s = Scenario {
        flows: vec![
            FlowPlacement { core: CoreId(0), flow, domain: MemDomain(0) },
            FlowPlacement { core: CoreId(1), flow, domain: MemDomain(0) },
        ],
        params: ctx.params,
    };
    let r = run_scenario(&s);
    let pps: f64 = r.flows.iter().map(|f| f.metrics.pps).sum();
    let refs: u64 = r.flows.iter().map(|f| f.counts.l3_refs).sum();
    let packets: u64 = r.flows.iter().map(|f| f.counts.packets).sum();
    (pps, refs as f64 / packets.max(1) as f64)
}

fn measure_pipeline_pair(ctx: &RunCtx, flow: FlowType) -> (f64, f64) {
    let mut machine = Machine::new(MachineConfig::westmere());
    let spec = flow.spec(scale_of(ctx), 0xBEEF);
    let (src, sink, _q) = build_pipeline(
        &mut machine,
        MemDomain(0),
        MemDomain(0),
        &spec,
        &PipelineSpec::new(MemDomain(0)),
    );
    let mut engine = Engine::new(machine);
    engine.set_task(CoreId(0), Box::new(src));
    engine.set_task(CoreId(1), Box::new(sink));
    let warmup = ctx.params.warmup_cycles(engine.machine.config());
    let window = ctx.params.window_cycles(engine.machine.config());
    let meas = engine.measure(warmup, window);
    let back = meas.core(CoreId(1)).expect("sink measured");
    let front = meas.core(CoreId(0)).expect("source measured");
    let packets = back.counts.total.packets.max(1);
    let refs = back.counts.total.l3_refs + front.counts.total.l3_refs;
    (back.metrics.pps, refs as f64 / packets as f64)
}

fn scale_of(ctx: &RunCtx) -> Scale {
    ctx.params.scale
}

/// The crafted two-phase comparison: `(parallel_pps, pipeline_pps)`.
pub fn crafted(ctx: &RunCtx) -> (f64, f64) {
    let p = TwoPhaseParams::default();
    let cost = CostModel::default();

    // Parallel: both phases on each of two cores, one per socket, each
    // core's structures local — every core touches 2× L3 worth of data.
    let mut machine = Machine::new(MachineConfig::westmere());
    let f0 = two_phase_parallel(&mut machine, MemDomain(0), &p, cost);
    let f1 = two_phase_parallel(&mut machine, MemDomain(1), &p, cost);
    let mut engine = Engine::new(machine);
    engine.set_task(CoreId(0), Box::new(f0));
    engine.set_task(CoreId(6), Box::new(f1));
    let warmup = ctx.params.warmup_cycles(engine.machine.config());
    let window = ctx.params.window_cycles(engine.machine.config());
    let meas = engine.measure(warmup, window);
    let parallel_pps = meas.total_pps();

    // Pipeline: phase 1 on socket 0, phase 2 on socket 1 — each phase's
    // structure fits its own L3.
    let mut machine = Machine::new(MachineConfig::westmere());
    let (src, sink, _q) = two_phase_pipeline(
        &mut machine,
        MemDomain(0),
        MemDomain(1),
        &p,
        cost,
        &PipelineSpec::new(MemDomain(0)),
    );
    let mut engine = Engine::new(machine);
    engine.set_task(CoreId(0), Box::new(src));
    engine.set_task(CoreId(6), Box::new(sink));
    let meas = engine.measure(warmup, window);
    let pipeline_pps =
        meas.core(CoreId(6)).map(|c| c.metrics.pps).unwrap_or(0.0);

    (parallel_pps, pipeline_pps)
}

/// Run and report the §2.2 experiment.
pub fn run(ctx: &RunCtx) -> Vec<PipelineRow> {
    ctx.heading("§2.2 — pipeline vs parallel");

    let mut rows = Vec::new();
    for flow in [FlowType::Ip, FlowType::Mon, FlowType::Fw] {
        let (par_pps, par_miss) = measure_parallel_pair(ctx, flow);
        let (pipe_pps, pipe_miss) = measure_pipeline_pair(ctx, flow);
        rows.push(PipelineRow {
            label: flow.name(),
            parallel_pps: par_pps,
            parallel_misses_per_pkt: par_miss,
            pipeline_pps: pipe_pps,
            pipeline_misses_per_pkt: pipe_miss,
        });
    }

    let mut t = Table::new(
        "Pipeline vs parallel (2 cores each)",
        &[
            "workload",
            "parallel Mpps",
            "pipeline Mpps",
            "pipe/par",
            "misses/pkt par",
            "misses/pkt pipe",
            "extra misses/pkt",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            fmt_f(r.parallel_pps / 1e6, 3),
            fmt_f(r.pipeline_pps / 1e6, 3),
            fmt_f(r.speedup(), 2),
            fmt_f(r.parallel_misses_per_pkt, 1),
            fmt_f(r.pipeline_misses_per_pkt, 1),
            fmt_f(r.extra_misses(), 1),
        ]);
    }
    ctx.emit("pipeline_vs_parallel", &t);
    println!("paper: pipelining costs 10-15 extra misses/packet; parallel always wins on realistic workloads");

    let (craft_par, craft_pipe) = crafted(ctx);
    let mut t2 = Table::new(
        "Crafted two-phase workload (>200 refs/packet into 2x L3)",
        &["mode", "Mpps (2 cores)"],
    );
    t2.row(vec!["parallel".into(), fmt_f(craft_par / 1e6, 4)]);
    t2.row(vec!["pipeline".into(), fmt_f(craft_pipe / 1e6, 4)]);
    ctx.emit("pipeline_crafted", &t2);
    println!(
        "crafted workload: pipeline/parallel = {:.2} (paper: only this contrived case favors pipelining)",
        craft_pipe / craft_par.max(1.0)
    );
    rows
}
