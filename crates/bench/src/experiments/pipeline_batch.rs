//! Burst-size sweep for the §2.2 pipeline's cross-core handoff.
//!
//! The pipeline configuration pays the paper's compulsory cross-core misses
//! — head/tail control-line ping-pong, descriptor-slot transfers, shared
//! free-list recycling — once **per packet** in scalar mode. Burst-mode
//! handoff (`SpscQueue::{push_burst, pop_burst}`) pays the control-line
//! transactions once per burst and moves descriptors a cache line (4 slots)
//! at a time, the standard amortization in NFV dataplanes. Batching is not
//! free, though: every packet waits for its whole vector, so this
//! experiment reports simulated ingress→egress **latency percentiles**
//! alongside throughput — the batching-vs-latency trade-off axis.
//!
//! The sweep covers burst ∈ {1, 4, 8, 16, 32, 64} for three workloads in
//! both NUMA placements (stages sharing a socket vs stages on different
//! sockets, the Fig. 3 axis applied to the handoff structure), and
//! verifies:
//!
//! * **burst = 1 is the scalar pipeline, bit for bit** — identical counters
//!   and clocks on both cores; and
//! * **handoff cycles/packet fall monotonically with burst size**,
//!   following the `C/b + S·ceil(b/L)/b` model
//!   ([`CrossCoreHandoff`]).

use crate::RunCtx;
use pp_click::elements::queue::{HANDOFF_TAG, SLOTS_PER_LINE};
use pp_click::pipelines::{build_pipeline, PipelineSpec};
use pp_core::prelude::*;
use pp_sim::config::MachineConfig;
use pp_sim::counters::CounterSnapshot;
use pp_sim::engine::Engine;
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, Cycles, MemDomain};

/// Burst sizes swept (1 = the scalar anchor).
pub const BURSTS: [usize; 6] = [1, 4, 8, 16, 32, 64];

/// Workloads swept: a cheap, a cache-heavy, and a compute-heavy chain.
pub const WORKLOADS: [FlowType; 3] = [FlowType::Ip, FlowType::Mon, FlowType::Fw];

/// Where the two stages run relative to each other — the NUMA axis of the
/// handoff (the queue itself is always homed with the receiving stage, as
/// in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StagePlacement {
    /// Both stages on socket 0: the ping-pong stays inside one L3.
    SameSocket,
    /// Front on socket 0, back on socket 1 (its data local to socket 1):
    /// every handoff line crosses QPI.
    CrossSocket,
}

/// Both placements, in report order.
pub const PLACEMENTS: [StagePlacement; 2] =
    [StagePlacement::SameSocket, StagePlacement::CrossSocket];

impl StagePlacement {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            StagePlacement::SameSocket => "same-socket",
            StagePlacement::CrossSocket => "cross-socket",
        }
    }

    /// (front, back) cores.
    fn cores(&self) -> (CoreId, CoreId) {
        match self {
            StagePlacement::SameSocket => (CoreId(0), CoreId(1)),
            StagePlacement::CrossSocket => (CoreId(0), CoreId(6)),
        }
    }

    /// (front, back) data domains.
    fn domains(&self) -> (MemDomain, MemDomain) {
        match self {
            StagePlacement::SameSocket => (MemDomain(0), MemDomain(0)),
            StagePlacement::CrossSocket => (MemDomain(0), MemDomain(1)),
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct PipelineBatchPoint {
    /// The workload.
    pub flow: FlowType,
    /// Stage placement.
    pub placement: StagePlacement,
    /// Burst size (0 = the scalar path run for the anchor check).
    pub burst: usize,
    /// Packets/sec completed by the back stage over the window.
    pub pps: f64,
    /// Both stages' cycles per completed packet.
    pub cycles_per_packet: f64,
    /// Cross-core handoff cycles per packet: both stages' `handoff`-tagged
    /// charges (queue_op, control lines, descriptor slot lines).
    pub handoff_cycles_per_packet: f64,
    /// Ingress→egress latency percentiles over the window, microseconds.
    pub p50_us: f64,
    /// 95th percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// Front-core window counter deltas (for the scalar anchor comparison).
    pub front: CounterSnapshot,
    /// Back-core window counter deltas.
    pub back: CounterSnapshot,
    /// Front-core clock at end of run.
    pub front_clock: Cycles,
    /// Back-core clock at end of run.
    pub back_clock: Cycles,
}

/// Measure one (workload, placement, burst) point. `burst == 0` runs the
/// scalar pipeline.
pub fn measure_point(
    flow: FlowType,
    placement: StagePlacement,
    burst: usize,
    params: ExpParams,
) -> PipelineBatchPoint {
    let mut machine = Machine::new(MachineConfig::westmere());
    let mut spec = flow.spec(params.scale, params.seed);
    spec.structure_seed = flow.structure_seed(params.seed);
    let (front_core, back_core) = placement.cores();
    let (front_domain, back_domain) = placement.domains();
    let pipe = PipelineSpec::new(front_domain).with_burst(burst);
    let (src, sink, _q) = build_pipeline(&mut machine, front_domain, back_domain, &spec, &pipe);
    let lat = sink.latency_handle();
    let mut engine = Engine::new(machine);
    engine.set_task(front_core, Box::new(src));
    engine.set_task(back_core, Box::new(sink));

    let warmup = params.warmup_cycles(engine.machine.config());
    let window = params.window_cycles(engine.machine.config());
    engine.run_until(warmup);
    lat.borrow_mut().reset(); // measure steady-state latencies only
    let f0 = engine.machine.core(front_core).counters.snapshot();
    let b0 = engine.machine.core(back_core).counters.snapshot();
    let t0 = engine.machine.max_clock();
    engine.run_until(t0 + window);
    let front = engine.machine.core(front_core).counters.snapshot().delta(&f0);
    let back = engine.machine.core(back_core).counters.snapshot().delta(&b0);

    let freq_ghz = engine.machine.config().freq_ghz;
    let packets = back.total.packets.max(1) as f64;
    let handoff_cycles = front.tag(HANDOFF_TAG).map(|c| c.cycles()).unwrap_or(0)
        + back.tag(HANDOFF_TAG).map(|c| c.cycles()).unwrap_or(0);
    let us = |cycles: Cycles| cycles as f64 / (freq_ghz * 1e3);
    let lat = lat.borrow();
    PipelineBatchPoint {
        flow,
        placement,
        burst,
        pps: back.total.packets as f64 / (window as f64 / (freq_ghz * 1e9)),
        cycles_per_packet: (front.total.cycles() + back.total.cycles()) as f64 / packets,
        handoff_cycles_per_packet: handoff_cycles as f64 / packets,
        p50_us: us(lat.p50()),
        p95_us: us(lat.p95()),
        p99_us: us(lat.p99()),
        front,
        back,
        front_clock: engine.machine.core(front_core).clock,
        back_clock: engine.machine.core(back_core).clock,
    }
}

/// Assert that two points measured bit-for-bit identically on both cores.
fn assert_anchor(scalar: &PipelineBatchPoint, b1: &PipelineBatchPoint, label: &str) {
    for (side, s, b) in [("front", &scalar.front, &b1.front), ("back", &scalar.back, &b1.back)]
    {
        assert_eq!(s.total, b.total, "{label}: {side} totals must match bit for bit");
        assert_eq!(s.tags.len(), b.tags.len(), "{label}: {side} tag sets");
        for (tag, counts) in &s.tags {
            assert_eq!(Some(counts), b.tag(tag), "{label}: {side} tag {tag}");
        }
    }
    assert_eq!(scalar.front_clock, b1.front_clock, "{label}: front clocks");
    assert_eq!(scalar.back_clock, b1.back_clock, "{label}: back clocks");
}

/// Run the full sweep (scalar anchor plus every burst size per workload and
/// placement).
pub fn measure(ctx: &RunCtx) -> Vec<PipelineBatchPoint> {
    let params = ctx.params;
    let mut items: Vec<(FlowType, StagePlacement, usize)> = Vec::new();
    for &placement in &PLACEMENTS {
        for &flow in &WORKLOADS {
            items.push((flow, placement, 0)); // scalar anchor
            for &b in &BURSTS {
                items.push((flow, placement, b));
            }
        }
    }
    run_many(items, ctx.jobs, move |(flow, placement, burst)| {
        measure_point(flow, placement, burst, params)
    })
}

/// Run, verify the anchors and handoff monotonicity, and emit the report.
pub fn run(ctx: &RunCtx) -> Vec<PipelineBatchPoint> {
    ctx.heading("PIPELINE-BATCH — burst-mode cross-core handoff sweep");
    let points = measure(ctx);

    let mut table = Table::new(
        "Pipeline burst sweep: throughput, handoff cost, and latency",
        &[
            "placement",
            "workload",
            "burst",
            "pps",
            "cyc/pkt",
            "handoff cyc/pkt",
            "p50 us",
            "p95 us",
            "p99 us",
            "speedup vs b=1",
        ],
    );
    for &placement in &PLACEMENTS {
        for &flow in &WORKLOADS {
            let pts: Vec<&PipelineBatchPoint> = points
                .iter()
                .filter(|p| p.flow == flow && p.placement == placement)
                .collect();
            let label = format!("{}/{}", placement.name(), flow.name());
            let scalar = pts.iter().find(|p| p.burst == 0).expect("scalar anchor");
            let b1 = pts.iter().find(|p| p.burst == 1).expect("burst=1 anchor");
            assert_anchor(scalar, b1, &label);

            let mut last_handoff = f64::INFINITY;
            for p in pts.iter().filter(|p| p.burst >= 1) {
                assert!(
                    p.handoff_cycles_per_packet < last_handoff,
                    "{label}: handoff cycles/packet must fall monotonically \
                     ({last_handoff:.1} -> {:.1} at burst {})",
                    p.handoff_cycles_per_packet,
                    p.burst
                );
                last_handoff = p.handoff_cycles_per_packet;
                table.row(vec![
                    placement.name().into(),
                    flow.name(),
                    p.burst.to_string(),
                    millions(p.pps),
                    fmt_f(p.cycles_per_packet, 1),
                    fmt_f(p.handoff_cycles_per_packet, 1),
                    fmt_f(p.p50_us, 2),
                    fmt_f(p.p95_us, 2),
                    fmt_f(p.p99_us, 2),
                    fmt_f(p.pps / b1.pps, 2),
                ]);
            }
        }
    }
    ctx.emit("pipeline_batch", &table);
    println!(
        "batching amortizes the handoff's control-line ping-pong (once per burst) and \
         descriptor transfers (one line per {SLOTS_PER_LINE} packets); latency percentiles \
         show what that costs each packet"
    );

    // Fit the C/b + S*ceil(b/L)/b handoff model from the endpoints and
    // report its interpolation error at the interior burst sizes.
    let mut fit_table = Table::new(
        "Handoff model C/b + S*ceil(b/L)/b (fit from burst 1 and 64)",
        &["placement", "workload", "C (ctrl/burst)", "S (slot line)", "worst interp err %"],
    );
    for &placement in &PLACEMENTS {
        for &flow in &WORKLOADS {
            let at = |b: usize| {
                points
                    .iter()
                    .find(|p| p.flow == flow && p.placement == placement && p.burst == b)
                    .map(|p| p.handoff_cycles_per_packet)
                    .expect("swept point")
            };
            let model =
                CrossCoreHandoff::fit(SLOTS_PER_LINE as f64, (1.0, at(1)), (64.0, at(64)));
            let mut worst = 0.0f64;
            for &b in &BURSTS[1..5] {
                let err = (model.cycles_per_packet(b as f64) - at(b)).abs() / at(b) * 100.0;
                worst = worst.max(err);
            }
            fit_table.row(vec![
                placement.name().into(),
                flow.name(),
                fmt_f(model.control_cycles_per_burst, 0),
                fmt_f(model.slot_line_cycles, 0),
                fmt_f(worst, 1),
            ]);
        }
    }
    ctx.emit("pipeline_batch_model", &fit_table);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_points_are_anchored_and_monotone() {
        // A reduced sweep at test scale: the scalar anchor, burst 1, and a
        // few interior sizes for one workload per placement. The full-grid
        // invariants run inside run() (exercised by the CI smoke run).
        let params = ExpParams::quick();
        for placement in [StagePlacement::SameSocket, StagePlacement::CrossSocket] {
            let scalar = measure_point(FlowType::Ip, placement, 0, params);
            let b1 = measure_point(FlowType::Ip, placement, 1, params);
            assert_anchor(&scalar, &b1, placement.name());
            let b8 = measure_point(FlowType::Ip, placement, 8, params);
            let b64 = measure_point(FlowType::Ip, placement, 64, params);
            assert!(
                b1.handoff_cycles_per_packet > b8.handoff_cycles_per_packet
                    && b8.handoff_cycles_per_packet > b64.handoff_cycles_per_packet,
                "{}: handoff cycles/packet must fall: {:.1} -> {:.1} -> {:.1}",
                placement.name(),
                b1.handoff_cycles_per_packet,
                b8.handoff_cycles_per_packet,
                b64.handoff_cycles_per_packet
            );
            assert!(b64.pps > b1.pps, "{}: bursts must lift throughput", placement.name());
            for p in [&b1, &b8, &b64] {
                assert!(p.p50_us > 0.0, "latency must be recorded");
                assert!(p.p50_us <= p.p95_us && p.p95_us <= p.p99_us);
            }
        }
    }
}
