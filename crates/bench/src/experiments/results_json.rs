//! Shared writer for the `*_results.json` CI artifacts.
//!
//! `chaos`, `fleet-chaos`, and `cluster-chaos` each drop a flat JSON
//! summary in the repository root for CI to upload. The shape is always
//! the same — one top-level key holding an array of flat records with
//! string, numeric, and nullable-numeric fields — so the three harnesses
//! share one builder instead of three hand-rolled `format!` blocks that
//! drift apart one field at a time.

use std::fmt::Display;
use std::io::Write as _;

/// One flat record. Fields render in insertion order.
#[derive(Debug, Default)]
pub struct JsonRow {
    fields: Vec<(String, String)>,
}

/// Minimal string escaping for the values these harnesses emit (scenario
/// and flow names): quotes, backslashes, and control characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonRow {
    /// An empty record.
    pub fn new() -> Self {
        JsonRow::default()
    }

    /// Add a quoted string field.
    pub fn str(mut self, key: &str, value: impl Display) -> Self {
        self.fields.push((key.to_string(), format!("\"{}\"", escape(&value.to_string()))));
        self
    }

    /// Add an unquoted field (numbers, booleans).
    pub fn num(mut self, key: &str, value: impl Display) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Add an unquoted field that renders `null` when absent.
    pub fn opt_num(mut self, key: &str, value: Option<impl Display>) -> Self {
        let rendered = value.map(|v| v.to_string()).unwrap_or_else(|| "null".into());
        self.fields.push((key.to_string(), rendered));
        self
    }

    fn render(&self) -> String {
        let body: Vec<String> =
            self.fields.iter().map(|(k, v)| format!("\"{}\": {}", escape(k), v)).collect();
        format!("    {{{}}}", body.join(", "))
    }
}

/// Render the full `{ "<top_key>": [rows...] }` document as the exact
/// bytes `save_results_json` writes. Public so the determinism harness
/// can byte-compare artifacts across `--jobs` counts without touching
/// the filesystem.
pub fn render_document(top_key: &str, rows: &[JsonRow]) -> String {
    let points: Vec<String> = rows.iter().map(JsonRow::render).collect();
    format!("{{\n  \"{}\": [\n{}\n  ]\n}}\n", escape(top_key), points.join(",\n"))
}

/// Write `{ "<top_key>": [rows...] }` to `file_name` in the current
/// directory (the repository root under `repro`), printing the same
/// `[saved …]` / `[warn] …` lines the hand-rolled writers printed. A
/// write failure warns and continues — the artifact is a convenience,
/// not a gate.
pub fn save_results_json(file_name: &str, top_key: &str, rows: &[JsonRow]) {
    let json = render_document(top_key, rows);
    match std::fs::File::create(file_name).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("[saved {file_name}]"),
        Err(e) => eprintln!("[warn] could not write {file_name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_in_insertion_order_with_typed_values() {
        let row = JsonRow::new()
            .str("scenario", "machine-crash")
            .num("windows", 28)
            .num("ok", true)
            .opt_num("recovery", Some(7))
            .opt_num("gap", None::<u32>);
        assert_eq!(
            row.render(),
            "    {\"scenario\": \"machine-crash\", \"windows\": 28, \"ok\": true, \
             \"recovery\": 7, \"gap\": null}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let row = JsonRow::new().str("name", "a\"b\\c\nd");
        assert_eq!(row.render(), "    {\"name\": \"a\\\"b\\\\c\\u000ad\"}");
    }

    #[test]
    fn numeric_formatting_is_unquoted_and_verbatim() {
        // The builders never reformat numbers — callers pick the precision
        // (e.g. `format!("{:.1}")`) and the writer must pass it through
        // byte-for-byte, or the determinism gate's `diff` would flag noise.
        let row = JsonRow::new()
            .num("count", 0u64)
            .num("pps", format_args!("{:.1}", 1234.5678))
            .num("ratio", format_args!("{:.3}", 0.25))
            .num("neg", -17i64)
            .opt_num("missing", None::<f64>);
        assert_eq!(
            row.render(),
            "    {\"count\": 0, \"pps\": 1234.6, \"ratio\": 0.250, \
             \"neg\": -17, \"missing\": null}"
        );
    }

    /// Minimal recursive-descent parser for the subset of JSON the writer
    /// emits (one top-level object, one array of flat objects, string /
    /// bare-token values). No serde in the tree, so round-trip checks
    /// hand-roll the read side.
    mod mini_parse {
        pub fn parse(doc: &str) -> (String, Vec<Vec<(String, String)>>) {
            let mut p = Parser { s: doc.as_bytes(), i: 0 };
            p.ws();
            p.expect(b'{');
            let top = p.string();
            p.ws();
            p.expect(b':');
            p.ws();
            p.expect(b'[');
            let mut rows = Vec::new();
            p.ws();
            while p.peek() != b']' {
                rows.push(p.object());
                p.ws();
                if p.peek() == b',' {
                    p.i += 1;
                    p.ws();
                }
            }
            p.expect(b']');
            p.ws();
            p.expect(b'}');
            (top, rows)
        }

        struct Parser<'a> {
            s: &'a [u8],
            i: usize,
        }

        impl Parser<'_> {
            fn peek(&self) -> u8 {
                self.s[self.i]
            }
            fn ws(&mut self) {
                while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                    self.i += 1;
                }
            }
            fn expect(&mut self, c: u8) {
                assert_eq!(self.peek() as char, c as char, "at byte {}", self.i);
                self.i += 1;
            }
            fn object(&mut self) -> Vec<(String, String)> {
                self.expect(b'{');
                let mut fields = Vec::new();
                self.ws();
                while self.peek() != b'}' {
                    let key = self.string();
                    self.ws();
                    self.expect(b':');
                    self.ws();
                    let value = if self.peek() == b'"' {
                        self.string()
                    } else {
                        self.bare_token()
                    };
                    fields.push((key, value));
                    self.ws();
                    if self.peek() == b',' {
                        self.i += 1;
                        self.ws();
                    }
                }
                self.expect(b'}');
                fields
            }
            fn string(&mut self) -> String {
                self.ws();
                self.expect(b'"');
                let mut out = String::new();
                loop {
                    match self.peek() {
                        b'"' => {
                            self.i += 1;
                            return out;
                        }
                        b'\\' => {
                            self.i += 1;
                            match self.peek() {
                                b'"' => out.push('"'),
                                b'\\' => out.push('\\'),
                                b'u' => {
                                    let hex =
                                        std::str::from_utf8(&self.s[self.i + 1..self.i + 5])
                                            .unwrap();
                                    let code = u32::from_str_radix(hex, 16).unwrap();
                                    out.push(char::from_u32(code).unwrap());
                                    self.i += 4;
                                }
                                other => panic!("unsupported escape \\{}", other as char),
                            }
                            self.i += 1;
                        }
                        _ => {
                            let rest = std::str::from_utf8(&self.s[self.i..]).unwrap();
                            let c = rest.chars().next().unwrap();
                            out.push(c);
                            self.i += c.len_utf8();
                        }
                    }
                }
            }
            fn bare_token(&mut self) -> String {
                let start = self.i;
                while !matches!(self.peek(), b',' | b'}' | b']') && !self.peek().is_ascii_whitespace()
                {
                    self.i += 1;
                }
                String::from_utf8(self.s[start..self.i].to_vec()).unwrap()
            }
        }
    }

    #[test]
    fn rendered_document_parses_back_to_the_input_rows() {
        let rows = vec![
            JsonRow::new()
                .str("scenario", "nic \"hiccup\"\n(burst)")
                .num("windows", 28)
                .num("drop_pct", format_args!("{:.2}", 12.3456))
                .opt_num("recovery_window", Some(7))
                .opt_num("gap", None::<u32>),
            JsonRow::new().str("scenario", "back\\slash").num("ok", true),
        ];
        let doc = render_document("scenarios", &rows);
        let (top, parsed) = mini_parse::parse(&doc);
        assert_eq!(top, "scenarios");
        assert_eq!(parsed.len(), 2);
        // Escaped strings decode back to the original values.
        assert_eq!(parsed[0][0], ("scenario".into(), "nic \"hiccup\"\n(burst)".into()));
        assert_eq!(parsed[1][0], ("scenario".into(), "back\\slash".into()));
        // Numeric and null fields survive verbatim, in insertion order.
        assert_eq!(parsed[0][1], ("windows".into(), "28".into()));
        assert_eq!(parsed[0][2], ("drop_pct".into(), "12.35".into()));
        assert_eq!(parsed[0][3], ("recovery_window".into(), "7".into()));
        assert_eq!(parsed[0][4], ("gap".into(), "null".into()));
        assert_eq!(parsed[1][1], ("ok".into(), "true".into()));
    }

    #[test]
    fn render_document_matches_saved_bytes_shape() {
        // `save_results_json` must write exactly `render_document`'s bytes;
        // the CI gate diffs these files across --jobs runs.
        let doc = render_document("scenarios", &[JsonRow::new().str("s", "x").num("n", 1)]);
        assert_eq!(doc, "{\n  \"scenarios\": [\n    {\"s\": \"x\", \"n\": 1}\n  ]\n}\n");
    }
}
