//! Shared writer for the `*_results.json` CI artifacts.
//!
//! `chaos`, `fleet-chaos`, and `cluster-chaos` each drop a flat JSON
//! summary in the repository root for CI to upload. The shape is always
//! the same — one top-level key holding an array of flat records with
//! string, numeric, and nullable-numeric fields — so the three harnesses
//! share one builder instead of three hand-rolled `format!` blocks that
//! drift apart one field at a time.

use std::fmt::Display;
use std::io::Write as _;

/// One flat record. Fields render in insertion order.
#[derive(Debug, Default)]
pub struct JsonRow {
    fields: Vec<(String, String)>,
}

/// Minimal string escaping for the values these harnesses emit (scenario
/// and flow names): quotes, backslashes, and control characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonRow {
    /// An empty record.
    pub fn new() -> Self {
        JsonRow::default()
    }

    /// Add a quoted string field.
    pub fn str(mut self, key: &str, value: impl Display) -> Self {
        self.fields.push((key.to_string(), format!("\"{}\"", escape(&value.to_string()))));
        self
    }

    /// Add an unquoted field (numbers, booleans).
    pub fn num(mut self, key: &str, value: impl Display) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Add an unquoted field that renders `null` when absent.
    pub fn opt_num(mut self, key: &str, value: Option<impl Display>) -> Self {
        let rendered = value.map(|v| v.to_string()).unwrap_or_else(|| "null".into());
        self.fields.push((key.to_string(), rendered));
        self
    }

    fn render(&self) -> String {
        let body: Vec<String> =
            self.fields.iter().map(|(k, v)| format!("\"{}\": {}", escape(k), v)).collect();
        format!("    {{{}}}", body.join(", "))
    }
}

/// Write `{ "<top_key>": [rows...] }` to `file_name` in the current
/// directory (the repository root under `repro`), printing the same
/// `[saved …]` / `[warn] …` lines the hand-rolled writers printed. A
/// write failure warns and continues — the artifact is a convenience,
/// not a gate.
pub fn save_results_json(file_name: &str, top_key: &str, rows: &[JsonRow]) {
    let points: Vec<String> = rows.iter().map(JsonRow::render).collect();
    let json = format!("{{\n  \"{}\": [\n{}\n  ]\n}}\n", escape(top_key), points.join(",\n"));
    match std::fs::File::create(file_name).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("[saved {file_name}]"),
        Err(e) => eprintln!("[warn] could not write {file_name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_in_insertion_order_with_typed_values() {
        let row = JsonRow::new()
            .str("scenario", "machine-crash")
            .num("windows", 28)
            .num("ok", true)
            .opt_num("recovery", Some(7))
            .opt_num("gap", None::<u32>);
        assert_eq!(
            row.render(),
            "    {\"scenario\": \"machine-crash\", \"windows\": 28, \"ok\": true, \
             \"recovery\": 7, \"gap\": null}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let row = JsonRow::new().str("name", "a\"b\\c\nd");
        assert_eq!(row.render(), "    {\"name\": \"a\\\"b\\\\c\\u000ad\"}");
    }
}
