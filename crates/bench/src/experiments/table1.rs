//! Table 1: solo-run characteristics of each packet-processing type.

use crate::RunCtx;
use pp_core::prelude::*;

/// The paper's Table 1 values:
/// `(name, cpi, l3_refs/s (M), l3_hits/s (M), cycles/pkt, refs/pkt,
/// misses/pkt, l2_hits/pkt)`.
#[allow(clippy::type_complexity)]
pub const PAPER_TABLE1: [(&str, f64, f64, f64, f64, f64, f64, f64); 5] = [
    ("IP", 1.33, 25.85, 20.21, 1813.0, 14.64, 3.19, 18.58),
    ("MON", 1.43, 27.26, 21.32, 2278.0, 19.40, 4.23, 19.58),
    ("FW", 1.63, 2.71, 2.13, 23907.0, 20.22, 4.29, 56.10),
    ("RE", 1.18, 18.18, 5.52, 27433.0, 155.87, 108.51, 45.63),
    ("VPN", 0.56, 9.45, 7.08, 8679.0, 25.63, 6.41, 30.71),
];

/// Run the Table 1 reproduction; returns the measured profiles.
pub fn run(ctx: &RunCtx) -> Vec<SoloProfile> {
    ctx.heading("Table 1 — solo-run characteristics");
    let profiles = SoloProfile::measure_all(&REALISTIC, ctx.params, ctx.jobs);

    let mut ours = Table::new(
        "Measured (this reproduction)",
        &[
            "flow",
            "CPI",
            "L3 refs/s (M)",
            "L3 hits/s (M)",
            "cycles/pkt",
            "L3 refs/pkt",
            "L3 miss/pkt",
            "L2 hits/pkt",
            "Mpps",
            "WS (MB)",
        ],
    );
    for p in &profiles {
        ours.row(vec![
            p.flow.name(),
            fmt_f(p.cpi, 2),
            millions(p.l3_refs_per_sec),
            millions(p.l3_hits_per_sec),
            fmt_f(p.cycles_per_packet, 0),
            fmt_f(p.l3_refs_per_packet, 2),
            fmt_f(p.l3_misses_per_packet, 2),
            fmt_f(p.l2_hits_per_packet, 2),
            fmt_f(p.pps / 1e6, 3),
            fmt_f(p.working_set_bytes as f64 / (1 << 20) as f64, 1),
        ]);
    }
    ctx.emit("table1", &ours);

    let mut paper = Table::new(
        "Paper (Table 1, for comparison)",
        &[
            "flow",
            "CPI",
            "L3 refs/s (M)",
            "L3 hits/s (M)",
            "cycles/pkt",
            "L3 refs/pkt",
            "L3 miss/pkt",
            "L2 hits/pkt",
        ],
    );
    for (n, cpi, rs, hs, cp, rp, mp, l2) in PAPER_TABLE1 {
        paper.row(vec![
            n.to_string(),
            fmt_f(cpi, 2),
            fmt_f(rs, 2),
            fmt_f(hs, 2),
            fmt_f(cp, 0),
            fmt_f(rp, 2),
            fmt_f(mp, 2),
            fmt_f(l2, 2),
        ]);
    }
    println!("{}", paper.render());
    profiles
}
