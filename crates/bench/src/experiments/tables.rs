//! Internet-scale lookup tables in the DRAM-resident regime (PR 10).
//!
//! The paper's forwarding experiments run a 128 000-entry table whose trie
//! fits (mostly) in the L3 — contention for that cache is the story. This
//! sweep asks what happens when the table itself is *internet-scale*: a
//! BGP-shaped ~1M-prefix table whose lookup structure cannot fit in any
//! cache, so the structure walk hits DRAM on nearly every packet.
//!
//! Three structures route the identical table:
//!
//! * **binary-radix** — Click's one-bit-per-level trie (the paper's);
//! * **multibit** — leaf-pushed 8-4-4-... stride trie;
//! * **dir-24-8** — the PR 10 compressed flat table: one 16M-entry
//!   stage-1 array indexed by the top 24 bits, spill blocks for the
//!   /25–/32 tail, ≤2 dependent reads per lookup.
//!
//! The grid is structure × prefix count × batch {1, 64} × {solo, co-run
//! vs 5 SYN_MAX}. From the solo endpoints we re-fit the `F/b + p`
//! amortization split per structure and size; from a SYN ramp at the
//! largest size we re-measure each structure's sensitivity curve and
//! check the paper's §4 predictor — drop interpolated from the curve at
//! the competitors' measured refs/sec — against held-out competitor
//! mixes, recording whether the <3 pp claim survives DRAM-resident
//! state.

use crate::experiments::results_json::{save_results_json, JsonRow};
use crate::RunCtx;
use pp_click::config::{build_config, BuildCtx};
use pp_click::cost::CostModel;
use pp_click::elements::synthetic::SynParams;
use pp_click::flow::{FlowTask, FrameworkChurn};
use pp_click::pipelines::{build_flow, ChainKind, FlowSpec};
use pp_core::prelude::*;
use pp_net::gen::traffic::{TrafficGen, TrafficSpec};
use pp_sim::config::MachineConfig;
use pp_sim::engine::Engine;
use pp_sim::machine::Machine;
use pp_sim::nic::NicQueue;
use pp_sim::types::{CoreId, MemDomain};
use std::cell::RefCell;
use std::rc::Rc;

/// The structures swept: display label, config-registry class.
pub const STRUCTURES: [(&str, &str); 3] = [
    ("binary-radix", "RadixIPLookup"),
    ("multibit", "MultibitIPLookup"),
    ("dir-24-8", "Dir248IPLookup"),
];

/// Batch sizes swept (1 = the scalar path, 64 = the amortized endpoint).
pub const BATCHES: [usize; 2] = [1, 64];

/// Prefix counts swept. The larger one is the DRAM-resident regime: a
/// ~1M-entry BGP-shaped table (the generator saturates the /12 and /16
/// layers a little below the request — see `generate_bgp_table`). The
/// 1M size is kept at *both* scales — it is the point of the sweep, and
/// structure builds are cheap next to the simulation — only the cached
/// baseline size shrinks in quick mode.
pub fn prefix_scales(scale: Scale) -> [usize; 2] {
    match scale {
        Scale::Paper => [128_000, 1_000_000],
        Scale::Test => [8_000, 1_000_000],
    }
}

/// Competitor load co-run against the lookup flow on cores 1..=n.
#[derive(Debug, Clone, PartialEq)]
enum Load {
    Solo,
    Syn(Vec<SynParams>),
}

/// The standard contended load: 5 × SYN_MAX, as in the paper's Fig. 4.
fn max5() -> Vec<SynParams> {
    (1..=5u64).map(|i| SynParams::max(100 + i)).collect()
}

/// One measured run of the lookup flow (solo or contended).
#[derive(Debug, Clone, PartialEq)]
pub struct Measured {
    /// Target packets/sec over the window.
    pub pps: f64,
    /// Target cycles per packet.
    pub cycles_per_packet: f64,
    /// Target L3 references per packet.
    pub l3_refs_per_packet: f64,
    /// Competitors' combined L3 refs/sec (0 for solo runs).
    pub competing_refs_per_sec: f64,
}

/// Build the lookup flow from config text and measure it under `load`.
fn measure_point(
    class: &str,
    n_prefixes: usize,
    batch: usize,
    load: &Load,
    params: ExpParams,
) -> Measured {
    let mut machine = Machine::new(MachineConfig::westmere());
    let cost = CostModel::default();
    let nic = Rc::new(RefCell::new(NicQueue::new(
        machine.allocator(MemDomain(0)),
        256,
        512,
        2048,
    )));
    let structure_seed = params.seed ^ 0xFEED;
    // A minimal forwarding chain — lookup straight to the device. The
    // sweep isolates the *table structure*; the full-pipeline IP chain
    // (CheckIPHeader + DecIPTTL) is the ablations experiment's subject.
    let cfg_text = format!(
        "rt :: {class}(PREFIXES {n_prefixes}, SEED {structure_seed}); \
         out :: ToDevice; rt -> out;"
    );
    let built = {
        let mut bctx = BuildCtx {
            machine: &mut machine,
            domain: MemDomain(0),
            nic: nic.clone(),
            cost,
            seed: structure_seed,
        };
        build_config(&cfg_text, &mut bctx).expect("valid config")
    };
    let churn = FrameworkChurn::new(machine.allocator(MemDomain(0)), &cost);
    // Random destinations: maximal structure traffic, as in the paper's IP
    // sensitivity experiments.
    let mut task = FlowTask::new(
        "tables",
        TrafficGen::new(TrafficSpec::random_dst(64, params.seed ^ 0xA5A5)),
        nic,
        built.graph,
        cost,
    )
    .with_churn(churn);
    if batch > 1 {
        task = task.with_batch_size(batch);
    }

    let mut syn_tasks = Vec::new();
    if let Load::Syn(comps) = load {
        for (i, sp) in comps.iter().enumerate() {
            let core = (i + 1) as u16;
            let mut spec = match params.scale {
                Scale::Paper => FlowSpec::new(ChainKind::Syn(*sp), 100 + core as u64),
                Scale::Test => FlowSpec::small(ChainKind::Syn(*sp), 100 + core as u64),
            };
            spec.structure_seed = structure_seed;
            let b = build_flow(&mut machine, MemDomain(0), &spec);
            syn_tasks.push((CoreId(core), b.task));
        }
    }

    let mut e = Engine::new(machine);
    e.set_task(CoreId(0), Box::new(task));
    for (c, t) in syn_tasks {
        e.set_task(c, Box::new(t));
    }
    let warm = params.warmup_cycles(e.machine.config());
    let win = params.window_cycles(e.machine.config());
    let m = e.measure(warm, win);
    let cm = m.core(CoreId(0)).expect("lookup core measured");
    let competing: f64 = (1..=5u16)
        .filter_map(|i| m.core(CoreId(i)))
        .map(|c| c.metrics.l3_refs_per_sec)
        .sum();
    Measured {
        pps: cm.metrics.pps,
        cycles_per_packet: cm.metrics.cycles_per_packet,
        l3_refs_per_packet: cm.metrics.l3_refs_per_packet,
        competing_refs_per_sec: competing,
    }
}

/// One grid point: structure × size × batch, solo and contended.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// Structure display label.
    pub structure: &'static str,
    /// Prefix count requested from the generator.
    pub prefixes: usize,
    /// Batch size (1 = scalar path).
    pub batch: usize,
    /// Solo measurement.
    pub solo: Measured,
    /// Co-run vs 5 SYN_MAX.
    pub corun: Measured,
}

impl GridPoint {
    /// Drop under the 5 SYN_MAX co-run, percent.
    pub fn drop_pct(&self) -> f64 {
        (self.solo.pps - self.corun.pps) / self.solo.pps * 100.0
    }
}

/// The re-fit `F/b + p` split for one structure × size (solo endpoints).
#[derive(Debug, Clone, PartialEq)]
pub struct FitRow {
    /// Structure display label.
    pub structure: &'static str,
    /// Prefix count.
    pub prefixes: usize,
    /// Per-batch cycles `F`.
    pub per_batch_cycles: f64,
    /// Per-packet cycles `p`.
    pub per_packet_cycles: f64,
    /// `F/(F+p)` at batch 1 — the share batching can amortize away.
    pub amortizable_share_pct: f64,
    /// Model's asymptotic speedup `(F+p)/p`.
    pub max_speedup: f64,
}

/// One held-out predictor validation at the DRAM-resident size, batch 64.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorRow {
    /// Structure display label.
    pub structure: &'static str,
    /// Competitor-mix label.
    pub mix: &'static str,
    /// Competitors' measured L3 refs/sec during the co-run.
    pub competing_refs_per_sec: f64,
    /// Measured drop, percent.
    pub measured_drop_pct: f64,
    /// Drop predicted from the SYN-ramp sensitivity curve, percent.
    pub predicted_drop_pct: f64,
    /// Whether the mix's refs/sec fell beyond the ramp's last point, so
    /// the prediction is a clamped extrapolation (the paper only claims
    /// interpolation within the measured ramp).
    pub extrapolated: bool,
}

impl PredictorRow {
    /// Absolute prediction error in percentage points.
    pub fn error_pp(&self) -> f64 {
        (self.predicted_drop_pct - self.measured_drop_pct).abs()
    }
}

/// Everything the sweep measures, in canonical order.
#[derive(Debug, Clone, PartialEq)]
pub struct TablesReport {
    /// The structure × size × batch grid.
    pub points: Vec<GridPoint>,
    /// Re-fit amortization splits.
    pub fits: Vec<FitRow>,
    /// Held-out predictor validations (largest size, batch 64).
    pub predictor: Vec<PredictorRow>,
}

/// Run the whole sweep at the scale's standard sizes. Points shard across
/// `ctx.jobs` host threads; every point builds its own machine from seeds
/// derived only from `ctx.params`, so results are bit-for-bit identical
/// at any job count.
pub fn measure_all(ctx: &RunCtx) -> TablesReport {
    measure_all_sized(ctx, prefix_scales(ctx.params.scale))
}

/// [`measure_all`] with explicit prefix counts — the determinism harness
/// byte-compares sharded runs at tiny sizes where the regime itself is
/// irrelevant.
pub fn measure_all_sized(ctx: &RunCtx, sizes: [usize; 2]) -> TablesReport {
    let params = ctx.params;
    let dram_size = sizes[1];

    // 1. The grid: each item measures solo + 5×SYN_MAX co-run.
    let mut items: Vec<(&'static str, &'static str, usize, usize)> = Vec::new();
    for (label, class) in STRUCTURES {
        for &n in &sizes {
            for &b in &BATCHES {
                items.push((label, class, n, b));
            }
        }
    }
    let points: Vec<GridPoint> = run_many(items, ctx.jobs, move |(label, class, n, b)| {
        GridPoint {
            structure: label,
            prefixes: n,
            batch: b,
            solo: measure_point(class, n, b, &Load::Solo, params),
            corun: measure_point(class, n, b, &Load::Syn(max5()), params),
        }
    });

    // 2. Re-fit F/b + p per structure × size from the solo endpoints.
    let fits: Vec<FitRow> = STRUCTURES
        .iter()
        .flat_map(|&(label, _)| sizes.iter().map(move |&n| (label, n)))
        .map(|(label, n)| {
            let at = |b: usize| {
                points
                    .iter()
                    .find(|p| p.structure == label && p.prefixes == n && p.batch == b)
                    .expect("grid point")
                    .solo
                    .cycles_per_packet
            };
            let model = BatchAmortization::fit((1.0, at(1)), (64.0, at(64)));
            let f = model.per_batch_cycles;
            let p = model.per_packet_cycles;
            FitRow {
                structure: label,
                prefixes: n,
                per_batch_cycles: f,
                per_packet_cycles: p,
                amortizable_share_pct: f / (f + p) * 100.0,
                max_speedup: model.max_speedup(),
            }
        })
        .collect();

    // 3. Predictor in the DRAM regime: per structure at the largest size,
    //    batch 64 — measure the SYN-ramp sensitivity curve, then check it
    //    on held-out competitor mixes (none of which is a ramp level).
    let levels = ctx.levels.max(2) as u32;
    let ramp_items: Vec<(&'static str, &'static str, u32)> = STRUCTURES
        .iter()
        .flat_map(|&(label, class)| (0..levels).map(move |l| (label, class, l)))
        .collect();
    let ramp: Vec<(&'static str, u32, Measured)> =
        run_many(ramp_items, ctx.jobs, move |(label, class, level)| {
            let comps: Vec<SynParams> =
                (1..=5u64).map(|i| SynParams::ramp(level, levels, 100 + i)).collect();
            (label, level, measure_point(class, dram_size, 64, &Load::Syn(comps), params))
        });

    // A held-out competitor mix: display label + constructor.
    type MixSpec = (&'static str, fn() -> Vec<SynParams>);
    let mixes: [MixSpec; 2] = [
        ("5xMODERATE", || (1..=5u64).map(|i| SynParams::moderate(100 + i)).collect()),
        ("2xMAX+3xMODERATE", || {
            (1..=2u64)
                .map(|i| SynParams::max(100 + i))
                .chain((3..=5u64).map(|i| SynParams::moderate(100 + i)))
                .collect()
        }),
    ];
    let mix_items: Vec<(&'static str, &'static str, &'static str, usize)> = STRUCTURES
        .iter()
        .flat_map(|&(label, class)| {
            mixes.iter().enumerate().map(move |(mi, &(mname, _))| (label, class, mname, mi))
        })
        .collect();
    let mix_runs: Vec<(&'static str, &'static str, Measured)> =
        run_many(mix_items, ctx.jobs, move |(label, class, mname, mi)| {
            (label, mname, measure_point(class, dram_size, 64, &Load::Syn(mixes[mi].1()), params))
        });

    let mut predictor = Vec::new();
    for (label, _) in STRUCTURES {
        let solo = &points
            .iter()
            .find(|p| p.structure == label && p.prefixes == dram_size && p.batch == 64)
            .expect("grid point")
            .solo;
        let curve = SensitivityCurve::from_points(
            ramp.iter()
                .filter(|(l, _, _)| *l == label)
                .map(|(_, _, m)| {
                    (m.competing_refs_per_sec, (solo.pps - m.pps) / solo.pps * 100.0)
                })
                .collect(),
        );
        // The 5×SYN_MAX co-run from the grid is also held out: the ramp's
        // top level reads 32 lines/packet vs SYN_MAX's 64, so its refs/sec
        // sit beyond every ramp point and probe the curve's flat tail.
        let grid_max = points
            .iter()
            .find(|p| p.structure == label && p.prefixes == dram_size && p.batch == 64)
            .expect("grid point");
        let mut rows = vec![("5xSYN_MAX", &grid_max.corun)];
        for (l, mname, m) in &mix_runs {
            if *l == label {
                rows.push((mname, m));
            }
        }
        for (mname, m) in rows {
            predictor.push(PredictorRow {
                structure: label,
                mix: mname,
                competing_refs_per_sec: m.competing_refs_per_sec,
                measured_drop_pct: (solo.pps - m.pps) / solo.pps * 100.0,
                predicted_drop_pct: curve.interpolate(m.competing_refs_per_sec),
                extrapolated: m.competing_refs_per_sec > curve.max_x(),
            });
        }
    }

    TablesReport { points, fits, predictor }
}

/// Flat JSON rows for `TABLES_results.json` (CI artifact; byte-compared
/// across `--jobs` counts by the determinism harness).
pub fn json_rows(report: &TablesReport) -> Vec<JsonRow> {
    let mut rows = Vec::new();
    for p in &report.points {
        rows.push(
            JsonRow::new()
                .str("kind", "point")
                .str("structure", p.structure)
                .num("prefixes", p.prefixes)
                .num("batch", p.batch)
                .num("solo_mpps", format_args!("{:.4}", p.solo.pps / 1e6))
                .num("cycles_per_packet", format_args!("{:.1}", p.solo.cycles_per_packet))
                .num("l3_refs_per_packet", format_args!("{:.2}", p.solo.l3_refs_per_packet))
                .num("drop_vs_5synmax_pct", format_args!("{:.2}", p.drop_pct())),
        );
    }
    for f in &report.fits {
        rows.push(
            JsonRow::new()
                .str("kind", "fit")
                .str("structure", f.structure)
                .num("prefixes", f.prefixes)
                .num("per_batch_cycles", format_args!("{:.0}", f.per_batch_cycles))
                .num("per_packet_cycles", format_args!("{:.0}", f.per_packet_cycles))
                .num("amortizable_share_pct", format_args!("{:.1}", f.amortizable_share_pct))
                .num("max_speedup", format_args!("{:.2}", f.max_speedup)),
        );
    }
    for r in &report.predictor {
        rows.push(
            JsonRow::new()
                .str("kind", "predictor")
                .str("structure", r.structure)
                .str("mix", r.mix)
                .num("competing_mrefs_per_sec", format_args!("{:.1}", r.competing_refs_per_sec / 1e6))
                .num("measured_drop_pct", format_args!("{:.2}", r.measured_drop_pct))
                .num("predicted_drop_pct", format_args!("{:.2}", r.predicted_drop_pct))
                .num("error_pp", format_args!("{:.2}", r.error_pp()))
                .num("extrapolated", r.extrapolated),
        );
    }
    rows
}

/// Run the sweep, emit the report, and assert the PR 10 headline: at the
/// DRAM-resident size with 64-packet batches, DIR-24-8 routes the same
/// table at ≥2× the binary radix trie's throughput.
pub fn run(ctx: &RunCtx) {
    ctx.heading("TABLES — internet-scale lookup structures, DRAM-resident regime");
    let report = measure_all(ctx);
    let sizes = prefix_scales(ctx.params.scale);
    let dram_size = sizes[1];

    let mut t = Table::new(
        "Structure × prefixes × batch: solo throughput, per-packet cost, drop vs 5 SYN_MAX",
        &[
            "structure",
            "prefixes",
            "batch",
            "solo Mpps",
            "cycles/pkt",
            "L3 refs/pkt",
            "drop (%)",
        ],
    );
    for p in &report.points {
        t.row(vec![
            p.structure.to_string(),
            p.prefixes.to_string(),
            p.batch.to_string(),
            fmt_f(p.solo.pps / 1e6, 3),
            fmt_f(p.solo.cycles_per_packet, 1),
            fmt_f(p.solo.l3_refs_per_packet, 2),
            fmt_f(p.drop_pct(), 2),
        ]);
    }
    ctx.emit("tables", &t);

    let mut t = Table::new(
        "Re-fit F/b + p per structure and size (solo batch-1/64 endpoints)",
        &["structure", "prefixes", "F (per batch)", "p (per packet)", "F share (%)", "max speedup"],
    );
    for f in &report.fits {
        t.row(vec![
            f.structure.to_string(),
            f.prefixes.to_string(),
            fmt_f(f.per_batch_cycles, 0),
            fmt_f(f.per_packet_cycles, 0),
            fmt_f(f.amortizable_share_pct, 1),
            fmt_f(f.max_speedup, 2),
        ]);
    }
    ctx.emit("tables_model", &t);
    println!(
        "the cost split shifts with the structure: DRAM-resident walks inflate the\n\
         per-packet term p, so the amortizable share F/(F+p) shrinks — batching buys\n\
         less exactly where the table stops fitting in cache"
    );

    let mut t = Table::new(
        "Contention predictor at the DRAM-resident size, batch 64 (held-out mixes)",
        &[
            "structure",
            "mix",
            "competing Mrefs/s",
            "measured drop %",
            "predicted %",
            "err pp",
            "extrapolated",
        ],
    );
    let mut worst_in_range = 0.0f64;
    let mut worst_extrapolated = 0.0f64;
    for r in &report.predictor {
        if r.extrapolated {
            worst_extrapolated = worst_extrapolated.max(r.error_pp());
        } else {
            worst_in_range = worst_in_range.max(r.error_pp());
        }
        t.row(vec![
            r.structure.to_string(),
            r.mix.to_string(),
            fmt_f(r.competing_refs_per_sec / 1e6, 1),
            fmt_f(r.measured_drop_pct, 2),
            fmt_f(r.predicted_drop_pct, 2),
            fmt_f(r.error_pp(), 2),
            r.extrapolated.to_string(),
        ]);
    }
    ctx.emit("tables_predictor", &t);
    if worst_in_range < 3.0 {
        println!(
            "finding: within the measured ramp the paper's <3 pp claim SURVIVES the\n\
             DRAM-resident regime (worst in-range error {worst_in_range:.2} pp) — a target\n\
             that already misses to DRAM solo has little left for competitors to evict,\n\
             so its curve is shallow and easy to interpolate. Beyond the ramp's last\n\
             point the clamped extrapolation under-predicts by up to\n\
             {worst_extrapolated:.2} pp: the curve has not flattened yet at these\n\
             competing-refs levels, so the ramp must reach the competitors' intensity\n\
             (the paper's method assumes exactly this)"
        );
    } else {
        println!(
            "finding: the paper's <3 pp claim does NOT carry to this DRAM-resident\n\
             configuration even within the measured ramp: worst in-range error\n\
             {worst_in_range:.2} pp (extrapolated worst {worst_extrapolated:.2} pp);\n\
             recorded in TABLES_results.json"
        );
    }

    // PR 10 headline: the compressed flat table vs the paper's trie at the
    // internet-scale size, batched.
    let solo_of = |structure: &str| {
        report
            .points
            .iter()
            .find(|p| p.structure == structure && p.prefixes == dram_size && p.batch == 64)
            .expect("grid point")
            .solo
            .pps
    };
    let radix = solo_of("binary-radix");
    let dir = solo_of("dir-24-8");
    println!(
        "DIR-24-8 at {dram_size} prefixes, batch 64: {:.3} Mpps vs binary radix {:.3} Mpps \
         ({:.2}x)",
        dir / 1e6,
        radix / 1e6,
        dir / radix
    );
    assert!(
        dir >= 2.0 * radix,
        "DIR-24-8 must route the {dram_size}-prefix table at >=2x the binary radix trie \
         with 64-packet batches: {dir:.0} vs {radix:.0} pps"
    );

    save_results_json("TABLES_results.json", "rows", &json_rows(&report));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline claim: at the ~1M-prefix DRAM-resident size with
    /// 64-packet batches, the ≤2-read flat table beats the bit-per-level
    /// trie by ≥2×.
    #[test]
    fn dir248_beats_binary_radix_2x_batched() {
        let params = ExpParams::quick();
        let n = prefix_scales(params.scale)[1];
        let radix = measure_point("RadixIPLookup", n, 64, &Load::Solo, params);
        let dir = measure_point("Dir248IPLookup", n, 64, &Load::Solo, params);
        assert!(
            dir.pps >= 2.0 * radix.pps,
            "dir-24-8 {:.0} pps should be >=2x binary radix {:.0} pps",
            dir.pps,
            radix.pps
        );
        // And the mechanism: far fewer L3 refs per packet.
        assert!(
            dir.l3_refs_per_packet < radix.l3_refs_per_packet / 2.0,
            "refs/pkt {:.2} vs {:.2}",
            dir.l3_refs_per_packet,
            radix.l3_refs_per_packet
        );
    }

    /// Contention bites: the co-run against 5 SYN_MAX never *gains*
    /// throughput, and the measured competing refs/sec is nonzero.
    #[test]
    fn corun_reports_competition_and_nonnegative_drop() {
        let params = ExpParams::quick();
        let n = prefix_scales(params.scale)[0];
        let solo = measure_point("Dir248IPLookup", n, 1, &Load::Solo, params);
        let co = measure_point("Dir248IPLookup", n, 1, &Load::Syn(max5()), params);
        assert!(co.competing_refs_per_sec > 1e6, "SYN_MAX refs missing");
        assert!(co.pps <= solo.pps * 1.01, "co-run should not beat solo");
    }
}
