//! §4 (end): containing hidden aggressiveness by throttling a flow to its
//! profiled memory-access rate.

use crate::RunCtx;
use pp_core::prelude::*;

/// Output of the containment experiment: enforced and unenforced runs.
pub struct ThrottleOutput {
    /// With the controller active.
    pub enforced: ContainmentResult,
    /// Baseline without containment.
    pub unenforced: ContainmentResult,
}

/// Run and report the containment experiment.
pub fn run(ctx: &RunCtx) -> ThrottleOutput {
    ctx.heading("§4 — containing hidden aggressiveness (control-element throttling)");

    let windows = 16;
    let arm_at = 4;
    let enforced = run_containment_demo(ctx.params, windows, arm_at, true);
    let unenforced = run_containment_demo(ctx.params, windows, arm_at, false);

    let mut t = Table::new(
        "Containment timeline (FW flow turns SYN_MAX at window 4)",
        &[
            "window",
            "armed",
            "refs/s enforced (M)",
            "ctl ops",
            "victim Mpps (enforced)",
            "refs/s unenforced (M)",
            "victim Mpps (unenforced)",
        ],
    );
    for (e, u) in enforced.samples.iter().zip(&unenforced.samples) {
        t.row(vec![
            e.window.to_string(),
            if e.armed { "yes".into() } else { "no".into() },
            millions(e.aggressor_refs_per_sec),
            e.control_ops.to_string(),
            fmt_f(e.victim_pps / 1e6, 3),
            millions(u.aggressor_refs_per_sec),
            fmt_f(u.victim_pps / 1e6, 3),
        ]);
    }
    ctx.emit("throttle", &t);

    let tame = enforced.samples[arm_at - 1].aggressor_refs_per_sec;
    println!(
        "profiled (tame) rate {:.2} M refs/s; peak after arming {:.2} M; \
         final enforced {:.2} M vs unenforced {:.2} M",
        tame / 1e6,
        enforced.peak_refs_per_sec() / 1e6,
        enforced.final_refs_per_sec() / 1e6,
        unenforced.final_refs_per_sec() / 1e6,
    );
    println!(
        "paper: the control element ensures each flow performs no more than \
         its profiled cache refs/sec, keeping predictions valid"
    );
    ThrottleOutput { enforced, unenforced }
}
