//! # pp-bench — the reproduction harness
//!
//! One module per table/figure of the paper's evaluation (run them through
//! the `repro` binary: `cargo run --release -p pp-bench --bin repro -- all`),
//! plus criterion microbenchmarks of the substrate and applications under
//! `benches/`.
//!
//! Every experiment prints the same rows/series the paper reports, writes a
//! CSV under `results/`, and — where the paper gives concrete numbers —
//! prints the paper's values alongside for direct comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use pp_core::prelude::*;
use std::path::PathBuf;

/// Shared run context for all experiments.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Measurement parameters (scale, warmup, window).
    pub params: ExpParams,
    /// Host worker threads (`--jobs`) that independent simulation points
    /// are sharded across. `1` is the exact serial path; any value yields
    /// bit-for-bit identical results (each point builds its own engine
    /// from its own derived seed and results merge in canonical order).
    pub jobs: usize,
    /// Where CSVs are written.
    pub out_dir: PathBuf,
    /// SYN ramp length for sensitivity curves.
    pub levels: u8,
}

impl RunCtx {
    /// Paper-scale context writing to `results/`.
    pub fn paper() -> Self {
        RunCtx {
            params: ExpParams::paper(),
            jobs: default_threads(),
            out_dir: PathBuf::from("results"),
            levels: 8,
        }
    }

    /// Quick (test-scale) context: smaller structures, shorter windows,
    /// shorter ramps. Used by integration tests and `--quick`.
    pub fn quick() -> Self {
        RunCtx {
            params: ExpParams::quick(),
            jobs: default_threads(),
            out_dir: PathBuf::from("results"),
            levels: 4,
        }
    }

    /// Print a section heading.
    pub fn heading(&self, title: &str) {
        println!("\n=== {title} ===");
    }

    /// Print a table and persist its CSV under the output directory.
    pub fn emit(&self, file_stem: &str, table: &Table) {
        println!("{}", table.render());
        let path = self.out_dir.join(format!("{file_stem}.csv"));
        match table.write_csv(&path) {
            Ok(()) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("[warn] could not write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_construct() {
        let p = RunCtx::paper();
        assert_eq!(p.levels, 8);
        let q = RunCtx::quick();
        assert!(q.jobs >= 1);
    }
}
