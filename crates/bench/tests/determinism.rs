//! Determinism harness for the parallel sweep runner (PR 9).
//!
//! The `--jobs N` contract is *bit-for-bit*: sharding a sweep's scenario
//! list across host threads must change nothing observable — not one
//! counter, not one digest, not one byte of the emitted JSON — relative
//! to the exact serial path (`--jobs 1`). These tests pin that contract
//! for the three chaos-family sweeps (the sweeps whose scenario loops
//! were serial before PR 9), across randomized scenario subsets, master
//! seeds, and job counts ∈ {1, 2, 8}.
//!
//! Everything runs at the 0.5 ms / 1.5 ms chaos test windows; the point
//! here is equality, not the robustness claims (those stay asserted by
//! each sweep's own `run` test).

use pp_bench::experiments::{chaos, cluster_chaos, fleet_chaos, tables};
use pp_bench::experiments::results_json::render_document;
use pp_bench::RunCtx;
use proptest::prelude::*;

/// A quick-scale context pinned to the chaos test windows, with the
/// given master seed and host job count.
fn det_ctx(jobs: usize, seed: u64) -> RunCtx {
    let mut ctx = RunCtx::quick();
    ctx.params.warmup_ms = 0.5;
    ctx.params.window_ms = 1.5;
    ctx.params.seed = seed;
    ctx.jobs = jobs;
    ctx.out_dir = std::env::temp_dir();
    ctx
}

/// Pick a non-empty subset of `names` from a bitmask, capped at `cap`
/// entries to bound simulation cost. Canonical order is preserved —
/// subsets are about *which* scenarios run, never about reordering.
fn subset_from_mask<'a>(names: &[&'a str], mask: u64, cap: usize) -> Vec<&'a str> {
    let picked: Vec<&str> = names
        .iter()
        .enumerate()
        .filter(|(i, _)| mask >> (i % 64) & 1 == 1)
        .map(|(_, n)| *n)
        .take(cap)
        .collect();
    if picked.is_empty() {
        vec![names[mask as usize % names.len()]]
    } else {
        picked
    }
}

/// The full chaos roster, serial vs. jobs ∈ {2, 8}: merged outcomes and
/// the emitted `CHAOS_results.json` document must be byte-identical.
#[test]
fn chaos_full_roster_is_bitwise_identical_at_jobs_2_and_8() {
    let names = chaos::scenario_names();
    let serial = chaos::measure_scenarios(&det_ctx(1, 42), &names);
    let serial_doc = render_document("scenarios", &chaos::json_rows(&serial));
    for jobs in [2usize, 8] {
        let parallel = chaos::measure_scenarios(&det_ctx(jobs, 42), &names);
        assert_eq!(serial, parallel, "outcomes diverged at --jobs {jobs}");
        let doc = render_document("scenarios", &chaos::json_rows(&parallel));
        assert_eq!(serial_doc, doc, "JSON bytes diverged at --jobs {jobs}");
    }
}

/// Subset runs return exactly the full roster's entries for those
/// scenarios: per-scenario seed derivation means a scenario's result
/// cannot depend on which other scenarios share the sweep.
#[test]
fn chaos_subset_results_equal_full_roster_entries() {
    let names = chaos::scenario_names();
    let full = chaos::measure_scenarios(&det_ctx(1, 42), &names);
    let subset = ["churn", "queue-pressure", "empty-plan"];
    let picked = chaos::measure_scenarios(&det_ctx(8, 42), &subset);
    assert_eq!(picked.len(), subset.len());
    for o in &picked {
        let reference = full
            .iter()
            .find(|f| f.name == o.name)
            .expect("subset scenario missing from full roster");
        assert_eq!(reference, o, "[{}] subset result != full-roster result", o.name);
    }
}

proptest! {
    // Each case runs a scenario subset twice (serial + sharded), so the
    // case count stays small; the subset, master seed, and job count all
    // vary per case.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Randomized subsets × seeds × jobs ∈ {2, 8}: sharded outcomes and
    /// JSON bytes equal the exact serial path.
    #[test]
    fn chaos_random_subsets_match_serial(mask in any::<u64>(), seed in any::<u64>(), j8 in any::<bool>()) {
        let names = chaos::scenario_names();
        let subset = subset_from_mask(&names, mask, 3);
        let jobs = if j8 { 8 } else { 2 };
        let serial = chaos::measure_scenarios(&det_ctx(1, seed), &subset);
        let parallel = chaos::measure_scenarios(&det_ctx(jobs, seed), &subset);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(
            render_document("scenarios", &chaos::json_rows(&serial)),
            render_document("scenarios", &chaos::json_rows(&parallel))
        );
    }
}

/// The fleet sweep (tenant supervisor) sharded across 4 jobs vs. serial,
/// on a subset that includes the twin-bearing `fleet-empty-plan`
/// scenario — so the supervisor-free twin identity is also re-asserted
/// under sharding (it runs inside `measure_scenarios`).
#[test]
fn fleet_sweep_is_bitwise_identical_across_jobs() {
    let subset = ["sick-core", "fleet-empty-plan"];
    let serial = fleet_chaos::measure_scenarios(&det_ctx(1, 42), &subset);
    let parallel = fleet_chaos::measure_scenarios(&det_ctx(4, 42), &subset);
    assert_eq!(serial, parallel, "fleet outcomes diverged across jobs");
    assert_eq!(
        render_document("scenarios", &fleet_chaos::json_rows(&serial)),
        render_document("scenarios", &fleet_chaos::json_rows(&parallel)),
        "FLEET_CHAOS_results.json bytes diverged across jobs"
    );
}

/// The tables sweep (PR 10) sharded across 4 jobs vs. serial: grid
/// points, model fits, predictor rows, and the `TABLES_results.json`
/// bytes must all match the exact serial path. Tiny table sizes — the
/// regime is irrelevant here, only shard-order independence.
#[test]
fn tables_sweep_is_bitwise_identical_across_jobs() {
    let sizes = [1_000usize, 4_000];
    let mut serial_ctx = det_ctx(1, 42);
    serial_ctx.levels = 2;
    let mut parallel_ctx = det_ctx(4, 42);
    parallel_ctx.levels = 2;
    let serial = tables::measure_all_sized(&serial_ctx, sizes);
    let parallel = tables::measure_all_sized(&parallel_ctx, sizes);
    assert_eq!(serial, parallel, "tables outcomes diverged across jobs");
    assert_eq!(
        render_document("rows", &tables::json_rows(&serial)),
        render_document("rows", &tables::json_rows(&parallel)),
        "TABLES_results.json bytes diverged across jobs"
    );
}

/// The cluster sweep sharded across 4 jobs vs. serial: per-scenario FNV
/// digests (every core's clock and retired-packet counter across every
/// machine) must match bit-for-bit, as must the merged outcomes and the
/// JSON document.
#[test]
fn cluster_sweep_digests_are_bitwise_identical_across_jobs() {
    let subset = ["machine-crash-restart", "cluster-empty-plan"];
    let serial = cluster_chaos::measure_scenarios(&det_ctx(1, 42), &subset);
    let parallel = cluster_chaos::measure_scenarios(&det_ctx(4, 42), &subset);
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(
            s.digest, p.digest,
            "[{}] digest {:#018x} != {:#018x} across jobs",
            s.name, s.digest, p.digest
        );
    }
    assert_eq!(serial, parallel, "cluster outcomes diverged across jobs");
    assert_eq!(
        render_document("scenarios", &cluster_chaos::json_rows(&serial)),
        render_document("scenarios", &cluster_chaos::json_rows(&parallel)),
        "CLUSTER_CHAOS_results.json bytes diverged across jobs"
    );
}
