//! Property tests for the PR 10 internet-scale tables: the DIR-24-8
//! compressed LPM and the cache-conscious flow table must agree
//! route-for-route / entry-for-entry with their reference structures on
//! random inputs — including the batched paths, which must be lane-wise
//! identical to per-lane scalar lookups (batching may only overlap
//! charges, never change results).

use pp_click::elements::lpm::{Dir248Scratch, Dir248Table};
use pp_click::elements::radix::{
    BinaryRadixTrie, LookupScratch, MultibitScratch, MultibitTrie,
};
use pp_net::gen::prefixes::{linear_lpm, PrefixEntry};
use pp_net::prelude::{FlowKey, FlowTable, Probe, Touch};
use pp_sim::config::MachineConfig;
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, MemDomain};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A random routing table: canonicalized, deduplicated prefixes with
/// lengths across the whole /8../32 band (>24 exercises the DIR-24-8
/// spill blocks).
fn table_strategy() -> impl Strategy<Value = Vec<PrefixEntry>> {
    proptest::collection::vec((any::<u32>(), 8u8..=32, 0u32..64), 1..48).prop_map(|raw| {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (ip, len, next_hop) in raw {
            let shift = 32 - len as u32;
            let addr = if shift == 32 { 0 } else { (ip >> shift) << shift };
            if seen.insert((addr, len)) {
                out.push(PrefixEntry { addr, len, next_hop });
            }
        }
        out
    })
}

/// Destinations that actually exercise the table: raw random addresses
/// plus, for every prefix, one address inside it (its base perturbed in
/// the low bits).
fn probes_for(table: &[PrefixEntry], raw: &[u32]) -> Vec<u32> {
    let mut dsts: Vec<u32> = raw.to_vec();
    for e in table {
        dsts.push(e.addr);
        dsts.push(e.addr | (e.addr >> 7) & !(u32::MAX << (32 - e.len as u32).min(31)));
    }
    dsts
}

proptest! {
    // Every case builds the 16M-entry stage-1 array, so keep the count
    // modest — coverage comes from the randomized tables, not volume.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DIR-24-8 and both tries route every probe exactly like the linear
    /// LPM oracle on random tables.
    #[test]
    fn structures_agree_with_linear_lpm_oracle(
        table in table_strategy(),
        raw in proptest::collection::vec(any::<u32>(), 1..32),
    ) {
        let mut m = Machine::new(MachineConfig::westmere());
        let alloc = m.allocator(MemDomain(0));
        let dir = Dir248Table::build(alloc, &table);
        let radix = BinaryRadixTrie::build(alloc, &table);
        let multibit = MultibitTrie::build(alloc, &table);
        for dst in probes_for(&table, &raw) {
            let want = linear_lpm(&table, dst).map(|e| e.next_hop);
            prop_assert_eq!(dir.lookup_host(dst), want, "dir-24-8 at {:#x}", dst);
            prop_assert_eq!(radix.lookup_host(dst), want, "radix at {:#x}", dst);
            prop_assert_eq!(multibit.lookup_host(dst), want, "multibit at {:#x}", dst);
        }
    }

    /// The batched walks are lane-wise identical to scalar lookups —
    /// same next hop AND same per-lane read count — including batches of
    /// one (the scalar anchor) and batches with duplicate destinations.
    #[test]
    fn batched_lookups_equal_scalar_lanewise(
        table in table_strategy(),
        raw in proptest::collection::vec(any::<u32>(), 1..24),
        dup_from in any::<usize>(),
    ) {
        let mut m = Machine::new(MachineConfig::westmere());
        let alloc = m.allocator(MemDomain(0));
        let dir = Dir248Table::build(alloc, &table);
        let radix = BinaryRadixTrie::build(alloc, &table);
        let multibit = MultibitTrie::build(alloc, &table);

        // Force duplicate keys into the batch: repeat one destination
        // three times (gathers must not merge or reorder lanes).
        let mut dsts = probes_for(&table, &raw);
        let dup = dsts[dup_from % dsts.len()];
        dsts.push(dup);
        dsts.push(dup);
        dsts.push(dup);

        let mut ctx = m.ctx(CoreId(0));
        let mut out = Vec::new();
        for batch in [&dsts[..1], &dsts[..]] {
            let scalar: Vec<(Option<u32>, u32)> =
                batch.iter().map(|&d| dir.lookup(&mut ctx, d)).collect();
            dir.lookup_batch_into(&mut ctx, batch, 4, &mut Dir248Scratch::default(), &mut out);
            prop_assert_eq!(&out, &scalar, "dir-24-8 batch of {}", batch.len());

            let scalar: Vec<(Option<u32>, u32)> =
                batch.iter().map(|&d| radix.lookup(&mut ctx, d)).collect();
            radix.lookup_batch_into(&mut ctx, batch, 4, &mut LookupScratch::default(), &mut out);
            prop_assert_eq!(&out, &scalar, "radix batch of {}", batch.len());

            let scalar: Vec<(Option<u32>, u32)> =
                batch.iter().map(|&d| multibit.lookup(&mut ctx, d)).collect();
            multibit
                .lookup_batch_into(&mut ctx, batch, 4, &mut MultibitScratch::default(), &mut out);
            prop_assert_eq!(&out, &scalar, "multibit batch of {}", batch.len());
        }
    }
}

/// Build a 5-tuple from raw random parts.
fn key(src: u32, dst: u32, ports: u32, proto: u8) -> FlowKey {
    FlowKey {
        src: Ipv4Addr::from(src),
        dst: Ipv4Addr::from(dst),
        protocol: proto,
        src_port: (ports >> 16) as u16,
        dst_port: ports as u16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache-conscious flow table tracks a `HashMap` oracle through a
    /// random insert/update/remove workload. Evictions (bucket window
    /// full) are mirrored into the oracle, so every surviving entry must
    /// agree, and duplicate-key re-insertions must update in place.
    #[test]
    fn flow_table_matches_hashmap_oracle(
        ops in proptest::collection::vec(
            (any::<u8>(), 0u32..96, any::<u32>(), any::<u32>(), any::<u8>()),
            1..300,
        ),
    ) {
        // 16 buckets × 8 slots: small enough that random workloads hit
        // collision, overflow, and eviction paths.
        let mut tab: FlowTable<FlowKey, u64> = FlowTable::new(4);
        let mut oracle: HashMap<FlowKey, u64> = HashMap::new();
        let mut touched: Vec<Touch> = Vec::new();

        for (op, kid, a, b, proto) in ops {
            // A small key universe (96 ids) forces repeats/duplicates.
            let k = key(kid, kid.rotate_left(7) ^ 0xABCD, kid.wrapping_mul(31), proto % 3);
            match op % 3 {
                0 | 1 => {
                    // Upsert value a^b.
                    let v = ((a as u64) << 32) | b as u64;
                    touched.clear();
                    match tab.probe(&k, &mut touched) {
                        Probe::Hit { bucket, slot } => {
                            tab.update_slot(bucket, slot, |old| *old = v, &mut touched);
                            prop_assert!(oracle.contains_key(&k));
                            oracle.insert(k, v);
                        }
                        Probe::Empty { bucket, slot } => {
                            tab.insert_at(bucket, slot, k, v, &mut touched);
                            oracle.insert(k, v);
                        }
                        Probe::Full { bucket, slot } => {
                            let (victim, _) =
                                *tab.entry_at(bucket, slot).expect("full slot occupied");
                            oracle.remove(&victim);
                            tab.clear_slot(bucket, slot, &mut touched);
                            tab.insert_at(bucket, slot, k, v, &mut touched);
                            oracle.insert(k, v);
                        }
                    }
                }
                _ => {
                    touched.clear();
                    prop_assert_eq!(tab.remove(&k, &mut touched), oracle.remove(&k).is_some());
                }
            }
        }

        // Every oracle entry is reachable with the right value, and the
        // table holds nothing else.
        for (k, v) in &oracle {
            prop_assert_eq!(tab.get(k), Some(v), "missing key {:?}", k);
        }
        prop_assert_eq!(tab.occupancy(), oracle.len());
        for (k, v) in tab.iter() {
            prop_assert_eq!(oracle.get(k), Some(v), "stray entry {:?}", k);
        }
    }
}
