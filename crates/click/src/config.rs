//! A Click-style configuration language: declare elements, wire them with
//! `->`, and build a runnable [`ElementGraph`] — the programmability
//! interface the paper gets from Click ("to offer ease of programmability,
//! we rely on the Click network-programming framework").
//!
//! ```text
//! // MON: full IP forwarding plus NetFlow.
//! chk :: CheckIPHeader;
//! rt  :: RadixIPLookup(PREFIXES 32000, SEED 7);
//! nf  :: NetFlow(CAPACITY_LOG2 16);
//! ttl :: DecIPTTL;
//! out :: ToDevice;
//!
//! chk -> rt -> nf -> ttl -> out;
//! ```
//!
//! Output ports select branches: `cl [1] -> drop;` wires `cl`'s port 1.
//! Line (`//`) and block (`/* */`) comments are supported. Arguments are
//! `KEYWORD value` pairs, as in Click.

use crate::cost::CostModel;
use crate::element::Element;
use crate::elements::basic::{CheckIpHeader, Counter, DecIpTtl, Discard, ToDevice};
use crate::elements::control::{Control, ControlHandle};
use crate::elements::firewall::Firewall;
use crate::elements::lpm::Dir248IpLookup;
use crate::elements::netflow::NetFlow;
use crate::elements::radix::{MultibitIpLookup, RadixIpLookup};
use crate::elements::re::{ReConfig, RedundancyElim};
use crate::elements::synthetic::{SynParams, Synthetic};
use crate::elements::vpn::VpnEncrypt;
use crate::graph::ElementGraph;
use pp_net::gen::prefixes::generate_bgp_table;
use pp_net::gen::rules::{generate_classifier_rules, generate_unmatchable_rules};
use pp_sim::machine::Machine;
use pp_sim::nic::NicQueue;
use pp_sim::types::MemDomain;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Errors from parsing or building a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Unexpected character during lexing.
    Lex {
        /// Byte offset in the input.
        at: usize,
        /// The offending character.
        ch: char,
    },
    /// Unexpected token during parsing.
    Parse {
        /// What was found.
        found: String,
        /// What was expected.
        expected: &'static str,
    },
    /// An element class the registry does not know.
    UnknownClass(String),
    /// A connection references an undeclared element.
    UnknownElement(String),
    /// The same name declared twice.
    DuplicateName(String),
    /// A bad or missing argument for an element.
    BadArgument {
        /// The element class.
        class: String,
        /// Description of the problem.
        message: String,
    },
    /// The config contains no connections (no entry point).
    Empty,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Lex { at, ch } => write!(f, "unexpected character {ch:?} at byte {at}"),
            ConfigError::Parse { found, expected } => {
                write!(f, "expected {expected}, found {found}")
            }
            ConfigError::UnknownClass(c) => write!(f, "unknown element class {c}"),
            ConfigError::UnknownElement(n) => {
                write!(f, "connection references undeclared element {n}")
            }
            ConfigError::DuplicateName(n) => write!(f, "element {n} declared twice"),
            ConfigError::BadArgument { class, message } => {
                write!(f, "bad argument for {class}: {message}")
            }
            ConfigError::Empty => write!(f, "configuration declares no connections"),
        }
    }
}

impl std::error::Error for ConfigError {}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    DoubleColon,
    Arrow,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier {s:?}"),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::DoubleColon => write!(f, "'::'"),
            Tok::Arrow => write!(f, "'->'"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::LBracket => write!(f, "'['"),
            Tok::RBracket => write!(f, "']'"),
            Tok::Comma => write!(f, "','"),
            Tok::Semi => write!(f, "';'"),
        }
    }
}

fn lex(input: &str) -> Result<Vec<Tok>, ConfigError> {
    let b = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            ':' if b.get(i + 1) == Some(&b':') => {
                toks.push(Tok::DoubleColon);
                i += 2;
            }
            '-' if b.get(i + 1) == Some(&b'>') => {
                toks.push(Tok::Arrow);
                i += 2;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' && b.get(i + 1).map(|d| d.is_ascii_digit()).unwrap_or(false)) =>
            {
                let start = i;
                i += 1;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i]
                    .parse()
                    .map_err(|_| ConfigError::Lex { at: start, ch: c })?;
                toks.push(Tok::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok::Ident(input[start..i].to_string()));
            }
            other => return Err(ConfigError::Lex { at: i, ch: other }),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------- parser

/// A declared element: `name :: Class(ARGS)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    /// Instance name.
    pub name: String,
    /// Element class.
    pub class: String,
    /// `KEYWORD value` arguments.
    pub args: Vec<(String, i64)>,
}

/// One hop of a connection chain: element name + output port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Element instance name.
    pub name: String,
    /// Output port used when this hop is a source (default 0).
    pub port: u8,
}

/// A parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct ConfigSpec {
    /// Element declarations, in order.
    pub decls: Vec<Decl>,
    /// Connection chains (`a -> b -> c`).
    pub chains: Vec<Vec<Hop>>,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, expected: &'static str) -> Result<(), ConfigError> {
        match self.next() {
            Some(t) if &t == want => Ok(()),
            Some(t) => Err(ConfigError::Parse { found: t.to_string(), expected }),
            None => Err(ConfigError::Parse { found: "end of input".into(), expected }),
        }
    }

    fn ident(&mut self, expected: &'static str) -> Result<String, ConfigError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(ConfigError::Parse { found: t.to_string(), expected }),
            None => Err(ConfigError::Parse { found: "end of input".into(), expected }),
        }
    }

    fn args(&mut self) -> Result<Vec<(String, i64)>, ConfigError> {
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::LParen) {
            return Ok(args);
        }
        self.next(); // '('
        if self.peek() == Some(&Tok::RParen) {
            self.next();
            return Ok(args);
        }
        loop {
            let key = self.ident("argument keyword")?;
            let val = match self.next() {
                Some(Tok::Num(n)) => n,
                Some(t) => {
                    return Err(ConfigError::Parse { found: t.to_string(), expected: "number" })
                }
                None => {
                    return Err(ConfigError::Parse {
                        found: "end of input".into(),
                        expected: "number",
                    })
                }
            };
            args.push((key.to_uppercase(), val));
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                Some(t) => {
                    return Err(ConfigError::Parse {
                        found: t.to_string(),
                        expected: "',' or ')'",
                    })
                }
                None => {
                    return Err(ConfigError::Parse {
                        found: "end of input".into(),
                        expected: "',' or ')'",
                    })
                }
            }
        }
        Ok(args)
    }

    /// A chain hop: `name` or `name [port]` (a leading `[port] name` input
    /// selector is accepted and ignored — elements have one input).
    fn hop(&mut self) -> Result<Hop, ConfigError> {
        if self.peek() == Some(&Tok::LBracket) {
            self.next();
            match self.next() {
                Some(Tok::Num(_)) => {}
                Some(t) => {
                    return Err(ConfigError::Parse {
                        found: t.to_string(),
                        expected: "port number",
                    })
                }
                None => {
                    return Err(ConfigError::Parse {
                        found: "end of input".into(),
                        expected: "port number",
                    })
                }
            }
            self.expect(&Tok::RBracket, "']'")?;
        }
        let name = self.ident("element name")?;
        let mut port = 0u8;
        if self.peek() == Some(&Tok::LBracket) {
            self.next();
            match self.next() {
                Some(Tok::Num(n)) if (0..=255).contains(&n) => port = n as u8,
                Some(t) => {
                    return Err(ConfigError::Parse {
                        found: t.to_string(),
                        expected: "port number",
                    })
                }
                None => {
                    return Err(ConfigError::Parse {
                        found: "end of input".into(),
                        expected: "port number",
                    })
                }
            }
            self.expect(&Tok::RBracket, "']'")?;
        }
        Ok(Hop { name, port })
    }
}

/// Parse a configuration without building it.
pub fn parse_config(input: &str) -> Result<ConfigSpec, ConfigError> {
    let mut p = Parser { toks: lex(input)?, pos: 0 };
    let mut spec = ConfigSpec::default();
    while p.peek().is_some() {
        // Lookahead: `ident ::` is a declaration, otherwise a chain.
        let is_decl = matches!(
            (p.toks.get(p.pos), p.toks.get(p.pos + 1)),
            (Some(Tok::Ident(_)), Some(Tok::DoubleColon))
        );
        if is_decl {
            let name = p.ident("element name")?;
            p.expect(&Tok::DoubleColon, "'::'")?;
            let class = p.ident("element class")?;
            let args = p.args()?;
            if spec.decls.iter().any(|d| d.name == name) {
                return Err(ConfigError::DuplicateName(name));
            }
            spec.decls.push(Decl { name, class, args });
            p.expect(&Tok::Semi, "';'")?;
        } else {
            let mut chain = vec![p.hop()?];
            while p.peek() == Some(&Tok::Arrow) {
                p.next();
                chain.push(p.hop()?);
            }
            p.expect(&Tok::Semi, "';'")?;
            spec.chains.push(chain);
        }
    }
    Ok(spec)
}

// ---------------------------------------------------------------- builder

/// Everything the element constructors need.
pub struct BuildCtx<'a> {
    /// The machine whose allocators back the elements' data.
    pub machine: &'a mut Machine,
    /// NUMA domain for all allocations.
    pub domain: MemDomain,
    /// The flow's NIC queue (for `ToDevice`).
    pub nic: Rc<RefCell<NicQueue>>,
    /// Compute-cost model.
    pub cost: CostModel,
    /// Structure seed for tables.
    pub seed: u64,
}

/// A built graph plus any control handles the config created.
pub struct BuiltConfig {
    /// The wired graph (entry = first element of the first chain).
    pub graph: ElementGraph,
    /// Control handles by element name (from `Control` declarations).
    pub controls: HashMap<String, ControlHandle>,
}

fn arg(args: &[(String, i64)], key: &str) -> Option<i64> {
    args.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

fn construct(
    decl: &Decl,
    ctx: &mut BuildCtx<'_>,
    controls: &mut HashMap<String, ControlHandle>,
) -> Result<Box<dyn Element>, ConfigError> {
    let cost = ctx.cost;
    let a = &decl.args;
    let seed = arg(a, "SEED").map(|s| s as u64).unwrap_or(ctx.seed);
    Ok(match decl.class.as_str() {
        "CheckIPHeader" => Box::new(CheckIpHeader::new(cost)),
        "DecIPTTL" => Box::new(DecIpTtl::new(cost)),
        "ToDevice" => {
            let shared = arg(a, "SHARED").unwrap_or(0) != 0;
            Box::new(ToDevice::new(ctx.nic.clone(), shared))
        }
        "Discard" => Box::new(Discard::default()),
        "Counter" => Box::new(Counter::default()),
        "RadixIPLookup" | "MultibitIPLookup" | "Dir248IPLookup" => {
            let n = arg(a, "PREFIXES").unwrap_or(128_000);
            if n <= 0 {
                return Err(ConfigError::BadArgument {
                    class: decl.class.clone(),
                    message: format!("PREFIXES must be positive, got {n}"),
                });
            }
            let prefixes = generate_bgp_table(n as usize, seed ^ 0x1111);
            let alloc = ctx.machine.allocator(ctx.domain);
            match decl.class.as_str() {
                "RadixIPLookup" => Box::new(RadixIpLookup::new(alloc, &prefixes, cost)),
                "MultibitIPLookup" => Box::new(MultibitIpLookup::new(alloc, &prefixes, cost)),
                _ => Box::new(Dir248IpLookup::new(alloc, &prefixes, cost)),
            }
        }
        "NetFlow" => {
            let log2 = arg(a, "CAPACITY_LOG2").unwrap_or(18);
            if !(1..=28).contains(&log2) {
                return Err(ConfigError::BadArgument {
                    class: decl.class.clone(),
                    message: format!("CAPACITY_LOG2 out of range: {log2}"),
                });
            }
            let alloc = ctx.machine.allocator(ctx.domain);
            // BUCKETED 1 selects the PR 10 cache-conscious layout at the
            // same slot capacity (CAPACITY_LOG2 − 3 buckets of 8 slots).
            let mut nf = if arg(a, "BUCKETED").unwrap_or(0) != 0 {
                NetFlow::new_bucketed(alloc, (log2 as u32).saturating_sub(3), cost)
            } else {
                NetFlow::new(alloc, log2 as u32, cost)
            };
            nf.bidirectional = arg(a, "BIDIRECTIONAL").unwrap_or(1) != 0;
            Box::new(nf)
        }
        "Firewall" => {
            let n = arg(a, "RULES").unwrap_or(1000);
            if n <= 0 {
                return Err(ConfigError::BadArgument {
                    class: decl.class.clone(),
                    message: format!("RULES must be positive, got {n}"),
                });
            }
            let rules = generate_unmatchable_rules(n as usize, seed ^ 0x2222);
            let alloc = ctx.machine.allocator(ctx.domain);
            Box::new(Firewall::new(alloc, &rules, cost))
        }
        "RedundancyElim" => {
            let cfg = ReConfig {
                log2_fp_slots: arg(a, "FP_LOG2").unwrap_or(21) as u32,
                store_bytes: (arg(a, "STORE_MB").unwrap_or(32) as u64) << 20,
                sample_mod: arg(a, "SAMPLE_MOD").unwrap_or(6) as u64,
            };
            let alloc = ctx.machine.allocator(ctx.domain);
            Box::new(RedundancyElim::new(alloc, cfg, cost))
        }
        "VPNEncrypt" => {
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&seed.to_le_bytes());
            key[8..].copy_from_slice(&seed.rotate_left(32).to_le_bytes());
            let alloc = ctx.machine.allocator(ctx.domain);
            Box::new(VpnEncrypt::new(alloc, key, seed, cost))
        }
        "Synthetic" => {
            let params = SynParams {
                ops_per_packet: arg(a, "OPS").unwrap_or(0).max(0) as u64,
                reads_per_packet: arg(a, "READS").unwrap_or(64).max(0) as u32,
                working_set_bytes: (arg(a, "WS_MB").unwrap_or(12).max(1) as u64) << 20,
                mlp: arg(a, "MLP").unwrap_or(8).clamp(1, 64) as u32,
                seed,
            };
            let alloc = ctx.machine.allocator(ctx.domain);
            Box::new(Synthetic::new(alloc, params, cost))
        }
        "Control" => {
            let handle = ControlHandle::new();
            handle.set(arg(a, "OPS").unwrap_or(0).max(0) as u64);
            controls.insert(decl.name.clone(), handle.clone());
            Box::new(Control::new(handle, cost))
        }
        "DPI" => {
            let n = arg(a, "SIGNATURES").unwrap_or(1500);
            if n <= 0 {
                return Err(ConfigError::BadArgument {
                    class: decl.class.clone(),
                    message: format!("SIGNATURES must be positive, got {n}"),
                });
            }
            let sigs = pp_net::gen::signatures::generate_signatures(n as usize, seed ^ 0x3333);
            let mode = if arg(a, "PREVENT").unwrap_or(0) != 0 {
                crate::elements::dpi::DpiMode::Prevent
            } else {
                crate::elements::dpi::DpiMode::Detect
            };
            let alloc = ctx.machine.allocator(ctx.domain);
            Box::new(crate::elements::dpi::Dpi::new(alloc, &sigs, mode, cost))
        }
        "NAT" => {
            let mut cfg = crate::elements::nat::NatConfig::default();
            if let Some(ips) = arg(a, "PUBLIC_IPS") {
                if !(1..=256).contains(&ips) {
                    return Err(ConfigError::BadArgument {
                        class: decl.class.clone(),
                        message: format!("PUBLIC_IPS out of range: {ips}"),
                    });
                }
                cfg.n_public_ips = ips as u16;
            }
            if let Some(l2) = arg(a, "BINDINGS_LOG2") {
                if !(4..=24).contains(&l2) {
                    return Err(ConfigError::BadArgument {
                        class: decl.class.clone(),
                        message: format!("BINDINGS_LOG2 out of range: {l2}"),
                    });
                }
                cfg.log2_bindings = l2 as u32;
            }
            let alloc = ctx.machine.allocator(ctx.domain);
            if arg(a, "BUCKETED").unwrap_or(0) != 0 {
                Box::new(crate::elements::nat::Nat::new_bucketed(alloc, cfg, cost))
            } else {
                Box::new(crate::elements::nat::Nat::new(alloc, cfg, cost))
            }
        }
        "TupleSpaceClassifier" => {
            let n = arg(a, "RULES").unwrap_or(16_000);
            if !(1..=65_535).contains(&n) {
                return Err(ConfigError::BadArgument {
                    class: decl.class.clone(),
                    message: format!("RULES out of range: {n}"),
                });
            }
            let rules = generate_classifier_rules(n as usize, seed ^ 0x4444);
            let alloc = ctx.machine.allocator(ctx.domain);
            Box::new(crate::elements::classifier::TupleSpaceClassifier::new(
                alloc,
                &rules,
                &[],
                cost,
            ))
        }
        other => return Err(ConfigError::UnknownClass(other.to_string())),
    })
}

/// Parse and build a configuration into a runnable graph.
pub fn build_config(input: &str, ctx: &mut BuildCtx<'_>) -> Result<BuiltConfig, ConfigError> {
    let spec = parse_config(input)?;
    if spec.chains.is_empty() {
        return Err(ConfigError::Empty);
    }
    let mut graph = ElementGraph::new(ctx.cost);
    let mut ids: HashMap<String, usize> = HashMap::new();
    let mut controls = HashMap::new();
    for d in &spec.decls {
        let el = construct(d, ctx, &mut controls)?;
        let id = graph.add(el);
        ids.insert(d.name.clone(), id);
    }
    for chain in &spec.chains {
        for pair in chain.windows(2) {
            let from = *ids
                .get(&pair[0].name)
                .ok_or_else(|| ConfigError::UnknownElement(pair[0].name.clone()))?;
            let to = *ids
                .get(&pair[1].name)
                .ok_or_else(|| ConfigError::UnknownElement(pair[1].name.clone()))?;
            graph.connect(from, pair[0].port, to);
        }
        // Single-hop chains still validate the name.
        if chain.len() == 1 && !ids.contains_key(&chain[0].name) {
            return Err(ConfigError::UnknownElement(chain[0].name.clone()));
        }
    }
    let entry = ids[&spec.chains[0][0].name];
    graph.set_entry(entry);
    Ok(BuiltConfig { graph, controls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_net::gen::traffic::{TrafficGen, TrafficSpec};
    use pp_sim::config::MachineConfig;
    use pp_sim::engine::Engine;
    use pp_sim::types::CoreId;

    const MON_CONFIG: &str = r#"
        // MON: full IP forwarding plus NetFlow.
        chk :: CheckIPHeader;
        rt  :: RadixIPLookup(PREFIXES 8000, SEED 7);
        nf  :: NetFlow(CAPACITY_LOG2 14);
        ttl :: DecIPTTL;
        out :: ToDevice;
        chk -> rt -> nf -> ttl -> out;
    "#;

    fn ctx_parts() -> (Machine, Rc<RefCell<NicQueue>>) {
        let mut m = Machine::new(MachineConfig::westmere());
        let nic = Rc::new(RefCell::new(NicQueue::new(
            m.allocator(MemDomain(0)),
            256,
            512,
            2048,
        )));
        (m, nic)
    }

    #[test]
    fn lexes_symbols_comments_numbers() {
        let toks = lex("a :: B(X 5, Y -3); /* c */ a -> b; // t\n").unwrap();
        assert!(toks.contains(&Tok::DoubleColon));
        assert!(toks.contains(&Tok::Arrow));
        assert!(toks.contains(&Tok::Num(5)));
        assert!(toks.contains(&Tok::Num(-3)));
        assert_eq!(toks.iter().filter(|t| **t == Tok::Semi).count(), 2);
    }

    #[test]
    fn lex_rejects_garbage() {
        assert!(matches!(lex("a :: B; $"), Err(ConfigError::Lex { ch: '$', .. })));
    }

    #[test]
    fn parses_decls_and_chains() {
        let spec = parse_config(MON_CONFIG).unwrap();
        assert_eq!(spec.decls.len(), 5);
        assert_eq!(spec.decls[1].class, "RadixIPLookup");
        assert_eq!(arg(&spec.decls[1].args, "PREFIXES"), Some(8000));
        assert_eq!(spec.chains.len(), 1);
        assert_eq!(spec.chains[0].len(), 5);
    }

    #[test]
    fn parses_output_ports() {
        let spec =
            parse_config("a :: Counter; b :: Discard; c :: Discard; a [1] -> b; a -> c;")
                .unwrap();
        assert_eq!(spec.chains[0][0].port, 1);
        assert_eq!(spec.chains[1][0].port, 0);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = parse_config("a :: Counter; a :: Discard; a -> a;").unwrap_err();
        assert_eq!(err, ConfigError::DuplicateName("a".into()));
    }

    #[test]
    fn unknown_class_rejected() {
        let (mut m, nic) = ctx_parts();
        let mut ctx = BuildCtx {
            machine: &mut m,
            domain: MemDomain(0),
            nic,
            cost: CostModel::default(),
            seed: 1,
        };
        let err = build_config("x :: FluxCapacitor; x -> x;", &mut ctx).err().unwrap();
        assert_eq!(err, ConfigError::UnknownClass("FluxCapacitor".into()));
    }

    #[test]
    fn unknown_element_in_chain_rejected() {
        let (mut m, nic) = ctx_parts();
        let mut ctx = BuildCtx {
            machine: &mut m,
            domain: MemDomain(0),
            nic,
            cost: CostModel::default(),
            seed: 1,
        };
        let err = build_config("a :: Counter; a -> ghost;", &mut ctx).err().unwrap();
        assert_eq!(err, ConfigError::UnknownElement("ghost".into()));
    }

    #[test]
    fn built_config_forwards_packets() {
        let (mut m, nic) = ctx_parts();
        let built = {
            let mut ctx = BuildCtx {
                machine: &mut m,
                domain: MemDomain(0),
                nic: nic.clone(),
                cost: CostModel::default(),
                seed: 11,
            };
            build_config(MON_CONFIG, &mut ctx).unwrap()
        };
        let task = crate::flow::FlowTask::new(
            "config-MON",
            TrafficGen::new(TrafficSpec::flow_population(64, 10_000, 3)),
            nic,
            built.graph,
            CostModel::default(),
        );
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(task));
        let meas = e.measure(1_000_000, 5_600_000);
        assert!(meas.core(CoreId(0)).unwrap().metrics.pps > 50_000.0);
    }

    #[test]
    fn bucketed_variants_build_and_forward() {
        let cfg = r#"
            chk :: CheckIPHeader;
            nf  :: NetFlow(CAPACITY_LOG2 14, BUCKETED 1);
            nat :: NAT(BUCKETED 1);
            out :: ToDevice;
            chk -> nf -> nat -> out;
        "#;
        let (mut m, nic) = ctx_parts();
        let built = {
            let mut ctx = BuildCtx {
                machine: &mut m,
                domain: MemDomain(0),
                nic: nic.clone(),
                cost: CostModel::default(),
                seed: 11,
            };
            build_config(cfg, &mut ctx).unwrap()
        };
        let task = crate::flow::FlowTask::new(
            "config-bucketed",
            TrafficGen::new(TrafficSpec::flow_population(64, 1_000, 3)),
            nic,
            built.graph,
            CostModel::default(),
        );
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(task));
        let meas = e.measure(1_000_000, 5_600_000);
        assert!(meas.core(CoreId(0)).unwrap().metrics.pps > 50_000.0);
    }

    #[test]
    fn control_handles_are_exposed() {
        let (mut m, nic) = ctx_parts();
        let mut ctx = BuildCtx {
            machine: &mut m,
            domain: MemDomain(0),
            nic,
            cost: CostModel::default(),
            seed: 1,
        };
        let built = build_config(
            "ctl :: Control(OPS 500); c :: Counter; d :: Discard; ctl -> c -> d;",
            &mut ctx,
        )
        .unwrap();
        assert_eq!(built.controls["ctl"].get(), 500);
        built.controls["ctl"].set(9);
        assert_eq!(built.controls["ctl"].get(), 9);
    }

    #[test]
    fn bad_argument_rejected() {
        let (mut m, nic) = ctx_parts();
        let mut ctx = BuildCtx {
            machine: &mut m,
            domain: MemDomain(0),
            nic,
            cost: CostModel::default(),
            seed: 1,
        };
        let err =
            build_config("rt :: RadixIPLookup(PREFIXES -5); rt -> rt;", &mut ctx).err().unwrap();
        assert!(matches!(err, ConfigError::BadArgument { .. }));
    }

    #[test]
    fn extension_elements_build_from_config() {
        let (mut m, nic) = ctx_parts();
        let built = {
            let mut ctx = BuildCtx {
                machine: &mut m,
                domain: MemDomain(0),
                nic: nic.clone(),
                cost: CostModel::default(),
                seed: 7,
            };
            build_config(
                "chk :: CheckIPHeader; dpi :: DPI(SIGNATURES 200); \
                 nat :: NAT(PUBLIC_IPS 2, BINDINGS_LOG2 10); \
                 cls :: TupleSpaceClassifier(RULES 500); out :: ToDevice; \
                 chk -> dpi -> nat -> cls -> out;",
                &mut ctx,
            )
            .unwrap()
        };
        let task = crate::flow::FlowTask::new(
            "config-ext",
            TrafficGen::new(TrafficSpec::flow_population(256, 1_000, 3)),
            nic,
            built.graph,
            CostModel::default(),
        );
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(task));
        let meas = e.measure(1_000_000, 5_600_000);
        assert!(meas.core(CoreId(0)).unwrap().metrics.pps > 10_000.0);
    }

    #[test]
    fn extension_element_bad_arguments_rejected() {
        for cfg in [
            "d :: DPI(SIGNATURES 0); d -> d;",
            "n :: NAT(PUBLIC_IPS 0); n -> n;",
            "n :: NAT(BINDINGS_LOG2 30); n -> n;",
            "c :: TupleSpaceClassifier(RULES 0); c -> c;",
        ] {
            let (mut m, nic) = ctx_parts();
            let mut ctx = BuildCtx {
                machine: &mut m,
                domain: MemDomain(0),
                nic,
                cost: CostModel::default(),
                seed: 1,
            };
            let err = build_config(cfg, &mut ctx).err().unwrap();
            assert!(matches!(err, ConfigError::BadArgument { .. }), "{cfg}");
        }
    }

    #[test]
    fn empty_config_rejected() {
        let (mut m, nic) = ctx_parts();
        let mut ctx = BuildCtx {
            machine: &mut m,
            domain: MemDomain(0),
            nic,
            cost: CostModel::default(),
            seed: 1,
        };
        assert_eq!(
            build_config("a :: Counter;", &mut ctx).err().unwrap(),
            ConfigError::Empty
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = parse_config("a :: ;").unwrap_err();
        assert!(e.to_string().contains("expected"));
        assert!(ConfigError::UnknownClass("Zap".into()).to_string().contains("Zap"));
    }

    #[test]
    fn branching_config_routes_by_port() {
        let (mut m, nic) = ctx_parts();
        let built = {
            let mut ctx = BuildCtx {
                machine: &mut m,
                domain: MemDomain(0),
                nic: nic.clone(),
                cost: CostModel::default(),
                seed: 2,
            };
            // Counter emits on port 0 only; port 1 is never taken.
            build_config(
                "c :: Counter; keep :: ToDevice; drop :: Discard; c -> keep; c [1] -> drop;",
                &mut ctx,
            )
            .unwrap()
        };
        let task = crate::flow::FlowTask::new(
            "branching",
            TrafficGen::new(TrafficSpec::random_dst(64, 1)),
            nic,
            built.graph,
            CostModel::default(),
        );
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(task));
        let meas = e.measure(100_000, 1_000_000);
        assert!(meas.core(CoreId(0)).unwrap().metrics.pps > 0.0);
    }
}
