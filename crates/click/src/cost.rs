//! The compute-cost model: cycles and instructions charged for the
//! arithmetic work of each processing step.
//!
//! Memory time is *never* in this file — it comes from the simulated cache
//! hierarchy. These constants cover only straight-line compute (hashing,
//! comparisons, checksum math, AES rounds), and were calibrated **once**
//! against Table 1 of the paper (solo-run cycles/packet and CPI for each
//! workload); they are never tuned per experiment. `repro table1` prints
//! the calibration outcome next to the paper's values.

use pp_sim::types::Cycles;

/// Per-step compute costs `(cycles, instructions)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Framework dispatch per element hop.
    pub element_hop: (Cycles, u64),
    /// Per-packet source/driver overhead beyond the charged NIC accesses
    /// (IRQ amortization, prefetch setup, book-keeping arithmetic).
    pub per_packet_overhead: (Cycles, u64),
    /// The portion of [`per_packet_overhead`](Self::per_packet_overhead)
    /// that batching amortizes: interrupt handling, doorbell writes, poll
    /// scheduling. The batched datapath charges this **once per batch**.
    /// Invariant: `batch_fixed_overhead + batch_per_packet_overhead ==
    /// per_packet_overhead`, so a one-packet batch charges exactly what the
    /// scalar path charges.
    pub batch_fixed_overhead: (Cycles, u64),
    /// The irreducibly per-packet portion of the source/driver overhead in
    /// batched mode (per-packet bookkeeping that no batching removes).
    pub batch_per_packet_overhead: (Cycles, u64),
    /// Header validation: version/length checks plus the 10-word IP
    /// checksum verification.
    pub check_ip_header: (Cycles, u64),
    /// Per trie-node step of the longest-prefix-match walk.
    pub lookup_step: (Cycles, u64),
    /// TTL decrement + incremental checksum patch.
    pub dec_ttl: (Cycles, u64),
    /// Flow-key extraction + FNV hash (MON's `flow_statistics` entry).
    pub netflow_hash: (Cycles, u64),
    /// Per-entry flow-table update arithmetic.
    pub netflow_update: (Cycles, u64),
    /// Per-rule evaluation in the sequential firewall scan.
    pub fw_rule: (Cycles, u64),
    /// Per-byte Rabin rolling-hash cost in RE.
    pub rabin_per_byte: (Cycles, u64),
    /// Per-anchor fingerprint handling in RE (beyond table accesses).
    pub re_per_anchor: (Cycles, u64),
    /// Per-AES-round arithmetic (shifts/xors around the T-table loads).
    pub aes_round: (Cycles, u64),
    /// AES per-block overhead (counter increment, XOR into payload).
    pub aes_block_overhead: (Cycles, u64),
    /// Per-payload-byte automaton step in DPI (index arithmetic around the
    /// state-table load).
    pub dpi_byte: (Cycles, u64),
    /// Per-match bookkeeping in DPI (alert record, beyond table accesses).
    pub dpi_match: (Cycles, u64),
    /// Per-binding NAT work (port allocation, header rewrite arithmetic,
    /// incremental checksum patches).
    pub nat_rewrite: (Cycles, u64),
    /// Per-tuple hash-and-probe arithmetic in tuple-space classification.
    pub class_tuple: (Cycles, u64),
    /// One synthetic "CPU operation" (the paper's counter increment).
    pub syn_op: (Cycles, u64),
    /// Queue enqueue/dequeue arithmetic (pipeline mode).
    pub queue_op: (Cycles, u64),
    /// Size of the per-flow "framework" region modelling Click's code +
    /// metadata footprint (instruction stream, element objects, packet
    /// annotations). Real Click touches far more lines per packet than the
    /// element data structures alone; without this pressure the simulated
    /// L1 would unrealistically pin the hot tops of the lookup structures.
    pub framework_region_bytes: u64,
    /// Framework lines touched per packet (rotating sequentially through
    /// the region).
    pub framework_lines_per_packet: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            element_hop: (12, 10),
            per_packet_overhead: (620, 900),
            batch_fixed_overhead: (320, 450),
            batch_per_packet_overhead: (300, 450),
            check_ip_header: (60, 55),
            lookup_step: (7, 8),
            dec_ttl: (12, 10),
            netflow_hash: (45, 40),
            netflow_update: (25, 20),
            fw_rule: (17, 14),
            rabin_per_byte: (5, 5),
            re_per_anchor: (90, 75),
            aes_round: (26, 40),
            aes_block_overhead: (40, 45),
            dpi_byte: (2, 3),
            dpi_match: (30, 25),
            nat_rewrite: (55, 50),
            class_tuple: (22, 20),
            syn_op: (1, 1),
            queue_op: (30, 25),
            framework_region_bytes: 128 * 1024,
            framework_lines_per_packet: 16,
        }
    }
}

impl CostModel {
    /// Charge one `(cycles, instructions)` pair to the context.
    #[inline]
    pub fn charge(ctx: &mut pp_sim::ctx::ExecCtx<'_>, cost: (Cycles, u64)) {
        ctx.compute(cost.0, cost.1);
    }

    /// Charge `cost` once per packet for an `n`-packet batch (one `compute`
    /// call; counter totals equal `n` scalar charges).
    #[inline]
    pub fn charge_n(ctx: &mut pp_sim::ctx::ExecCtx<'_>, cost: (Cycles, u64), n: u64) {
        ctx.compute(cost.0 * n, cost.1 * n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_sane() {
        let c = CostModel::default();
        // Every step costs something.
        for (cy, i) in [
            c.element_hop,
            c.per_packet_overhead,
            c.batch_fixed_overhead,
            c.batch_per_packet_overhead,
            c.check_ip_header,
            c.lookup_step,
            c.dec_ttl,
            c.netflow_hash,
            c.netflow_update,
            c.fw_rule,
            c.rabin_per_byte,
            c.re_per_anchor,
            c.aes_round,
            c.aes_block_overhead,
            c.dpi_byte,
            c.dpi_match,
            c.nat_rewrite,
            c.class_tuple,
            c.syn_op,
            c.queue_op,
        ] {
            assert!(cy >= 1 && i >= 1);
        }
        // The firewall's per-rule cost dominates its packet cost as in the
        // paper (≈14.7k instructions/packet for 1000 rules).
        assert!(c.fw_rule.1 * 1000 > 10_000);
    }

    #[test]
    fn batch_overhead_split_reconstructs_scalar_overhead() {
        // The bit-for-bit batch=1 guarantee depends on this invariant.
        let c = CostModel::default();
        assert_eq!(
            c.batch_fixed_overhead.0 + c.batch_per_packet_overhead.0,
            c.per_packet_overhead.0,
            "cycle split must sum to the scalar per-packet overhead"
        );
        assert_eq!(
            c.batch_fixed_overhead.1 + c.batch_per_packet_overhead.1,
            c.per_packet_overhead.1,
            "instruction split must sum to the scalar per-packet overhead"
        );
    }
}
