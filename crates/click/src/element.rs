//! The element abstraction — the Click programming model.
//!
//! An element receives a packet, does its processing (charging simulated
//! compute and memory), and emits the packet on an output port, drops it,
//! or consumes it (sinks that take ownership of the NIC buffer, like
//! `ToDevice`). Elements are wired into an [`ElementGraph`] and executed on
//! one core; the framework wraps each invocation in the element's function
//! tag so per-function counters work as in the paper's Fig. 7.
//!
//! ## Batched ("vector") execution
//!
//! [`Element::process_batch`] receives a whole vector of packets at once.
//! The default implementation loops over [`Element::process`], so every
//! element works under [`ElementGraph::run_batch`] unchanged; hot elements
//! override it to hoist per-packet setup out of the loop and to overlap
//! independent memory accesses across packets
//! ([`ExecCtx::read_batch`] — the software analogue of the lookahead
//! prefetching that batched dataplanes like VPP use). Overrides must keep
//! one-packet batches charge-identical to the scalar path; the convention
//! is to fall back to the default loop when `pkts.len() == 1`.
//!
//! [`ElementGraph`]: crate::graph::ElementGraph
//! [`ElementGraph::run_batch`]: crate::graph::ElementGraph::run_batch

use pp_net::packet::Packet;
use pp_sim::ctx::ExecCtx;

/// Memory-level parallelism assumed by batched element overrides when they
/// overlap independent per-packet loads with
/// [`ExecCtx::read_batch`] — the software-lookahead degree. Clamped by the
/// machine's `max_mlp`.
pub const BATCH_MLP: u32 = 4;

/// What an element did with the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Emit on output port `n` (follow the graph edge).
    Out(u8),
    /// Discard: processing ends; the flow recycles the NIC buffer.
    Drop,
    /// The element took ownership of the packet and its buffer
    /// (e.g., `ToDevice` transmitted and recycled it).
    Consumed,
}

/// One packet-processing element. See the module docs.
pub trait Element {
    /// The element class name (as would appear in a Click config).
    fn class_name(&self) -> &'static str;

    /// Function tag under which this element's work is counted
    /// (the paper's Fig. 7 profile names: `radix_ip_lookup`,
    /// `flow_statistics`, `check_ip_header`, ...).
    fn tag(&self) -> &'static str;

    /// Process one packet.
    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action;

    /// Process a vector of packets, pushing one [`Action`] per packet (in
    /// packet order) onto `actions`. See the module docs; the default
    /// simply loops over [`process`](Self::process).
    fn process_batch(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        pkts: &mut [Packet],
        actions: &mut Vec<Action>,
    ) {
        for pkt in pkts.iter_mut() {
            actions.push(self.process(ctx, pkt));
        }
    }

    /// Called once when the flow's measurement interval resets (optional;
    /// elements with epoch state hook this).
    fn on_epoch(&mut self) {}
}

#[cfg(test)]
pub(crate) mod test_util {
    //! Shared helpers for element unit tests.

    use pp_net::packet::{Packet, PacketBuilder};
    use pp_sim::config::MachineConfig;
    use pp_sim::machine::Machine;
    use std::net::Ipv4Addr;

    /// A Westmere machine for element tests.
    pub fn machine() -> Machine {
        Machine::new(MachineConfig::westmere())
    }

    /// A valid 64-byte UDP packet.
    pub fn packet() -> Packet {
        PacketBuilder::default().udp(
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(93, 184, 216, 34),
            40_000,
            53,
            &[0xAB; 10],
        )
    }

    /// A valid UDP packet with an exact payload.
    pub fn packet_with_payload(payload: &[u8]) -> Packet {
        PacketBuilder::default().udp(
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(93, 184, 216, 34),
            40_000,
            53,
            payload,
        )
    }
}
