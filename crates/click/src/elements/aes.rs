//! AES-128, implemented from scratch with the classic 32-bit T-table
//! formulation — the style of software AES the paper's 2012-era VPN
//! workload used (pre-AES-NI Click).
//!
//! Besides the plain [`Aes128::encrypt_block`], a *traced* variant reports
//! every table lookup `(table, index)` to a callback, so the VPN element
//! can charge each lookup to the simulated cache hierarchy at the T-tables'
//! simulated addresses. The S-box and T-tables are derived programmatically
//! from the GF(2⁸) arithmetic (no 256-line constant pastes), and verified
//! against the FIPS-197 vectors.

use std::sync::OnceLock;

/// Multiply in GF(2^8) with the AES polynomial x^8 + x^4 + x^3 + x + 1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// The AES tables: S-box, inverse is not needed (CTR mode only encrypts).
struct Tables {
    sbox: [u8; 256],
    /// T0..T3: the four round tables (each entry combines SubBytes,
    /// ShiftRows, and MixColumns for one byte position).
    t: [[u32; 256]; 4],
    rcon: [u8; 11],
}

fn build_tables() -> Tables {
    // Multiplicative inverse via exhaustive search (256^2 once, at init).
    let mut inv = [0u8; 256];
    for a in 1..=255u8 {
        for b in 1..=255u8 {
            if gf_mul(a, b) == 1 {
                inv[a as usize] = b;
                break;
            }
        }
    }
    let mut sbox = [0u8; 256];
    for (x, s) in sbox.iter_mut().enumerate() {
        let i = inv[x];
        // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
        let mut y = i;
        for r in 1..5 {
            y ^= i.rotate_left(r);
        }
        *s = y ^ 0x63;
    }
    let mut t = [[0u32; 256]; 4];
    for x in 0..256 {
        let s = sbox[x];
        let s2 = gf_mul(s, 2);
        let s3 = gf_mul(s, 3);
        let w = u32::from_be_bytes([s2, s, s, s3]);
        t[0][x] = w;
        t[1][x] = w.rotate_right(8);
        t[2][x] = w.rotate_right(16);
        t[3][x] = w.rotate_right(24);
    }
    let mut rcon = [0u8; 11];
    let mut c = 1u8;
    for r in rcon.iter_mut().skip(1) {
        *r = c;
        c = gf_mul(c, 2);
    }
    Tables { sbox, t, rcon }
}

fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(build_tables)
}

/// Identifies which table a traced lookup hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableRef {
    /// Round table T0..T3.
    T(u8),
    /// The S-box (final round).
    Sbox,
}

/// An AES-128 key schedule.
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [u32; 44],
}

impl Aes128 {
    /// Expand a 128-bit key.
    pub fn new(key: [u8; 16]) -> Self {
        let tb = tables();
        let mut w = [0u32; 44];
        for i in 0..4 {
            w[i] = u32::from_be_bytes([
                key[4 * i],
                key[4 * i + 1],
                key[4 * i + 2],
                key[4 * i + 3],
            ]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                let rot = temp.rotate_left(8);
                let b = rot.to_be_bytes();
                temp = u32::from_be_bytes([
                    tb.sbox[b[0] as usize],
                    tb.sbox[b[1] as usize],
                    tb.sbox[b[2] as usize],
                    tb.sbox[b[3] as usize],
                ]) ^ ((tb.rcon[i / 4] as u32) << 24);
            }
            w[i] = w[i - 4] ^ temp;
        }
        Aes128 { round_keys: w }
    }

    /// Encrypt one block (pure computation, no tracing).
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        self.encrypt_block_traced(block, &mut |_, _| {})
    }

    /// Encrypt one block, reporting every table lookup to `trace`.
    ///
    /// Lookups are reported in execution order: 16 per main round
    /// (rounds 1..=9), then 16 S-box lookups in the final round.
    pub fn encrypt_block_traced(
        &self,
        block: [u8; 16],
        trace: &mut impl FnMut(TableRef, u8),
    ) -> [u8; 16] {
        let tb = tables();
        let rk = &self.round_keys;
        let mut s = [0u32; 4];
        for i in 0..4 {
            s[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]) ^ rk[i];
        }
        for round in 1..10 {
            let mut n = [0u32; 4];
            for (i, nx) in n.iter_mut().enumerate() {
                let b0 = (s[i] >> 24) as u8;
                let b1 = (s[(i + 1) % 4] >> 16) as u8;
                let b2 = (s[(i + 2) % 4] >> 8) as u8;
                let b3 = s[(i + 3) % 4] as u8;
                trace(TableRef::T(0), b0);
                trace(TableRef::T(1), b1);
                trace(TableRef::T(2), b2);
                trace(TableRef::T(3), b3);
                *nx = tb.t[0][b0 as usize]
                    ^ tb.t[1][b1 as usize]
                    ^ tb.t[2][b2 as usize]
                    ^ tb.t[3][b3 as usize]
                    ^ rk[4 * round + i];
            }
            s = n;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        let mut out = [0u8; 16];
        for i in 0..4 {
            let b0 = (s[i] >> 24) as u8;
            let b1 = (s[(i + 1) % 4] >> 16) as u8;
            let b2 = (s[(i + 2) % 4] >> 8) as u8;
            let b3 = s[(i + 3) % 4] as u8;
            for b in [b0, b1, b2, b3] {
                trace(TableRef::Sbox, b);
            }
            let w = u32::from_be_bytes([
                tb.sbox[b0 as usize],
                tb.sbox[b1 as usize],
                tb.sbox[b2 as usize],
                tb.sbox[b3 as usize],
            ]) ^ rk[40 + i];
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Generate `len` bytes of CTR-mode keystream for (`nonce`, starting
    /// `counter`), reporting lookups to `trace`.
    pub fn ctr_keystream_traced(
        &self,
        nonce: u64,
        mut counter: u64,
        len: usize,
        trace: &mut impl FnMut(TableRef, u8),
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&nonce.to_be_bytes());
            block[8..].copy_from_slice(&counter.to_be_bytes());
            let ks = self.encrypt_block_traced(block, trace);
            let take = (len - out.len()).min(16);
            out.extend_from_slice(&ks[..take]);
            counter = counter.wrapping_add(1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_values() {
        let tb = tables();
        assert_eq!(tb.sbox[0x00], 0x63);
        assert_eq!(tb.sbox[0x01], 0x7c);
        assert_eq!(tb.sbox[0x53], 0xed);
        assert_eq!(tb.sbox[0xff], 0x16);
    }

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let pt: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt).to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt).to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn traced_matches_untraced_and_counts_lookups() {
        let aes = Aes128::new([7u8; 16]);
        let block = [0x42u8; 16];
        let mut lookups = 0u32;
        let traced = aes.encrypt_block_traced(block, &mut |_, _| lookups += 1);
        assert_eq!(traced, aes.encrypt_block(block));
        // 9 main rounds x 16 T-lookups + 16 S-box lookups.
        assert_eq!(lookups, 9 * 16 + 16);
    }

    #[test]
    fn ctr_keystream_is_deterministic_and_nonrepeating() {
        let aes = Aes128::new([1u8; 16]);
        let a = aes.ctr_keystream_traced(99, 0, 48, &mut |_, _| {});
        let b = aes.ctr_keystream_traced(99, 0, 48, &mut |_, _| {});
        assert_eq!(a, b);
        assert_ne!(&a[0..16], &a[16..32], "consecutive counter blocks must differ");
        let c = aes.ctr_keystream_traced(100, 0, 16, &mut |_, _| {});
        assert_ne!(&a[0..16], &c[..], "different nonces must differ");
    }

    #[test]
    fn ctr_roundtrip_encrypt_decrypt() {
        let aes = Aes128::new([9u8; 16]);
        let msg = b"attack at dawn, bring snacks!!!".to_vec();
        let ks = aes.ctr_keystream_traced(5, 0, msg.len(), &mut |_, _| {});
        let ct: Vec<u8> = msg.iter().zip(&ks).map(|(m, k)| m ^ k).collect();
        assert_ne!(ct, msg);
        let pt: Vec<u8> = ct.iter().zip(&ks).map(|(c, k)| c ^ k).collect();
        assert_eq!(pt, msg);
    }

    #[test]
    fn gf_mul_basics() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
    }
}
