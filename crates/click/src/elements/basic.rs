//! Small per-packet elements: header validation, TTL decrement, transmit
//! and discard sinks, counters, and a protocol/port classifier.
//!
//! `CheckIPHeader`, `DecIPTTL`, and `ToDevice` override
//! [`Element::process_batch`]: header-line loads are overlapped across the
//! vector ([`ExecCtx::read_batch`] with [`BATCH_MLP`] lookahead), per-packet
//! compute is charged in one hoisted call, and `ToDevice` transmits the
//! whole vector through one amortized `tx_batch`. One-packet batches take
//! the scalar path, keeping batch size 1 charge-identical.

use crate::cost::CostModel;
use crate::element::{Action, Element, BATCH_MLP};
use pp_net::headers::{ethertype, Ipv4Header};
use pp_net::packet::Packet;
use pp_sim::ctx::ExecCtx;
use pp_sim::nic::NicQueue;
use pp_sim::types::Addr;
use std::cell::RefCell;
use std::rc::Rc;

/// `CheckIPHeader`: validate EtherType, IP version/IHL, and the full header
/// checksum (really computed over the packet bytes). Invalid packets are
/// dropped. This is the Fig. 7 `check_ip_header` function: it re-references
/// the same packet header lines on every packet, so its cached data is
/// "almost never evicted by competitors".
pub struct CheckIpHeader {
    cost: CostModel,
    /// Scratch header addresses for the batched path (reused every batch).
    addrs: Vec<Addr>,
    /// Packets that passed validation.
    pub ok: u64,
    /// Packets dropped as invalid.
    pub bad: u64,
}

impl CheckIpHeader {
    /// Build with a cost model.
    pub fn new(cost: CostModel) -> Self {
        CheckIpHeader { cost, addrs: Vec::new(), ok: 0, bad: 0 }
    }

    /// Host-side validation (the real checks; no simulated charges).
    #[inline]
    fn validate(pkt: &Packet) -> bool {
        pkt.ethernet()
            .map(|e| e.ethertype == ethertype::IPV4)
            .unwrap_or(false)
            && pkt.ipv4().is_ok()
            && Ipv4Header::verify_checksum(&pkt.data[pkt.l3_offset()..])
    }

    /// Record and translate one validation result.
    #[inline]
    fn verdict(&mut self, valid: bool) -> Action {
        if valid {
            self.ok += 1;
            Action::Out(0)
        } else {
            self.bad += 1;
            Action::Drop
        }
    }
}

impl Element for CheckIpHeader {
    fn class_name(&self) -> &'static str {
        "CheckIPHeader"
    }

    fn tag(&self) -> &'static str {
        "check_ip_header"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        // First touch of the packet in the processing path: Ethernet + IP
        // headers (34 bytes — one line, two if the buffer straddles).
        if pkt.buf_addr != 0 {
            ctx.read_struct(pkt.buf_addr, 34);
        }
        CostModel::charge(ctx, self.cost.check_ip_header);
        let valid = Self::validate(pkt);
        self.verdict(valid)
    }

    fn process_batch(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        pkts: &mut [Packet],
        actions: &mut Vec<Action>,
    ) {
        if pkts.len() <= 1 {
            for pkt in pkts.iter_mut() {
                actions.push(self.process(ctx, pkt));
            }
            return;
        }
        // The header lines of distinct packets are independent loads: issue
        // them with lookahead so the DCA-delivered lines stream in
        // overlapped, then charge the validation compute once, hoisted.
        self.addrs.clear();
        self.addrs.extend(pkts.iter().filter(|p| p.buf_addr != 0).map(|p| p.buf_addr));
        ctx.read_batch(&self.addrs, BATCH_MLP);
        CostModel::charge_n(ctx, self.cost.check_ip_header, pkts.len() as u64);
        for pkt in pkts.iter() {
            let valid = Self::validate(pkt);
            actions.push(self.verdict(valid));
        }
    }
}

/// `DecIPTTL`: decrement the TTL and patch the checksum incrementally
/// (RFC 1624). Packets whose TTL reaches zero are dropped. Writes the
/// header line (making it dirty — which is what makes pipeline handoffs of
/// the header expensive).
pub struct DecIpTtl {
    cost: CostModel,
    /// Scratch header addresses for the batched path (reused every batch).
    addrs: Vec<Addr>,
    /// Packets dropped because the TTL expired.
    pub expired: u64,
}

impl DecIpTtl {
    /// Build with a cost model.
    pub fn new(cost: CostModel) -> Self {
        DecIpTtl { cost, addrs: Vec::new(), expired: 0 }
    }
}

impl Element for DecIpTtl {
    fn class_name(&self) -> &'static str {
        "DecIPTTL"
    }

    fn tag(&self) -> &'static str {
        "dec_ip_ttl"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        if pkt.buf_addr != 0 {
            let hdr = pkt.buf_addr + pkt.l3_offset() as u64;
            ctx.read(hdr);
            ctx.write(hdr);
        }
        CostModel::charge(ctx, self.cost.dec_ttl);
        match pkt.dec_ttl() {
            Some(_) => Action::Out(0),
            None => {
                self.expired += 1;
                Action::Drop
            }
        }
    }

    fn process_batch(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        pkts: &mut [Packet],
        actions: &mut Vec<Action>,
    ) {
        if pkts.len() <= 1 {
            for pkt in pkts.iter_mut() {
                actions.push(self.process(ctx, pkt));
            }
            return;
        }
        // Overlap the independent header-line loads across the vector; the
        // dirtying writes stay per packet (stores drain through the store
        // buffer, so they are already cheap).
        self.addrs.clear();
        self.addrs.extend(
            pkts.iter().filter(|p| p.buf_addr != 0).map(|p| p.buf_addr + p.l3_offset() as u64),
        );
        ctx.read_batch(&self.addrs, BATCH_MLP);
        for &a in &self.addrs {
            ctx.write(a);
        }
        CostModel::charge_n(ctx, self.cost.dec_ttl, pkts.len() as u64);
        for pkt in pkts.iter_mut() {
            actions.push(match pkt.dec_ttl() {
                Some(_) => Action::Out(0),
                None => {
                    self.expired += 1;
                    Action::Drop
                }
            });
        }
    }
}

/// `ToDevice`: transmit the packet (TX descriptor write) and recycle its
/// buffer into the queue's pool. In pipeline mode (`shared = true`), the
/// recycle touches the pool free-list as cross-core shared data — the
/// paper's §2.2 "extra synchronization between the two cores".
pub struct ToDevice {
    nic: Rc<RefCell<NicQueue>>,
    shared: bool,
    /// Scratch buffer addresses for the batched path (reused every batch).
    bufs: Vec<Addr>,
    /// Packets transmitted.
    pub sent: u64,
}

impl ToDevice {
    /// Transmit into `nic`; `shared` marks cross-core recycling.
    pub fn new(nic: Rc<RefCell<NicQueue>>, shared: bool) -> Self {
        ToDevice { nic, shared, bufs: Vec::new(), sent: 0 }
    }
}

impl Element for ToDevice {
    fn class_name(&self) -> &'static str {
        "ToDevice"
    }

    fn tag(&self) -> &'static str {
        "to_device"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        self.sent += 1;
        if pkt.buf_addr != 0 {
            let mut nic = self.nic.borrow_mut();
            if self.shared {
                nic.tx_shared(ctx, pkt.buf_addr);
            } else {
                nic.tx(ctx, pkt.buf_addr);
            }
            pkt.buf_addr = 0;
        }
        Action::Consumed
    }

    fn process_batch(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        pkts: &mut [Packet],
        actions: &mut Vec<Action>,
    ) {
        if pkts.len() <= 1 {
            for pkt in pkts.iter_mut() {
                actions.push(self.process(ctx, pkt));
            }
            return;
        }
        // One amortized descriptor+free-list transaction for the vector,
        // and one NIC borrow per batch instead of one per packet. In
        // pipeline mode the free list is still cross-core shared data, but
        // the ping-pong is paid once per burst (`tx_shared_batch`).
        self.bufs.clear();
        self.bufs.extend(pkts.iter().filter(|p| p.buf_addr != 0).map(|p| p.buf_addr));
        if !self.bufs.is_empty() {
            let mut nic = self.nic.borrow_mut();
            if self.shared {
                nic.tx_shared_batch(ctx, &self.bufs);
            } else {
                nic.tx_batch(ctx, &self.bufs);
            }
        }
        for pkt in pkts.iter_mut() {
            self.sent += 1;
            pkt.buf_addr = 0;
            actions.push(Action::Consumed);
        }
    }
}

/// `Discard`: drop every packet (the flow recycles the buffer).
#[derive(Default)]
pub struct Discard {
    /// Packets discarded.
    pub count: u64,
}

impl Element for Discard {
    fn class_name(&self) -> &'static str {
        "Discard"
    }

    fn tag(&self) -> &'static str {
        "discard"
    }

    fn process(&mut self, _ctx: &mut ExecCtx<'_>, _pkt: &mut Packet) -> Action {
        self.count += 1;
        Action::Drop
    }
}

/// `Counter`: count packets and bytes, pass through.
#[derive(Default)]
pub struct Counter {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen.
    pub bytes: u64,
}

impl Element for Counter {
    fn class_name(&self) -> &'static str {
        "Counter"
    }

    fn tag(&self) -> &'static str {
        "counter"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        ctx.compute(2, 2);
        self.packets += 1;
        self.bytes += pkt.len() as u64;
        Action::Out(0)
    }
}

/// One classification case for [`Classifier`].
#[derive(Debug, Clone, Copy)]
pub struct ClassRule {
    /// Match this IP protocol (`None` = any).
    pub protocol: Option<u8>,
    /// Match destination ports in this inclusive range (`None` = any).
    pub dst_ports: Option<(u16, u16)>,
    /// Output port when matched.
    pub out: u8,
}

/// `Classifier`: route packets to output ports by protocol / destination
/// port; first matching case wins, otherwise `default_out`.
pub struct Classifier {
    rules: Vec<ClassRule>,
    default_out: u8,
    /// Per-output-port packet counts (indexed by output port).
    pub dispatched: Vec<u64>,
}

impl Classifier {
    /// Build from cases and a default output.
    pub fn new(rules: Vec<ClassRule>, default_out: u8, _cost: CostModel) -> Self {
        let max_port = rules
            .iter()
            .map(|r| r.out)
            .chain(std::iter::once(default_out))
            .max()
            .unwrap_or(0);
        Classifier { rules, default_out, dispatched: vec![0; max_port as usize + 1] }
    }
}

impl Element for Classifier {
    fn class_name(&self) -> &'static str {
        "Classifier"
    }

    fn tag(&self) -> &'static str {
        "classifier"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        if pkt.buf_addr != 0 {
            ctx.read(pkt.buf_addr + pkt.l3_offset() as u64);
        }
        let Ok(key) = pkt.flow_key() else { return Action::Drop };
        for r in &self.rules {
            CostModel::charge(ctx, (3, 3));
            let proto_ok = r.protocol.map(|p| p == key.protocol).unwrap_or(true);
            let port_ok = r
                .dst_ports
                .map(|(lo, hi)| (lo..=hi).contains(&key.dst_port))
                .unwrap_or(true);
            if proto_ok && port_ok {
                self.dispatched[r.out as usize] += 1;
                return Action::Out(r.out);
            }
        }
        self.dispatched[self.default_out as usize] += 1;
        Action::Out(self.default_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet};
    use pp_sim::types::{CoreId, MemDomain};

    #[test]
    fn check_ip_header_accepts_valid() {
        let mut m = machine();
        let mut el = CheckIpHeader::new(CostModel::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        assert_eq!(el.process(&mut ctx, &mut pkt), Action::Out(0));
        assert_eq!(el.ok, 1);
    }

    #[test]
    fn check_ip_header_rejects_corrupt_checksum() {
        let mut m = machine();
        let mut el = CheckIpHeader::new(CostModel::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        pkt.data[20] ^= 0xFF; // corrupt a header byte
        assert_eq!(el.process(&mut ctx, &mut pkt), Action::Drop);
        assert_eq!(el.bad, 1);
    }

    #[test]
    fn check_ip_header_rejects_non_ip() {
        let mut m = machine();
        let mut el = CheckIpHeader::new(CostModel::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        pkt.data[12] = 0x08;
        pkt.data[13] = 0x06; // ARP
        assert_eq!(el.process(&mut ctx, &mut pkt), Action::Drop);
    }

    #[test]
    fn dec_ttl_decrements_and_drops_at_zero() {
        let mut m = machine();
        let mut el = DecIpTtl::new(CostModel::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet(); // TTL 64
        for _ in 0..64 {
            assert_eq!(el.process(&mut ctx, &mut pkt), Action::Out(0));
        }
        assert_eq!(pkt.ipv4().unwrap().ttl, 0);
        assert_eq!(el.process(&mut ctx, &mut pkt), Action::Drop);
        assert_eq!(el.expired, 1);
    }

    #[test]
    fn to_device_transmits_and_recycles() {
        let mut m = machine();
        let nic = Rc::new(RefCell::new(NicQueue::new(
            m.allocator(MemDomain(0)),
            64,
            4,
            2048,
        )));
        let mut el = ToDevice::new(nic.clone(), false);
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        pkt.buf_addr = {
            let mut n = nic.borrow_mut();
            n.rx(&mut ctx, 64).unwrap()
        };
        assert_eq!(el.process(&mut ctx, &mut pkt), Action::Consumed);
        assert_eq!(el.sent, 1);
        assert_eq!(pkt.buf_addr, 0);
        assert_eq!(nic.borrow().free_buffers(), 4);
    }

    #[test]
    fn classifier_dispatches_by_port() {
        let mut m = machine();
        let mut cl = Classifier::new(
            vec![
                ClassRule { protocol: Some(6), dst_ports: None, out: 1 },
                ClassRule { protocol: None, dst_ports: Some((0, 1023)), out: 2 },
            ],
            0,
            CostModel::default(),
        );
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet(); // UDP, dst port 53
        assert_eq!(cl.process(&mut ctx, &mut pkt), Action::Out(2));
        assert_eq!(cl.dispatched[2], 1);
    }

    #[test]
    fn counter_counts() {
        let mut m = machine();
        let mut c = Counter::default();
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        assert_eq!(c.process(&mut ctx, &mut pkt), Action::Out(0));
        assert_eq!(c.packets, 1);
        assert_eq!(c.bytes, pkt.len() as u64);
    }
}
