//! Multi-dimensional packet classification by tuple-space search.
//!
//! The paper's related work cites Ma et al. \[22\] ("Leveraging Parallelism
//! for Multi-dimensional Packet Classification on Software Routers") as one
//! of the conventional workloads general-purpose platforms must carry. We
//! implement the classic tuple-space approach (Srinivasan & Varghese): rules
//! are grouped by their `(src prefix length, dst prefix length)` tuple, each
//! tuple gets an exact-match hash table on the masked address pair, and a
//! lookup probes **every** tuple table, keeping the best (lowest) priority
//! match.
//!
//! The access pattern is a fixed fan of dependent hash probes per packet —
//! per-packet work is almost input-independent (like the paper's FW scan),
//! but the state is a multi-hundred-KB set of hash tables that lives in
//! L2/L3 (like MON's flow table), so the element sits between those two
//! sensitivity classes.

use crate::cost::CostModel;
use crate::element::{Action, Element, BATCH_MLP};
use crate::elements::radix::push_covering_lines;
use pp_net::fivetuple::{fnv1a, FlowKey};
use pp_net::gen::rules::Rule;
use pp_net::packet::Packet;
use pp_sim::arena::{DomainAllocator, SimVec};
use pp_sim::ctx::ExecCtx;

/// A rule packed for tuple-table storage: 24 bytes.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct ClassRec {
    src: u32,
    dst: u32,
    dport_lo: u16,
    dport_hi: u16,
    sport_lo: u16,
    sport_hi: u16,
    /// 255 = any protocol.
    proto: u8,
    /// Bit 0 = occupied, bit 1 = deny.
    flags: u8,
    /// Rule index in the original set; lower wins.
    priority: u16,
}

const OCCUPIED: u8 = 1;
const DENY: u8 = 2;

/// One tuple's metadata: 12 bytes, the hot top of the structure.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct TupleMeta {
    /// Prefix lengths this tuple matches at.
    src_len: u8,
    dst_len: u8,
    _pad: u16,
    /// First slot of this tuple's table within the shared slot array.
    table_off: u32,
    /// Slot-count mask (table sizes are powers of two).
    mask: u32,
}

#[inline]
fn mask_addr(ip: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        let shift = 32 - len as u32;
        (ip >> shift) << shift
    }
}

fn tuple_hash(src_masked: u32, dst_masked: u32) -> u64 {
    let mut b = [0u8; 8];
    b[0..4].copy_from_slice(&src_masked.to_be_bytes());
    b[4..8].copy_from_slice(&dst_masked.to_be_bytes());
    fnv1a(&b)
}

/// The classification verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Index of the winning rule in the original rule set.
    pub rule: u16,
    /// Whether that rule denies the packet.
    pub deny: bool,
}

/// The tuple-space classifier element. See the module docs.
pub struct TupleSpaceClassifier {
    tuples: SimVec<TupleMeta>,
    slots: SimVec<ClassRec>,
    n_rules: usize,
    cost: CostModel,
    /// Packets that matched a non-default rule.
    pub specific_matches: u64,
    /// Packets that fell through to the default rule.
    pub default_matches: u64,
    /// Packets denied (and dropped).
    pub denied: u64,
    /// Total tuple-table probe reads.
    pub probes: u64,
}

impl TupleSpaceClassifier {
    /// Build the tuple tables in `alloc`'s domain. Rule index is priority
    /// (lower wins); `deny` lists rule indices whose action is deny.
    ///
    /// # Panics
    /// If `rules` is empty or holds more than `u16::MAX` entries.
    pub fn new(
        alloc: &mut DomainAllocator,
        rules: &[Rule],
        deny: &[u16],
        cost: CostModel,
    ) -> Self {
        assert!(!rules.is_empty() && rules.len() <= u16::MAX as usize);
        let deny: std::collections::HashSet<u16> = deny.iter().copied().collect();

        // Group rule indices by tuple, preserving priority order.
        let mut groups: std::collections::BTreeMap<(u8, u8), Vec<u16>> =
            std::collections::BTreeMap::new();
        for (i, r) in rules.iter().enumerate() {
            groups.entry((r.src_net.1, r.dst_net.1)).or_default().push(i as u16);
        }

        let mut metas = Vec::with_capacity(groups.len());
        let mut slots: Vec<ClassRec> = Vec::new();
        for (&(src_len, dst_len), members) in &groups {
            let size = (members.len() * 2).next_power_of_two().max(4);
            let mask = (size - 1) as u32;
            let off = slots.len() as u32;
            slots.resize(slots.len() + size, ClassRec::default());
            for &ri in members {
                let r = &rules[ri as usize];
                let h = tuple_hash(r.src_net.0, r.dst_net.0);
                let mut p = h as u32 & mask;
                // Static table, no deletions: linear probe to first hole.
                while slots[(off + p) as usize].flags & OCCUPIED != 0 {
                    p = (p + 1) & mask;
                }
                slots[(off + p) as usize] = ClassRec {
                    src: r.src_net.0,
                    dst: r.dst_net.0,
                    dport_lo: r.dst_ports.0,
                    dport_hi: r.dst_ports.1,
                    sport_lo: r.src_ports.0,
                    sport_hi: r.src_ports.1,
                    proto: r.protocol.unwrap_or(255),
                    flags: OCCUPIED | if deny.contains(&ri) { DENY } else { 0 },
                    priority: ri,
                };
            }
            metas.push(TupleMeta { src_len, dst_len, _pad: 0, table_off: off, mask });
        }

        TupleSpaceClassifier {
            tuples: SimVec::from_vec(alloc, metas),
            slots: SimVec::from_vec(alloc, slots),
            n_rules: rules.len(),
            cost,
            specific_matches: 0,
            default_matches: 0,
            denied: 0,
            probes: 0,
        }
    }

    /// Number of distinct tuples (hash tables probed per packet).
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// Simulated footprint of metadata plus all tuple tables.
    pub fn footprint(&self) -> u64 {
        self.tuples.footprint() + self.slots.footprint()
    }

    #[inline]
    fn rec_matches(rec: &ClassRec, key: &FlowKey, src_m: u32, dst_m: u32) -> bool {
        rec.flags & OCCUPIED != 0
            && rec.src == src_m
            && rec.dst == dst_m
            && (rec.dport_lo..=rec.dport_hi).contains(&key.dst_port)
            && (rec.sport_lo..=rec.sport_hi).contains(&key.src_port)
            && (rec.proto == 255 || rec.proto == key.protocol)
    }

    /// Classify through the simulated memory hierarchy.
    pub fn classify(&mut self, ctx: &mut ExecCtx<'_>, key: &FlowKey) -> Option<Verdict> {
        let src = u32::from(key.src);
        let dst = u32::from(key.dst);
        let mut best: Option<(u16, bool)> = None;
        for t in 0..self.tuples.len() {
            let meta = self.tuples.read(ctx, t);
            CostModel::charge(ctx, self.cost.class_tuple);
            let src_m = mask_addr(src, meta.src_len);
            let dst_m = mask_addr(dst, meta.dst_len);
            let h = tuple_hash(src_m, dst_m) as u32;
            let mut p = h & meta.mask;
            loop {
                self.probes += 1;
                let rec = self.slots.read(ctx, (meta.table_off + p) as usize);
                if rec.flags & OCCUPIED == 0 {
                    break;
                }
                if Self::rec_matches(&rec, key, src_m, dst_m)
                    && best.map(|(bp, _)| rec.priority < bp).unwrap_or(true)
                {
                    best = Some((rec.priority, rec.flags & DENY != 0));
                }
                p = (p + 1) & meta.mask;
            }
        }
        best.map(|(rule, deny)| Verdict { rule, deny })
    }

    /// Batched classification: for each tuple, the metadata record is read
    /// **once per batch** (amortized — every packet probes every tuple, so
    /// the scalar path re-reads it per packet), and each probe round's slot
    /// reads are issued overlapped across lanes
    /// ([`read_batch`](ExecCtx::read_batch)): probe chains are dependent
    /// within a lane but independent across lanes. Matching semantics,
    /// probe counts, and per-packet `class_tuple` compute are identical to
    /// per-packet [`classify`](Self::classify) calls.
    pub fn classify_batch(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        keys: &[FlowKey],
        mlp: u32,
    ) -> Vec<Option<Verdict>> {
        let n = keys.len();
        if n == 0 {
            // No parsable packets: charge nothing, exactly as the scalar
            // path (which drops before classifying) would.
            return Vec::new();
        }
        let mut best: Vec<Option<(u16, bool)>> = vec![None; n];
        let mut probe: Vec<u32> = vec![0; n];
        let mut masked: Vec<(u32, u32)> = vec![(0, 0); n];
        let mut alive: Vec<usize> = Vec::with_capacity(n);
        let mut addrs: Vec<u64> = Vec::with_capacity(n);
        let mut next_alive: Vec<usize> = Vec::with_capacity(n);
        for t in 0..self.tuples.len() {
            let meta = self.tuples.read(ctx, t);
            CostModel::charge_n(ctx, self.cost.class_tuple, n as u64);
            alive.clear();
            for (l, key) in keys.iter().enumerate() {
                let src_m = mask_addr(u32::from(key.src), meta.src_len);
                let dst_m = mask_addr(u32::from(key.dst), meta.dst_len);
                masked[l] = (src_m, dst_m);
                probe[l] = tuple_hash(src_m, dst_m) as u32 & meta.mask;
                alive.push(l);
            }
            while !alive.is_empty() {
                // One probe round: every live lane's slot, overlapped.
                addrs.clear();
                for &l in &alive {
                    push_covering_lines(
                        &mut addrs,
                        self.slots.addr_of((meta.table_off + probe[l]) as usize),
                        self.slots.stride(),
                    );
                }
                ctx.read_batch(&addrs, mlp);
                next_alive.clear();
                for &l in &alive {
                    self.probes += 1;
                    let rec = *self.slots.peek((meta.table_off + probe[l]) as usize);
                    if rec.flags & OCCUPIED == 0 {
                        continue; // chain ends for this lane
                    }
                    let (src_m, dst_m) = masked[l];
                    if Self::rec_matches(&rec, &keys[l], src_m, dst_m)
                        && best[l].map(|(bp, _)| rec.priority < bp).unwrap_or(true)
                    {
                        best[l] = Some((rec.priority, rec.flags & DENY != 0));
                    }
                    probe[l] = (probe[l] + 1) & meta.mask;
                    next_alive.push(l);
                }
                std::mem::swap(&mut alive, &mut next_alive);
            }
        }
        best.into_iter()
            .map(|b| b.map(|(rule, deny)| Verdict { rule, deny }))
            .collect()
    }

    /// Host-side classification (no simulated charges): the oracle used by
    /// tests against a linear scan of the rule set.
    pub fn classify_host(&self, key: &FlowKey) -> Option<Verdict> {
        let src = u32::from(key.src);
        let dst = u32::from(key.dst);
        let mut best: Option<(u16, bool)> = None;
        for t in 0..self.tuples.len() {
            let meta = self.tuples.peek(t);
            let src_m = mask_addr(src, meta.src_len);
            let dst_m = mask_addr(dst, meta.dst_len);
            let h = tuple_hash(src_m, dst_m) as u32;
            let mut p = h & meta.mask;
            loop {
                let rec = self.slots.peek((meta.table_off + p) as usize);
                if rec.flags & OCCUPIED == 0 {
                    break;
                }
                if Self::rec_matches(rec, key, src_m, dst_m)
                    && best.map(|(bp, _)| rec.priority < bp).unwrap_or(true)
                {
                    best = Some((rec.priority, rec.flags & DENY != 0));
                }
                p = (p + 1) & meta.mask;
            }
        }
        best.map(|(rule, deny)| Verdict { rule, deny })
    }
}

impl Element for TupleSpaceClassifier {
    fn class_name(&self) -> &'static str {
        "TupleSpaceClassifier"
    }

    fn tag(&self) -> &'static str {
        "classify_tuples"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        if pkt.buf_addr != 0 {
            ctx.read(pkt.buf_addr + pkt.l3_offset() as u64);
        }
        let Ok(key) = pkt.flow_key() else { return Action::Drop };
        match self.classify(ctx, &key) {
            Some(v) => {
                // The generated sets end with a catch-all default; treat the
                // highest index as "default" for accounting.
                if v.rule as usize + 1 == self.n_rules {
                    self.default_matches += 1;
                } else {
                    self.specific_matches += 1;
                }
                if v.deny {
                    self.denied += 1;
                    Action::Drop
                } else {
                    Action::Out(0)
                }
            }
            None => {
                // No rule at all (no default in the set): drop.
                self.denied += 1;
                Action::Drop
            }
        }
    }

    fn process_batch(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        pkts: &mut [Packet],
        actions: &mut Vec<Action>,
    ) {
        if pkts.len() <= 1 {
            for pkt in pkts.iter_mut() {
                actions.push(self.process(ctx, pkt));
            }
            return;
        }
        let hdrs: Vec<u64> = pkts
            .iter()
            .filter(|p| p.buf_addr != 0)
            .map(|p| p.buf_addr + p.l3_offset() as u64)
            .collect();
        ctx.read_batch(&hdrs, BATCH_MLP);
        let mut keys = Vec::with_capacity(pkts.len());
        let mut lanes = Vec::with_capacity(pkts.len());
        for (i, pkt) in pkts.iter().enumerate() {
            if let Ok(key) = pkt.flow_key() {
                keys.push(key);
                lanes.push(i);
            }
        }
        let verdicts = self.classify_batch(ctx, &keys, BATCH_MLP);
        let mut out = vec![Action::Drop; pkts.len()];
        for (&lane, v) in lanes.iter().zip(verdicts) {
            out[lane] = match v {
                Some(v) => {
                    if v.rule as usize + 1 == self.n_rules {
                        self.default_matches += 1;
                    } else {
                        self.specific_matches += 1;
                    }
                    if v.deny {
                        self.denied += 1;
                        Action::Drop
                    } else {
                        Action::Out(0)
                    }
                }
                None => {
                    self.denied += 1;
                    Action::Drop
                }
            };
        }
        actions.extend(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet};
    use pp_net::gen::rules::{generate_classifier_rules, Rule};
    use pp_net::gen::traffic::{TrafficGen, TrafficSpec};
    use pp_sim::types::{CoreId, MemDomain};

    fn classifier(
        rules: &[Rule],
        deny: &[u16],
    ) -> (pp_sim::machine::Machine, TupleSpaceClassifier) {
        let mut m = machine();
        let c = TupleSpaceClassifier::new(
            m.allocator(MemDomain(0)),
            rules,
            deny,
            CostModel::default(),
        );
        (m, c)
    }

    /// Linear-scan ground truth: the lowest-index matching rule.
    fn linear(rules: &[Rule], key: &FlowKey) -> Option<u16> {
        rules.iter().position(|r| r.matches(key)).map(|i| i as u16)
    }

    #[test]
    fn agrees_with_linear_scan_on_random_traffic() {
        let rules = generate_classifier_rules(2000, 17);
        let (mut m, mut c) = classifier(&rules, &[]);
        let mut g = TrafficGen::new(TrafficSpec::random_dst(64, 5));
        let mut ctx = m.ctx(CoreId(0));
        for i in 0..500 {
            let key = g.next_packet().flow_key().unwrap();
            let got = c.classify(&mut ctx, &key).map(|v| v.rule);
            assert_eq!(got, linear(&rules, &key), "packet {i}: {key}");
        }
    }

    #[test]
    fn host_oracle_equals_simulated_walk() {
        let rules = generate_classifier_rules(500, 23);
        let (mut m, mut c) = classifier(&rules, &[]);
        let mut g = TrafficGen::new(TrafficSpec::random_dst(64, 6));
        let mut ctx = m.ctx(CoreId(0));
        for _ in 0..200 {
            let key = g.next_packet().flow_key().unwrap();
            assert_eq!(c.classify(&mut ctx, &key), c.classify_host(&key));
        }
    }

    #[test]
    fn default_rule_catches_everything() {
        let rules = generate_classifier_rules(100, 2);
        let (mut m, mut c) = classifier(&rules, &[]);
        let mut g = TrafficGen::new(TrafficSpec::random_dst(64, 9));
        let mut ctx = m.ctx(CoreId(0));
        for _ in 0..100 {
            let key = g.next_packet().flow_key().unwrap();
            assert!(c.classify(&mut ctx, &key).is_some(), "default must match {key}");
        }
    }

    #[test]
    fn lowest_index_wins_among_overlaps() {
        // Rule 0 and rule 1 both match; priority goes to rule 0.
        let rules = vec![
            Rule {
                dst_ports: (53, 53),
                ..Rule::any()
            },
            Rule::any(),
        ];
        let (mut m, mut c) = classifier(&rules, &[]);
        let mut ctx = m.ctx(CoreId(0));
        let key = packet().flow_key().unwrap(); // dst port 53
        assert_eq!(c.classify(&mut ctx, &key), Some(Verdict { rule: 0, deny: false }));
        let mut other = key;
        other.dst_port = 80;
        assert_eq!(c.classify(&mut ctx, &other), Some(Verdict { rule: 1, deny: false }));
    }

    #[test]
    fn deny_rules_drop_packets() {
        let rules = vec![
            Rule {
                dst_ports: (53, 53),
                ..Rule::any()
            },
            Rule::any(),
        ];
        let (mut m, mut c) = classifier(&rules, &[0]);
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet(); // dst port 53 -> rule 0 -> deny
        assert_eq!(c.process(&mut ctx, &mut pkt), Action::Drop);
        assert_eq!(c.denied, 1);
    }

    #[test]
    fn every_tuple_is_probed_per_packet() {
        let rules = generate_classifier_rules(1000, 4);
        let (mut m, mut c) = classifier(&rules, &[]);
        let tuples = c.tuple_count() as u64;
        assert!(tuples >= 12);
        let mut ctx = m.ctx(CoreId(0));
        let key = packet().flow_key().unwrap();
        c.classify(&mut ctx, &key);
        assert!(
            c.probes >= tuples,
            "at least one probe per tuple ({} probes, {} tuples)",
            c.probes,
            tuples
        );
    }

    #[test]
    fn footprint_scales_with_rules() {
        let small = generate_classifier_rules(1000, 7);
        let large = generate_classifier_rules(16000, 7);
        let (_m1, c1) = classifier(&small, &[]);
        let (_m2, c2) = classifier(&large, &[]);
        assert!(c2.footprint() > 8 * c1.footprint());
        // Paper-scale (16 k rules) state is hundreds of KB — cacheable, like
        // MON's flow table.
        assert!(c2.footprint() > 512 << 10, "{} B", c2.footprint());
    }

    #[test]
    fn forwards_and_accounts_specific_vs_default() {
        let rules = generate_classifier_rules(4000, 11);
        let (mut m, mut c) = classifier(&rules, &[]);
        let mut g = TrafficGen::new(TrafficSpec::random_dst(64, 31));
        let mut ctx = m.ctx(CoreId(0));
        for _ in 0..300 {
            let mut p = g.next_packet();
            assert_eq!(c.process(&mut ctx, &mut p), Action::Out(0));
        }
        assert_eq!(c.specific_matches + c.default_matches, 300);
        assert!(c.specific_matches > 10, "some traffic matches specific rules");
        assert!(c.default_matches > 100, "most traffic falls through");
    }
}
