//! The control element (§4, "Containing hidden aggressiveness"): a
//! configurable number of simple CPU operations prepended to a flow, used
//! to slow the flow down and cap the rate at which it performs memory
//! accesses. The throttling controller in `pp-core` adjusts the knob via
//! the shared [`ControlHandle`] while monitoring the flow's refs/sec.

use crate::cost::CostModel;
use crate::element::{Action, Element};
use pp_net::packet::Packet;
use pp_sim::ctx::ExecCtx;
use std::cell::Cell;
use std::rc::Rc;

/// Shared knob: CPU operations the control element performs per packet.
#[derive(Debug, Clone, Default)]
pub struct ControlHandle(Rc<Cell<u64>>);

impl ControlHandle {
    /// A handle starting at zero (no throttling).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current ops per packet.
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Set ops per packet.
    pub fn set(&self, ops: u64) {
        self.0.set(ops);
    }
}

/// The control element. See the module docs.
pub struct Control {
    handle: ControlHandle,
    cost: CostModel,
    /// Total throttle cycles injected.
    pub injected_cycles: u64,
}

impl Control {
    /// Build with a shared handle.
    pub fn new(handle: ControlHandle, cost: CostModel) -> Self {
        Control { handle, cost, injected_cycles: 0 }
    }

    /// The shared handle (for the controller side).
    pub fn handle(&self) -> ControlHandle {
        self.handle.clone()
    }
}

impl Element for Control {
    fn class_name(&self) -> &'static str {
        "Control"
    }

    fn tag(&self) -> &'static str {
        "control"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, _pkt: &mut Packet) -> Action {
        let ops = self.handle.get();
        if ops > 0 {
            let cycles = self.cost.syn_op.0 * ops;
            CostModel::charge(ctx, (cycles, self.cost.syn_op.1 * ops));
            self.injected_cycles += cycles;
        }
        Action::Out(0)
    }
}

/// Shared trigger for [`LatentAggressor`]: random reads per packet
/// (0 = dormant).
#[derive(Debug, Clone, Default)]
pub struct AggressorHandle(Rc<Cell<u32>>);

impl AggressorHandle {
    /// A dormant handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current reads per packet.
    pub fn get(&self) -> u32 {
        self.0.get()
    }

    /// Arm (or disarm with 0) the aggressor.
    pub fn set(&self, reads_per_packet: u32) {
        self.0.set(reads_per_packet);
    }
}

/// The §4 "hidden aggressiveness" element: behaves like a no-op during
/// profiling, but once armed (e.g., on receiving "a specially crafted
/// packet, potentially from an attacker") it issues SYN_MAX-style random
/// reads over an L3-sized region on every packet.
pub struct LatentAggressor {
    region: pp_sim::types::Addr,
    lines: u64,
    handle: AggressorHandle,
    rng: rand::rngs::SmallRng,
    addrs: Vec<pp_sim::types::Addr>,
    /// Packets processed while armed.
    pub aggressive_packets: u64,
}

impl LatentAggressor {
    /// Allocate the (initially untouched) attack region in `alloc`'s
    /// domain.
    pub fn new(
        alloc: &mut pp_sim::arena::DomainAllocator,
        region_bytes: u64,
        handle: AggressorHandle,
        seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        let region = alloc.alloc_lines(region_bytes);
        LatentAggressor {
            region,
            lines: region_bytes / pp_sim::types::CACHE_LINE,
            handle,
            rng: rand::rngs::SmallRng::seed_from_u64(seed),
            addrs: Vec::with_capacity(64),
            aggressive_packets: 0,
        }
    }

    /// The shared trigger.
    pub fn handle(&self) -> AggressorHandle {
        self.handle.clone()
    }
}

impl Element for LatentAggressor {
    fn class_name(&self) -> &'static str {
        "LatentAggressor"
    }

    fn tag(&self) -> &'static str {
        "latent_aggressor"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, _pkt: &mut Packet) -> Action {
        use rand::Rng;
        let reads = self.handle.get();
        if reads > 0 {
            self.addrs.clear();
            for _ in 0..reads {
                let line = self.rng.random_range(0..self.lines);
                self.addrs.push(self.region + line * pp_sim::types::CACHE_LINE);
            }
            ctx.read_batch(&self.addrs, 8);
            self.aggressive_packets += 1;
        }
        Action::Out(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet};
    use pp_sim::types::CoreId;

    #[test]
    fn zero_ops_is_free() {
        let mut m = machine();
        let mut c = Control::new(ControlHandle::new(), CostModel::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        assert_eq!(c.process(&mut ctx, &mut pkt), Action::Out(0));
        assert_eq!(m.core(CoreId(0)).counters.total().compute_cycles, 0);
    }

    #[test]
    fn latent_aggressor_dormant_then_armed() {
        let mut m = machine();
        let handle = AggressorHandle::new();
        let mut agg = LatentAggressor::new(
            m.allocator(pp_sim::types::MemDomain(0)),
            1 << 20,
            handle.clone(),
            7,
        );
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        // Dormant: zero memory traffic.
        agg.process(&mut ctx, &mut pkt);
        assert_eq!(m.core(CoreId(0)).counters.total().l1_refs, 0);
        // Armed: bursts of reads.
        handle.set(32);
        let mut ctx = m.ctx(CoreId(0));
        agg.process(&mut ctx, &mut pkt);
        assert_eq!(m.core(CoreId(0)).counters.total().l1_refs, 32);
        assert_eq!(agg.aggressive_packets, 1);
    }

    #[test]
    fn knob_takes_effect_immediately() {
        let mut m = machine();
        let handle = ControlHandle::new();
        let mut c = Control::new(handle.clone(), CostModel::default());
        handle.set(500);
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        c.process(&mut ctx, &mut pkt);
        assert_eq!(m.core(CoreId(0)).counters.total().compute_cycles, 500);
        handle.set(0);
        let before = m.core(CoreId(0)).counters.total().compute_cycles;
        let mut ctx = m.ctx(CoreId(0));
        c.process(&mut ctx, &mut pkt);
        assert_eq!(m.core(CoreId(0)).counters.total().compute_cycles, before);
        assert_eq!(c.injected_cycles, 500);
    }
}
