//! Deep packet inspection: multi-pattern signature matching over payload
//! bytes with an Aho-Corasick automaton.
//!
//! DPI is the canonical "emerging" workload the paper's §6 motivates
//! programmable platforms with ("deep packet inspection, application
//! acceleration ... would require several megabytes of frequently accessed
//! data"). We implement the automaton the way high-rate IDS engines do
//! (Snort's `acsmx` "full" format): the goto/failure trie is compiled into a
//! dense DFA — one 256-entry row of `u32` per state — so matching costs
//! exactly one dependent table load per payload byte.
//!
//! The access pattern is what makes DPI interesting for contention: benign
//! traffic keeps the automaton in shallow states whose rows stay cached
//! (hot-spot behaviour, like the radix-trie root in the paper's Fig. 7),
//! while adversarial "teaser" traffic that echoes signature prefixes drags
//! the walk into deep, cold rows. The same code path thus spans the
//! sensitivity spectrum depending on input — precisely the "hidden
//! aggressiveness" risk §4 ends on.

use crate::cost::CostModel;
use crate::element::{Action, Element};
use pp_net::packet::Packet;
use pp_sim::arena::{DomainAllocator, SimVec};
use pp_sim::ctx::ExecCtx;
use std::collections::BTreeMap;

/// Next-state mask in a DFA entry (24 bits: up to 16 M states).
const STATE_MASK: u32 = 0x00FF_FFFF;
/// Entry flag: the target state has at least one pattern ending in it.
const OUTPUT_BIT: u32 = 1 << 31;

/// A compiled Aho-Corasick automaton (host side).
///
/// Built once from a pattern set; provides the dense transition table the
/// [`Dpi`] element walks in simulated memory, plus host-only queries used by
/// oracles and diagnostics.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Dense row-major transition table: `dfa[s * 256 + byte]`.
    dfa: Vec<u32>,
    /// `(start, len)` into [`out_list`](Self::out_list) per state.
    out_spans: Vec<(u32, u32)>,
    /// Flattened pattern ids, grouped by state.
    out_list: Vec<u32>,
    /// Trie depth of each state (root = 0).
    depth: Vec<u16>,
    /// Pattern lengths (for reporting match start offsets).
    pattern_lens: Vec<u32>,
}

impl AhoCorasick {
    /// Compile a pattern set. Empty patterns are rejected; duplicate
    /// patterns share an end state (both ids are reported on a match).
    ///
    /// # Panics
    /// If any pattern is empty or the automaton exceeds 2^24 states.
    pub fn build(patterns: &[Vec<u8>]) -> AhoCorasick {
        assert!(patterns.iter().all(|p| !p.is_empty()), "empty pattern");

        // 1. Goto trie.
        let mut children: Vec<BTreeMap<u8, u32>> = vec![BTreeMap::new()];
        let mut outs: Vec<Vec<u32>> = vec![Vec::new()];
        let mut depth: Vec<u16> = vec![0];
        for (id, pat) in patterns.iter().enumerate() {
            let mut s = 0u32;
            for &b in pat {
                s = match children[s as usize].get(&b) {
                    Some(&t) => t,
                    None => {
                        let t = children.len() as u32;
                        assert!(t <= STATE_MASK, "automaton exceeds 2^24 states");
                        children[s as usize].insert(b, t);
                        children.push(BTreeMap::new());
                        outs.push(Vec::new());
                        depth.push(depth[s as usize] + 1);
                        t
                    }
                };
            }
            outs[s as usize].push(id as u32);
        }
        let n = children.len();

        // 2. Failure links by BFS, merging outputs; 3. DFA closure in the
        // same order (a state's fail link is strictly shallower, so its row
        // is already complete when we need it).
        let mut fail = vec![0u32; n];
        let mut dfa = vec![0u32; n * 256];
        let mut queue = std::collections::VecDeque::new();
        for b in 0..=255u8 {
            if let Some(&t) = children[0].get(&b) {
                dfa[b as usize] = t;
                queue.push_back(t);
            }
        }
        while let Some(s) = queue.pop_front() {
            let su = s as usize;
            let f = fail[su];
            // Merge the fail state's outputs (patterns ending mid-path).
            if !outs[f as usize].is_empty() {
                let inherited = outs[f as usize].clone();
                outs[su].extend(inherited);
            }
            for b in 0..=255u16 {
                let bi = b as usize;
                match children[su].get(&(b as u8)) {
                    Some(&t) => {
                        fail[t as usize] = dfa[f as usize * 256 + bi] & STATE_MASK;
                        dfa[su * 256 + bi] = t;
                        queue.push_back(t);
                    }
                    None => {
                        dfa[su * 256 + bi] = dfa[f as usize * 256 + bi] & STATE_MASK;
                    }
                }
            }
        }

        // 4. Flatten outputs and set the output bit on every entry that
        // *enters* an output state, so the walker tests one bit per byte.
        let mut out_spans = Vec::with_capacity(n);
        let mut out_list = Vec::new();
        for o in &outs {
            out_spans.push((out_list.len() as u32, o.len() as u32));
            out_list.extend_from_slice(o);
        }
        for e in dfa.iter_mut() {
            let t = *e & STATE_MASK;
            if out_spans[t as usize].1 > 0 {
                *e |= OUTPUT_BIT;
            }
        }

        AhoCorasick {
            dfa,
            out_spans,
            out_list,
            depth,
            pattern_lens: patterns.iter().map(|p| p.len() as u32).collect(),
        }
    }

    /// Number of automaton states.
    pub fn state_count(&self) -> usize {
        self.out_spans.len()
    }

    /// Bytes of the dense transition table.
    pub fn table_bytes(&self) -> u64 {
        (self.dfa.len() * 4) as u64
    }

    /// Trie depth of `state`.
    pub fn state_depth(&self, state: u32) -> u16 {
        self.depth[state as usize]
    }

    /// Host-side walk: all matches in `hay` as `(end_offset, pattern_id)`,
    /// where `end_offset` is the index one past the match's last byte.
    /// This is the oracle the simulated walk is tested against.
    pub fn find_all(&self, hay: &[u8]) -> Vec<(usize, u32)> {
        let mut state = 0u32;
        let mut hits = Vec::new();
        for (i, &b) in hay.iter().enumerate() {
            let e = self.dfa[state as usize * 256 + b as usize];
            state = e & STATE_MASK;
            if e & OUTPUT_BIT != 0 {
                let (start, len) = self.out_spans[state as usize];
                for k in 0..len {
                    hits.push((i + 1, self.out_list[(start + k) as usize]));
                }
            }
        }
        hits
    }

    /// Host-side walk reporting the maximum and mean state depth reached —
    /// the diagnostic separating benign from teaser traffic.
    pub fn walk_depth(&self, hay: &[u8]) -> (u16, f64) {
        let mut state = 0u32;
        let (mut max, mut sum) = (0u16, 0u64);
        for &b in hay {
            state = self.dfa[state as usize * 256 + b as usize] & STATE_MASK;
            let d = self.depth[state as usize];
            max = max.max(d);
            sum += d as u64;
        }
        (max, if hay.is_empty() { 0.0 } else { sum as f64 / hay.len() as f64 })
    }

    /// Length of pattern `id` in bytes.
    pub fn pattern_len(&self, id: u32) -> u32 {
        self.pattern_lens[id as usize]
    }
}

/// What the element does when a signature matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpiMode {
    /// IDS: count and annotate, keep forwarding.
    Detect,
    /// IPS: drop the packet on the first match.
    Prevent,
}

/// Output span record in simulated memory (8 bytes).
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct OutSpan {
    start: u32,
    len: u32,
}

/// The DPI element. See the module docs.
pub struct Dpi {
    auto: AhoCorasick,
    /// The DFA rows in simulated memory (the contended structure).
    table: SimVec<u32>,
    /// Per-state output spans, read only on a match.
    spans: SimVec<OutSpan>,
    /// Flattened pattern-id list.
    out_ids: SimVec<u32>,
    mode: DpiMode,
    cost: CostModel,
    /// Total signature matches seen.
    pub matches: u64,
    /// Packets with at least one match.
    pub alert_packets: u64,
    /// Packets dropped (Prevent mode).
    pub dropped: u64,
    /// Payload bytes scanned.
    pub scanned_bytes: u64,
    /// Deepest automaton state entered (diagnostics).
    pub max_depth_seen: u16,
}

impl Dpi {
    /// Compile `patterns` and materialize the automaton in `alloc`'s domain.
    pub fn new(
        alloc: &mut DomainAllocator,
        patterns: &[Vec<u8>],
        mode: DpiMode,
        cost: CostModel,
    ) -> Self {
        let auto = AhoCorasick::build(patterns);
        let table = SimVec::from_vec(alloc, auto.dfa.clone());
        let spans = SimVec::from_vec(
            alloc,
            auto.out_spans.iter().map(|&(start, len)| OutSpan { start, len }).collect(),
        );
        let out_ids = SimVec::from_vec(alloc, auto.out_list.clone());
        Dpi {
            auto,
            table,
            spans,
            out_ids,
            mode,
            cost,
            matches: 0,
            alert_packets: 0,
            dropped: 0,
            scanned_bytes: 0,
            max_depth_seen: 0,
        }
    }

    /// The compiled automaton (for oracles and diagnostics).
    pub fn automaton(&self) -> &AhoCorasick {
        &self.auto
    }

    /// Simulated footprint of the DFA table plus output structures.
    pub fn footprint(&self) -> u64 {
        self.table.footprint() + self.spans.footprint() + self.out_ids.footprint()
    }

    /// Scan `payload`, charging one table load per byte. Returns the number
    /// of matches (stopping early in Prevent mode).
    fn scan(&mut self, ctx: &mut ExecCtx<'_>, payload: &[u8]) -> u64 {
        let mut state = 0u32;
        let mut found = 0u64;
        for &b in payload {
            CostModel::charge(ctx, self.cost.dpi_byte);
            let e = self.table.read(ctx, state as usize * 256 + b as usize);
            state = e & STATE_MASK;
            let d = self.auto.state_depth(state);
            if d > self.max_depth_seen {
                self.max_depth_seen = d;
            }
            if e & OUTPUT_BIT != 0 {
                CostModel::charge(ctx, self.cost.dpi_match);
                let span = self.spans.read(ctx, state as usize);
                for k in 0..span.len {
                    let _id = self.out_ids.read(ctx, (span.start + k) as usize);
                    found += 1;
                }
                if self.mode == DpiMode::Prevent {
                    break;
                }
            }
        }
        self.scanned_bytes += payload.len() as u64;
        self.matches += found;
        found
    }
}

impl Element for Dpi {
    fn class_name(&self) -> &'static str {
        "DPI"
    }

    fn tag(&self) -> &'static str {
        "dpi_scan"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        let Ok(payload) = pkt.payload().map(<[u8]>::to_vec) else {
            return Action::Drop;
        };
        // Stream the payload out of the packet buffer (mostly L1 hits after
        // the DMA/DCA delivery and earlier elements touched the frame).
        if pkt.buf_addr != 0 {
            if let Ok(off) = pkt.payload_offset() {
                ctx.read_struct(pkt.buf_addr + off as u64, payload.len() as u64);
            }
        }
        let found = self.scan(ctx, &payload);
        if found > 0 {
            self.alert_packets += 1;
            if self.mode == DpiMode::Prevent {
                self.dropped += 1;
                return Action::Drop;
            }
        }
        Action::Out(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet_with_payload};
    use pp_net::gen::signatures::generate_signatures;
    use pp_sim::types::{CoreId, MemDomain};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn classic() -> Vec<Vec<u8>> {
        [b"he".to_vec(), b"she".to_vec(), b"his".to_vec(), b"hers".to_vec()].to_vec()
    }

    /// Naive multi-pattern search used as the ground-truth oracle.
    fn naive(patterns: &[Vec<u8>], hay: &[u8]) -> Vec<(usize, u32)> {
        let mut hits = Vec::new();
        for (i, _) in hay.iter().enumerate() {
            for (id, p) in patterns.iter().enumerate() {
                if i + p.len() <= hay.len() && &hay[i..i + p.len()] == p.as_slice() {
                    hits.push((i + p.len(), id as u32));
                }
            }
        }
        hits.sort_unstable();
        hits
    }

    #[test]
    fn classic_aho_corasick_example() {
        let ac = AhoCorasick::build(&classic());
        let mut hits = ac.find_all(b"ushers");
        hits.sort_unstable();
        // "ushers": she@1..4, he@2..4, hers@2..6.
        assert_eq!(hits, vec![(4, 0), (4, 1), (6, 3)]);
    }

    #[test]
    fn overlapping_matches_against_naive_oracle() {
        // Tiny alphabet forces dense overlaps and failure-link traffic.
        let mut rng = SmallRng::seed_from_u64(42);
        for round in 0..20 {
            let n_pat = rng.random_range(1..=30);
            let patterns: Vec<Vec<u8>> = (0..n_pat)
                .map(|_| {
                    let len = rng.random_range(1..=6);
                    (0..len).map(|_| rng.random_range(0..4u8)).collect()
                })
                .collect();
            // Dedup (AC shares end states; naive double-reports duplicates).
            let mut patterns: Vec<Vec<u8>> = patterns;
            patterns.sort();
            patterns.dedup();
            let hay: Vec<u8> = (0..200).map(|_| rng.random_range(0..4u8)).collect();
            let ac = AhoCorasick::build(&patterns);
            let mut got = ac.find_all(&hay);
            got.sort_unstable();
            assert_eq!(got, naive(&patterns, &hay), "round {round}");
        }
    }

    #[test]
    fn build_rejects_empty_patterns() {
        let r = std::panic::catch_unwind(|| AhoCorasick::build(&[vec![]]));
        assert!(r.is_err());
    }

    #[test]
    fn depth_tracks_trie_position() {
        let ac = AhoCorasick::build(&classic());
        assert_eq!(ac.state_depth(0), 0);
        let (max, avg) = ac.walk_depth(b"hers");
        assert_eq!(max, 4, "walking 'hers' reaches the deepest state");
        assert!(avg > 1.0);
    }

    #[test]
    fn state_count_bounded_by_pattern_bytes() {
        let sigs = generate_signatures(500, 3);
        let total: usize = sigs.iter().map(Vec::len).sum();
        let ac = AhoCorasick::build(&sigs);
        assert!(ac.state_count() <= total + 1);
        // Prefix sharing must compress the trie below the raw byte count.
        assert!(
            ac.state_count() < total,
            "stem sharing should merge prefixes: {} states for {} bytes",
            ac.state_count(),
            total
        );
        assert_eq!(ac.table_bytes(), ac.state_count() as u64 * 1024);
    }

    fn dpi(mode: DpiMode, patterns: &[Vec<u8>]) -> (pp_sim::machine::Machine, Dpi) {
        let mut m = machine();
        let d = Dpi::new(m.allocator(MemDomain(0)), patterns, mode, CostModel::default());
        (m, d)
    }

    #[test]
    fn detect_mode_counts_and_forwards() {
        let (mut m, mut d) = dpi(DpiMode::Detect, &classic());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet_with_payload(b"xx ushers yy");
        assert_eq!(d.process(&mut ctx, &mut pkt), Action::Out(0));
        assert_eq!(d.matches, 3, "she, he, hers");
        assert_eq!(d.alert_packets, 1);
        assert_eq!(d.dropped, 0);
    }

    #[test]
    fn prevent_mode_drops_on_first_match() {
        let (mut m, mut d) = dpi(DpiMode::Prevent, &classic());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet_with_payload(b"xx ushers yy");
        assert_eq!(d.process(&mut ctx, &mut pkt), Action::Drop);
        assert_eq!(d.dropped, 1);
        assert_eq!(d.matches, 2, "stops at the first output state (she+he)");
    }

    #[test]
    fn benign_payload_passes_clean() {
        let (mut m, mut d) = dpi(DpiMode::Prevent, &classic());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet_with_payload(b"0123456789 no sigz");
        assert_eq!(d.process(&mut ctx, &mut pkt), Action::Out(0));
        assert_eq!(d.matches, 0);
        assert_eq!(d.alert_packets, 0);
    }

    #[test]
    fn one_table_load_per_scanned_byte() {
        let (mut m, mut d) = dpi(DpiMode::Detect, &classic());
        let payload = b"abcdefghij-klmnopqrst";
        let before = m.core(CoreId(0)).counters.total().l1_refs;
        {
            let mut ctx = m.ctx(CoreId(0));
            let mut pkt = packet_with_payload(payload);
            d.process(&mut ctx, &mut pkt);
        }
        let refs = m.core(CoreId(0)).counters.total().l1_refs - before;
        assert_eq!(d.scanned_bytes, payload.len() as u64);
        // Exactly one DFA load per byte: the test packet has no NIC buffer
        // (buf_addr = 0), there are no matches, so the table loads are the
        // only memory traffic.
        assert_eq!(refs, payload.len() as u64, "one table load per byte");
    }

    #[test]
    fn teaser_traffic_reaches_deeper_states_than_random() {
        use pp_net::gen::traffic::{TrafficGen, TrafficSpec};
        let sigs = generate_signatures(300, 77);
        let (mut m, mut d) = dpi(DpiMode::Detect, &sigs);
        let mut teaser =
            TrafficGen::new(TrafficSpec::dpi_tease(512, 100, 300, 77, 5));
        let mut random = TrafficGen::new(TrafficSpec::flow_population(512, 100, 5));

        let mut ctx = m.ctx(CoreId(0));
        let mut sum_teaser = 0.0;
        let mut sum_random = 0.0;
        for _ in 0..40 {
            let mut tp = teaser.next_packet();
            d.process(&mut ctx, &mut tp);
            sum_teaser += d.auto.walk_depth(tp.payload().unwrap()).1;
            let rp = random.next_packet();
            sum_random += d.auto.walk_depth(rp.payload().unwrap()).1;
        }
        assert!(
            sum_teaser > 2.0 * sum_random,
            "teaser mean depth {sum_teaser:.2} should dwarf random {sum_random:.2}"
        );
        assert!(d.max_depth_seen >= 4);
    }

    #[test]
    fn paper_scale_footprint_exceeds_l3_slice() {
        let mut m = machine();
        let sigs = generate_signatures(1500, 9);
        let d = Dpi::new(m.allocator(MemDomain(0)), &sigs, DpiMode::Detect, CostModel::default());
        // The DFA of a realistic signature set is megabytes — the frequently
        // accessed multi-MB structure §6 describes.
        assert!(
            d.footprint() > 4 << 20,
            "DFA footprint {} should be several MB",
            d.footprint()
        );
    }

    #[test]
    fn simulated_walk_agrees_with_host_oracle() {
        let sigs = generate_signatures(100, 21);
        let (mut m, mut d) = dpi(DpiMode::Detect, &sigs);
        let mut g = pp_net::gen::traffic::TrafficGen::new(
            pp_net::gen::traffic::TrafficSpec {
                frame_len: 512,
                n_flows: Some(10),
                payload: pp_net::gen::traffic::PayloadKind::SignatureTease {
                    n_signatures: 100,
                    corpus_seed: 21,
                    full_match_per_mille: 400,
                },
                seed: 3,
                zipf: None,
            },
        );
        let mut ctx = m.ctx(CoreId(0));
        let mut oracle_total = 0u64;
        for _ in 0..100 {
            let mut p = g.next_packet();
            oracle_total += d.auto.find_all(p.payload().unwrap()).len() as u64;
            d.process(&mut ctx, &mut p);
        }
        assert_eq!(d.matches, oracle_total, "simulated scan must agree with oracle");
        assert!(d.matches > 0, "teaser traffic at 40% should produce matches");
    }
}
