//! The small firewall (the paper's FW add-on): every packet is checked
//! sequentially against 1000 rules; matches are discarded. The paper uses
//! sequential search deliberately — the rule set fits in the L2 cache, so FW
//! is "a representative form of packet processing that benefits
//! significantly from all the levels of the cache hierarchy" and is the
//! *least* sensitive/aggressive workload.

use crate::cost::CostModel;
use crate::element::{Action, Element, BATCH_MLP};
use pp_net::fivetuple::FlowKey;
use pp_net::gen::rules::Rule;
use pp_net::packet::Packet;
use pp_sim::arena::{DomainAllocator, SimVec};
use pp_sim::ctx::ExecCtx;

/// A rule packed for the scan: 20 bytes, ~3 rules per cache line.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct RuleRec {
    src: u32,
    dst: u32,
    sport_lo: u16,
    sport_hi: u16,
    dport_lo: u16,
    dport_hi: u16,
    src_len: u8,
    dst_len: u8,
    /// 255 = any protocol.
    proto: u8,
    _pad: u8,
}

impl RuleRec {
    fn from_rule(r: &Rule) -> Self {
        RuleRec {
            src: r.src_net.0,
            dst: r.dst_net.0,
            sport_lo: r.src_ports.0,
            sport_hi: r.src_ports.1,
            dport_lo: r.dst_ports.0,
            dport_hi: r.dst_ports.1,
            src_len: r.src_net.1,
            dst_len: r.dst_net.1,
            proto: r.protocol.unwrap_or(255),
            _pad: 0,
        }
    }

    #[inline]
    fn matches(&self, src: u32, dst: u32, sport: u16, dport: u16, proto: u8) -> bool {
        let pm = |net: u32, len: u8, ip: u32| {
            if len == 0 {
                true
            } else {
                let shift = 32 - len as u32;
                (ip >> shift) == (net >> shift)
            }
        };
        pm(self.src, self.src_len, src)
            && pm(self.dst, self.dst_len, dst)
            && (self.sport_lo..=self.sport_hi).contains(&sport)
            && (self.dport_lo..=self.dport_hi).contains(&dport)
            && (self.proto == 255 || self.proto == proto)
    }
}

/// The sequential-scan firewall element.
pub struct Firewall {
    rules: SimVec<RuleRec>,
    cost: CostModel,
    /// Packets dropped by a matching rule.
    pub matched: u64,
    /// Packets that passed the full scan.
    pub passed: u64,
}

impl Firewall {
    /// Pack a rule set into `alloc`'s domain.
    pub fn new(alloc: &mut DomainAllocator, rules: &[Rule], cost: CostModel) -> Self {
        let recs = rules.iter().map(RuleRec::from_rule).collect();
        Firewall { rules: SimVec::from_vec(alloc, recs), cost, matched: 0, passed: 0 }
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Simulated footprint in bytes (the paper's 1000 rules ≈ 20 KB, which
    /// "can fit in the L2 cache").
    pub fn footprint(&self) -> u64 {
        self.rules.footprint()
    }

    fn scan(&mut self, ctx: &mut ExecCtx<'_>, key: &FlowKey) -> Option<usize> {
        let src = u32::from(key.src);
        let dst = u32::from(key.dst);
        let n = self.rules.len();
        for i in 0..n {
            let rec = self.rules.read(ctx, i);
            CostModel::charge(ctx, self.cost.fw_rule);
            if rec.matches(src, dst, key.src_port, key.dst_port, key.protocol) {
                return Some(i);
            }
        }
        None
    }
}

impl Element for Firewall {
    fn class_name(&self) -> &'static str {
        "Firewall"
    }

    fn tag(&self) -> &'static str {
        "firewall_filter"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        if pkt.buf_addr != 0 {
            ctx.read(pkt.buf_addr + pkt.l3_offset() as u64);
        }
        let Ok(key) = pkt.flow_key() else { return Action::Drop };
        match self.scan(ctx, &key) {
            Some(_) => {
                self.matched += 1;
                Action::Drop
            }
            None => {
                self.passed += 1;
                Action::Out(0)
            }
        }
    }

    fn process_batch(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        pkts: &mut [Packet],
        actions: &mut Vec<Action>,
    ) {
        if pkts.len() <= 1 {
            for pkt in pkts.iter_mut() {
                actions.push(self.process(ctx, pkt));
            }
            return;
        }
        // Header touches overlapped across the vector.
        let hdrs: Vec<u64> = pkts
            .iter()
            .filter(|p| p.buf_addr != 0)
            .map(|p| p.buf_addr + p.l3_offset() as u64)
            .collect();
        ctx.read_batch(&hdrs, BATCH_MLP);
        // Loop interchange: outer over rules, inner over packets. Each rule
        // record is *read once per batch* instead of once per packet (the
        // classic batched-scan amortization); the per-rule evaluation
        // arithmetic stays per packet. Per-packet early exit on match is
        // preserved — a matched lane stops being evaluated.
        let mut keys: Vec<Option<FlowKey>> = Vec::with_capacity(pkts.len());
        let mut alive = 0usize;
        for pkt in pkts.iter() {
            match pkt.flow_key() {
                Ok(k) => {
                    keys.push(Some(k));
                    alive += 1;
                }
                Err(_) => keys.push(None),
            }
        }
        let mut verdicts: Vec<Option<Action>> = keys
            .iter()
            .map(|k| if k.is_none() { Some(Action::Drop) } else { None })
            .collect();
        let n_rules = self.rules.len();
        for i in 0..n_rules {
            if alive == 0 {
                break;
            }
            let rec = self.rules.read(ctx, i);
            for (lane, key) in keys.iter().enumerate() {
                if verdicts[lane].is_some() {
                    continue;
                }
                let key = key.as_ref().expect("alive lane has a key");
                CostModel::charge(ctx, self.cost.fw_rule);
                if rec.matches(
                    u32::from(key.src),
                    u32::from(key.dst),
                    key.src_port,
                    key.dst_port,
                    key.protocol,
                ) {
                    self.matched += 1;
                    verdicts[lane] = Some(Action::Drop);
                    alive -= 1;
                }
            }
        }
        for v in verdicts {
            actions.push(v.unwrap_or_else(|| {
                self.passed += 1;
                Action::Out(0)
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet};
    use pp_net::gen::rules::{generate_port_rules, generate_unmatchable_rules};
    use pp_sim::types::{CoreId, MemDomain};

    #[test]
    fn unmatchable_rules_pass_everything_after_full_scan() {
        let mut m = machine();
        let rules = generate_unmatchable_rules(1000, 4);
        let mut fw = Firewall::new(m.allocator(MemDomain(0)), &rules, CostModel::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        assert_eq!(fw.process(&mut ctx, &mut pkt), Action::Out(0));
        assert_eq!(fw.passed, 1);
        // The full scan charges at least 1000 rule-cost computations.
        let c = m.core(CoreId(0)).counters.total();
        assert!(
            c.compute_cycles >= 1000 * CostModel::default().fw_rule.0,
            "compute {} too low for a full scan",
            c.compute_cycles
        );
    }

    #[test]
    fn matching_rule_drops_and_stops_scan() {
        let mut m = machine();
        // Rule 3 matches dst port 53 (our test packet's port 53 is at idx 53-50).
        let rules = generate_port_rules(10, 50);
        let mut fw = Firewall::new(m.allocator(MemDomain(0)), &rules, CostModel::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet(); // dst port 53
        assert_eq!(fw.process(&mut ctx, &mut pkt), Action::Drop);
        assert_eq!(fw.matched, 1);
        // Early exit: fewer than 10 rule charges.
        let c = m.core(CoreId(0)).counters.total();
        assert!(c.compute_cycles < 10 * CostModel::default().fw_rule.0 + 200);
    }

    #[test]
    fn footprint_fits_l2() {
        let mut m = machine();
        let rules = generate_unmatchable_rules(1000, 4);
        let fw = Firewall::new(m.allocator(MemDomain(0)), &rules, CostModel::default());
        assert_eq!(fw.rule_count(), 1000);
        assert!(
            fw.footprint() <= m.config().l2.size_bytes / 2 * 2,
            "rules ({} B) should be L2-cacheable",
            fw.footprint()
        );
    }

    #[test]
    fn scan_cost_matches_paper_order() {
        // ~14.7k instructions per packet for the 1000-rule scan (Table 1:
        // FW retires 23907/1.63 ≈ 14.7k instructions).
        let mut m = machine();
        let rules = generate_unmatchable_rules(1000, 4);
        let mut fw = Firewall::new(m.allocator(MemDomain(0)), &rules, CostModel::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        fw.process(&mut ctx, &mut pkt);
        let instr = m.core(CoreId(0)).counters.total().instructions;
        assert!(
            (10_000..25_000).contains(&instr),
            "instructions/packet = {instr}, expected paper order of magnitude"
        );
    }
}
