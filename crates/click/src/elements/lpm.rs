//! DIR-24-8 compressed longest-prefix match — the Internet-scale lookup
//! structure (Gupta/Lin/McKeown's DIR-24-8-BASIC, the classic "compressed
//! LPM" fix that *Data Path Processing in Fast Programmable Routers*
//! motivates).
//!
//! The paper's radix trie walks 12–20 *dependent* reads per lookup; at
//! full-BGP scale (~1M prefixes) those reads spread over tens of megabytes
//! and every one of them is a potential DRAM round trip. DIR-24-8 trades
//! memory for depth: a 16M-entry direct-index array answers any prefix of
//! length ≤ 24 in **one** read, and the rare destinations under a /24 that
//! contains longer prefixes take exactly one more read into that /24's
//! 256-entry second-stage block. The structure is 64 MB+ and deliberately
//! DRAM-resident — the table itself becomes the dominant memory traffic,
//! which is the regime `repro tables` measures.
//!
//! Spill blocks are **per-/24** because that is the unit the first stage
//! indexes: marking a first-stage slot as spilled redirects all 256 of its
//! host addresses into one private block, so the block can be fully
//! leaf-pushed at build time (initialized with the /24's inherited best
//! match, then overwritten by each longer prefix in ascending-length
//! order) and a lookup never needs to consult both stages' values.
//!
//! Route-for-route equivalence with [`BinaryRadixTrie`] (the executable
//! spec) is pinned by the tests here and the proptests in
//! `crates/bench/tests/tables_equiv.rs`.
//!
//! [`BinaryRadixTrie`]: crate::elements::radix::BinaryRadixTrie

use crate::cost::CostModel;
use crate::element::{Action, Element, BATCH_MLP};
use crate::elements::radix::push_covering_lines;
use pp_net::gen::prefixes::PrefixEntry;
use pp_net::packet::Packet;
use pp_sim::arena::{DomainAllocator, SimVec};
use pp_sim::ctx::ExecCtx;

/// First-stage index width: the top 24 bits of the destination.
const STAGE1_BITS: u32 = 24;
/// First-stage entries (16M).
const STAGE1_ENTRIES: usize = 1 << STAGE1_BITS;
/// Entries per second-stage block (one per /24, covering its low 8 bits).
const BLOCK: usize = 256;

/// Packed table entry.
///
/// * `0` — empty (no matching prefix).
/// * bit 31 set — first stage only: spilled /24; low 24 bits index a
///   second-stage block.
/// * bit 30 set — leaf: bits 29..24 = prefix length, bits 23..0 = next hop
///   (the same packing as the radix tries, so hop values are interchangeable
///   across all three structures).
const SPILL: u32 = 1 << 31;
const LEAF: u32 = 1 << 30;

#[inline]
fn leaf(len: u8, hop: u32) -> u32 {
    debug_assert!(hop < (1 << 24), "next hop must fit 24 bits");
    LEAF | ((len as u32) << 24) | (hop & 0x00FF_FFFF)
}

#[inline]
fn decode(e: u32) -> Option<u32> {
    if e & LEAF != 0 {
        Some(e & 0x00FF_FFFF)
    } else {
        None
    }
}

/// The DIR-24-8 table: a flat 16M-entry first stage plus per-/24 spill
/// blocks, both allocated into simulated memory so every lookup's reads are
/// charged like any other structure walk.
pub struct Dir248Table {
    /// One entry per /24 (64 MB simulated — deliberately DRAM-resident).
    stage1: SimVec<u32>,
    /// Concatenated 256-entry spill blocks for /24s containing longer
    /// prefixes.
    stage2: SimVec<u32>,
    n_prefixes: usize,
    n_blocks: usize,
}

/// Reusable per-batch walk state for
/// [`Dir248Table::lookup_batch_into`] (host-side only).
#[derive(Debug, Default)]
pub struct Dir248Scratch {
    addrs: Vec<u64>,
    entries: Vec<u32>,
    /// Spilled lanes as `(second-stage index, lane)`, sorted by index so
    /// the second gather visits blocks in address order.
    spill: Vec<(usize, usize)>,
}

impl Dir248Table {
    /// Build from a prefix table in `alloc`'s domain.
    ///
    /// Two leaf-pushing phases, each in ascending prefix-length order
    /// (stable, so a duplicated `(addr, len)` resolves to the later table
    /// entry — the same tie-break as both radix tries): first every
    /// prefix of length ≤ 24 expands over its covered first-stage range,
    /// then every longer prefix spills its /24 into a block initialized
    /// from the finished first stage and overwrites its covered slots.
    pub fn build(alloc: &mut DomainAllocator, prefixes: &[PrefixEntry]) -> Self {
        let mut stage1 = vec![0u32; STAGE1_ENTRIES];
        let mut short: Vec<&PrefixEntry> = prefixes.iter().filter(|p| p.len <= 24).collect();
        short.sort_by_key(|p| p.len);
        for p in short {
            let start = (p.addr >> 8) as usize;
            let count = 1usize << (24 - p.len);
            for e in &mut stage1[start..start + count] {
                *e = leaf(p.len, p.next_hop);
            }
        }
        let mut stage2: Vec<u32> = Vec::new();
        let mut long: Vec<&PrefixEntry> = prefixes.iter().filter(|p| p.len > 24).collect();
        long.sort_by_key(|p| p.len);
        for p in long {
            assert!(p.len <= 32);
            let s1 = (p.addr >> 8) as usize;
            let block = if stage1[s1] & SPILL != 0 {
                (stage1[s1] & !SPILL) as usize
            } else {
                let b = stage2.len() / BLOCK;
                stage2.resize(stage2.len() + BLOCK, stage1[s1]);
                stage1[s1] = SPILL | b as u32;
                b
            };
            let start = block * BLOCK + (p.addr & 0xFF) as usize;
            let count = 1usize << (32 - p.len);
            for e in &mut stage2[start..start + count] {
                *e = leaf(p.len, p.next_hop);
            }
        }
        let n_blocks = stage2.len() / BLOCK;
        Dir248Table {
            stage1: SimVec::from_vec(alloc, stage1),
            stage2: SimVec::from_vec(alloc, stage2),
            n_prefixes: prefixes.len(),
            n_blocks,
        }
    }

    /// Number of prefixes inserted.
    pub fn prefix_count(&self) -> usize {
        self.n_prefixes
    }

    /// Number of second-stage spill blocks (= /24s containing a /25–/32).
    pub fn block_count(&self) -> usize {
        self.n_blocks
    }

    /// Total simulated footprint in bytes (first stage + spill blocks).
    pub fn footprint(&self) -> u64 {
        self.stage1.footprint() + self.stage2.footprint()
    }

    /// Longest-prefix match with simulated charging: one direct-indexed
    /// read, plus one dependent block read when the /24 is spilled.
    /// Returns `(next_hop, reads)` — `reads` ∈ {1, 2}.
    pub fn lookup(&self, ctx: &mut ExecCtx<'_>, dst: u32) -> (Option<u32>, u32) {
        let e = self.stage1.read(ctx, (dst >> 8) as usize);
        if e & SPILL != 0 {
            let idx = ((e & !SPILL) as usize) * BLOCK + (dst & 0xFF) as usize;
            (decode(self.stage2.read(ctx, idx)), 2)
        } else {
            (decode(e), 1)
        }
    }

    /// Host-only lookup (no simulated cost) — the test-oracle interface.
    pub fn lookup_host(&self, dst: u32) -> Option<u32> {
        let e = *self.stage1.peek((dst >> 8) as usize);
        if e & SPILL != 0 {
            let idx = ((e & !SPILL) as usize) * BLOCK + (dst & 0xFF) as usize;
            decode(*self.stage2.peek(idx))
        } else {
            decode(e)
        }
    }

    /// Batched lookup: gathers every lane's first-stage line as one
    /// overlapped [`read_batch`](ExecCtx::read_batch) (the lanes are fully
    /// independent — there is no level synchronization to speak of), then
    /// visits the spilled lanes' second-stage lines **sorted by address**
    /// in a second overlapped gather. Returns the same `(next_hop, reads)`
    /// per lane as per-lane [`lookup`](Self::lookup) calls; only the
    /// core-visible stall shrinks.
    pub fn lookup_batch_into(
        &self,
        ctx: &mut ExecCtx<'_>,
        dsts: &[u32],
        mlp: u32,
        scratch: &mut Dir248Scratch,
        out: &mut Vec<(Option<u32>, u32)>,
    ) {
        let Dir248Scratch { addrs, entries, spill } = scratch;
        // Stage 1: one gather over every lane's direct-index line, with an
        // optional charge-free host pre-touch of each spilled lane's
        // dependent second-stage line (the `hostopt` lever, default off —
        // the `repro perf` A/B found no wall-clock win on a single-CPU
        // host; host reads charge nothing, so simulated results cannot
        // change either way).
        addrs.clear();
        entries.clear();
        spill.clear();
        let pretouch = pp_net::hostopt::host_pretouch();
        let mut next_touch = 0u32;
        for (l, &dst) in dsts.iter().enumerate() {
            let i = (dst >> 8) as usize;
            push_covering_lines(addrs, self.stage1.addr_of(i), self.stage1.stride());
            let e = *self.stage1.peek(i);
            entries.push(e);
            if e & SPILL != 0 {
                let idx = ((e & !SPILL) as usize) * BLOCK + (dst & 0xFF) as usize;
                if pretouch {
                    next_touch ^= *self.stage2.peek(idx);
                }
                spill.push((idx, l));
            }
        }
        std::hint::black_box(next_touch);
        ctx.read_batch(addrs, mlp);
        // Stage 2: the spilled lanes only, visited in block-address order.
        spill.sort_unstable();
        addrs.clear();
        for &(idx, _) in spill.iter() {
            push_covering_lines(addrs, self.stage2.addr_of(idx), self.stage2.stride());
        }
        ctx.read_batch(addrs, mlp);
        out.clear();
        out.extend(dsts.iter().zip(entries.iter()).map(|(&dst, &e)| {
            if e & SPILL != 0 {
                let idx = ((e & !SPILL) as usize) * BLOCK + (dst & 0xFF) as usize;
                (decode(*self.stage2.peek(idx)), 2)
            } else {
                (decode(e), 1)
            }
        }));
    }
}

/// `Dir248IPLookup`: longest-prefix match through the DIR-24-8 table —
/// computes the same routes as `RadixIPLookup` in 1–2 reads instead of
/// 12–20. Packets with no route are dropped.
pub struct Dir248IpLookup {
    table: Dir248Table,
    cost: CostModel,
    /// Batched-walk scratch (reused every batch).
    scratch: Dir248Scratch,
    /// Scratch header addresses (reused every batch).
    hdrs: Vec<u64>,
    /// Scratch destinations / lane maps / results (reused every batch).
    dsts: Vec<u32>,
    lanes: Vec<usize>,
    results: Vec<(Option<u32>, u32)>,
    /// Successful lookups.
    pub found: u64,
    /// Lookups with no matching route (packet dropped).
    pub no_route: u64,
    /// Sum of reads issued (for average-depth diagnostics).
    pub reads_total: u64,
}

impl Dir248IpLookup {
    /// Build the element (and its table) in `alloc`'s domain.
    pub fn new(alloc: &mut DomainAllocator, prefixes: &[PrefixEntry], cost: CostModel) -> Self {
        Dir248IpLookup {
            table: Dir248Table::build(alloc, prefixes),
            cost,
            scratch: Dir248Scratch::default(),
            hdrs: Vec::new(),
            dsts: Vec::new(),
            lanes: Vec::new(),
            results: Vec::new(),
            found: 0,
            no_route: 0,
            reads_total: 0,
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &Dir248Table {
        &self.table
    }

    /// Average reads per lookup so far (diagnostics; 1.0–2.0).
    pub fn avg_depth(&self) -> f64 {
        let n = self.found + self.no_route;
        if n == 0 {
            0.0
        } else {
            self.reads_total as f64 / n as f64
        }
    }
}

impl Element for Dir248IpLookup {
    fn class_name(&self) -> &'static str {
        "Dir248IPLookup"
    }

    fn tag(&self) -> &'static str {
        // Same function tag as the radix lookups so per-function cost
        // splits line up across the three structures.
        "radix_ip_lookup"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        if pkt.buf_addr != 0 {
            ctx.read(pkt.buf_addr + pkt.l3_offset() as u64 + 16);
        }
        let Ok(ip) = pkt.ipv4() else { return Action::Drop };
        let (hop, reads) = self.table.lookup(ctx, u32::from(ip.dst));
        CostModel::charge(ctx, (self.cost.lookup_step.0 * reads as u64,
                                self.cost.lookup_step.1 * reads as u64));
        self.reads_total += reads as u64;
        match hop {
            Some(_) => {
                self.found += 1;
                Action::Out(0)
            }
            None => {
                self.no_route += 1;
                Action::Drop
            }
        }
    }

    fn process_batch(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        pkts: &mut [Packet],
        actions: &mut Vec<Action>,
    ) {
        if pkts.len() <= 1 {
            for pkt in pkts.iter_mut() {
                actions.push(self.process(ctx, pkt));
            }
            return;
        }
        // Header touches for the whole vector, overlapped.
        self.hdrs.clear();
        self.hdrs.extend(
            pkts.iter().filter(|p| p.buf_addr != 0).map(|p| p.buf_addr + p.l3_offset() as u64 + 16),
        );
        ctx.read_batch(&self.hdrs, BATCH_MLP);
        self.dsts.clear();
        self.lanes.clear();
        for (i, pkt) in pkts.iter().enumerate() {
            if let Ok(ip) = pkt.ipv4() {
                self.dsts.push(u32::from(ip.dst));
                self.lanes.push(i);
            }
        }
        self.table
            .lookup_batch_into(ctx, &self.dsts, BATCH_MLP, &mut self.scratch, &mut self.results);
        let mut total_reads = 0u64;
        let verdict_base = actions.len();
        actions.resize(verdict_base + pkts.len(), Action::Drop);
        for (&lane, &(hop, reads)) in self.lanes.iter().zip(self.results.iter()) {
            total_reads += reads as u64;
            self.reads_total += reads as u64;
            actions[verdict_base + lane] = match hop {
                Some(_) => {
                    self.found += 1;
                    Action::Out(0)
                }
                None => {
                    self.no_route += 1;
                    Action::Drop
                }
            };
        }
        CostModel::charge(ctx, (self.cost.lookup_step.0 * total_reads,
                                self.cost.lookup_step.1 * total_reads));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::machine;
    use crate::elements::radix::BinaryRadixTrie;
    use pp_net::gen::prefixes::{generate_bgp_table, generate_prefixes, linear_lpm};
    use pp_sim::types::{CoreId, MemDomain};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn build(prefixes: &[PrefixEntry]) -> (pp_sim::machine::Machine, Dir248Table) {
        let mut m = machine();
        let t = Dir248Table::build(m.allocator(MemDomain(0)), prefixes);
        (m, t)
    }

    /// A BGP-shaped table with extra /25–/32 prefixes layered under its
    /// /24s, so the spill path is exercised.
    fn bgp_with_long(n: usize, seed: u64) -> Vec<PrefixEntry> {
        let mut t = generate_bgp_table(n, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD128);
        let slashes24: Vec<u32> =
            t.iter().filter(|e| e.len == 24).map(|e| e.addr).take(64).collect();
        for (i, &base) in slashes24.iter().enumerate() {
            let len = 25 + (i % 8) as u8;
            let shift = 32 - len as u32;
            // Random low byte under the /24, canonicalized to `len` bits.
            let addr = ((base | (rng.random::<u32>() & 0xFF)) >> shift) << shift;
            t.push(PrefixEntry { addr, len, next_hop: rng.random_range(0..64) });
        }
        t
    }

    #[test]
    fn lpm_ordering_with_long_prefixes() {
        let table = vec![
            PrefixEntry { addr: 0x0a00_0000, len: 8, next_hop: 1 },
            PrefixEntry { addr: 0x0a01_0000, len: 16, next_hop: 2 },
            PrefixEntry { addr: 0x0a01_0200, len: 24, next_hop: 3 },
            PrefixEntry { addr: 0x0a01_0203, len: 32, next_hop: 4 },
            PrefixEntry { addr: 0x0a01_0280, len: 25, next_hop: 5 },
        ];
        let (_m, t) = build(&table);
        assert_eq!(t.lookup_host(0x0a01_0203), Some(4));
        assert_eq!(t.lookup_host(0x0a01_0204), Some(3));
        assert_eq!(t.lookup_host(0x0a01_02ff), Some(5));
        assert_eq!(t.lookup_host(0x0a01_ff00), Some(2));
        assert_eq!(t.lookup_host(0x0aff_0000), Some(1));
        assert_eq!(t.lookup_host(0x0b00_0000), None);
        assert_eq!(t.block_count(), 1);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut table = vec![
            PrefixEntry { addr: 0x0a01_0280, len: 25, next_hop: 5 },
            PrefixEntry { addr: 0x0a01_0203, len: 32, next_hop: 4 },
            PrefixEntry { addr: 0x0a01_0200, len: 24, next_hop: 3 },
            PrefixEntry { addr: 0x0a00_0000, len: 8, next_hop: 1 },
            PrefixEntry { addr: 0x0a01_0000, len: 16, next_hop: 2 },
        ];
        let (_m1, t1) = build(&table);
        table.reverse();
        let (_m2, t2) = build(&table);
        for ip in [0x0a01_0203u32, 0x0a01_0204, 0x0a01_02ff, 0x0a01_ff00, 0x0aff_0000] {
            assert_eq!(t1.lookup_host(ip), t2.lookup_host(ip), "ip {ip:#x}");
        }
    }

    #[test]
    fn matches_linear_oracle() {
        let mut prefixes = generate_prefixes(2000, 77, true);
        // Layer some /25–/32s under existing /24s.
        let mut rng = SmallRng::seed_from_u64(99);
        let slashes24: Vec<u32> =
            prefixes.iter().filter(|e| e.len == 24).map(|e| e.addr).take(40).collect();
        for &base in &slashes24 {
            let len: u8 = rng.random_range(25..=32);
            let shift = 32 - len as u32;
            let addr = ((base | (rng.random::<u32>() & 0xFF)) >> shift) << shift;
            prefixes.push(PrefixEntry { addr, len, next_hop: rng.random_range(0..64) });
        }
        let (_m, t) = build(&prefixes);
        for _ in 0..3000 {
            let ip: u32 = rng.random();
            let want = linear_lpm(&prefixes, ip).map(|e| e.next_hop);
            assert_eq!(t.lookup_host(ip), want, "mismatch for {ip:#x}");
        }
        // And specifically addresses inside the spilled /24s.
        for &base in &slashes24 {
            for _ in 0..20 {
                let ip = base | (rng.random::<u32>() & 0xFF);
                let want = linear_lpm(&prefixes, ip).map(|e| e.next_hop);
                assert_eq!(t.lookup_host(ip), want, "mismatch for {ip:#x}");
            }
        }
    }

    #[test]
    fn agrees_with_binary_radix_spec() {
        let prefixes = bgp_with_long(3000, 21);
        let (_m1, dir) = build(&prefixes);
        let mut m2 = machine();
        let bin = BinaryRadixTrie::build(m2.allocator(MemDomain(0)), &prefixes);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..3000 {
            let ip: u32 = rng.random();
            assert_eq!(dir.lookup_host(ip), bin.lookup_host(ip), "ip {ip:#x}");
        }
    }

    #[test]
    fn simulated_lookup_agrees_with_host_and_charges() {
        let prefixes = bgp_with_long(1000, 2);
        let (mut m, t) = build(&prefixes);
        let mut ctx = m.ctx(CoreId(0));
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..300 {
            let ip: u32 = rng.random();
            let (hop, reads) = t.lookup(&mut ctx, ip);
            assert_eq!(hop, t.lookup_host(ip));
            assert!((1..=2).contains(&reads));
        }
        assert!(m.core(CoreId(0)).counters.total().l1_refs >= 300);
    }

    #[test]
    fn batch_results_equal_scalar_results() {
        let prefixes = bgp_with_long(2000, 5);
        let (mut m, t) = build(&prefixes);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut dsts: Vec<u32> = (0..200).map(|_| rng.random()).collect();
        // Duplicate destinations must behave identically per lane.
        dsts.extend_from_slice(&dsts.clone()[..50]);
        let mut ctx = m.ctx(CoreId(0));
        let scalar: Vec<(Option<u32>, u32)> =
            dsts.iter().map(|&d| t.lookup(&mut ctx, d)).collect();
        let mut scratch = Dir248Scratch::default();
        let mut out = Vec::new();
        t.lookup_batch_into(&mut ctx, &dsts, BATCH_MLP, &mut scratch, &mut out);
        assert_eq!(scalar, out);
    }

    #[test]
    fn batched_element_charges_less_than_scalar() {
        // The point of the structure + batching: fewer dependent stalls.
        let prefixes = bgp_with_long(2000, 11);
        let mut ms = machine();
        let mut el_s =
            Dir248IpLookup::new(ms.allocator(MemDomain(0)), &prefixes, CostModel::default());
        let mut mb = machine();
        let mut el_b =
            Dir248IpLookup::new(mb.allocator(MemDomain(0)), &prefixes, CostModel::default());
        let mut rng = SmallRng::seed_from_u64(17);
        let mut pkts: Vec<Packet> = (0..64)
            .map(|_| {
                pp_net::packet::PacketBuilder::default().udp(
                    std::net::Ipv4Addr::new(1, 2, 3, 4),
                    std::net::Ipv4Addr::from(rng.random::<u32>()),
                    1000,
                    53,
                    b"x",
                )
            })
            .collect();
        let mut pkts2 = pkts.clone();
        let mut scalar_actions = Vec::new();
        {
            let mut ctx = ms.ctx(CoreId(0));
            for p in pkts.iter_mut() {
                scalar_actions.push(el_s.process(&mut ctx, p));
            }
        }
        let mut batch_actions = Vec::new();
        {
            let mut ctx = mb.ctx(CoreId(0));
            el_b.process_batch(&mut ctx, &mut pkts2, &mut batch_actions);
        }
        assert_eq!(scalar_actions, batch_actions);
        assert_eq!((el_s.found, el_s.no_route), (el_b.found, el_b.no_route));
        assert!(
            mb.core(CoreId(0)).clock < ms.core(CoreId(0)).clock,
            "batched walk must be cheaper: batch {} vs scalar {}",
            mb.core(CoreId(0)).clock,
            ms.core(CoreId(0)).clock
        );
    }

    #[test]
    fn batch_of_one_is_charge_identical_to_scalar() {
        let prefixes = bgp_with_long(500, 13);
        let mut ms = machine();
        let mut el_s =
            Dir248IpLookup::new(ms.allocator(MemDomain(0)), &prefixes, CostModel::default());
        let mut mb = machine();
        let mut el_b =
            Dir248IpLookup::new(mb.allocator(MemDomain(0)), &prefixes, CostModel::default());
        let mut pkt = crate::element::test_util::packet();
        let mut pkt2 = pkt.clone();
        let a = {
            let mut ctx = ms.ctx(CoreId(0));
            el_s.process(&mut ctx, &mut pkt)
        };
        let mut actions = Vec::new();
        {
            let mut ctx = mb.ctx(CoreId(0));
            el_b.process_batch(&mut ctx, std::slice::from_mut(&mut pkt2), &mut actions);
        }
        assert_eq!(vec![a], actions);
        assert_eq!(ms.core(CoreId(0)).clock, mb.core(CoreId(0)).clock);
        assert_eq!(
            ms.core(CoreId(0)).counters.total(),
            mb.core(CoreId(0)).counters.total()
        );
    }

    #[test]
    fn footprint_is_dram_resident_scale() {
        let prefixes = bgp_with_long(20_000, 4);
        let (_m, t) = build(&prefixes);
        let mb = t.footprint() as f64 / (1024.0 * 1024.0);
        assert!(mb >= 64.0, "the direct stage alone is 64 MB, got {mb:.1} MB");
        assert!(t.block_count() > 0, "spill blocks must exist");
        assert_eq!(
            t.footprint(),
            (STAGE1_ENTRIES * 4) as u64 + (t.block_count() * BLOCK * 4) as u64
        );
    }

    #[test]
    fn element_routes_and_drops() {
        let table = vec![PrefixEntry { addr: 0x0a00_0000, len: 8, next_hop: 1 }];
        let mut m = machine();
        let mut el =
            Dir248IpLookup::new(m.allocator(MemDomain(0)), &table, CostModel::default());
        let mut ctx = m.ctx(CoreId(0));
        // 93.184.216.34 is not under 10/8.
        let mut pkt = crate::element::test_util::packet();
        assert_eq!(el.process(&mut ctx, &mut pkt), Action::Drop);
        assert_eq!(el.no_route, 1);
        let mut pkt = pp_net::packet::PacketBuilder::default().udp(
            std::net::Ipv4Addr::new(1, 2, 3, 4),
            std::net::Ipv4Addr::new(10, 9, 9, 9),
            1,
            2,
            b"x",
        );
        assert_eq!(el.process(&mut ctx, &mut pkt), Action::Out(0));
        assert_eq!(el.found, 1);
        assert!((1.0..=2.0).contains(&el.avg_depth()));
    }
}
