//! The element library: the paper's workloads and supporting elements.

pub mod aes;
pub mod basic;
pub mod classifier;
pub mod control;
pub mod dpi;
pub mod firewall;
pub mod lpm;
pub mod nat;
pub mod netflow;
pub mod queue;
pub mod radix;
pub mod re;
pub mod synthetic;
pub mod vpn;
