//! Source NAT (NAPT): rewrite outbound packets to a pool of public
//! addresses, maintaining per-flow bindings.
//!
//! NAT is middlebox functionality of exactly the kind the consolidation
//! argument in the paper's introduction (Sekar et al. \[25\]) wants to place
//! on shared general-purpose platforms. The element implements
//! endpoint-independent ("full-cone") NAPT the way production NATs do:
//!
//! * an **outbound binding table** — open-addressed hash on the inside
//!   `(address, port, protocol)` — decides the public endpoint to use;
//! * a **port-indexed session array** (the reverse table) makes the inbound
//!   lookup a single indexed read and doubles as the port allocator;
//! * the packet is rewritten **in place** with RFC 1624 incremental
//!   checksum patches ([`Packet::rewrite_src`]), never recomputed.
//!
//! Both tables are multi-megabyte simulated structures, so NAT profiles
//! like MON: cacheable state that benefits from (and therefore suffers
//! with) the shared L3.

use crate::cost::CostModel;
use crate::element::{Action, Element};
use pp_net::fivetuple::{fnv1a, FlowKey};
use pp_net::flowtab::{FlowTable, Probe, TabKey, Touch};
use pp_net::packet::Packet;
use pp_sim::arena::{DomainAllocator, SimVec};
use pp_sim::ctx::ExecCtx;
use pp_sim::types::Addr;
use std::net::Ipv4Addr;

/// NAT pool and table sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatConfig {
    /// First public address of the pool (addresses are consecutive).
    pub base_ip: Ipv4Addr,
    /// Number of public addresses.
    pub n_public_ips: u16,
    /// First allocatable port on each address.
    pub port_base: u16,
    /// Allocatable ports per address.
    pub ports_per_ip: u16,
    /// log2 of outbound binding-table slots.
    pub log2_bindings: u32,
}

impl Default for NatConfig {
    fn default() -> Self {
        // 4 public IPs × 64512 ports ≈ 258 k bindings: comfortably holds
        // the paper's 100 k-flow population. Outbound table 2^18 × 32 B =
        // 8 MB; session array 258 k × 16 B ≈ 4 MB.
        NatConfig {
            base_ip: Ipv4Addr::new(203, 0, 113, 1),
            n_public_ips: 4,
            port_base: 1024,
            ports_per_ip: 64512,
            log2_bindings: 18,
        }
    }
}

impl NatConfig {
    /// A tiny pool for tests that need port exhaustion quickly.
    pub fn tiny(n_ports: u16) -> Self {
        NatConfig {
            n_public_ips: 1,
            ports_per_ip: n_ports,
            log2_bindings: 8,
            ..Self::default()
        }
    }

    /// Total public endpoints available.
    pub fn pool_size(&self) -> u32 {
        self.n_public_ips as u32 * self.ports_per_ip as u32
    }
}

/// Outbound binding record: 32 bytes, two per cache line.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[repr(C)]
struct Binding {
    inside_ip: u32,
    inside_port: u16,
    proto: u8,
    /// Bit 0 = occupied.
    flags: u8,
    /// Index into the session array (encodes public ip + port).
    session: u32,
    last_used: u64,
    created: u64,
    _pad: u64,
}

const OCCUPIED: u8 = 1;

impl Binding {
    fn matches(&self, key: &FlowKey) -> bool {
        self.flags & OCCUPIED != 0
            && self.inside_ip == u32::from(key.src)
            && self.inside_port == key.src_port
            && self.proto == key.protocol
    }
}

/// Session-array entry: 16 bytes, the reverse mapping for one public port.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct Session {
    inside_ip: u32,
    inside_port: u16,
    proto: u8,
    /// Bit 0 = allocated.
    flags: u8,
    last_used: u32,
    _pad: u32,
}

/// Probes before evicting in the outbound table.
const MAX_PROBES: usize = 8;
/// Session-array slots examined per allocation before stealing one.
const MAX_ALLOC_SCAN: u32 = 16;

/// The inside `(address, port, protocol)` the outbound table is keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NatKey {
    ip: u32,
    port: u16,
    proto: u8,
}

impl NatKey {
    fn of(key: &FlowKey) -> Self {
        NatKey { ip: u32::from(key.src), port: key.src_port, proto: key.protocol }
    }
}

impl TabKey for NatKey {
    /// Same FNV-1a over the same 7 bytes as [`Nat::hash`], so the flat and
    /// bucketed layouts distribute flows identically.
    fn tab_hash(&self) -> u64 {
        let mut b = [0u8; 7];
        b[0..4].copy_from_slice(&self.ip.to_be_bytes());
        b[4..6].copy_from_slice(&self.port.to_be_bytes());
        b[6] = self.proto;
        fnv1a(&b)
    }
}

/// Outbound-binding storage: the flat open-addressed array (default), or the
/// PR 10 cache-conscious bucketed table (see `elements::netflow` module docs).
enum BindStore {
    Flat { table: SimVec<Binding>, mask: usize },
    Bucketed { tab: FlowTable<NatKey, Binding>, base: Addr },
}

/// Replay recorded table touches against the simulated region at `base`.
fn replay(ctx: &mut ExecCtx<'_>, base: Addr, touches: &[Touch]) {
    for t in touches {
        if t.write {
            ctx.write_struct(base + t.offset, t.len);
        } else {
            ctx.read_struct(base + t.offset, t.len);
        }
    }
}

/// The source-NAT element. See the module docs.
pub struct Nat {
    cfg: NatConfig,
    bindings: BindStore,
    sessions: SimVec<Session>,
    /// Allocation cursor into the session array.
    cursor: u32,
    cost: CostModel,
    /// Packets successfully translated.
    pub translated: u64,
    /// New bindings created.
    pub bindings_created: u64,
    /// Bindings evicted from the outbound table (probe exhaustion).
    pub bindings_evicted: u64,
    /// Ports stolen from an older flow (pool pressure).
    pub port_steals: u64,
    /// Packets dropped (unparseable).
    pub dropped: u64,
    /// Scratch: touch spans replayed against the simulated region.
    touched: Vec<Touch>,
}

impl Nat {
    fn with_bindings(
        alloc: &mut DomainAllocator,
        cfg: NatConfig,
        bindings: BindStore,
        cost: CostModel,
    ) -> Self {
        Nat {
            cfg,
            bindings,
            sessions: SimVec::new(alloc, cfg.pool_size() as usize, Session::default()),
            cursor: 0,
            cost,
            translated: 0,
            bindings_created: 0,
            bindings_evicted: 0,
            port_steals: 0,
            dropped: 0,
            touched: Vec::new(),
        }
    }

    /// Build the tables in `alloc`'s domain (flat outbound table — the
    /// paper's layout and the repro-digest default).
    pub fn new(alloc: &mut DomainAllocator, cfg: NatConfig, cost: CostModel) -> Self {
        let slots = 1usize << cfg.log2_bindings;
        let bindings = BindStore::Flat {
            table: SimVec::new(alloc, slots, Binding::default()),
            mask: slots - 1,
        };
        Self::with_bindings(alloc, cfg, bindings, cost)
    }

    /// Build with the cache-conscious bucketed outbound table instead: the
    /// same `2^log2_bindings` slot capacity arranged as 8-slot tag-byte
    /// buckets ([`pp_net::flowtab`]).
    pub fn new_bucketed(alloc: &mut DomainAllocator, cfg: NatConfig, cost: CostModel) -> Self {
        let tab: FlowTable<NatKey, Binding> = FlowTable::new(cfg.log2_bindings.saturating_sub(3));
        let base = alloc.alloc_lines(tab.footprint());
        Self::with_bindings(alloc, cfg, BindStore::Bucketed { tab, base }, cost)
    }

    /// Whether this instance uses the bucketed outbound table.
    pub fn is_bucketed(&self) -> bool {
        matches!(self.bindings, BindStore::Bucketed { .. })
    }

    /// The configuration in use.
    pub fn config(&self) -> &NatConfig {
        &self.cfg
    }

    /// Simulated footprint of both tables.
    pub fn footprint(&self) -> u64 {
        let bindings = match &self.bindings {
            BindStore::Flat { table, .. } => table.footprint(),
            BindStore::Bucketed { tab, .. } => tab.footprint(),
        };
        bindings + self.sessions.footprint()
    }

    /// Public endpoint for session-array index `i`.
    fn endpoint(&self, i: u32) -> (Ipv4Addr, u16) {
        let ip_idx = i / self.cfg.ports_per_ip as u32;
        let port = self.cfg.port_base as u32 + i % self.cfg.ports_per_ip as u32;
        (
            Ipv4Addr::from(u32::from(self.cfg.base_ip) + ip_idx),
            port as u16,
        )
    }

    fn hash(key: &FlowKey) -> usize {
        let mut b = [0u8; 7];
        b[0..4].copy_from_slice(&key.src.octets());
        b[4..6].copy_from_slice(&key.src_port.to_be_bytes());
        b[6] = key.protocol;
        fnv1a(&b) as usize
    }

    /// Host-side query: the public endpoint currently bound to an inside
    /// source, if any (diagnostics and tests).
    pub fn binding_for(&self, key: &FlowKey) -> Option<(Ipv4Addr, u16)> {
        match &self.bindings {
            BindStore::Flat { table, mask } => {
                let h = Self::hash(key);
                for p in 0..MAX_PROBES {
                    let b = table.peek((h + p) & mask);
                    if b.matches(key) {
                        return Some(self.endpoint(b.session));
                    }
                    if b.flags & OCCUPIED == 0 {
                        return None;
                    }
                }
                None
            }
            BindStore::Bucketed { tab, .. } => {
                tab.get(&NatKey::of(key)).map(|b| self.endpoint(b.session))
            }
        }
    }

    /// Host-side query: the inside endpoint owning a public port, if any.
    pub fn reverse_of(&self, public_ip: Ipv4Addr, public_port: u16) -> Option<(Ipv4Addr, u16)> {
        let ip_idx = u32::from(public_ip).checked_sub(u32::from(self.cfg.base_ip))?;
        if ip_idx >= self.cfg.n_public_ips as u32 || public_port < self.cfg.port_base {
            return None;
        }
        let pi = public_port as u32 - self.cfg.port_base as u32;
        if pi >= self.cfg.ports_per_ip as u32 {
            return None;
        }
        let s = self.sessions.peek((ip_idx * self.cfg.ports_per_ip as u32 + pi) as usize);
        (s.flags & OCCUPIED != 0).then(|| (Ipv4Addr::from(s.inside_ip), s.inside_port))
    }

    /// Allocate a session slot for `key`, scanning from the cursor and
    /// stealing the oldest candidate if everything scanned is taken.
    fn allocate(&mut self, ctx: &mut ExecCtx<'_>, key: &FlowKey, now: u64) -> u32 {
        let pool = self.cfg.pool_size();
        let mut victim = self.cursor;
        let mut victim_age = u32::MAX;
        for _ in 0..MAX_ALLOC_SCAN {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % pool;
            let s = self.sessions.read(ctx, i as usize);
            if s.flags & OCCUPIED == 0 {
                self.write_session(ctx, i, key, now);
                return i;
            }
            if s.last_used < victim_age {
                victim_age = s.last_used;
                victim = i;
            }
        }
        // Pool pressure: steal the least-recently-used scanned slot and
        // clear the outbound binding that owned it, so the old flow
        // re-allocates cleanly instead of hijacking the port.
        self.port_steals += 1;
        let old = self.sessions.read(ctx, victim as usize);
        let old_key = FlowKey {
            src: Ipv4Addr::from(old.inside_ip),
            dst: Ipv4Addr::UNSPECIFIED,
            protocol: old.proto,
            src_port: old.inside_port,
            dst_port: 0,
        };
        match &mut self.bindings {
            BindStore::Flat { table, mask } => {
                let h = Self::hash(&old_key);
                for p in 0..MAX_PROBES {
                    let idx = (h + p) & *mask;
                    let b = table.read(ctx, idx);
                    if b.matches(&old_key) && b.session == victim {
                        table.update(ctx, idx, |b| b.flags = 0);
                        break;
                    }
                }
            }
            BindStore::Bucketed { tab, base } => {
                let nk = NatKey::of(&old_key);
                self.touched.clear();
                if let Probe::Hit { bucket, slot } = tab.probe(&nk, &mut self.touched) {
                    let owns = tab
                        .entry_at(bucket, slot)
                        .is_some_and(|(_, b)| b.session == victim);
                    if owns {
                        tab.clear_slot(bucket, slot, &mut self.touched);
                    }
                }
                replay(ctx, *base, &self.touched);
            }
        }
        self.write_session(ctx, victim, key, now);
        victim
    }

    fn write_session(&mut self, ctx: &mut ExecCtx<'_>, i: u32, key: &FlowKey, now: u64) {
        self.sessions.write(
            ctx,
            i as usize,
            Session {
                inside_ip: u32::from(key.src),
                inside_port: key.src_port,
                proto: key.protocol,
                flags: OCCUPIED,
                last_used: (now >> 20) as u32, // coarse ticks (~0.4 ms)
                _pad: 0,
            },
        );
    }

    /// Find or create the binding for `key`; returns the public endpoint.
    fn translate(&mut self, ctx: &mut ExecCtx<'_>, key: &FlowKey) -> (Ipv4Addr, u16) {
        match self.bindings {
            BindStore::Flat { .. } => self.translate_flat(ctx, key),
            BindStore::Bucketed { .. } => self.translate_bucketed(ctx, key),
        }
    }

    fn translate_flat(&mut self, ctx: &mut ExecCtx<'_>, key: &FlowKey) -> (Ipv4Addr, u16) {
        let h = Self::hash(key);
        let now = ctx.now();
        for p in 0..MAX_PROBES {
            let idx = {
                let BindStore::Flat { mask, .. } = &self.bindings else { unreachable!() };
                (h + p) & *mask
            };
            let b = {
                let BindStore::Flat { table, .. } = &mut self.bindings else { unreachable!() };
                table.read(ctx, idx)
            };
            if b.matches(key) {
                let BindStore::Flat { table, .. } = &mut self.bindings else { unreachable!() };
                table.update(ctx, idx, |b| b.last_used = now);
                return self.endpoint(b.session);
            }
            if b.flags & OCCUPIED == 0 {
                let session = self.allocate(ctx, key, now);
                let BindStore::Flat { table, .. } = &mut self.bindings else { unreachable!() };
                table.write(
                    ctx,
                    idx,
                    Binding {
                        inside_ip: u32::from(key.src),
                        inside_port: key.src_port,
                        proto: key.protocol,
                        flags: OCCUPIED,
                        session,
                        last_used: now,
                        created: now,
                        _pad: 0,
                    },
                );
                self.bindings_created += 1;
                return self.endpoint(session);
            }
        }
        // Probe budget exhausted: evict the home slot (bounded per-packet
        // work, like the NetFlow element).
        self.bindings_evicted += 1;
        let session = self.allocate(ctx, key, now);
        let BindStore::Flat { table, mask } = &mut self.bindings else { unreachable!() };
        let idx = h & *mask;
        table.write(
            ctx,
            idx,
            Binding {
                inside_ip: u32::from(key.src),
                inside_port: key.src_port,
                proto: key.protocol,
                flags: OCCUPIED,
                session,
                last_used: now,
                created: now,
                _pad: 0,
            },
        );
        self.bindings_created += 1;
        self.endpoint(session)
    }

    /// Bucketed-table translate: tag-byte probe, then replay the recorded
    /// cache touches against the simulated region (dependent order is
    /// preserved — probe reads, session-array work, then the install
    /// writes).
    fn translate_bucketed(&mut self, ctx: &mut ExecCtx<'_>, key: &FlowKey) -> (Ipv4Addr, u16) {
        let nk = NatKey::of(key);
        let now = ctx.now();
        let (pr, base) = {
            let BindStore::Bucketed { tab, base } = &mut self.bindings else { unreachable!() };
            self.touched.clear();
            (tab.probe(&nk, &mut self.touched), *base)
        };
        if let Probe::Hit { bucket, slot } = pr {
            let mut session = 0;
            let BindStore::Bucketed { tab, .. } = &mut self.bindings else { unreachable!() };
            tab.update_slot(
                bucket,
                slot,
                |b| {
                    b.last_used = now;
                    session = b.session;
                },
                &mut self.touched,
            );
            replay(ctx, base, &self.touched);
            return self.endpoint(session);
        }
        // Miss: charge the probe walk, allocate a session (charges its own
        // session-array accesses), then install the binding.
        replay(ctx, base, &self.touched);
        if matches!(pr, Probe::Full { .. }) {
            self.bindings_evicted += 1;
        }
        let session = self.allocate(ctx, key, now);
        let (bucket, slot) = pr.target();
        {
            let BindStore::Bucketed { tab, .. } = &mut self.bindings else { unreachable!() };
            self.touched.clear();
            tab.insert_at(
                bucket,
                slot,
                nk,
                Binding {
                    inside_ip: u32::from(key.src),
                    inside_port: key.src_port,
                    proto: key.protocol,
                    flags: OCCUPIED,
                    session,
                    last_used: now,
                    created: now,
                    _pad: 0,
                },
                &mut self.touched,
            );
        }
        replay(ctx, base, &self.touched);
        self.bindings_created += 1;
        self.endpoint(session)
    }
}

impl Element for Nat {
    fn class_name(&self) -> &'static str {
        "NAT"
    }

    fn tag(&self) -> &'static str {
        "nat_translate"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        let Ok(key) = pkt.flow_key() else {
            self.dropped += 1;
            return Action::Drop;
        };
        let (ip, port) = self.translate(ctx, &key);
        CostModel::charge(ctx, self.cost.nat_rewrite);
        if pkt.rewrite_src(ip, port).is_err() {
            self.dropped += 1;
            return Action::Drop;
        }
        // The rewrite touches the IP + L4 header lines in the packet buffer.
        if pkt.buf_addr != 0 {
            ctx.write(pkt.buf_addr + pkt.l3_offset() as u64);
        }
        self.translated += 1;
        Action::Out(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::machine;
    use pp_net::headers::Ipv4Header;
    use pp_net::packet::PacketBuilder;
    use pp_sim::types::{CoreId, MemDomain};

    fn nat(cfg: NatConfig) -> (pp_sim::machine::Machine, Nat) {
        let mut m = machine();
        let n = Nat::new(m.allocator(MemDomain(0)), cfg, CostModel::default());
        (m, n)
    }

    fn udp_from(src: [u8; 4], sport: u16) -> Packet {
        PacketBuilder::default().udp_checksummed(
            Ipv4Addr::from(src),
            Ipv4Addr::new(93, 184, 216, 34),
            sport,
            53,
            b"query",
        )
    }

    #[test]
    fn translates_to_pool_address_with_valid_checksums() {
        let (mut m, mut n) = nat(NatConfig::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = udp_from([10, 0, 0, 7], 40000);
        assert_eq!(n.process(&mut ctx, &mut pkt), Action::Out(0));
        let ip = pkt.ipv4().unwrap();
        let pool_base = u32::from(Ipv4Addr::new(203, 0, 113, 1));
        let got = u32::from(ip.src);
        assert!((pool_base..pool_base + 4).contains(&got), "src {} not in pool", ip.src);
        assert!(Ipv4Header::verify_checksum(&pkt.data[pkt.l3_offset()..]));
        assert!(pkt.verify_l4_checksum().unwrap());
        assert_eq!(n.translated, 1);
        assert_eq!(n.bindings_created, 1);
    }

    #[test]
    fn same_flow_keeps_its_binding() {
        let (mut m, mut n) = nat(NatConfig::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut endpoints = std::collections::HashSet::new();
        for _ in 0..10 {
            let mut pkt = udp_from([10, 0, 0, 7], 40000);
            n.process(&mut ctx, &mut pkt);
            let k = pkt.flow_key().unwrap();
            endpoints.insert((k.src, k.src_port));
        }
        assert_eq!(endpoints.len(), 1, "one inside flow, one public endpoint");
        assert_eq!(n.bindings_created, 1);
    }

    #[test]
    fn distinct_flows_get_distinct_endpoints() {
        let (mut m, mut n) = nat(NatConfig::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut endpoints = std::collections::HashSet::new();
        for i in 0..200u16 {
            let mut pkt = udp_from([10, 0, (i >> 8) as u8, i as u8], 1000 + i);
            n.process(&mut ctx, &mut pkt);
            let k = pkt.flow_key().unwrap();
            endpoints.insert((k.src, k.src_port));
        }
        assert_eq!(endpoints.len(), 200, "no two flows may share a public endpoint");
    }

    #[test]
    fn reverse_table_inverts_binding() {
        let (mut m, mut n) = nat(NatConfig::default());
        let mut ctx = m.ctx(CoreId(0));
        for i in 0..50u16 {
            let mut pkt = udp_from([10, 1, 0, i as u8], 2000 + i);
            let inside = pkt.flow_key().unwrap();
            n.process(&mut ctx, &mut pkt);
            let (pub_ip, pub_port) = n.binding_for(&inside).expect("binding exists");
            assert_eq!(
                n.reverse_of(pub_ip, pub_port),
                Some((inside.src, inside.src_port)),
                "session array must invert the binding"
            );
        }
    }

    #[test]
    fn port_exhaustion_steals_oldest_and_stays_consistent() {
        let (mut m, mut n) = nat(NatConfig::tiny(16));
        let mut ctx = m.ctx(CoreId(0));
        for i in 0..64u16 {
            let mut pkt = udp_from([10, 2, 0, i as u8], 3000 + i);
            assert_eq!(n.process(&mut ctx, &mut pkt), Action::Out(0));
        }
        assert!(n.port_steals > 0, "16 ports for 64 flows must steal");
        // Invariant: every live binding's endpoint maps back to it.
        let mut live = 0;
        for i in 0..64u16 {
            let key = udp_from([10, 2, 0, i as u8], 3000 + i).flow_key().unwrap();
            if let Some((ip, port)) = n.binding_for(&key) {
                assert_eq!(
                    n.reverse_of(ip, port),
                    Some((key.src, key.src_port)),
                    "stale binding for flow {i}"
                );
                live += 1;
            }
        }
        assert!(live <= 16, "cannot have more live bindings than ports");
        assert!(live > 0);
    }

    #[test]
    fn tcp_translation_preserves_payload_and_checksums() {
        let (mut m, mut n) = nat(NatConfig::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = PacketBuilder::default().tcp(
            Ipv4Addr::new(172, 16, 0, 8),
            Ipv4Addr::new(8, 8, 4, 4),
            55000,
            443,
            12345,
            b"TLS hello",
        );
        assert_eq!(n.process(&mut ctx, &mut pkt), Action::Out(0));
        assert!(Ipv4Header::verify_checksum(&pkt.data[pkt.l3_offset()..]));
        assert!(pkt.verify_l4_checksum().unwrap());
        assert_eq!(pkt.payload().unwrap(), b"TLS hello");
        assert_eq!(pkt.ipv4().unwrap().dst, Ipv4Addr::new(8, 8, 4, 4), "dst untouched");
    }

    #[test]
    fn footprint_is_multi_megabyte_at_default_scale() {
        let (_m, n) = nat(NatConfig::default());
        assert!(
            n.footprint() > 8 << 20,
            "NAT state should pressure the L3 ({} B)",
            n.footprint()
        );
    }

    fn nat_bucketed(cfg: NatConfig) -> (pp_sim::machine::Machine, Nat) {
        let mut m = machine();
        let n = Nat::new_bucketed(m.allocator(MemDomain(0)), cfg, CostModel::default());
        (m, n)
    }

    #[test]
    fn bucketed_translates_and_inverts_like_flat() {
        let (mut m, mut n) = nat_bucketed(NatConfig::default());
        assert!(n.is_bucketed());
        let mut ctx = m.ctx(CoreId(0));
        let mut endpoints = std::collections::HashSet::new();
        for i in 0..200u16 {
            let mut pkt = udp_from([10, 3, (i >> 8) as u8, i as u8], 1000 + i);
            let inside = pkt.flow_key().unwrap();
            assert_eq!(n.process(&mut ctx, &mut pkt), Action::Out(0));
            let (pub_ip, pub_port) = n.binding_for(&inside).expect("binding exists");
            assert_eq!(
                n.reverse_of(pub_ip, pub_port),
                Some((inside.src, inside.src_port)),
                "session array must invert the binding"
            );
            endpoints.insert((pub_ip, pub_port));
        }
        assert_eq!(endpoints.len(), 200, "no two flows may share a public endpoint");
        assert_eq!(n.bindings_created, 200);
        // Repeat traffic reuses the bindings.
        for i in 0..200u16 {
            let mut pkt = udp_from([10, 3, (i >> 8) as u8, i as u8], 1000 + i);
            n.process(&mut ctx, &mut pkt);
        }
        assert_eq!(n.bindings_created, 200, "no new bindings on repeat traffic");
    }

    #[test]
    fn bucketed_port_exhaustion_steals_and_stays_consistent() {
        let (mut m, mut n) = nat_bucketed(NatConfig::tiny(16));
        let mut ctx = m.ctx(CoreId(0));
        for i in 0..64u16 {
            let mut pkt = udp_from([10, 4, 0, i as u8], 3000 + i);
            assert_eq!(n.process(&mut ctx, &mut pkt), Action::Out(0));
        }
        assert!(n.port_steals > 0, "16 ports for 64 flows must steal");
        let mut live = 0;
        for i in 0..64u16 {
            let key = udp_from([10, 4, 0, i as u8], 3000 + i).flow_key().unwrap();
            if let Some((ip, port)) = n.binding_for(&key) {
                assert_eq!(
                    n.reverse_of(ip, port),
                    Some((key.src, key.src_port)),
                    "stale binding for flow {i}"
                );
                live += 1;
            }
        }
        assert!(live <= 16, "cannot have more live bindings than ports");
        assert!(live > 0);
    }

    #[test]
    fn bucketed_capacity_matches_flat_slots() {
        let cfg = NatConfig::default();
        let (_m, n) = nat_bucketed(cfg);
        // 2^18 slots as 2^15 buckets × 8; bucket = 64 B header + 8 records.
        let rec = std::mem::size_of::<Binding>() as u64;
        let bindings = n.footprint() - (cfg.pool_size() as u64) * 16;
        assert_eq!(bindings, (1u64 << 15) * (64 + 8 * rec));
    }

    #[test]
    fn non_ip_garbage_is_dropped() {
        let (mut m, mut n) = nat(NatConfig::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut junk = Packet::from_bytes(bytes::BytesMut::zeroed(60));
        assert_eq!(n.process(&mut ctx, &mut junk), Action::Drop);
        assert_eq!(n.dropped, 1);
    }
}
