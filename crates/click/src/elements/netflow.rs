//! NetFlow-style per-flow statistics (the paper's MON add-on): hash the
//! 5-tuple, index an open-addressed flow table, update a packet count and a
//! timestamp — "a representative form of memory-intensive packet processing
//! that benefits significantly from the L3 cache".
//!
//! The table is sized 2^17 entries × 32 B = 4 MB for the paper's population
//! of 100 000 concurrent flows (load factor ≈ 0.76, short linear probes).
//!
//! ## Storage layouts (PR 10)
//!
//! The default layout is the paper's **flat** open-addressed array (one
//! 64-byte record per slot, linear probing) — this path is byte-for-byte
//! unchanged and anchors the pinned repro digests. [`NetFlow::new_bucketed`]
//! opts into the cache-conscious [`FlowTable`] layout instead: 8-entry
//! buckets whose 64-byte header line holds one tag byte per slot, so a probe
//! screens eight candidates with one dependent read and only touches record
//! lines whose tag matches. At Internet scale (1M+ flows, table larger than
//! L3) that turns a multi-line probe chain into header line + one record
//! line. Bucketed mode also enables a batched probe phase
//! ([`Element::process_batch`]): the home-bucket header lines of the whole
//! packet vector are gathered with [`ExecCtx::read_batch`] lookahead before
//! the per-packet update walk.

use crate::cost::CostModel;
use crate::element::{Action, Element, BATCH_MLP};
use pp_net::fivetuple::FlowKey;
use pp_net::flowtab::{FlowTable, Probe, Touch};
use pp_net::packet::Packet;
use pp_sim::arena::{DomainAllocator, SimVec};
use pp_sim::ctx::ExecCtx;
use pp_sim::types::Addr;

/// One flow record, exactly 64 bytes (one cache line), like a NetFlow v5
/// record with its full set of counters and timestamps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(C)]
struct FlowRecord {
    src: u32,
    dst: u32,
    /// src_port << 16 | dst_port.
    ports: u32,
    /// protocol in the low byte; bit 31 = occupied.
    proto_flags: u32,
    packets: u32,
    bytes: u32,
    last_seen: u64,
    first_seen: u64,
    /// Accumulated TCP flags (v5 semantics).
    tcp_flags: u32,
    /// TOS byte + input/output interface ids, packed.
    tos_ifaces: u32,
    /// Reserved (AS numbers, masks in v5).
    _reserved: [u64; 2],
}

const OCCUPIED: u32 = 1 << 31;
/// Probes before giving up and overwriting the first candidate.
const MAX_PROBES: usize = 8;

impl FlowRecord {
    fn matches(&self, key: &FlowKey) -> bool {
        self.proto_flags & OCCUPIED != 0
            && self.src == u32::from(key.src)
            && self.dst == u32::from(key.dst)
            && self.ports == ((key.src_port as u32) << 16 | key.dst_port as u32)
            && (self.proto_flags & 0xFF) as u8 == key.protocol
    }

    fn occupied(&self) -> bool {
        self.proto_flags & OCCUPIED != 0
    }

    fn new_for(key: &FlowKey) -> FlowRecord {
        FlowRecord {
            src: u32::from(key.src),
            dst: u32::from(key.dst),
            ports: (key.src_port as u32) << 16 | key.dst_port as u32,
            proto_flags: OCCUPIED | key.protocol as u32,
            ..FlowRecord::default()
        }
    }
}

/// Flow-record storage: the paper's flat array, or the PR 10 cache-conscious
/// bucketed table (see the module docs).
enum Storage {
    Flat { table: SimVec<FlowRecord>, mask: usize },
    Bucketed { tab: FlowTable<FlowKey, FlowRecord>, base: Addr },
}

/// The NetFlow element. See the module docs.
pub struct NetFlow {
    storage: Storage,
    cost: CostModel,
    /// Account the reverse direction too (a monitor tracking both
    /// directions of each conversation, as deployed collectors do).
    pub bidirectional: bool,
    /// Packets that updated an existing entry.
    pub updated: u64,
    /// Packets that created a new entry.
    pub inserted: u64,
    /// Entries overwritten because a probe sequence was exhausted.
    pub evicted: u64,
    /// Total probe reads performed.
    pub probes: u64,
    /// Scratch: touch spans replayed against the simulated region.
    touched: Vec<Touch>,
    /// Scratch for the batched path.
    hdrs: Vec<u64>,
    keys: Vec<FlowKey>,
    lens: Vec<u32>,
}

impl NetFlow {
    fn with_storage(storage: Storage, cost: CostModel) -> Self {
        NetFlow {
            storage,
            cost,
            bidirectional: true,
            updated: 0,
            inserted: 0,
            evicted: 0,
            probes: 0,
            touched: Vec::new(),
            hdrs: Vec::new(),
            keys: Vec::new(),
            lens: Vec::new(),
        }
    }

    /// A flat table with `2^log2_capacity` slots in `alloc`'s domain
    /// (the paper's layout; the repro-digest default).
    pub fn new(alloc: &mut DomainAllocator, log2_capacity: u32, cost: CostModel) -> Self {
        let cap = 1usize << log2_capacity;
        let storage = Storage::Flat {
            table: SimVec::new(alloc, cap, FlowRecord::default()),
            mask: cap - 1,
        };
        Self::with_storage(storage, cost)
    }

    /// A cache-conscious bucketed table with `2^log2_buckets` buckets
    /// (8 slots each) in `alloc`'s domain. `log2_buckets` 17–19 gives the
    /// PR 10 Internet-scale sizing of 1M–4M entries.
    pub fn new_bucketed(alloc: &mut DomainAllocator, log2_buckets: u32, cost: CostModel) -> Self {
        let tab = FlowTable::new(log2_buckets);
        let base = alloc.alloc_lines(tab.footprint());
        Self::with_storage(Storage::Bucketed { tab, base }, cost)
    }

    /// Whether this instance uses the bucketed layout.
    pub fn is_bucketed(&self) -> bool {
        matches!(self.storage, Storage::Bucketed { .. })
    }

    /// Slots in the table.
    pub fn capacity(&self) -> usize {
        match &self.storage {
            Storage::Flat { mask, .. } => mask + 1,
            Storage::Bucketed { tab, .. } => tab.capacity(),
        }
    }

    /// Entries currently occupied (host-side; diagnostics).
    pub fn occupancy(&self) -> usize {
        match &self.storage {
            Storage::Flat { table, mask } => {
                (0..=*mask).filter(|&i| table.peek(i).occupied()).count()
            }
            Storage::Bucketed { tab, .. } => tab.occupancy(),
        }
    }

    /// Simulated footprint in bytes.
    pub fn footprint(&self) -> u64 {
        match &self.storage {
            Storage::Flat { table, .. } => table.footprint(),
            Storage::Bucketed { tab, .. } => tab.footprint(),
        }
    }

    /// Host-side read of a flow's record (tests/diagnostics).
    fn host_record(&self, key: &FlowKey) -> Option<FlowRecord> {
        match &self.storage {
            Storage::Flat { table, mask } => {
                let h = key.hash() as usize;
                for p in 0..MAX_PROBES {
                    let rec = table.peek((h + p) & mask);
                    if rec.matches(key) {
                        return Some(*rec);
                    }
                    if !rec.occupied() {
                        return None;
                    }
                }
                None
            }
            Storage::Bucketed { tab, .. } => tab.get(key).copied(),
        }
    }

    /// Host-side read of a flow's packet count (tests).
    pub fn packet_count(&self, key: &FlowKey) -> Option<u32> {
        self.host_record(key).map(|r| r.packets)
    }
}

impl Element for NetFlow {
    fn class_name(&self) -> &'static str {
        "NetFlow"
    }

    fn tag(&self) -> &'static str {
        "flow_statistics"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        // Touch the header line for the 5-tuple (L1 hit in steady state).
        if pkt.buf_addr != 0 {
            ctx.read(pkt.buf_addr + pkt.l3_offset() as u64);
        }
        let Ok(key) = pkt.flow_key() else { return Action::Drop };
        let len = pkt.len() as u32;
        self.account(ctx, &key, len);
        if self.bidirectional {
            let rev = FlowKey {
                src: key.dst,
                dst: key.src,
                protocol: key.protocol,
                src_port: key.dst_port,
                dst_port: key.src_port,
            };
            self.account(ctx, &rev, len);
        }
        Action::Out(0)
    }

    fn process_batch(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        pkts: &mut [Packet],
        actions: &mut Vec<Action>,
    ) {
        // Flat storage keeps the default per-packet loop (pinned repro
        // digests); so does a one-packet batch (scalar-equivalence
        // convention).
        if pkts.len() <= 1 || matches!(self.storage, Storage::Flat { .. }) {
            for pkt in pkts.iter_mut() {
                actions.push(self.process(ctx, pkt));
            }
            return;
        }
        // Phase 1: the per-packet header-line touches, overlapped.
        self.hdrs.clear();
        for pkt in pkts.iter() {
            if pkt.buf_addr != 0 {
                self.hdrs.push(pkt.buf_addr + pkt.l3_offset() as u64);
            }
        }
        if !self.hdrs.is_empty() {
            ctx.read_batch(&self.hdrs, BATCH_MLP);
        }
        // Phase 2: parse keys; gather every packet's home-bucket header
        // line with lookahead, host-pre-touching the tag bytes when the
        // `hostopt` lever is on (the software-prefetch analogue — host
        // reads charge nothing).
        self.keys.clear();
        self.lens.clear();
        self.hdrs.clear();
        let pretouch = pp_net::hostopt::host_pretouch();
        let mut next_touch = 0u8;
        {
            let Storage::Bucketed { tab, base } = &self.storage else { unreachable!() };
            for pkt in pkts.iter() {
                match pkt.flow_key() {
                    Ok(key) => {
                        let b = tab.home_bucket(&key);
                        self.hdrs.push(base + tab.header_span(b).0);
                        if pretouch {
                            next_touch ^= tab.prefetch_bucket(b);
                        }
                        self.keys.push(key);
                        self.lens.push(pkt.len() as u32);
                        actions.push(Action::Out(0));
                    }
                    Err(_) => actions.push(Action::Drop),
                }
            }
        }
        std::hint::black_box(next_touch);
        ctx.read_batch(&self.hdrs, BATCH_MLP);
        // Phase 3: per-packet update walk. The forward probe's first
        // dependent read (the home header line) was charged in phase 2;
        // reverse accounting runs fully scalar.
        for j in 0..self.keys.len() {
            let key = self.keys[j];
            let len = self.lens[j];
            self.account_bucketed(ctx, &key, len, true);
            if self.bidirectional {
                let rev = FlowKey {
                    src: key.dst,
                    dst: key.src,
                    protocol: key.protocol,
                    src_port: key.dst_port,
                    dst_port: key.src_port,
                };
                self.account_bucketed(ctx, &rev, len, false);
            }
        }
    }
}

impl NetFlow {
    /// One direction's table operation: hash, probe, update-or-insert.
    fn account(&mut self, ctx: &mut ExecCtx<'_>, key: &FlowKey, len: u32) {
        match self.storage {
            Storage::Flat { .. } => self.account_flat(ctx, key, len),
            Storage::Bucketed { .. } => self.account_bucketed(ctx, key, len, false),
        }
    }

    fn account_flat(&mut self, ctx: &mut ExecCtx<'_>, key: &FlowKey, len: u32) {
        let Storage::Flat { table, mask } = &mut self.storage else { unreachable!() };
        let mask = *mask;
        CostModel::charge(ctx, self.cost.netflow_hash);
        let h = key.hash() as usize;
        let now = ctx.now();

        for p in 0..MAX_PROBES {
            let idx = (h + p) & mask;
            self.probes += 1;
            let rec = table.read(ctx, idx);
            if rec.matches(key) {
                table.update(ctx, idx, |r| {
                    r.packets += 1;
                    r.bytes = r.bytes.wrapping_add(len);
                    r.last_seen = now;
                    if r.first_seen == 0 {
                        r.first_seen = now;
                    }
                });
                CostModel::charge(ctx, self.cost.netflow_update);
                self.updated += 1;
                return;
            }
            if !rec.occupied() {
                let mut fresh = FlowRecord::new_for(key);
                fresh.packets = 1;
                fresh.bytes = len;
                fresh.last_seen = now;
                fresh.first_seen = now;
                table.write(ctx, idx, fresh);
                CostModel::charge(ctx, self.cost.netflow_update);
                self.inserted += 1;
                return;
            }
        }
        // Probe budget exhausted: evict the home slot (bounded work per
        // packet keeps the element's cost predictable, as the paper's
        // fixed-population setup does by construction).
        let idx = h & mask;
        let mut fresh = FlowRecord::new_for(key);
        fresh.packets = 1;
        fresh.bytes = len;
        fresh.last_seen = now;
        fresh.first_seen = now;
        table.write(ctx, idx, fresh);
        CostModel::charge(ctx, self.cost.netflow_update);
        self.evicted += 1;
    }

    /// Bucketed-table accounting: probe via tag bytes, then replay the
    /// recorded cache touches against the simulated region. With
    /// `home_header_charged` the first dependent read (the home-bucket
    /// header) is skipped — the batched probe phase already charged it.
    fn account_bucketed(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        key: &FlowKey,
        len: u32,
        home_header_charged: bool,
    ) {
        let Storage::Bucketed { tab, base } = &mut self.storage else { unreachable!() };
        CostModel::charge(ctx, self.cost.netflow_hash);
        let now = ctx.now();
        self.touched.clear();
        let probe = tab.probe(key, &mut self.touched);
        self.probes += self.touched.len() as u64;
        match probe {
            Probe::Hit { bucket, slot } => {
                tab.update_slot(
                    bucket,
                    slot,
                    |r| {
                        r.packets += 1;
                        r.bytes = r.bytes.wrapping_add(len);
                        r.last_seen = now;
                        if r.first_seen == 0 {
                            r.first_seen = now;
                        }
                    },
                    &mut self.touched,
                );
                self.updated += 1;
            }
            Probe::Empty { bucket, slot } => {
                let mut fresh = FlowRecord::new_for(key);
                fresh.packets = 1;
                fresh.bytes = len;
                fresh.last_seen = now;
                fresh.first_seen = now;
                tab.insert_at(bucket, slot, *key, fresh, &mut self.touched);
                self.inserted += 1;
            }
            Probe::Full { bucket, slot } => {
                // Same bounded-work eviction policy as the flat table.
                let mut fresh = FlowRecord::new_for(key);
                fresh.packets = 1;
                fresh.bytes = len;
                fresh.last_seen = now;
                fresh.first_seen = now;
                tab.insert_at(bucket, slot, *key, fresh, &mut self.touched);
                self.evicted += 1;
            }
        }
        CostModel::charge(ctx, self.cost.netflow_update);
        let base = *base;
        for (i, t) in self.touched.iter().enumerate() {
            if i == 0 && home_header_charged {
                continue;
            }
            if t.write {
                ctx.write_struct(base + t.offset, t.len);
            } else {
                ctx.read_struct(base + t.offset, t.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet};
    use pp_net::gen::traffic::{TrafficGen, TrafficSpec};
    use pp_sim::types::{CoreId, MemDomain};

    fn netflow(log2: u32) -> (pp_sim::machine::Machine, NetFlow) {
        let mut m = machine();
        let nf = NetFlow::new(m.allocator(MemDomain(0)), log2, CostModel::default());
        (m, nf)
    }

    #[test]
    fn same_flow_updates_one_entry() {
        let (mut m, mut nf) = netflow(10);
        nf.bidirectional = false;
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        for _ in 0..5 {
            assert_eq!(nf.process(&mut ctx, &mut pkt), Action::Out(0));
        }
        assert_eq!(nf.inserted, 1);
        assert_eq!(nf.updated, 4);
        let key = pkt.flow_key().unwrap();
        assert_eq!(nf.packet_count(&key), Some(5));
        assert_eq!(nf.occupancy(), 1);
    }

    #[test]
    fn bidirectional_accounts_both_directions() {
        let (mut m, mut nf) = netflow(10);
        assert!(nf.bidirectional);
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        nf.process(&mut ctx, &mut pkt);
        // Forward and reverse entries both exist.
        assert_eq!(nf.occupancy(), 2);
        let key = pkt.flow_key().unwrap();
        let rev = pp_net::fivetuple::FlowKey {
            src: key.dst,
            dst: key.src,
            protocol: key.protocol,
            src_port: key.dst_port,
            dst_port: key.src_port,
        };
        assert_eq!(nf.packet_count(&key), Some(1));
        assert_eq!(nf.packet_count(&rev), Some(1));
    }

    #[test]
    fn population_fills_table_to_expected_size() {
        let (mut m, mut nf) = netflow(12); // 4096 slots
        nf.bidirectional = false;
        let mut g = TrafficGen::new(TrafficSpec::flow_population(64, 1000, 3));
        let mut ctx = m.ctx(CoreId(0));
        for _ in 0..10_000 {
            let mut p = g.next_packet();
            nf.process(&mut ctx, &mut p);
        }
        let occ = nf.occupancy();
        assert!(occ <= 1000, "at most the population size, got {occ}");
        assert!(occ > 900, "most of the population must be present, got {occ}");
        assert_eq!(nf.evicted, 0, "a 25%-loaded table should not evict");
    }

    #[test]
    fn timestamps_and_bytes_tracked() {
        let (mut m, mut nf) = netflow(10);
        {
            let mut ctx = m.ctx(CoreId(0));
            ctx.compute(500, 1);
            let mut pkt = packet();
            nf.process(&mut ctx, &mut pkt);
        }
        let key = packet().flow_key().unwrap();
        let rec = nf.host_record(&key).expect("record exists");
        assert!(rec.last_seen >= 500);
        assert_eq!(rec.bytes as usize, packet().len());
    }

    #[test]
    fn probe_exhaustion_evicts_bounded() {
        // A 1-slot table forces every distinct flow to evict.
        let (mut m, mut nf) = netflow(0);
        let mut g = TrafficGen::new(TrafficSpec::random_dst(64, 8));
        let mut ctx = m.ctx(CoreId(0));
        for _ in 0..50 {
            let mut p = g.next_packet();
            assert_eq!(nf.process(&mut ctx, &mut p), Action::Out(0));
        }
        assert!(nf.evicted > 0 || nf.inserted <= 2);
        assert_eq!(nf.occupancy(), 1);
    }

    #[test]
    fn footprint_matches_paper_scale() {
        let (_m, nf) = netflow(17);
        assert_eq!(nf.footprint(), (1 << 17) * 64);
    }

    fn netflow_bucketed(log2_buckets: u32) -> (pp_sim::machine::Machine, NetFlow) {
        let mut m = machine();
        let nf = NetFlow::new_bucketed(m.allocator(MemDomain(0)), log2_buckets, CostModel::default());
        (m, nf)
    }

    #[test]
    fn bucketed_tracks_flows_like_flat() {
        let (mut mf, mut flat) = netflow(12);
        let (mut mb, mut buck) = netflow_bucketed(9); // same 4096-slot capacity
        flat.bidirectional = false;
        buck.bidirectional = false;
        assert_eq!(flat.capacity(), buck.capacity());
        let mut gf = TrafficGen::new(TrafficSpec::flow_population(64, 1000, 3));
        let mut gb = TrafficGen::new(TrafficSpec::flow_population(64, 1000, 3));
        let mut cf = mf.ctx(CoreId(0));
        let mut cb = mb.ctx(CoreId(0));
        for _ in 0..10_000 {
            let mut pf = gf.next_packet();
            let mut pb = gb.next_packet();
            assert_eq!(flat.process(&mut cf, &mut pf), Action::Out(0));
            assert_eq!(buck.process(&mut cb, &mut pb), Action::Out(0));
        }
        // Identical population, identical counts, no evictions either way.
        assert_eq!(flat.evicted, 0);
        assert_eq!(buck.evicted, 0);
        assert_eq!(flat.occupancy(), buck.occupancy());
        let mut g = TrafficGen::new(TrafficSpec::flow_population(64, 1000, 3));
        for _ in 0..1000 {
            let key = g.next_packet().flow_key().unwrap();
            assert_eq!(flat.packet_count(&key), buck.packet_count(&key));
        }
        // The tag bytes screen non-matching slots: a hit is exactly one
        // header line + one record line, regardless of bucket occupancy.
        // (Flat probing averages close to 1 read at this low load but has
        // no such bound; its tail grows with clustering.)
        assert!(
            buck.probes <= 2 * 10_000 + buck.inserted + 100,
            "bucketed probe reads must be ~2 per packet, got {}",
            buck.probes
        );
    }

    #[test]
    fn bucketed_batch_matches_scalar_results() {
        let (mut ms, mut scalar) = netflow_bucketed(9);
        let (mut mb, mut batched) = netflow_bucketed(9);
        let mut gs = TrafficGen::new(TrafficSpec::flow_population(64, 500, 7));
        let mut gb = TrafficGen::new(TrafficSpec::flow_population(64, 500, 7));
        let mut cs = ms.ctx(CoreId(0));
        let mut cb = mb.ctx(CoreId(0));
        for _ in 0..40 {
            let mut batch: Vec<Packet> = (0..32).map(|_| gb.next_packet()).collect();
            let mut actions = Vec::new();
            batched.process_batch(&mut cb, &mut batch, &mut actions);
            for (i, a) in actions.iter().enumerate() {
                let mut p = gs.next_packet();
                assert_eq!(scalar.process(&mut cs, &mut p), *a, "packet {i}");
            }
        }
        assert_eq!(scalar.updated, batched.updated);
        assert_eq!(scalar.inserted, batched.inserted);
        assert_eq!(scalar.evicted, batched.evicted);
        assert_eq!(scalar.occupancy(), batched.occupancy());
        let mut g = TrafficGen::new(TrafficSpec::flow_population(64, 500, 7));
        for _ in 0..500 {
            let key = g.next_packet().flow_key().unwrap();
            assert_eq!(scalar.packet_count(&key), batched.packet_count(&key));
        }
        // Overlapping the home-header gather must not cost extra cycles.
        assert!(cb.now() <= cs.now(), "batched {} > scalar {}", cb.now(), cs.now());
    }

    #[test]
    fn bucketed_batch_of_one_is_charge_identical_to_scalar() {
        let (mut ms, mut scalar) = netflow_bucketed(9);
        let (mut mb, mut batched) = netflow_bucketed(9);
        let mut gs = TrafficGen::new(TrafficSpec::flow_population(64, 100, 11));
        let mut gb = TrafficGen::new(TrafficSpec::flow_population(64, 100, 11));
        {
            let mut cs = ms.ctx(CoreId(0));
            let mut cb = mb.ctx(CoreId(0));
            for _ in 0..200 {
                let mut ps = gs.next_packet();
                scalar.process(&mut cs, &mut ps);
                let mut batch = vec![gb.next_packet()];
                let mut actions = Vec::new();
                batched.process_batch(&mut cb, &mut batch, &mut actions);
            }
            assert_eq!(cs.now(), cb.now(), "batch of 1 must be charge-identical");
        }
        assert_eq!(scalar.probes, batched.probes);
    }

    #[test]
    fn bucketed_footprint_is_internet_scale() {
        let (_m, nf) = netflow_bucketed(17); // 1M+ entries
        assert_eq!(nf.capacity(), 1 << 20);
        // 2^17 buckets × (64 B header + 8 × 64 B records) — larger than any L3.
        assert_eq!(nf.footprint(), (1u64 << 17) * (64 + 8 * 64));
        assert!(nf.footprint() > 64 << 20);
    }
}
