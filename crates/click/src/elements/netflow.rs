//! NetFlow-style per-flow statistics (the paper's MON add-on): hash the
//! 5-tuple, index an open-addressed flow table, update a packet count and a
//! timestamp — "a representative form of memory-intensive packet processing
//! that benefits significantly from the L3 cache".
//!
//! The table is sized 2^17 entries × 32 B = 4 MB for the paper's population
//! of 100 000 concurrent flows (load factor ≈ 0.76, short linear probes).

use crate::cost::CostModel;
use crate::element::{Action, Element};
use pp_net::fivetuple::FlowKey;
use pp_net::packet::Packet;
use pp_sim::arena::{DomainAllocator, SimVec};
use pp_sim::ctx::ExecCtx;

/// One flow record, exactly 64 bytes (one cache line), like a NetFlow v5
/// record with its full set of counters and timestamps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(C)]
struct FlowRecord {
    src: u32,
    dst: u32,
    /// src_port << 16 | dst_port.
    ports: u32,
    /// protocol in the low byte; bit 31 = occupied.
    proto_flags: u32,
    packets: u32,
    bytes: u32,
    last_seen: u64,
    first_seen: u64,
    /// Accumulated TCP flags (v5 semantics).
    tcp_flags: u32,
    /// TOS byte + input/output interface ids, packed.
    tos_ifaces: u32,
    /// Reserved (AS numbers, masks in v5).
    _reserved: [u64; 2],
}

const OCCUPIED: u32 = 1 << 31;
/// Probes before giving up and overwriting the first candidate.
const MAX_PROBES: usize = 8;

impl FlowRecord {
    fn matches(&self, key: &FlowKey) -> bool {
        self.proto_flags & OCCUPIED != 0
            && self.src == u32::from(key.src)
            && self.dst == u32::from(key.dst)
            && self.ports == ((key.src_port as u32) << 16 | key.dst_port as u32)
            && (self.proto_flags & 0xFF) as u8 == key.protocol
    }

    fn occupied(&self) -> bool {
        self.proto_flags & OCCUPIED != 0
    }

    fn new_for(key: &FlowKey) -> FlowRecord {
        FlowRecord {
            src: u32::from(key.src),
            dst: u32::from(key.dst),
            ports: (key.src_port as u32) << 16 | key.dst_port as u32,
            proto_flags: OCCUPIED | key.protocol as u32,
            ..FlowRecord::default()
        }
    }
}

/// The NetFlow element. See the module docs.
pub struct NetFlow {
    table: SimVec<FlowRecord>,
    mask: usize,
    cost: CostModel,
    /// Account the reverse direction too (a monitor tracking both
    /// directions of each conversation, as deployed collectors do).
    pub bidirectional: bool,
    /// Packets that updated an existing entry.
    pub updated: u64,
    /// Packets that created a new entry.
    pub inserted: u64,
    /// Entries overwritten because a probe sequence was exhausted.
    pub evicted: u64,
    /// Total probe reads performed.
    pub probes: u64,
}

impl NetFlow {
    /// A table with `2^log2_capacity` slots in `alloc`'s domain.
    pub fn new(alloc: &mut DomainAllocator, log2_capacity: u32, cost: CostModel) -> Self {
        let cap = 1usize << log2_capacity;
        NetFlow {
            table: SimVec::new(alloc, cap, FlowRecord::default()),
            mask: cap - 1,
            cost,
            bidirectional: true,
            updated: 0,
            inserted: 0,
            evicted: 0,
            probes: 0,
        }
    }

    /// Slots in the table.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Entries currently occupied (host-side scan; diagnostics).
    pub fn occupancy(&self) -> usize {
        (0..self.capacity()).filter(|&i| self.table.peek(i).occupied()).count()
    }

    /// Simulated footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.table.footprint()
    }

    /// Host-side read of a flow's packet count (tests).
    pub fn packet_count(&self, key: &FlowKey) -> Option<u32> {
        let h = key.hash() as usize;
        for p in 0..MAX_PROBES {
            let rec = self.table.peek((h + p) & self.mask);
            if rec.matches(key) {
                return Some(rec.packets);
            }
            if !rec.occupied() {
                return None;
            }
        }
        None
    }
}

impl Element for NetFlow {
    fn class_name(&self) -> &'static str {
        "NetFlow"
    }

    fn tag(&self) -> &'static str {
        "flow_statistics"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        // Touch the header line for the 5-tuple (L1 hit in steady state).
        if pkt.buf_addr != 0 {
            ctx.read(pkt.buf_addr + pkt.l3_offset() as u64);
        }
        let Ok(key) = pkt.flow_key() else { return Action::Drop };
        let len = pkt.len() as u32;
        self.account(ctx, &key, len);
        if self.bidirectional {
            let rev = FlowKey {
                src: key.dst,
                dst: key.src,
                protocol: key.protocol,
                src_port: key.dst_port,
                dst_port: key.src_port,
            };
            self.account(ctx, &rev, len);
        }
        Action::Out(0)
    }
}

impl NetFlow {
    /// One direction's table operation: hash, probe, update-or-insert.
    fn account(&mut self, ctx: &mut ExecCtx<'_>, key: &FlowKey, len: u32) {
        CostModel::charge(ctx, self.cost.netflow_hash);
        let h = key.hash() as usize;
        let now = ctx.now();

        for p in 0..MAX_PROBES {
            let idx = (h + p) & self.mask;
            self.probes += 1;
            let rec = self.table.read(ctx, idx);
            if rec.matches(key) {
                self.table.update(ctx, idx, |r| {
                    r.packets += 1;
                    r.bytes = r.bytes.wrapping_add(len);
                    r.last_seen = now;
                    if r.first_seen == 0 {
                        r.first_seen = now;
                    }
                });
                CostModel::charge(ctx, self.cost.netflow_update);
                self.updated += 1;
                return;
            }
            if !rec.occupied() {
                let mut fresh = FlowRecord::new_for(key);
                fresh.packets = 1;
                fresh.bytes = len;
                fresh.last_seen = now;
                fresh.first_seen = now;
                self.table.write(ctx, idx, fresh);
                CostModel::charge(ctx, self.cost.netflow_update);
                self.inserted += 1;
                return;
            }
        }
        // Probe budget exhausted: evict the home slot (bounded work per
        // packet keeps the element's cost predictable, as the paper's
        // fixed-population setup does by construction).
        let idx = h & self.mask;
        let mut fresh = FlowRecord::new_for(key);
        fresh.packets = 1;
        fresh.bytes = len;
        fresh.last_seen = now;
        fresh.first_seen = now;
        self.table.write(ctx, idx, fresh);
        CostModel::charge(ctx, self.cost.netflow_update);
        self.evicted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet};
    use pp_net::gen::traffic::{TrafficGen, TrafficSpec};
    use pp_sim::types::{CoreId, MemDomain};

    fn netflow(log2: u32) -> (pp_sim::machine::Machine, NetFlow) {
        let mut m = machine();
        let nf = NetFlow::new(m.allocator(MemDomain(0)), log2, CostModel::default());
        (m, nf)
    }

    #[test]
    fn same_flow_updates_one_entry() {
        let (mut m, mut nf) = netflow(10);
        nf.bidirectional = false;
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        for _ in 0..5 {
            assert_eq!(nf.process(&mut ctx, &mut pkt), Action::Out(0));
        }
        assert_eq!(nf.inserted, 1);
        assert_eq!(nf.updated, 4);
        let key = pkt.flow_key().unwrap();
        assert_eq!(nf.packet_count(&key), Some(5));
        assert_eq!(nf.occupancy(), 1);
    }

    #[test]
    fn bidirectional_accounts_both_directions() {
        let (mut m, mut nf) = netflow(10);
        assert!(nf.bidirectional);
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        nf.process(&mut ctx, &mut pkt);
        // Forward and reverse entries both exist.
        assert_eq!(nf.occupancy(), 2);
        let key = pkt.flow_key().unwrap();
        let rev = pp_net::fivetuple::FlowKey {
            src: key.dst,
            dst: key.src,
            protocol: key.protocol,
            src_port: key.dst_port,
            dst_port: key.src_port,
        };
        assert_eq!(nf.packet_count(&key), Some(1));
        assert_eq!(nf.packet_count(&rev), Some(1));
    }

    #[test]
    fn population_fills_table_to_expected_size() {
        let (mut m, mut nf) = netflow(12); // 4096 slots
        nf.bidirectional = false;
        let mut g = TrafficGen::new(TrafficSpec::flow_population(64, 1000, 3));
        let mut ctx = m.ctx(CoreId(0));
        for _ in 0..10_000 {
            let mut p = g.next_packet();
            nf.process(&mut ctx, &mut p);
        }
        let occ = nf.occupancy();
        assert!(occ <= 1000, "at most the population size, got {occ}");
        assert!(occ > 900, "most of the population must be present, got {occ}");
        assert_eq!(nf.evicted, 0, "a 25%-loaded table should not evict");
    }

    #[test]
    fn timestamps_and_bytes_tracked() {
        let (mut m, mut nf) = netflow(10);
        {
            let mut ctx = m.ctx(CoreId(0));
            ctx.compute(500, 1);
            let mut pkt = packet();
            nf.process(&mut ctx, &mut pkt);
        }
        let key = packet().flow_key().unwrap();
        let h = key.hash() as usize & nf.mask;
        let rec = nf.table.peek(h);
        assert!(rec.last_seen >= 500);
        assert_eq!(rec.bytes as usize, packet().len());
    }

    #[test]
    fn probe_exhaustion_evicts_bounded() {
        // A 1-slot table forces every distinct flow to evict.
        let (mut m, mut nf) = netflow(0);
        let mut g = TrafficGen::new(TrafficSpec::random_dst(64, 8));
        let mut ctx = m.ctx(CoreId(0));
        for _ in 0..50 {
            let mut p = g.next_packet();
            assert_eq!(nf.process(&mut ctx, &mut p), Action::Out(0));
        }
        assert!(nf.evicted > 0 || nf.inserted <= 2);
        assert_eq!(nf.occupancy(), 1);
    }

    #[test]
    fn footprint_matches_paper_scale() {
        let (_m, nf) = netflow(17);
        assert_eq!(nf.footprint(), (1 << 17) * 64);
    }
}
