//! A single-producer single-consumer packet queue in simulated shared
//! memory — the handoff structure of the §2.2 *pipeline* configuration.
//!
//! Every operation touches the queue's control lines (head, tail) and one
//! descriptor slot line as **cross-core shared data**, so the lines
//! ping-pong between producer and consumer exactly as the paper describes:
//! "passing socket-buffer descriptors, packet headers, and, potentially,
//! payload between different cores results in compulsory cache misses".

use crate::cost::CostModel;
use pp_net::packet::Packet;
use pp_sim::arena::DomainAllocator;
use pp_sim::ctx::ExecCtx;
use pp_sim::types::{Addr, CACHE_LINE};
use std::collections::VecDeque;

/// The SPSC queue. Wrap in `Rc<RefCell<..>>` to share between the two
/// stage tasks (the simulator is single-threaded; the *simulated* cores
/// contend through the cache model, not through host synchronization).
pub struct SpscQueue {
    slots_addr: Addr,
    head_addr: Addr,
    tail_addr: Addr,
    capacity: usize,
    q: VecDeque<Packet>,
    head: u64,
    tail: u64,
    cost: CostModel,
    /// Successful enqueues.
    pub enqueued: u64,
    /// Successful dequeues.
    pub dequeued: u64,
    /// Enqueue attempts rejected because the queue was full.
    pub full_rejects: u64,
}

impl SpscQueue {
    /// A queue of `capacity` descriptor slots (one line each) plus separate
    /// head/tail lines, allocated in `alloc`'s domain.
    pub fn new(alloc: &mut DomainAllocator, capacity: usize, cost: CostModel) -> Self {
        assert!(capacity >= 1);
        let slots_addr = alloc.alloc_lines(capacity as u64 * CACHE_LINE);
        let head_addr = alloc.alloc_lines(CACHE_LINE);
        let tail_addr = alloc.alloc_lines(CACHE_LINE);
        SpscQueue {
            slots_addr,
            head_addr,
            tail_addr,
            capacity,
            q: VecDeque::with_capacity(capacity),
            head: 0,
            tail: 0,
            cost,
            enqueued: 0,
            dequeued: 0,
            full_rejects: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.q.len() >= self.capacity
    }

    #[inline]
    fn slot_addr(&self, idx: u64) -> Addr {
        self.slots_addr + (idx % self.capacity as u64) * CACHE_LINE
    }

    /// Producer side: enqueue a packet, or return it if the queue is full.
    pub fn push(&mut self, ctx: &mut ExecCtx<'_>, pkt: Packet) -> Result<(), Packet> {
        CostModel::charge(ctx, self.cost.queue_op);
        // Check for space: read the consumer-written tail pointer.
        ctx.shared_read(self.tail_addr);
        if self.is_full() {
            self.full_rejects += 1;
            return Err(pkt);
        }
        // Write the descriptor slot and publish the new head.
        ctx.shared_write(self.slot_addr(self.head));
        ctx.shared_write(self.head_addr);
        self.head += 1;
        self.q.push_back(pkt);
        self.enqueued += 1;
        Ok(())
    }

    /// Consumer side: dequeue a packet if one is available.
    pub fn pop(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Packet> {
        CostModel::charge(ctx, self.cost.queue_op);
        // Check for data: read the producer-written head pointer.
        ctx.shared_read(self.head_addr);
        let pkt = self.q.pop_front()?;
        // Read the descriptor slot and publish the new tail.
        ctx.shared_read(self.slot_addr(self.tail));
        ctx.shared_write(self.tail_addr);
        self.tail += 1;
        self.dequeued += 1;
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet};
    use pp_sim::types::{CoreId, MemDomain};

    fn queue(m: &mut pp_sim::machine::Machine, cap: usize) -> SpscQueue {
        SpscQueue::new(m.allocator(MemDomain(0)), cap, CostModel::default())
    }

    #[test]
    fn fifo_order() {
        let mut m = machine();
        let mut q = queue(&mut m, 8);
        let mut ctx = m.ctx(CoreId(0));
        for i in 0..5u8 {
            let mut p = packet();
            p.data[0] = i;
            q.push(&mut ctx, p).unwrap();
        }
        let mut ctx = m.ctx(CoreId(1));
        for i in 0..5u8 {
            assert_eq!(q.pop(&mut ctx).unwrap().data[0], i);
        }
        assert!(q.pop(&mut ctx).is_none());
    }

    #[test]
    fn full_queue_rejects() {
        let mut m = machine();
        let mut q = queue(&mut m, 2);
        let mut ctx = m.ctx(CoreId(0));
        q.push(&mut ctx, packet()).unwrap();
        q.push(&mut ctx, packet()).unwrap();
        assert!(q.push(&mut ctx, packet()).is_err());
        assert_eq!(q.full_rejects, 1);
    }

    #[test]
    fn cross_core_handoff_generates_misses() {
        // Producer on core 0, consumer on core 1: after warmup, both sides
        // keep missing L1 on the shared lines (ping-pong), unlike a
        // single-core queue.
        let mut m = machine();
        let mut q = queue(&mut m, 64);
        for _ in 0..50 {
            let mut ctx = m.ctx(CoreId(0));
            q.push(&mut ctx, packet()).unwrap();
            let mut ctx = m.ctx(CoreId(1));
            q.pop(&mut ctx).unwrap();
        }
        let c0 = m.core(CoreId(0)).counters.total();
        let c1 = m.core(CoreId(1)).counters.total();
        // The head/tail lines alone force ≥1 private miss per op after
        // warmup on each side.
        let private_misses0 = c0.l1_refs - c0.l1_hits;
        let private_misses1 = c1.l1_refs - c1.l1_hits;
        assert!(
            private_misses0 > 50,
            "producer should keep missing on shared lines, got {private_misses0}"
        );
        assert!(
            private_misses1 > 50,
            "consumer should keep missing on shared lines, got {private_misses1}"
        );
    }

    #[test]
    fn same_core_queue_is_cheap_after_warmup() {
        // Control experiment: both ends on one core — the shared lines stay
        // in its L1 except when stolen (never, here).
        let mut m = machine();
        let mut q = queue(&mut m, 64);
        for _ in 0..50 {
            let mut ctx = m.ctx(CoreId(0));
            q.push(&mut ctx, packet()).unwrap();
            q.pop(&mut ctx).unwrap();
        }
        let c = m.core(CoreId(0)).counters.total();
        let hit_rate = c.l1_hits as f64 / c.l1_refs as f64;
        assert!(hit_rate > 0.8, "single-core queue should be L1-resident, {hit_rate}");
    }
}
