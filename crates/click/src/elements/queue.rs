//! A single-producer single-consumer packet queue in simulated shared
//! memory — the handoff structure of the §2.2 *pipeline* configuration.
//!
//! ## Cost model
//!
//! The queue owns three pieces of cross-core shared state, and every access
//! to them ping-pongs between producer and consumer exactly as the paper
//! describes ("passing socket-buffer descriptors, packet headers, and,
//! potentially, payload between different cores results in compulsory cache
//! misses"):
//!
//! * a **head** control line (producer-written, consumer-read),
//! * a **tail** control line (consumer-written, producer-read),
//! * a ring of 16-byte **descriptor slots** packed 4 per cache line, as
//!   [`NicQueue`](pp_sim::nic::NicQueue) packs its descriptor ring.
//!
//! Scalar [`push`](SpscQueue::push)/[`pop`](SpscQueue::pop) pay the
//! `queue_op` compute plus a control-line transaction and a slot-line touch
//! **per packet**. The burst path ([`push_burst`](SpscQueue::push_burst) /
//! [`pop_burst`](SpscQueue::pop_burst)) pays `queue_op` and the head/tail
//! ping-pong **once per burst** and touches each descriptor *line* once, so
//! a 32-packet burst moves 8 slot lines + 2 control lines instead of 32 + 64.
//! A one-packet burst takes the scalar path, keeping burst = 1
//! charge-identical (same charges, same order). All queue charges are
//! attributed to the `handoff` function tag so experiments can read the
//! cross-core handoff cost directly.
//!
//! [`poll`](SpscQueue::poll) is the consumer's idle-spin fast path: a single
//! shared head-line read with no `queue_op` compute, so an empty-queue spin
//! does not inflate pipeline-stage cycle counts the way a failed `pop` does.

use crate::cost::CostModel;
use pp_net::packet::Packet;
use pp_sim::arena::DomainAllocator;
use pp_sim::counters::TagId;
use pp_sim::ctx::ExecCtx;
use pp_sim::types::{Addr, CACHE_LINE};
use std::collections::VecDeque;

/// Bytes of one descriptor slot (buffer pointer + length + cookie, as on a
/// NIC ring).
const SLOT_BYTES: u64 = 16;

/// Descriptor slots per cache line — the packing that lets a burst touch
/// `burst / SLOTS_PER_LINE` slot lines instead of `burst`.
pub const SLOTS_PER_LINE: u64 = CACHE_LINE / SLOT_BYTES;

/// Function tag under which all queue charges are attributed.
pub const HANDOFF_TAG: &str = "handoff";

/// The SPSC queue. Wrap in `Rc<RefCell<..>>` to share between the two
/// stage tasks (the simulator is single-threaded; the *simulated* cores
/// contend through the cache model, not through host synchronization).
pub struct SpscQueue {
    slots_addr: Addr,
    head_addr: Addr,
    tail_addr: Addr,
    capacity: usize,
    q: VecDeque<Packet>,
    head: u64,
    tail: u64,
    cost: CostModel,
    /// Successful enqueues.
    pub enqueued: u64,
    /// Successful dequeues.
    pub dequeued: u64,
    /// Enqueue attempts rejected because the queue was full (a cut-short
    /// burst counts once, like a cut-short NIC `rx_batch`).
    pub full_rejects: u64,
    /// **Packets** rejected for queue-full — unlike `full_rejects` (one per
    /// cut-short burst, an event count) this counts every individual packet
    /// the producer offered and the queue refused, which is what loss
    /// accounting (`DropStats::queue_full`) needs for exact conservation.
    /// The caller decides the outcome (drop vs. retry); this counter
    /// records that the rejection was *observed*, never silent.
    pub rejected_packets: u64,
    /// Fault-injection capacity cap: when below `capacity` the queue
    /// admits only this many packets ([`set_capacity_limit`](Self::set_capacity_limit)).
    cap_limit: usize,
    /// [`HANDOFF_TAG`] interned once at construction (`TagId` protocol).
    t_handoff: TagId,
}

impl SpscQueue {
    /// A queue of `capacity` descriptor slots (packed [`SLOTS_PER_LINE`] per
    /// line) plus separate head/tail lines, allocated in `alloc`'s domain.
    pub fn new(alloc: &mut DomainAllocator, capacity: usize, cost: CostModel) -> Self {
        assert!(capacity >= 1);
        let slots_addr = alloc.alloc_lines(capacity as u64 * SLOT_BYTES);
        let head_addr = alloc.alloc_lines(CACHE_LINE);
        let tail_addr = alloc.alloc_lines(CACHE_LINE);
        SpscQueue {
            slots_addr,
            head_addr,
            tail_addr,
            capacity,
            q: VecDeque::with_capacity(capacity),
            head: 0,
            tail: 0,
            cost,
            enqueued: 0,
            dequeued: 0,
            full_rejects: 0,
            rejected_packets: 0,
            cap_limit: usize::MAX,
            t_handoff: TagId::intern(HANDOFF_TAG),
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Whether the queue is full (at its effective capacity — the ring
    /// size, or the fault-injection cap when one is set).
    pub fn is_full(&self) -> bool {
        self.q.len() >= self.effective_capacity()
    }

    /// Ring capacity in descriptor slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Capacity currently in force: the ring size, clamped by any
    /// fault-injection cap.
    #[inline]
    pub fn effective_capacity(&self) -> usize {
        self.capacity.min(self.cap_limit)
    }

    /// Cap the queue's effective capacity at `limit` slots (fault
    /// injection: queue-capacity pressure). Purely host-side — admission
    /// checks simply see a smaller ring; charges are unchanged. Packets
    /// already queued beyond the new limit stay until drained. Restore
    /// with [`clear_capacity_limit`](Self::clear_capacity_limit).
    pub fn set_capacity_limit(&mut self, limit: usize) {
        assert!(limit >= 1, "a zero-capacity queue would deadlock the pipeline");
        self.cap_limit = limit;
    }

    /// Remove any fault-injection capacity cap.
    pub fn clear_capacity_limit(&mut self) {
        self.cap_limit = usize::MAX;
    }

    /// Free descriptor slots (how large a burst [`push_burst`](Self::push_burst)
    /// can accept right now), under the effective capacity.
    pub fn free_slots(&self) -> usize {
        self.effective_capacity().saturating_sub(self.q.len())
    }

    /// Cache line holding descriptor slot `idx`.
    #[inline]
    fn slot_line(&self, idx: u64) -> Addr {
        self.slots_addr + ((idx % self.capacity as u64) / SLOTS_PER_LINE) * CACHE_LINE
    }

    /// Producer side: enqueue a packet, or return it if the queue is full.
    pub fn push(&mut self, ctx: &mut ExecCtx<'_>, pkt: Packet) -> Result<(), Packet> {
        ctx.scoped_id(self.t_handoff, |ctx| {
            CostModel::charge(ctx, self.cost.queue_op);
            // Check for space: read the consumer-written tail pointer.
            ctx.shared_read(self.tail_addr);
            if self.is_full() {
                self.full_rejects += 1;
                self.rejected_packets += 1;
                return Err(pkt);
            }
            // Write the descriptor slot and publish the new head.
            ctx.shared_write(self.slot_line(self.head));
            ctx.shared_write(self.head_addr);
            self.head += 1;
            self.q.push_back(pkt);
            self.enqueued += 1;
            Ok(())
        })
    }

    /// Producer side: enqueue a burst, draining the enqueued prefix from
    /// `pkts` (rejected packets stay, in order) and returning how many were
    /// enqueued.
    ///
    /// Charges `queue_op`, the tail-line read, and the head-line publish
    /// **once per burst**; descriptor slot lines are written once per
    /// *line* ([`SLOTS_PER_LINE`] slots each). A one-packet burst takes the
    /// scalar [`push`](Self::push) path, so its charges — and their order —
    /// are identical. A full queue cuts the burst short and counts one
    /// `full_rejects`.
    pub fn push_burst(&mut self, ctx: &mut ExecCtx<'_>, pkts: &mut Vec<Packet>) -> usize {
        if pkts.is_empty() {
            return 0;
        }
        if pkts.len() == 1 {
            let pkt = pkts.remove(0);
            return match self.push(ctx, pkt) {
                Ok(()) => 1,
                Err(p) => {
                    pkts.insert(0, p);
                    0
                }
            };
        }
        ctx.scoped_id(self.t_handoff, |ctx| {
            CostModel::charge(ctx, self.cost.queue_op);
            ctx.shared_read(self.tail_addr);
            let n = self.free_slots().min(pkts.len());
            if n < pkts.len() {
                self.full_rejects += 1;
                self.rejected_packets += (pkts.len() - n) as u64;
            }
            let mut last_line = None;
            for _ in 0..n {
                let line = self.slot_line(self.head);
                if last_line != Some(line) {
                    ctx.shared_write(line);
                    last_line = Some(line);
                }
                self.head += 1;
            }
            if n > 0 {
                ctx.shared_write(self.head_addr);
            }
            for p in pkts.drain(..n) {
                self.q.push_back(p);
            }
            self.enqueued += n as u64;
            n
        })
    }

    /// Consumer side: a cheap emptiness probe — one shared head-line read,
    /// no `queue_op` compute. Use before [`pop`](Self::pop) /
    /// [`pop_burst`](Self::pop_burst) so an idle spin costs a single line
    /// transaction instead of a full dequeue attempt.
    pub fn poll(&mut self, ctx: &mut ExecCtx<'_>) -> bool {
        ctx.scoped_id(self.t_handoff, |ctx| {
            ctx.shared_read(self.head_addr);
        });
        !self.q.is_empty()
    }

    /// Consumer side: dequeue a packet if one is available.
    pub fn pop(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Packet> {
        ctx.scoped_id(self.t_handoff, |ctx| {
            CostModel::charge(ctx, self.cost.queue_op);
            // Check for data: read the producer-written head pointer.
            ctx.shared_read(self.head_addr);
            let pkt = self.q.pop_front()?;
            // Read the descriptor slot and publish the new tail.
            ctx.shared_read(self.slot_line(self.tail));
            ctx.shared_write(self.tail_addr);
            self.tail += 1;
            self.dequeued += 1;
            Some(pkt)
        })
    }

    /// Consumer side: dequeue up to `max` packets in one burst, appending
    /// them to `out` in FIFO order and returning how many were dequeued.
    ///
    /// Charges `queue_op`, the head-line read, and the tail-line publish
    /// **once per burst**; descriptor slot lines are read once per line.
    /// `max == 1` takes the scalar [`pop`](Self::pop) path, keeping a
    /// one-packet burst charge-identical.
    pub fn pop_burst(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        max: usize,
        out: &mut Vec<Packet>,
    ) -> usize {
        if max == 0 {
            return 0;
        }
        if max == 1 {
            return match self.pop(ctx) {
                Some(p) => {
                    out.push(p);
                    1
                }
                None => 0,
            };
        }
        ctx.scoped_id(self.t_handoff, |ctx| {
            CostModel::charge(ctx, self.cost.queue_op);
            ctx.shared_read(self.head_addr);
            let n = self.q.len().min(max);
            let mut last_line = None;
            for _ in 0..n {
                let line = self.slot_line(self.tail);
                if last_line != Some(line) {
                    ctx.shared_read(line);
                    last_line = Some(line);
                }
                self.tail += 1;
                out.push(self.q.pop_front().expect("length checked"));
            }
            if n > 0 {
                ctx.shared_write(self.tail_addr);
            }
            self.dequeued += n as u64;
            n
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet};
    use pp_sim::types::{CoreId, MemDomain};

    fn queue(m: &mut pp_sim::machine::Machine, cap: usize) -> SpscQueue {
        SpscQueue::new(m.allocator(MemDomain(0)), cap, CostModel::default())
    }

    fn pkt_with(tagb: u8) -> Packet {
        let mut p = packet();
        p.data[0] = tagb;
        p
    }

    #[test]
    fn fifo_order() {
        let mut m = machine();
        let mut q = queue(&mut m, 8);
        let mut ctx = m.ctx(CoreId(0));
        for i in 0..5u8 {
            q.push(&mut ctx, pkt_with(i)).unwrap();
        }
        let mut ctx = m.ctx(CoreId(1));
        for i in 0..5u8 {
            assert_eq!(q.pop(&mut ctx).unwrap().data[0], i);
        }
        assert!(q.pop(&mut ctx).is_none());
    }

    #[test]
    fn full_queue_rejects() {
        let mut m = machine();
        let mut q = queue(&mut m, 2);
        let mut ctx = m.ctx(CoreId(0));
        q.push(&mut ctx, packet()).unwrap();
        q.push(&mut ctx, packet()).unwrap();
        assert!(q.push(&mut ctx, packet()).is_err());
        assert_eq!(q.full_rejects, 1);
    }

    #[test]
    fn cross_core_handoff_generates_misses() {
        // Producer on core 0, consumer on core 1: after warmup, both sides
        // keep missing L1 on the shared lines (ping-pong), unlike a
        // single-core queue.
        let mut m = machine();
        let mut q = queue(&mut m, 64);
        for _ in 0..50 {
            let mut ctx = m.ctx(CoreId(0));
            q.push(&mut ctx, packet()).unwrap();
            let mut ctx = m.ctx(CoreId(1));
            q.pop(&mut ctx).unwrap();
        }
        let c0 = m.core(CoreId(0)).counters.total();
        let c1 = m.core(CoreId(1)).counters.total();
        // The head/tail lines alone force ≥1 private miss per op after
        // warmup on each side.
        let private_misses0 = c0.l1_refs - c0.l1_hits;
        let private_misses1 = c1.l1_refs - c1.l1_hits;
        assert!(
            private_misses0 > 50,
            "producer should keep missing on shared lines, got {private_misses0}"
        );
        assert!(
            private_misses1 > 50,
            "consumer should keep missing on shared lines, got {private_misses1}"
        );
    }

    #[test]
    fn same_core_queue_is_cheap_after_warmup() {
        // Control experiment: both ends on one core — the shared lines stay
        // in its L1 except when stolen (never, here).
        let mut m = machine();
        let mut q = queue(&mut m, 64);
        for _ in 0..50 {
            let mut ctx = m.ctx(CoreId(0));
            q.push(&mut ctx, packet()).unwrap();
            q.pop(&mut ctx).unwrap();
        }
        let c = m.core(CoreId(0)).counters.total();
        let hit_rate = c.l1_hits as f64 / c.l1_refs as f64;
        assert!(hit_rate > 0.8, "single-core queue should be L1-resident, {hit_rate}");
    }

    #[test]
    fn queue_charges_attribute_to_the_handoff_tag() {
        let mut m = machine();
        let mut q = queue(&mut m, 8);
        {
            let mut ctx = m.ctx(CoreId(0));
            q.push(&mut ctx, packet()).unwrap();
        }
        let total = m.core(CoreId(0)).counters.total();
        let tagged = m.core(CoreId(0)).counters.tag(HANDOFF_TAG).unwrap();
        assert_eq!(total.l1_refs, tagged.l1_refs, "every queue access is tagged");
        assert_eq!(total.compute_cycles, tagged.compute_cycles);
    }

    #[test]
    fn burst_of_one_is_charge_identical_to_scalar() {
        // Counter-level equivalence of push_burst/pop_burst at burst 1 with
        // scalar push/pop, including the empty-pop and full-push paths.
        let run = |burst: bool| {
            let mut m = machine();
            let mut q = queue(&mut m, 2);
            {
                let mut ctx = m.ctx(CoreId(0));
                if burst {
                    let mut v = vec![packet()];
                    assert_eq!(q.push_burst(&mut ctx, &mut v), 1);
                    let mut v = vec![packet()];
                    assert_eq!(q.push_burst(&mut ctx, &mut v), 1);
                    let mut v = vec![packet()];
                    assert_eq!(q.push_burst(&mut ctx, &mut v), 0, "full");
                    assert_eq!(v.len(), 1, "rejected packet returned");
                } else {
                    q.push(&mut ctx, packet()).unwrap();
                    q.push(&mut ctx, packet()).unwrap();
                    assert!(q.push(&mut ctx, packet()).is_err());
                }
            }
            {
                let mut ctx = m.ctx(CoreId(1));
                if burst {
                    let mut out = Vec::new();
                    assert_eq!(q.pop_burst(&mut ctx, 1, &mut out), 1);
                    assert_eq!(q.pop_burst(&mut ctx, 1, &mut out), 1);
                    assert_eq!(q.pop_burst(&mut ctx, 1, &mut out), 0, "empty");
                } else {
                    assert!(q.pop(&mut ctx).is_some());
                    assert!(q.pop(&mut ctx).is_some());
                    assert!(q.pop(&mut ctx).is_none());
                }
            }
            (
                m.core(CoreId(0)).counters.snapshot(),
                m.core(CoreId(0)).clock,
                m.core(CoreId(1)).counters.snapshot(),
                m.core(CoreId(1)).clock,
                q.full_rejects,
            )
        };
        let scalar = run(false);
        let burst = run(true);
        assert_eq!(scalar.0.total, burst.0.total, "producer totals");
        assert_eq!(scalar.0.tag(HANDOFF_TAG), burst.0.tag(HANDOFF_TAG));
        assert_eq!(scalar.1, burst.1, "producer clock");
        assert_eq!(scalar.2.total, burst.2.total, "consumer totals");
        assert_eq!(scalar.3, burst.3, "consumer clock");
        assert_eq!(scalar.4, burst.4, "full_rejects");
    }

    #[test]
    fn burst_fifo_order_across_ring_wrap_around() {
        // Capacity 6 (1.5 slot lines); pushing/popping bursts of 4 wraps
        // the ring repeatedly. Order must survive every wrap.
        let mut m = machine();
        let mut q = queue(&mut m, 6);
        let mut next = 0u8;
        let mut expect = 0u8;
        for _ in 0..12 {
            let mut ctx = m.ctx(CoreId(0));
            let mut v: Vec<Packet> = (0..4).map(|i| pkt_with(next.wrapping_add(i))).collect();
            let pushed = q.push_burst(&mut ctx, &mut v);
            next = next.wrapping_add(pushed as u8);
            let mut ctx = m.ctx(CoreId(1));
            let mut out = Vec::new();
            q.pop_burst(&mut ctx, 4, &mut out);
            for p in out {
                assert_eq!(p.data[0], expect, "FIFO across wrap-around");
                expect = expect.wrapping_add(1);
            }
        }
        assert_eq!(q.enqueued, q.dequeued + q.len() as u64);
        assert!(expect > 40, "the ring cycled several times");
    }

    #[test]
    fn burst_backpressure_cuts_the_burst_short() {
        let mut m = machine();
        let mut q = queue(&mut m, 8);
        let mut ctx = m.ctx(CoreId(0));
        let mut v: Vec<Packet> = (0..12).map(pkt_with).collect();
        assert_eq!(q.push_burst(&mut ctx, &mut v), 8, "only 8 slots available");
        assert_eq!(v.len(), 4, "rejected tail stays with the caller");
        assert_eq!(v[0].data[0], 8, "rejected packets keep their order");
        assert_eq!(q.full_rejects, 1, "a cut-short burst counts once");
        // The rejected tail can be retried after draining.
        let mut ctx = m.ctx(CoreId(1));
        let mut out = Vec::new();
        assert_eq!(q.pop_burst(&mut ctx, 32, &mut out), 8, "partial burst: only 8 queued");
        let mut ctx = m.ctx(CoreId(0));
        assert_eq!(q.push_burst(&mut ctx, &mut v), 4);
        assert!(v.is_empty());
    }

    #[test]
    fn rejections_count_every_packet() {
        let mut m = machine();
        let mut q = queue(&mut m, 8);
        let mut ctx = m.ctx(CoreId(0));
        let mut v: Vec<Packet> = (0..12).map(pkt_with).collect();
        assert_eq!(q.push_burst(&mut ctx, &mut v), 8);
        assert_eq!(q.full_rejects, 1, "event count: once per cut burst");
        assert_eq!(q.rejected_packets, 4, "packet count: one per refused packet");
        // Scalar rejections count per packet too.
        for p in v.drain(..) {
            assert!(q.push(&mut ctx, p).is_err());
        }
        assert_eq!(q.full_rejects, 5);
        assert_eq!(q.rejected_packets, 8);
    }

    #[test]
    fn capacity_limit_shrinks_admission_then_restores() {
        let mut m = machine();
        let mut q = queue(&mut m, 8);
        {
            let mut ctx = m.ctx(CoreId(0));
            let mut v: Vec<Packet> = (0..6).map(pkt_with).collect();
            assert_eq!(q.push_burst(&mut ctx, &mut v), 6);
        }
        // Cap below current occupancy: full, zero free slots, but the
        // queued packets stay and drain normally.
        q.set_capacity_limit(3);
        assert_eq!(q.effective_capacity(), 3);
        assert!(q.is_full());
        assert_eq!(q.free_slots(), 0);
        {
            let mut ctx = m.ctx(CoreId(0));
            assert!(q.push(&mut ctx, packet()).is_err());
        }
        {
            let mut ctx = m.ctx(CoreId(1));
            let mut out = Vec::new();
            assert_eq!(q.pop_burst(&mut ctx, 4, &mut out), 4);
        }
        // Under the cap again: 2 queued, 1 free slot.
        assert_eq!(q.free_slots(), 1);
        {
            let mut ctx = m.ctx(CoreId(0));
            q.push(&mut ctx, packet()).unwrap();
            assert!(q.push(&mut ctx, packet()).is_err());
        }
        q.clear_capacity_limit();
        assert_eq!(q.effective_capacity(), 8);
        assert_eq!(q.free_slots(), 5, "full ring capacity restored");
        let mut ctx = m.ctx(CoreId(0));
        q.push(&mut ctx, packet()).unwrap();
    }

    #[test]
    fn pop_burst_returns_partial_bursts() {
        let mut m = machine();
        let mut q = queue(&mut m, 16);
        let mut ctx = m.ctx(CoreId(0));
        let mut v: Vec<Packet> = (0..3).map(pkt_with).collect();
        q.push_burst(&mut ctx, &mut v);
        let mut ctx = m.ctx(CoreId(1));
        let mut out = Vec::new();
        assert_eq!(q.pop_burst(&mut ctx, 8, &mut out), 3, "drains what is there");
        assert_eq!(out.len(), 3);
        assert_eq!(q.pop_burst(&mut ctx, 8, &mut out), 0, "then reports empty");
    }

    #[test]
    fn poll_is_a_single_untaxed_head_read() {
        let mut m = machine();
        let mut q = queue(&mut m, 8);
        {
            let mut ctx = m.ctx(CoreId(1));
            assert!(!q.poll(&mut ctx));
        }
        let c = m.core(CoreId(1)).counters.total();
        assert_eq!(c.l1_refs, 1, "exactly one line read");
        assert_eq!(c.compute_cycles, 0, "no queue_op compute on the poll path");
        {
            let mut ctx = m.ctx(CoreId(0));
            q.push(&mut ctx, packet()).unwrap();
        }
        let mut ctx = m.ctx(CoreId(1));
        assert!(q.poll(&mut ctx));
    }

    #[test]
    fn burst_touches_one_slot_line_per_four_packets() {
        // 32-packet burst, slots packed 4/line: 1 tail read + 8 slot writes
        // + 1 head write = 10 line accesses, vs 96 for 32 scalar pushes.
        let mut m = machine();
        let mut q = queue(&mut m, 64);
        {
            let mut ctx = m.ctx(CoreId(0));
            let mut v: Vec<Packet> = (0..32).map(pkt_with).collect();
            q.push_burst(&mut ctx, &mut v);
        }
        let c = m.core(CoreId(0)).counters.tag(HANDOFF_TAG).unwrap();
        assert_eq!(c.l1_refs, 10, "2 control-line ops + 32/4 slot lines");
        let mut m2 = machine();
        let mut q2 = queue(&mut m2, 64);
        {
            let mut ctx = m2.ctx(CoreId(0));
            for i in 0..32 {
                q2.push(&mut ctx, pkt_with(i)).unwrap();
            }
        }
        let c2 = m2.core(CoreId(0)).counters.tag(HANDOFF_TAG).unwrap();
        assert_eq!(c2.l1_refs, 96, "3 line ops per scalar push");
    }

    #[test]
    fn cross_core_burst_handoff_has_fewer_private_misses_per_packet() {
        // The tentpole claim at queue level: at burst ≥ 8 the cross-core
        // handoff generates strictly fewer private misses per packet than
        // the scalar ping-pong. The access interleaving mirrors the
        // engine's turn scheduling: scalar alternates one push and one pop
        // per stage turn; burst mode moves 8-packet vectors per turn.
        let run = |burst: usize| {
            let rounds = 40;
            let mut m = machine();
            let mut q = queue(&mut m, 64);
            for _ in 0..rounds {
                if burst == 1 {
                    for i in 0..8 {
                        let mut ctx = m.ctx(CoreId(0));
                        q.push(&mut ctx, pkt_with(i)).unwrap();
                        let mut ctx = m.ctx(CoreId(1));
                        q.pop(&mut ctx).unwrap();
                    }
                } else {
                    let mut ctx = m.ctx(CoreId(0));
                    let mut v: Vec<Packet> = (0..8).map(pkt_with).collect();
                    assert_eq!(q.push_burst(&mut ctx, &mut v), 8);
                    let mut ctx = m.ctx(CoreId(1));
                    let mut out = Vec::new();
                    assert_eq!(q.pop_burst(&mut ctx, 8, &mut out), 8);
                }
            }
            let c0 = m.core(CoreId(0)).counters.total();
            let c1 = m.core(CoreId(1)).counters.total();
            let packets = (rounds * 8) as f64;
            ((c0.l1_refs - c0.l1_hits) + (c1.l1_refs - c1.l1_hits)) as f64 / packets
        };
        let scalar = run(1);
        let burst8 = run(8);
        assert!(
            burst8 < scalar,
            "burst-8 handoff must miss less per packet: scalar {scalar:.2} vs burst {burst8:.2}"
        );
        // And the gap is structural, not marginal: at least 2 fewer misses
        // per packet (head+tail ping-pong amortized 8x).
        assert!(scalar - burst8 > 2.0, "gap too small: {scalar:.2} -> {burst8:.2}");
    }
}
