//! Longest-prefix-match routing.
//!
//! Two implementations are provided:
//!
//! * [`BinaryRadixTrie`] — a bit-at-a-time radix trie with best-match
//!   tracking, the shape of Click's `RadixTrie` that the paper's IP
//!   workload uses. Lookups under a BGP-shaped table walk a long chain of
//!   *dependent* node reads (~12–20 levels): the hot top levels live in
//!   L1/L2 ("hot spots", Fig. 7), the deep levels spread over megabytes and
//!   produce the L3 references that make IP sensitive to contention. This
//!   is the default used by [`RadixIpLookup`].
//!
//! * [`MultibitTrie`] — a leaf-pushed stride-16/4 multibit trie, the
//!   modern alternative with 3–5 reads per lookup. Kept as an ablation
//!   (`MultibitIpLookup`): it shows how implementation choices change a
//!   flow's contention profile while computing identical routes.
//!
//! Every node access is a dependent read, so each converted miss costs a
//! full δ — the paper's sensitivity mechanism.

use crate::cost::CostModel;
use crate::element::{Action, Element, BATCH_MLP};
use pp_net::gen::prefixes::PrefixEntry;
use pp_net::packet::Packet;
use pp_sim::arena::{DomainAllocator, SimVec};
use pp_sim::ctx::ExecCtx;
use pp_sim::types::CACHE_LINE;

/// Append every cache line covering `[addr, addr + len)` to `out` — the
/// batched walks must charge exactly the lines the scalar
/// `SimVec::read` (via `read_struct`) touches.
#[inline]
pub(crate) fn push_covering_lines(out: &mut Vec<u64>, addr: u64, len: u64) {
    let mut line = addr & !(CACHE_LINE - 1);
    let end = addr + len.max(1);
    while line < end {
        out.push(line);
        line += CACHE_LINE;
    }
}

/// Packed trie entry.
///
/// * `0` — empty (no match below this point).
/// * bit 31 set — internal: low 31 bits are a node index.
/// * bit 30 set — leaf: bits 29..24 = prefix length, bits 23..0 = next hop.
type Entry = u32;

const INTERNAL: u32 = 1 << 31;
const LEAF: u32 = 1 << 30;

#[inline]
fn leaf(len: u8, hop: u32) -> Entry {
    debug_assert!(hop < (1 << 24), "next hop must fit 24 bits");
    LEAF | ((len as u32) << 24) | (hop & 0x00FF_FFFF)
}

#[inline]
fn leaf_len(e: Entry) -> u8 {
    ((e >> 24) & 0x3F) as u8
}

#[inline]
fn leaf_hop(e: Entry) -> u32 {
    e & 0x00FF_FFFF
}

/// One interior node: 16 children, one cache line.
type Node = [Entry; 16];

/// The trie. Built host-side from a prefix table, then materialized into
/// simulated memory; lookups charge one dependent read per level.
pub struct MultibitTrie {
    root: SimVec<u32>,
    nodes: SimVec<Node>,
    n_prefixes: usize,
}

/// Host-side builder state (plain vectors; converted to `SimVec` at the
/// end so construction costs nothing in simulated time).
struct Builder {
    root: Vec<Entry>,
    nodes: Vec<Node>,
}

impl Builder {
    fn new() -> Self {
        Builder { root: vec![0; 1 << 16], nodes: Vec::new() }
    }

    fn new_node(&mut self) -> usize {
        self.nodes.push([0; 16]);
        self.nodes.len() - 1
    }

    /// Overwrite `slot` with a leaf if the new prefix is at least as long as
    /// what is there; push into subtrees when the slot is internal.
    fn set_leaf(&mut self, slot_node: Option<usize>, slot: usize, len: u8, hop: u32) {
        let e = match slot_node {
            None => self.root[slot],
            Some(n) => self.nodes[n][slot],
        };
        if e & INTERNAL != 0 {
            // Leaf-push into every child of the subtree.
            let child = (e & !INTERNAL) as usize;
            for s in 0..16 {
                self.set_leaf(Some(child), s, len, hop);
            }
            return;
        }
        if e & LEAF != 0 && leaf_len(e) > len {
            return; // existing longer prefix wins
        }
        let new = leaf(len, hop);
        match slot_node {
            None => self.root[slot] = new,
            Some(n) => self.nodes[n][slot] = new,
        }
    }

    /// Ensure the slot holds an internal node, pushing any existing leaf
    /// down into it; returns the node index.
    fn ensure_internal(&mut self, slot_node: Option<usize>, slot: usize) -> usize {
        let e = match slot_node {
            None => self.root[slot],
            Some(n) => self.nodes[n][slot],
        };
        if e & INTERNAL != 0 {
            return (e & !INTERNAL) as usize;
        }
        let idx = self.new_node();
        if e & LEAF != 0 {
            self.nodes[idx] = [e; 16];
        }
        let packed = INTERNAL | idx as u32;
        match slot_node {
            None => self.root[slot] = packed,
            Some(n) => self.nodes[n][slot] = packed,
        }
        idx
    }

    fn insert(&mut self, p: &PrefixEntry) {
        assert!(p.len <= 32);
        if p.len <= 16 {
            // Expand over the covered root slots.
            let base = (p.addr >> 16) as usize;
            let count = 1usize << (16 - p.len);
            let start = base & !(count - 1);
            for slot in start..start + count {
                self.set_leaf(None, slot, p.len, p.next_hop);
            }
            return;
        }
        // Descend: root slot, then nibbles at bits 16, 20, 24, 28.
        let mut node = self.ensure_internal(None, (p.addr >> 16) as usize);
        let mut consumed = 16u8;
        loop {
            let nib = ((p.addr >> (32 - consumed - 4)) & 0xF) as usize;
            if p.len <= consumed + 4 {
                // Prefix ends within this node: expand over covered slots.
                let count = 1usize << (consumed + 4 - p.len);
                let start = nib & !(count - 1);
                for slot in start..start + count {
                    self.set_leaf(Some(node), slot, p.len, p.next_hop);
                }
                return;
            }
            node = self.ensure_internal(Some(node), nib);
            consumed += 4;
        }
    }
}

impl MultibitTrie {
    /// Build from a prefix table, allocating the structure in `alloc`'s
    /// NUMA domain.
    pub fn build(alloc: &mut DomainAllocator, prefixes: &[PrefixEntry]) -> Self {
        let mut b = Builder::new();
        for p in prefixes {
            b.insert(p);
        }
        MultibitTrie {
            root: SimVec::from_vec(alloc, b.root),
            nodes: SimVec::from_vec(alloc, b.nodes),
            n_prefixes: prefixes.len(),
        }
    }

    /// Number of interior nodes (diagnostics; footprint = nodes × 64 B).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of prefixes inserted.
    pub fn prefix_count(&self) -> usize {
        self.n_prefixes
    }

    /// Total simulated footprint in bytes (root array + nodes).
    pub fn footprint(&self) -> u64 {
        self.root.footprint() + self.nodes.footprint()
    }

    /// Longest-prefix match, charging simulated accesses: one read in the
    /// root array, then one dependent 64-byte node read per level. Returns
    /// `(next_hop, levels_visited)`.
    pub fn lookup(&self, ctx: &mut ExecCtx<'_>, dst: u32) -> (Option<u32>, u32) {
        let mut levels = 1;
        let mut e = self.root.read(ctx, (dst >> 16) as usize);
        let mut consumed = 16u32;
        while e & INTERNAL != 0 {
            let node_idx = (e & !INTERNAL) as usize;
            let node = self.nodes.read(ctx, node_idx);
            let nib = ((dst >> (32 - consumed - 4)) & 0xF) as usize;
            e = node[nib];
            consumed += 4;
            levels += 1;
        }
        if e & LEAF != 0 {
            (Some(leaf_hop(e)), levels)
        } else {
            (None, levels)
        }
    }

    /// Host-only lookup (no simulated cost): the oracle interface for tests
    /// and for host-side tools.
    pub fn lookup_host(&self, dst: u32) -> Option<u32> {
        let mut e = *self.root.peek((dst >> 16) as usize);
        let mut consumed = 16u32;
        while e & INTERNAL != 0 {
            let node = self.nodes.peek((e & !INTERNAL) as usize);
            e = node[((dst >> (32 - consumed - 4)) & 0xF) as usize];
            consumed += 4;
        }
        if e & LEAF != 0 {
            Some(leaf_hop(e))
        } else {
            None
        }
    }

    /// Batched level-synchronous lookup, mirroring
    /// [`BinaryRadixTrie::lookup_batch_into`]: each level's node reads are
    /// independent across lanes and issue as one overlapped
    /// [`read_batch`](ExecCtx::read_batch), with the next level's node
    /// optionally pre-touched host-side (charge-free; the `hostopt`
    /// lever) while this level's gather is charged. Visits the same
    /// entries and returns the same
    /// `(next_hop, levels)` per lane as per-lane [`lookup`](Self::lookup).
    pub fn lookup_batch_into(
        &self,
        ctx: &mut ExecCtx<'_>,
        dsts: &[u32],
        mlp: u32,
        scratch: &mut MultibitScratch,
        out: &mut Vec<(Option<u32>, u32)>,
    ) {
        let n = dsts.len();
        let MultibitScratch { entries, consumed, levels, alive, next_alive, addrs } = scratch;
        entries.clear();
        consumed.clear();
        consumed.resize(n, 16u32);
        levels.clear();
        levels.resize(n, 1u32);
        alive.clear();
        next_alive.clear();
        addrs.clear();
        // Level 1: the root-array reads, direct-indexed by the top 16 bits.
        let pretouch = pp_net::hostopt::host_pretouch();
        let mut next_touch = 0u32;
        for (l, &dst) in dsts.iter().enumerate() {
            let i = (dst >> 16) as usize;
            push_covering_lines(addrs, self.root.addr_of(i), self.root.stride());
            let e = *self.root.peek(i);
            entries.push(e);
            if e & INTERNAL != 0 {
                alive.push(l);
                if pretouch {
                    next_touch ^= self.nodes.peek((e & !INTERNAL) as usize)[0];
                }
            }
        }
        std::hint::black_box(next_touch);
        ctx.read_batch(addrs, mlp);
        // Deeper levels: one stride-4 node read per alive lane per level.
        while !alive.is_empty() {
            addrs.clear();
            next_alive.clear();
            let mut next_touch = 0u32;
            for &l in alive.iter() {
                let node_idx = (entries[l] & !INTERNAL) as usize;
                push_covering_lines(addrs, self.nodes.addr_of(node_idx), self.nodes.stride());
                let node = *self.nodes.peek(node_idx);
                let e = node[((dsts[l] >> (32 - consumed[l] - 4)) & 0xF) as usize];
                entries[l] = e;
                consumed[l] += 4;
                levels[l] += 1;
                if e & INTERNAL != 0 {
                    next_alive.push(l);
                    if pretouch {
                        next_touch ^= self.nodes.peek((e & !INTERNAL) as usize)[0];
                    }
                }
            }
            std::hint::black_box(next_touch);
            ctx.read_batch(addrs, mlp);
            std::mem::swap(alive, next_alive);
        }
        out.clear();
        out.extend(entries.iter().zip(levels.iter()).map(|(&e, &lv)| {
            if e & LEAF != 0 {
                (Some(leaf_hop(e)), lv)
            } else {
                (None, lv)
            }
        }));
    }
}

/// Reusable per-lane walk state for
/// [`MultibitTrie::lookup_batch_into`] (host-side only).
#[derive(Debug, Default)]
pub struct MultibitScratch {
    entries: Vec<u32>,
    consumed: Vec<u32>,
    levels: Vec<u32>,
    alive: Vec<usize>,
    next_alive: Vec<usize>,
    addrs: Vec<u64>,
}

/// A binary (bit-at-a-time) radix trie with best-match tracking — the
/// shape of Click's `RadixTrie`. See the module docs.
pub struct BinaryRadixTrie {
    /// Nodes as `[left, right, best, pad...]`; `u32::MAX` = no child,
    /// `best` 0 = no prefix ends at this node (otherwise a packed leaf
    /// whose low bits index `routes`). 24 bytes per node, matching the
    /// footprint of Click's pointer-based C++ trie nodes (two child
    /// pointers plus prefix/route metadata).
    nodes: SimVec<[u32; 6]>,
    /// One route entry per prefix: `[next_hop, iface, mtu, flags]`. The
    /// lookup's final dependent read, as in Click where the matched trie
    /// leaf points at a route structure.
    routes: SimVec<[u32; 4]>,
    n_prefixes: usize,
}

const NO_CHILD: u32 = u32::MAX;

#[inline]
fn new_node() -> [u32; 6] {
    [NO_CHILD, NO_CHILD, 0, 0, 0, 0]
}

impl BinaryRadixTrie {
    /// Build from a prefix table in `alloc`'s domain.
    pub fn build(alloc: &mut DomainAllocator, prefixes: &[PrefixEntry]) -> Self {
        let mut nodes: Vec<[u32; 6]> = vec![new_node()];
        let mut routes: Vec<[u32; 4]> = Vec::with_capacity(prefixes.len());
        for (pi, p) in prefixes.iter().enumerate() {
            assert!(p.len <= 32);
            routes.push([p.next_hop, pi as u32 & 0xF, 1500, 1]);
            let mut cur = 0usize;
            for i in 0..p.len {
                let bit = ((p.addr >> (31 - i)) & 1) as usize;
                let child = nodes[cur][bit];
                cur = if child == NO_CHILD {
                    nodes.push(new_node());
                    let idx = (nodes.len() - 1) as u32;
                    nodes[cur][bit] = idx;
                    idx as usize
                } else {
                    child as usize
                };
            }
            let existing = nodes[cur][2];
            if existing == 0 || leaf_len(existing) <= p.len {
                nodes[cur][2] = leaf(p.len, pi as u32);
            }
        }
        BinaryRadixTrie {
            nodes: SimVec::from_vec(alloc, nodes),
            routes: SimVec::from_vec(alloc, routes),
            n_prefixes: prefixes.len(),
        }
    }

    /// Number of trie nodes (footprint = nodes × 24 B).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of prefixes inserted.
    pub fn prefix_count(&self) -> usize {
        self.n_prefixes
    }

    /// Total simulated footprint in bytes (nodes + route entries).
    pub fn footprint(&self) -> u64 {
        self.nodes.footprint() + self.routes.footprint()
    }

    /// Batched longest-prefix match: walks all lanes level-synchronously,
    /// issuing each level's node reads as one overlapped
    /// [`read_batch`](ExecCtx::read_batch) (the lanes' reads are
    /// independent of each other, dependent only within a lane — exactly
    /// the G-opt/"software lookahead" structure). Visits the same nodes and
    /// returns the same `(next_hop, levels)` per lane as per-lane
    /// [`lookup`](Self::lookup) calls; only the core-visible stall shrinks.
    pub fn lookup_batch(
        &self,
        ctx: &mut ExecCtx<'_>,
        dsts: &[u32],
        mlp: u32,
    ) -> Vec<(Option<u32>, u32)> {
        let mut scratch = LookupScratch::default();
        let mut out = Vec::with_capacity(dsts.len());
        self.lookup_batch_into(ctx, dsts, mlp, &mut scratch, &mut out);
        out
    }

    /// [`lookup_batch`](Self::lookup_batch) with caller-owned scratch and
    /// output buffers, so a steady-state element walks whole vectors with
    /// zero heap allocation (the allocating wrapper above is for one-off
    /// callers and tests). Results are appended to `out` (cleared first).
    pub fn lookup_batch_into(
        &self,
        ctx: &mut ExecCtx<'_>,
        dsts: &[u32],
        mlp: u32,
        scratch: &mut LookupScratch,
        out: &mut Vec<(Option<u32>, u32)>,
    ) {
        let n = dsts.len();
        // Per-lane walk state (reused across calls).
        let LookupScratch { cur, best, levels, alive, next_alive, addrs } = scratch;
        cur.clear();
        cur.resize(n, 0usize);
        best.clear();
        best.resize(n, 0u32);
        levels.clear();
        levels.resize(n, 0u32);
        alive.clear();
        alive.extend(0..n);
        next_alive.clear();
        let pretouch = pp_net::hostopt::host_pretouch();
        for depth in 0..=32u32 {
            if alive.is_empty() {
                break;
            }
            // One fused pass per level: gather the level's node lines,
            // advance each lane host-side, and — when the `hostopt`
            // pre-touch lever is on — *touch* every lane's next node so
            // its host-cache miss resolves while the charging walk below
            // runs. Host reads charge nothing, so issuing them early
            // cannot change simulated results; the charge sequence (this
            // level's lines, in lane order) is identical to charging
            // first and advancing second.
            addrs.clear();
            next_alive.clear();
            let mut next_touch = 0u32;
            for &l in alive.iter() {
                push_covering_lines(addrs, self.nodes.addr_of(cur[l]), self.nodes.stride());
                let node = *self.nodes.peek(cur[l]);
                levels[l] += 1;
                if node[2] != 0 {
                    best[l] = node[2];
                }
                if depth == 32 {
                    continue;
                }
                let bit = ((dsts[l] >> (31 - depth)) & 1) as usize;
                let child = node[bit];
                if child != NO_CHILD {
                    cur[l] = child as usize;
                    next_alive.push(l);
                    if pretouch {
                        next_touch ^= self.nodes.peek(cur[l])[2];
                    }
                }
            }
            std::hint::black_box(next_touch);
            ctx.read_batch(addrs, mlp);
            std::mem::swap(alive, next_alive);
        }
        // Final dependent reads: the matched route entries, overlapped.
        addrs.clear();
        for &b in best.iter().filter(|&&b| b != 0) {
            push_covering_lines(
                addrs,
                self.routes.addr_of(leaf_hop(b) as usize),
                self.routes.stride(),
            );
        }
        ctx.read_batch(addrs, mlp);
        out.clear();
        out.extend((0..n).map(|l| {
            if best[l] != 0 {
                let route = self.routes.peek(leaf_hop(best[l]) as usize);
                (Some(route[0]), levels[l] + 1)
            } else {
                (None, levels[l])
            }
        }));
    }

    /// Longest-prefix match with simulated charging: one dependent node
    /// read per level. Returns `(next_hop, levels_visited)`.
    pub fn lookup(&self, ctx: &mut ExecCtx<'_>, dst: u32) -> (Option<u32>, u32) {
        let mut cur = 0usize;
        let mut best: u32 = 0;
        let mut levels = 0u32;
        for i in 0..=32u32 {
            let node = self.nodes.read(ctx, cur);
            levels += 1;
            if node[2] != 0 {
                best = node[2];
            }
            if i == 32 {
                break;
            }
            let bit = ((dst >> (31 - i)) & 1) as usize;
            let child = node[bit];
            if child == NO_CHILD {
                break;
            }
            cur = child as usize;
        }
        if best != 0 {
            // Final dependent read: the matched route entry.
            let route = self.routes.read(ctx, leaf_hop(best) as usize);
            (Some(route[0]), levels + 1)
        } else {
            (None, levels)
        }
    }

    /// Host-only lookup (no simulated cost) — the test oracle interface.
    pub fn lookup_host(&self, dst: u32) -> Option<u32> {
        let mut cur = 0usize;
        let mut best: u32 = 0;
        for i in 0..=32u32 {
            let node = self.nodes.peek(cur);
            if node[2] != 0 {
                best = node[2];
            }
            if i == 32 {
                break;
            }
            let bit = ((dst >> (31 - i)) & 1) as usize;
            if node[bit] == NO_CHILD {
                break;
            }
            cur = node[bit] as usize;
        }
        if best != 0 {
            Some(self.routes.peek(leaf_hop(best) as usize)[0])
        } else {
            None
        }
    }
}

/// The `RadixIPLookup` element: full longest-prefix-match per packet using
/// the binary radix trie (Click-faithful). Packets with no route are
/// dropped.
/// Reusable per-lane walk state for
/// [`BinaryRadixTrie::lookup_batch_into`] (host-side only; holding it in
/// the element makes steady-state batched lookups allocation-free).
#[derive(Debug, Default)]
pub struct LookupScratch {
    cur: Vec<usize>,
    best: Vec<u32>,
    levels: Vec<u32>,
    alive: Vec<usize>,
    next_alive: Vec<usize>,
    addrs: Vec<u64>,
}

/// `RadixIPLookup`: longest-prefix match through the binary radix trie
/// (the paper's IP workload core; Fig. 7's `radix_ip_lookup` function).
pub struct RadixIpLookup {
    trie: BinaryRadixTrie,
    cost: CostModel,
    /// Batched-walk scratch (reused every batch).
    scratch: LookupScratch,
    /// Scratch header addresses (reused every batch).
    hdrs: Vec<u64>,
    /// Scratch destinations / lane maps / results (reused every batch).
    dsts: Vec<u32>,
    lanes: Vec<usize>,
    results: Vec<(Option<u32>, u32)>,
    /// Successful lookups.
    pub found: u64,
    /// Lookups with no matching route (packet dropped).
    pub no_route: u64,
    /// Sum of levels visited (for average-depth diagnostics).
    pub levels_total: u64,
}

impl RadixIpLookup {
    /// Build the element (and its trie) in `alloc`'s domain.
    pub fn new(alloc: &mut DomainAllocator, prefixes: &[PrefixEntry], cost: CostModel) -> Self {
        RadixIpLookup {
            trie: BinaryRadixTrie::build(alloc, prefixes),
            cost,
            scratch: LookupScratch::default(),
            hdrs: Vec::new(),
            dsts: Vec::new(),
            lanes: Vec::new(),
            results: Vec::new(),
            found: 0,
            no_route: 0,
            levels_total: 0,
        }
    }

    /// The underlying trie.
    pub fn trie(&self) -> &BinaryRadixTrie {
        &self.trie
    }

    /// Average lookup depth so far (diagnostics).
    pub fn avg_depth(&self) -> f64 {
        let n = self.found + self.no_route;
        if n == 0 {
            0.0
        } else {
            self.levels_total as f64 / n as f64
        }
    }
}

impl Element for RadixIpLookup {
    fn class_name(&self) -> &'static str {
        "RadixIPLookup"
    }

    fn tag(&self) -> &'static str {
        "radix_ip_lookup"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        // Re-read the destination from the header line (L1 hit after
        // CheckIPHeader touched it).
        if pkt.buf_addr != 0 {
            ctx.read(pkt.buf_addr + pkt.l3_offset() as u64 + 16);
        }
        let Ok(ip) = pkt.ipv4() else { return Action::Drop };
        let dst = u32::from(ip.dst);
        let (hop, levels) = self.trie.lookup(ctx, dst);
        CostModel::charge(ctx, (self.cost.lookup_step.0 * levels as u64,
                                self.cost.lookup_step.1 * levels as u64));
        self.levels_total += levels as u64;
        match hop {
            Some(_) => {
                self.found += 1;
                Action::Out(0)
            }
            None => {
                self.no_route += 1;
                Action::Drop
            }
        }
    }

    fn process_batch(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        pkts: &mut [Packet],
        actions: &mut Vec<Action>,
    ) {
        if pkts.len() <= 1 {
            for pkt in pkts.iter_mut() {
                actions.push(self.process(ctx, pkt));
            }
            return;
        }
        // Header touches for the whole vector, overlapped.
        self.hdrs.clear();
        self.hdrs.extend(
            pkts.iter().filter(|p| p.buf_addr != 0).map(|p| p.buf_addr + p.l3_offset() as u64 + 16),
        );
        ctx.read_batch(&self.hdrs, BATCH_MLP);
        // Parse destinations host-side; unparsable packets drop as in the
        // scalar path, the rest walk the trie level-synchronously.
        self.dsts.clear();
        self.lanes.clear();
        for (i, pkt) in pkts.iter().enumerate() {
            if let Ok(ip) = pkt.ipv4() {
                self.dsts.push(u32::from(ip.dst));
                self.lanes.push(i);
            }
        }
        self.trie
            .lookup_batch_into(ctx, &self.dsts, BATCH_MLP, &mut self.scratch, &mut self.results);
        let mut total_levels = 0u64;
        let verdict_base = actions.len();
        actions.resize(verdict_base + pkts.len(), Action::Drop);
        for (&lane, &(hop, levels)) in self.lanes.iter().zip(self.results.iter()) {
            total_levels += levels as u64;
            self.levels_total += levels as u64;
            actions[verdict_base + lane] = match hop {
                Some(_) => {
                    self.found += 1;
                    Action::Out(0)
                }
                None => {
                    self.no_route += 1;
                    Action::Drop
                }
            };
        }
        CostModel::charge(ctx, (self.cost.lookup_step.0 * total_levels,
                                self.cost.lookup_step.1 * total_levels));
    }
}

/// Ablation element: the same lookup function implemented with the
/// multibit trie (3–5 reads instead of ~15). Routes identically; contends
/// differently.
pub struct MultibitIpLookup {
    trie: MultibitTrie,
    cost: CostModel,
    /// Batched-walk scratch (reused every batch).
    scratch: MultibitScratch,
    /// Scratch header addresses / lanes / results (reused every batch).
    hdrs: Vec<u64>,
    dsts: Vec<u32>,
    lanes: Vec<usize>,
    results: Vec<(Option<u32>, u32)>,
    /// Successful lookups.
    pub found: u64,
    /// Lookups with no matching route.
    pub no_route: u64,
}

impl MultibitIpLookup {
    /// Build the element (and its trie) in `alloc`'s domain.
    pub fn new(alloc: &mut DomainAllocator, prefixes: &[PrefixEntry], cost: CostModel) -> Self {
        MultibitIpLookup {
            trie: MultibitTrie::build(alloc, prefixes),
            cost,
            scratch: MultibitScratch::default(),
            hdrs: Vec::new(),
            dsts: Vec::new(),
            lanes: Vec::new(),
            results: Vec::new(),
            found: 0,
            no_route: 0,
        }
    }
}

impl Element for MultibitIpLookup {
    fn class_name(&self) -> &'static str {
        "MultibitIPLookup"
    }

    fn tag(&self) -> &'static str {
        "radix_ip_lookup"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        if pkt.buf_addr != 0 {
            ctx.read(pkt.buf_addr + pkt.l3_offset() as u64 + 16);
        }
        let Ok(ip) = pkt.ipv4() else { return Action::Drop };
        let (hop, levels) = self.trie.lookup(ctx, u32::from(ip.dst));
        CostModel::charge(ctx, (self.cost.lookup_step.0 * levels as u64,
                                self.cost.lookup_step.1 * levels as u64));
        match hop {
            Some(_) => {
                self.found += 1;
                Action::Out(0)
            }
            None => {
                self.no_route += 1;
                Action::Drop
            }
        }
    }

    fn process_batch(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        pkts: &mut [Packet],
        actions: &mut Vec<Action>,
    ) {
        if pkts.len() <= 1 {
            for pkt in pkts.iter_mut() {
                actions.push(self.process(ctx, pkt));
            }
            return;
        }
        self.hdrs.clear();
        self.hdrs.extend(
            pkts.iter().filter(|p| p.buf_addr != 0).map(|p| p.buf_addr + p.l3_offset() as u64 + 16),
        );
        ctx.read_batch(&self.hdrs, BATCH_MLP);
        self.dsts.clear();
        self.lanes.clear();
        for (i, pkt) in pkts.iter().enumerate() {
            if let Ok(ip) = pkt.ipv4() {
                self.dsts.push(u32::from(ip.dst));
                self.lanes.push(i);
            }
        }
        self.trie
            .lookup_batch_into(ctx, &self.dsts, BATCH_MLP, &mut self.scratch, &mut self.results);
        let mut total_levels = 0u64;
        let verdict_base = actions.len();
        actions.resize(verdict_base + pkts.len(), Action::Drop);
        for (&lane, &(hop, levels)) in self.lanes.iter().zip(self.results.iter()) {
            total_levels += levels as u64;
            actions[verdict_base + lane] = match hop {
                Some(_) => {
                    self.found += 1;
                    Action::Out(0)
                }
                None => {
                    self.no_route += 1;
                    Action::Drop
                }
            };
        }
        CostModel::charge(ctx, (self.cost.lookup_step.0 * total_levels,
                                self.cost.lookup_step.1 * total_levels));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::machine;
    use pp_net::gen::prefixes::{generate_prefixes, linear_lpm};
    use pp_sim::types::{CoreId, MemDomain};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn build(prefixes: &[PrefixEntry]) -> (pp_sim::machine::Machine, MultibitTrie) {
        let mut m = machine();
        let trie = MultibitTrie::build(m.allocator(MemDomain(0)), prefixes);
        (m, trie)
    }

    #[test]
    fn exact_slots_and_lpm_ordering() {
        let table = vec![
            PrefixEntry { addr: 0x0a00_0000, len: 8, next_hop: 1 },
            PrefixEntry { addr: 0x0a01_0000, len: 16, next_hop: 2 },
            PrefixEntry { addr: 0x0a01_0200, len: 24, next_hop: 3 },
            PrefixEntry { addr: 0x0a01_0203, len: 32, next_hop: 4 },
        ];
        let (_m, trie) = build(&table);
        assert_eq!(trie.lookup_host(0x0a01_0203), Some(4));
        assert_eq!(trie.lookup_host(0x0a01_0204), Some(3));
        assert_eq!(trie.lookup_host(0x0a01_ff00), Some(2));
        assert_eq!(trie.lookup_host(0x0aff_0000), Some(1));
        assert_eq!(trie.lookup_host(0x0b00_0000), None);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut table = vec![
            PrefixEntry { addr: 0x0a01_0203, len: 32, next_hop: 4 },
            PrefixEntry { addr: 0x0a01_0200, len: 24, next_hop: 3 },
            PrefixEntry { addr: 0x0a00_0000, len: 8, next_hop: 1 },
            PrefixEntry { addr: 0x0a01_0000, len: 16, next_hop: 2 },
        ];
        let (_m, t1) = build(&table);
        table.reverse();
        let (_m2, t2) = build(&table);
        for ip in [0x0a01_0203u32, 0x0a01_0204, 0x0a01_ff00, 0x0aff_0000, 0x0b00_0000] {
            assert_eq!(t1.lookup_host(ip), t2.lookup_host(ip), "ip {ip:#x}");
        }
    }

    #[test]
    fn matches_linear_oracle_on_random_table() {
        let prefixes = generate_prefixes(2000, 77, true);
        let (_m, trie) = build(&prefixes);
        let mut rng = SmallRng::seed_from_u64(123);
        for _ in 0..3000 {
            let ip: u32 = rng.random();
            let want = linear_lpm(&prefixes, ip).map(|e| e.next_hop);
            assert_eq!(trie.lookup_host(ip), want, "mismatch for {ip:#x}");
        }
    }

    #[test]
    fn simulated_lookup_agrees_with_host_lookup() {
        let prefixes = generate_prefixes(500, 9, true);
        let (mut m, trie) = build(&prefixes);
        let mut ctx = m.ctx(CoreId(0));
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            let ip: u32 = rng.random();
            let (hop, levels) = trie.lookup(&mut ctx, ip);
            assert_eq!(hop, trie.lookup_host(ip));
            assert!((1..=5).contains(&levels));
        }
        // Dependent reads were charged.
        assert!(m.core(CoreId(0)).counters.total().l1_refs >= 200);
    }

    #[test]
    fn footprint_is_cacheable_scale() {
        // The paper-scale table must produce a multi-MB but cacheable trie.
        let prefixes = generate_prefixes(128_000, 42, true);
        let (_m, trie) = build(&prefixes);
        let mb = trie.footprint() as f64 / (1024.0 * 1024.0);
        assert!(
            mb > 1.0 && mb < 12.0,
            "trie should be multi-MB but below L3 size, got {mb:.1} MB"
        );
    }

    fn build_binary(prefixes: &[PrefixEntry]) -> (pp_sim::machine::Machine, BinaryRadixTrie) {
        let mut m = machine();
        let trie = BinaryRadixTrie::build(m.allocator(MemDomain(0)), prefixes);
        (m, trie)
    }

    #[test]
    fn binary_trie_lpm_ordering() {
        let table = vec![
            PrefixEntry { addr: 0x0a00_0000, len: 8, next_hop: 1 },
            PrefixEntry { addr: 0x0a01_0000, len: 16, next_hop: 2 },
            PrefixEntry { addr: 0x0a01_0200, len: 24, next_hop: 3 },
            PrefixEntry { addr: 0x0a01_0203, len: 32, next_hop: 4 },
        ];
        let (_m, trie) = build_binary(&table);
        assert_eq!(trie.lookup_host(0x0a01_0203), Some(4));
        assert_eq!(trie.lookup_host(0x0a01_0204), Some(3));
        assert_eq!(trie.lookup_host(0x0a01_ff00), Some(2));
        assert_eq!(trie.lookup_host(0x0aff_0000), Some(1));
        assert_eq!(trie.lookup_host(0x0b00_0000), None);
    }

    #[test]
    fn binary_trie_matches_linear_oracle() {
        use pp_net::gen::prefixes::generate_bgp_table;
        let prefixes = generate_bgp_table(3000, 21);
        let (_m, trie) = build_binary(&prefixes);
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..2000 {
            let ip: u32 = rng.random();
            let want = linear_lpm(&prefixes, ip).map(|e| e.next_hop);
            assert_eq!(trie.lookup_host(ip), want, "mismatch for {ip:#x}");
        }
    }

    #[test]
    fn binary_and_multibit_agree() {
        use pp_net::gen::prefixes::generate_bgp_table;
        let prefixes = generate_bgp_table(2000, 5);
        let (_m1, bin) = build_binary(&prefixes);
        let (_m2, multi) = build(&prefixes);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..2000 {
            let ip: u32 = rng.random();
            assert_eq!(bin.lookup_host(ip), multi.lookup_host(ip), "ip {ip:#x}");
        }
    }

    #[test]
    fn binary_trie_walks_deep_under_bgp_table() {
        use pp_net::gen::prefixes::generate_bgp_table;
        let prefixes = generate_bgp_table(20_000, 9);
        let (mut m, trie) = build_binary(&prefixes);
        let mut ctx = m.ctx(CoreId(0));
        let mut rng = SmallRng::seed_from_u64(4);
        let mut total_levels = 0u64;
        for _ in 0..500 {
            let ip: u32 = rng.random();
            let (_, levels) = trie.lookup(&mut ctx, ip);
            total_levels += levels as u64;
        }
        let avg = total_levels as f64 / 500.0;
        assert!(
            avg > 9.0,
            "BGP-shaped tables must force deep walks, avg depth {avg:.1}"
        );
    }

    #[test]
    fn binary_trie_paper_scale_footprint() {
        use pp_net::gen::prefixes::generate_bgp_table;
        let prefixes = generate_bgp_table(128_000, 42);
        let (_m, trie) = build_binary(&prefixes);
        let mb = trie.footprint() as f64 / (1024.0 * 1024.0);
        assert!(
            mb > 8.0 && mb < 24.0,
            "trie should be in the paper's barely-cacheable range, got {mb:.1} MB"
        );
    }

    #[test]
    fn binary_simulated_matches_host() {
        use pp_net::gen::prefixes::generate_bgp_table;
        let prefixes = generate_bgp_table(1000, 2);
        let (mut m, trie) = build_binary(&prefixes);
        let mut ctx = m.ctx(CoreId(0));
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..300 {
            let ip: u32 = rng.random();
            let (hop, _) = trie.lookup(&mut ctx, ip);
            assert_eq!(hop, trie.lookup_host(ip));
        }
    }

    #[test]
    fn multibit_batch_results_equal_scalar_results() {
        use pp_net::gen::prefixes::generate_bgp_table;
        let prefixes = generate_bgp_table(2000, 13);
        let (mut m, trie) = build(&prefixes);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut dsts: Vec<u32> = (0..150).map(|_| rng.random()).collect();
        dsts.extend_from_slice(&dsts.clone()[..30]); // duplicate lanes
        let mut ctx = m.ctx(CoreId(0));
        let scalar: Vec<(Option<u32>, u32)> =
            dsts.iter().map(|&d| trie.lookup(&mut ctx, d)).collect();
        let mut scratch = MultibitScratch::default();
        let mut out = Vec::new();
        trie.lookup_batch_into(&mut ctx, &dsts, BATCH_MLP, &mut scratch, &mut out);
        assert_eq!(scalar, out);
    }

    #[test]
    fn multibit_batch_of_one_is_charge_identical_to_scalar() {
        use pp_net::gen::prefixes::generate_bgp_table;
        let prefixes = generate_bgp_table(500, 3);
        let mut ms = machine();
        let mut el_s =
            MultibitIpLookup::new(ms.allocator(MemDomain(0)), &prefixes, CostModel::default());
        let mut mb = machine();
        let mut el_b =
            MultibitIpLookup::new(mb.allocator(MemDomain(0)), &prefixes, CostModel::default());
        let mut pkt = crate::element::test_util::packet();
        let mut pkt2 = pkt.clone();
        let a = {
            let mut ctx = ms.ctx(CoreId(0));
            el_s.process(&mut ctx, &mut pkt)
        };
        let mut actions = Vec::new();
        {
            let mut ctx = mb.ctx(CoreId(0));
            el_b.process_batch(&mut ctx, std::slice::from_mut(&mut pkt2), &mut actions);
        }
        assert_eq!(vec![a], actions);
        assert_eq!(ms.core(CoreId(0)).clock, mb.core(CoreId(0)).clock);
        assert_eq!(
            ms.core(CoreId(0)).counters.total(),
            mb.core(CoreId(0)).counters.total()
        );
    }

    #[test]
    fn multibit_batched_element_charges_less_than_scalar() {
        use pp_net::gen::prefixes::generate_bgp_table;
        let prefixes = generate_bgp_table(5000, 7);
        let mut ms = machine();
        let mut el_s =
            MultibitIpLookup::new(ms.allocator(MemDomain(0)), &prefixes, CostModel::default());
        let mut mb = machine();
        let mut el_b =
            MultibitIpLookup::new(mb.allocator(MemDomain(0)), &prefixes, CostModel::default());
        let mut rng = SmallRng::seed_from_u64(31);
        let mut pkts: Vec<pp_net::packet::Packet> = (0..64)
            .map(|_| {
                pp_net::packet::PacketBuilder::default().udp(
                    std::net::Ipv4Addr::new(1, 2, 3, 4),
                    std::net::Ipv4Addr::from(rng.random::<u32>()),
                    1000,
                    53,
                    b"x",
                )
            })
            .collect();
        let mut pkts2 = pkts.clone();
        let mut scalar_actions = Vec::new();
        {
            let mut ctx = ms.ctx(CoreId(0));
            for p in pkts.iter_mut() {
                scalar_actions.push(el_s.process(&mut ctx, p));
            }
        }
        let mut batch_actions = Vec::new();
        {
            let mut ctx = mb.ctx(CoreId(0));
            el_b.process_batch(&mut ctx, &mut pkts2, &mut batch_actions);
        }
        assert_eq!(scalar_actions, batch_actions);
        assert_eq!((el_s.found, el_s.no_route), (el_b.found, el_b.no_route));
        assert!(
            mb.core(CoreId(0)).clock < ms.core(CoreId(0)).clock,
            "batched multibit walk must be cheaper: batch {} vs scalar {}",
            mb.core(CoreId(0)).clock,
            ms.core(CoreId(0)).clock
        );
    }

    #[test]
    fn element_drops_on_no_route() {
        let table = vec![PrefixEntry { addr: 0x0a00_0000, len: 8, next_hop: 1 }];
        let mut m = machine();
        let mut el =
            RadixIpLookup::new(m.allocator(MemDomain(0)), &table, CostModel::default());
        let mut ctx = m.ctx(CoreId(0));
        // 93.184.216.34 is not under 10/8.
        let mut pkt = crate::element::test_util::packet();
        assert_eq!(el.process(&mut ctx, &mut pkt), Action::Drop);
        assert_eq!(el.no_route, 1);
        // A 10/8 destination is found.
        let mut pkt = pp_net::packet::PacketBuilder::default().udp(
            std::net::Ipv4Addr::new(1, 2, 3, 4),
            std::net::Ipv4Addr::new(10, 9, 9, 9),
            1,
            2,
            b"x",
        );
        assert_eq!(el.process(&mut ctx, &mut pkt), Action::Out(0));
        assert_eq!(el.found, 1);
    }
}
