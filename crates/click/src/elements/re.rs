//! Redundancy elimination (the paper's RE workload), after Spring &
//! Wetherall: maintain a *packet store* (ring of recently observed payload
//! bytes) and a *fingerprint table* (mapping content fingerprints to store
//! offsets). For each packet, compute Rabin-style rolling fingerprints over
//! the payload, select anchors by value sampling, look each anchor up in the
//! fingerprint table, and — on a verified match — elide the redundant region
//! from the transmitted representation.
//!
//! RE is "a representative form of memory-intensive packet processing that
//! does not significantly benefit from caching": the fingerprint table and
//! packet store total far more than the L3, so most accesses miss — which is
//! exactly why RE is the paper's most *aggressive* workload (Fig. 2) while
//! being only mildly sensitive.

use crate::cost::CostModel;
use crate::element::{Action, Element};
use pp_net::packet::Packet;
use pp_sim::arena::{DomainAllocator, SimRing, SimVec};
use pp_sim::ctx::ExecCtx;

/// Rolling-hash window in bytes.
pub const WINDOW: usize = 32;

/// A simple polynomial rolling hash (Rabin-style) with precomputed
/// remove-multiplier, processing one byte per step.
#[derive(Debug, Clone)]
pub struct RollingHash {
    base: u64,
    /// `base^(WINDOW-1)` for removing the outgoing byte.
    out_mul: u64,
    state: u64,
    filled: usize,
    window: [u8; WINDOW],
    pos: usize,
}

impl Default for RollingHash {
    fn default() -> Self {
        Self::new()
    }
}

impl RollingHash {
    /// Fresh hasher.
    pub fn new() -> Self {
        let base = 1_000_000_007u64;
        let mut out_mul = 1u64;
        for _ in 0..WINDOW - 1 {
            out_mul = out_mul.wrapping_mul(base);
        }
        RollingHash { base, out_mul, state: 0, filled: 0, window: [0; WINDOW], pos: 0 }
    }

    /// Feed one byte; returns the current hash once the window is full.
    #[inline]
    pub fn roll(&mut self, b: u8) -> Option<u64> {
        if self.filled == WINDOW {
            let old = self.window[self.pos];
            self.state = self.state.wrapping_sub((old as u64).wrapping_mul(self.out_mul));
        } else {
            self.filled += 1;
        }
        self.state = self.state.wrapping_mul(self.base).wrapping_add(b as u64);
        self.window[self.pos] = b;
        self.pos = (self.pos + 1) % WINDOW;
        if self.filled == WINDOW {
            Some(self.state)
        } else {
            None
        }
    }

    /// Reset for a new packet.
    pub fn reset(&mut self) {
        self.state = 0;
        self.filled = 0;
        self.pos = 0;
    }
}

/// One fingerprint-table slot: 16 bytes, 4 per cache line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(C)]
struct FpEntry {
    fingerprint: u64,
    /// Logical packet-store offset + 1 (0 = empty).
    offset_plus1: u64,
}

/// Configuration for the RE element.
#[derive(Debug, Clone, Copy)]
pub struct ReConfig {
    /// log2 of the fingerprint-table slot count (paper: "more than 4
    /// million entries"; default 2^21 for a 32 MB table — see ARCHITECTURE.md on
    /// the scale-down, which keeps the table far beyond L3 either way).
    pub log2_fp_slots: u32,
    /// Packet-store capacity in bytes (paper: "1 second's worth of
    /// traffic"; default 32 MB).
    pub store_bytes: u64,
    /// Anchor value-sampling modulus: a window is an anchor when
    /// `hash % sample_mod == 0` (expected one anchor per `sample_mod`
    /// bytes).
    pub sample_mod: u64,
}

impl Default for ReConfig {
    fn default() -> Self {
        ReConfig { log2_fp_slots: 21, store_bytes: 32 << 20, sample_mod: 6 }
    }
}

/// The redundancy-elimination element. See the module docs.
pub struct RedundancyElim {
    fp_table: SimVec<FpEntry>,
    store: SimRing,
    mask: u64,
    hasher: RollingHash,
    cfg: ReConfig,
    cost: CostModel,
    /// Packets processed.
    pub packets: u64,
    /// Anchors selected.
    pub anchors: u64,
    /// Anchors whose fingerprint matched and verified against the store.
    pub matches: u64,
    /// Payload bytes elided from the encoded representation.
    pub bytes_saved: u64,
    /// Total payload bytes seen.
    pub bytes_in: u64,
}

impl RedundancyElim {
    /// Build with the given configuration in `alloc`'s domain.
    pub fn new(alloc: &mut DomainAllocator, cfg: ReConfig, cost: CostModel) -> Self {
        let slots = 1usize << cfg.log2_fp_slots;
        RedundancyElim {
            fp_table: SimVec::new(alloc, slots, FpEntry::default()),
            store: SimRing::new(alloc, cfg.store_bytes),
            mask: (slots - 1) as u64,
            hasher: RollingHash::new(),
            cfg,
            cost,
            packets: 0,
            anchors: 0,
            matches: 0,
            bytes_saved: 0,
            bytes_in: 0,
        }
    }

    /// Total simulated footprint (fingerprint table + packet store).
    pub fn footprint(&self) -> u64 {
        self.fp_table.footprint() + self.store.capacity()
    }

    /// Fraction of input bytes elided so far.
    pub fn savings_ratio(&self) -> f64 {
        if self.bytes_in == 0 {
            0.0
        } else {
            self.bytes_saved as f64 / self.bytes_in as f64
        }
    }
}

impl Element for RedundancyElim {
    fn class_name(&self) -> &'static str {
        "RedundancyElim"
    }

    fn tag(&self) -> &'static str {
        "redundancy_elim"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        let Ok(payload) = pkt.payload().map(|p| p.to_vec()) else { return Action::Drop };
        if payload.len() < WINDOW {
            self.packets += 1;
            return Action::Out(0);
        }
        let Ok(off) = pkt.payload_offset() else { return Action::Drop };

        // The payload is scanned byte-by-byte: charge the payload lines as
        // dependent reads, and the rolling hash as compute.
        if pkt.buf_addr != 0 {
            ctx.read_struct(pkt.buf_addr + off as u64, payload.len() as u64);
        }
        CostModel::charge(
            ctx,
            (
                self.cost.rabin_per_byte.0 * payload.len() as u64,
                self.cost.rabin_per_byte.1 * payload.len() as u64,
            ),
        );

        // Append the payload to the packet store (real bytes).
        let store_off = self.store.append(ctx, &payload);

        // Anchor selection + fingerprint probes.
        self.hasher.reset();
        let mut i = 0usize;
        while i < payload.len() {
            let h = self.hasher.roll(payload[i]);
            i += 1;
            let Some(h) = h else { continue };
            if h % self.cfg.sample_mod != 0 {
                continue;
            }
            self.anchors += 1;
            CostModel::charge(ctx, self.cost.re_per_anchor);
            let slot = (h ^ (h >> 23)) & self.mask;
            let anchor_start = i - WINDOW;
            let entry = self.fp_table.read(ctx, slot as usize);
            let mut matched = false;
            if entry.offset_plus1 != 0 && entry.fingerprint == h {
                // Verify against the store bytes (dependent reads into a
                // structure far larger than the cache).
                let mut old = [0u8; WINDOW];
                if self.store.read_at(ctx, entry.offset_plus1 - 1, &mut old)
                    && old == payload[anchor_start..anchor_start + WINDOW]
                {
                    matched = true;
                    self.matches += 1;
                    self.bytes_saved += WINDOW as u64;
                    // Skip ahead: the region is encoded as a (offset, len)
                    // reference instead of literal bytes.
                    i = anchor_start + WINDOW;
                    self.hasher.reset();
                }
            }
            if !matched {
                self.fp_table.write(
                    ctx,
                    slot as usize,
                    FpEntry {
                        fingerprint: h,
                        offset_plus1: store_off + anchor_start as u64 + 1,
                    },
                );
            }
        }

        self.packets += 1;
        self.bytes_in += payload.len() as u64;
        Action::Out(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet_with_payload};
    use pp_sim::types::{CoreId, MemDomain};

    fn small_re(m: &mut pp_sim::machine::Machine) -> RedundancyElim {
        let cfg = ReConfig { log2_fp_slots: 12, store_bytes: 1 << 16, sample_mod: 4 };
        RedundancyElim::new(m.allocator(MemDomain(0)), cfg, CostModel::default())
    }

    #[test]
    fn rolling_hash_is_shift_invariant() {
        // The hash of a window must not depend on preceding bytes.
        let mut h1 = RollingHash::new();
        let mut h2 = RollingHash::new();
        let window = [7u8; WINDOW];
        let mut last1 = None;
        for b in [1u8, 2, 3].iter().chain(window.iter()) {
            last1 = h1.roll(*b);
        }
        let mut last2 = None;
        for b in [9u8, 9, 9, 9, 9].iter().chain(window.iter()) {
            last2 = h2.roll(*b);
        }
        assert_eq!(last1.unwrap(), last2.unwrap());
    }

    #[test]
    fn rolling_hash_distinguishes_content() {
        let mut h1 = RollingHash::new();
        let mut h2 = RollingHash::new();
        let mut a = [5u8; WINDOW];
        let b = [5u8; WINDOW];
        a[13] = 6;
        let va = a.iter().map(|&x| h1.roll(x)).last().unwrap();
        let vb = b.iter().map(|&x| h2.roll(x)).last().unwrap();
        assert_ne!(va, vb);
    }

    #[test]
    fn duplicate_payload_is_detected() {
        let mut m = machine();
        let mut re = small_re(&mut m);
        let payload = {
            // A payload with enough structure to produce anchors.
            let mut p = vec![0u8; 256];
            for (i, b) in p.iter_mut().enumerate() {
                *b = (i % 251) as u8;
            }
            p
        };
        let mut ctx = m.ctx(CoreId(0));
        let mut p1 = packet_with_payload(&payload);
        re.process(&mut ctx, &mut p1);
        let after_first = re.matches;
        let mut p2 = packet_with_payload(&payload);
        re.process(&mut ctx, &mut p2);
        assert!(
            re.matches > after_first,
            "replayed payload must produce fingerprint matches"
        );
        assert!(re.bytes_saved > 0);
    }

    #[test]
    fn random_payloads_rarely_match() {
        use rand::rngs::SmallRng;
        use rand::{RngCore, SeedableRng};
        let mut m = machine();
        let mut re = small_re(&mut m);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ctx = m.ctx(CoreId(0));
        for _ in 0..30 {
            let mut payload = vec![0u8; 256];
            rng.fill_bytes(&mut payload);
            let mut p = packet_with_payload(&payload);
            re.process(&mut ctx, &mut p);
        }
        assert_eq!(re.matches, 0, "distinct random payloads should not match");
        assert!(re.anchors > 0, "sampling should still select anchors");
    }

    #[test]
    fn short_payloads_pass_through() {
        let mut m = machine();
        let mut re = small_re(&mut m);
        let mut ctx = m.ctx(CoreId(0));
        let mut p = packet_with_payload(&[1, 2, 3]);
        assert_eq!(re.process(&mut ctx, &mut p), Action::Out(0));
        assert_eq!(re.anchors, 0);
    }

    #[test]
    fn paper_scale_footprint_exceeds_l3() {
        let mut m = machine();
        let re = RedundancyElim::new(
            m.allocator(MemDomain(0)),
            ReConfig::default(),
            CostModel::default(),
        );
        assert!(
            re.footprint() > 4 * m.config().l3.size_bytes,
            "RE working set ({} B) must dwarf the L3",
            re.footprint()
        );
    }

    #[test]
    fn savings_ratio_bounded() {
        let mut m = machine();
        let mut re = small_re(&mut m);
        let payload = [9u8; 128];
        let mut ctx = m.ctx(CoreId(0));
        for _ in 0..5 {
            let mut p = packet_with_payload(&payload);
            re.process(&mut ctx, &mut p);
        }
        let r = re.savings_ratio();
        assert!((0.0..=1.0).contains(&r));
    }
}
