//! The SYN workload: "for each received packet, we perform a configurable
//! number of CPU operations and read a configurable number of random memory
//! locations from a data structure that has the size of the L3 cache".
//!
//! SYN is the knob the paper turns to ramp *competing cache references per
//! second* (Figs. 4, 5, 7), and `SYN_MAX` — no compute, only back-to-back
//! reads — is "the most aggressive synthetic application we were able to
//! run". The reads are independent random locations, so they are issued
//! with full memory-level parallelism (the real workload's loads are
//! independent array reads, not a pointer chase).

use crate::cost::CostModel;
use crate::element::{Action, Element};
use pp_net::packet::Packet;
use pp_sim::arena::DomainAllocator;
use pp_sim::ctx::ExecCtx;
use pp_sim::types::{Addr, CACHE_LINE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for a SYN element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynParams {
    /// CPU operations per packet (each costs `CostModel::syn_op`).
    pub ops_per_packet: u64,
    /// Random memory reads per packet.
    pub reads_per_packet: u32,
    /// Size of the touched data structure (paper: the L3 size, 12 MB).
    pub working_set_bytes: u64,
    /// Memory-level parallelism granted to the reads.
    pub mlp: u32,
    /// RNG seed for the access pattern.
    pub seed: u64,
}

impl SynParams {
    /// A mid-intensity SYN (used as a building block for ramps).
    pub fn moderate(seed: u64) -> Self {
        SynParams {
            ops_per_packet: 800,
            reads_per_packet: 32,
            working_set_bytes: 12 << 20,
            mlp: 8,
            seed,
        }
    }

    /// SYN_MAX: "no other processing but consecutive memory accesses at the
    /// highest possible rate".
    pub fn max(seed: u64) -> Self {
        SynParams {
            ops_per_packet: 0,
            reads_per_packet: 64,
            working_set_bytes: 12 << 20,
            mlp: 8,
            seed,
        }
    }

    /// A ramp of SYN intensities producing increasing cache refs/sec:
    /// fixed reads per packet, decreasing compute per packet. `level` 0 is
    /// the gentlest; `levels-1` is close to SYN_MAX.
    pub fn ramp(level: u32, levels: u32, seed: u64) -> Self {
        assert!(levels >= 2 && level < levels);
        // Geometrically decreasing compute: 12800, ..., down to 0.
        let max_ops: u64 = 12_800;
        let ops = if level + 1 == levels {
            0
        } else {
            max_ops >> level
        };
        SynParams {
            ops_per_packet: ops,
            reads_per_packet: 32,
            working_set_bytes: 12 << 20,
            mlp: 8,
            seed,
        }
    }
}

/// The SYN element. See the module docs.
pub struct Synthetic {
    region: Addr,
    lines: u64,
    params: SynParams,
    rng: SmallRng,
    cost: CostModel,
    addrs: Vec<Addr>,
    /// Packets processed.
    pub packets: u64,
}

impl Synthetic {
    /// Allocate the working set in `alloc`'s domain.
    pub fn new(alloc: &mut DomainAllocator, params: SynParams, cost: CostModel) -> Self {
        assert!(params.working_set_bytes >= CACHE_LINE);
        let region = alloc.alloc_lines(params.working_set_bytes);
        Synthetic {
            region,
            lines: params.working_set_bytes / CACHE_LINE,
            rng: SmallRng::seed_from_u64(params.seed),
            params,
            cost,
            addrs: Vec::with_capacity(64),
            packets: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &SynParams {
        &self.params
    }

    /// Retune the compute intensity at run time (used by the throttling
    /// controller and by hidden-aggressor scenarios).
    pub fn set_ops_per_packet(&mut self, ops: u64) {
        self.params.ops_per_packet = ops;
    }

    /// Retune the read count at run time.
    pub fn set_reads_per_packet(&mut self, reads: u32) {
        self.params.reads_per_packet = reads;
    }
}

impl Element for Synthetic {
    fn class_name(&self) -> &'static str {
        "Synthetic"
    }

    fn tag(&self) -> &'static str {
        "syn"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, _pkt: &mut Packet) -> Action {
        if self.params.ops_per_packet > 0 {
            CostModel::charge(
                ctx,
                (
                    self.cost.syn_op.0 * self.params.ops_per_packet,
                    self.cost.syn_op.1 * self.params.ops_per_packet,
                ),
            );
        }
        self.addrs.clear();
        for _ in 0..self.params.reads_per_packet {
            let line = self.rng.random_range(0..self.lines);
            self.addrs.push(self.region + line * CACHE_LINE);
        }
        ctx.read_batch(&self.addrs, self.params.mlp);
        self.packets += 1;
        Action::Out(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet};
    use pp_sim::types::{CoreId, MemDomain};

    #[test]
    fn reads_land_in_working_set() {
        let mut m = machine();
        let params = SynParams {
            ops_per_packet: 10,
            reads_per_packet: 16,
            working_set_bytes: 1 << 20,
            mlp: 4,
            seed: 1,
        };
        let mut syn = Synthetic::new(m.allocator(MemDomain(0)), params, CostModel::default());
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        assert_eq!(syn.process(&mut ctx, &mut pkt), Action::Out(0));
        let c = m.core(CoreId(0)).counters.total();
        assert_eq!(c.l1_refs, 16);
        assert_eq!(c.compute_cycles, 10 * CostModel::default().syn_op.0);
    }

    #[test]
    fn syn_max_does_no_compute() {
        let mut m = machine();
        let mut syn = Synthetic::new(
            m.allocator(MemDomain(0)),
            SynParams::max(2),
            CostModel::default(),
        );
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        syn.process(&mut ctx, &mut pkt);
        assert_eq!(m.core(CoreId(0)).counters.total().compute_cycles, 0);
        assert_eq!(m.core(CoreId(0)).counters.total().l1_refs, 64);
    }

    #[test]
    fn ramp_is_monotone_in_intensity() {
        // Higher ramp level = fewer compute ops = higher refs/sec.
        let mut prev = u64::MAX;
        for level in 0..8 {
            let p = SynParams::ramp(level, 8, 0);
            assert!(p.ops_per_packet <= prev, "level {level} not monotone");
            prev = p.ops_per_packet;
            assert_eq!(p.reads_per_packet, 32);
        }
        assert_eq!(SynParams::ramp(7, 8, 0).ops_per_packet, 0);
    }

    #[test]
    fn working_set_is_l3_sized_by_default() {
        let p = SynParams::max(0);
        assert_eq!(p.working_set_bytes, 12 << 20);
    }

    #[test]
    fn retuning_changes_behavior() {
        let mut m = machine();
        let mut syn = Synthetic::new(
            m.allocator(MemDomain(0)),
            SynParams::max(3),
            CostModel::default(),
        );
        syn.set_ops_per_packet(100);
        syn.set_reads_per_packet(4);
        let mut ctx = m.ctx(CoreId(0));
        let mut pkt = packet();
        syn.process(&mut ctx, &mut pkt);
        let c = m.core(CoreId(0)).counters.total();
        assert_eq!(c.l1_refs, 4);
        assert!(c.compute_cycles > 0);
    }

    #[test]
    fn access_pattern_is_deterministic() {
        let mut m1 = machine();
        let mut m2 = machine();
        let mk = |m: &mut pp_sim::machine::Machine| {
            Synthetic::new(
                m.allocator(MemDomain(0)),
                SynParams::moderate(9),
                CostModel::default(),
            )
        };
        let mut s1 = mk(&mut m1);
        let mut s2 = mk(&mut m2);
        for _ in 0..50 {
            let mut p = packet();
            s1.process(&mut m1.ctx(CoreId(0)), &mut p);
            let mut p = packet();
            s2.process(&mut m2.ctx(CoreId(0)), &mut p);
        }
        assert_eq!(
            m1.core(CoreId(0)).counters.total(),
            m2.core(CoreId(0)).counters.total()
        );
    }
}
