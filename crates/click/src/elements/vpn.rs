//! The VPN element: AES-128-CTR encryption of the packet payload — the
//! paper's "representative form of CPU-intensive packet processing".
//!
//! The payload really is encrypted in place. Every T-table/S-box lookup the
//! cipher performs is charged to the simulated hierarchy at the tables'
//! simulated addresses (batched per round with MLP 4, since the four
//! lookups of one output word are independent — this is what gives VPN its
//! paper-measured CPI of ≈0.56 instead of a pointer-chase CPI). The tables
//! total 5 KB, so they live in L1/L2 and VPN's L3 traffic comes from the
//! packet payload and the upstream IP/MON stages, matching Table 1.

use crate::cost::CostModel;
use crate::element::{Action, Element};
use crate::elements::aes::{Aes128, TableRef};
use pp_net::packet::Packet;
use pp_sim::arena::DomainAllocator;
use pp_sim::ctx::ExecCtx;
use pp_sim::types::Addr;

/// MLP granted to the four independent lookups within a round.
const AES_MLP: u32 = 4;

/// The VPN encryption element. See the module docs.
pub struct VpnEncrypt {
    aes: Aes128,
    /// Simulated base addresses of T0..T3 (each 1 KB).
    t_base: [Addr; 4],
    /// Simulated base address of the S-box (256 B).
    sbox_base: Addr,
    nonce: u64,
    counter: u64,
    cost: CostModel,
    /// Packets encrypted.
    pub encrypted: u64,
    /// Payload bytes encrypted.
    pub bytes: u64,
}

impl VpnEncrypt {
    /// Build with a key; tables are materialized in `alloc`'s domain.
    pub fn new(alloc: &mut DomainAllocator, key: [u8; 16], nonce: u64, cost: CostModel) -> Self {
        let t_base = [
            alloc.alloc_lines(1024),
            alloc.alloc_lines(1024),
            alloc.alloc_lines(1024),
            alloc.alloc_lines(1024),
        ];
        let sbox_base = alloc.alloc_lines(256);
        VpnEncrypt {
            aes: Aes128::new(key),
            t_base,
            sbox_base,
            nonce,
            counter: 0,
            cost,
            encrypted: 0,
            bytes: 0,
        }
    }

    #[inline]
    fn lookup_addr(&self, t: TableRef, idx: u8) -> Addr {
        match t {
            TableRef::T(k) => self.t_base[k as usize] + (idx as Addr) * 4,
            TableRef::Sbox => self.sbox_base + idx as Addr,
        }
    }
}

impl Element for VpnEncrypt {
    fn class_name(&self) -> &'static str {
        "VPNEncrypt"
    }

    fn tag(&self) -> &'static str {
        "vpn_encrypt"
    }

    fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
        let Ok(off) = pkt.payload_offset() else { return Action::Drop };
        let end = {
            let Ok(p) = pkt.payload() else { return Action::Drop };
            off + p.len()
        };
        let len = end - off;
        if len == 0 {
            return Action::Out(0);
        }

        // Read the payload lines (dependent loads), encrypt, write back.
        if pkt.buf_addr != 0 {
            ctx.read_struct(pkt.buf_addr + off as u64, len as u64);
        }

        // Generate keystream, charging table lookups per round (16 at a
        // time: one main round's independent loads).
        let mut addrs: Vec<Addr> = Vec::with_capacity(16);
        let mut pending: Vec<Addr> = Vec::with_capacity(176);
        let ks = self.aes.ctr_keystream_traced(self.nonce, self.counter, len, &mut |t, idx| {
            pending.push(self.lookup_addr(t, idx));
        });
        self.counter = self.counter.wrapping_add(len.div_ceil(16) as u64);

        let n_blocks = len.div_ceil(16) as u64;
        for chunk in pending.chunks(16) {
            addrs.clear();
            addrs.extend_from_slice(chunk);
            ctx.read_batch(&addrs, AES_MLP);
            CostModel::charge(ctx, self.cost.aes_round);
        }
        CostModel::charge(
            ctx,
            (self.cost.aes_block_overhead.0 * n_blocks, self.cost.aes_block_overhead.1 * n_blocks),
        );

        // XOR the keystream into the real payload bytes.
        for (i, k) in ks.iter().enumerate() {
            pkt.data[off + i] ^= k;
        }
        if pkt.buf_addr != 0 {
            ctx.write_struct(pkt.buf_addr + off as u64, len as u64);
        }

        self.encrypted += 1;
        self.bytes += len as u64;
        Action::Out(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet_with_payload};
    use pp_sim::types::{CoreId, MemDomain};

    fn vpn(m: &mut pp_sim::machine::Machine) -> VpnEncrypt {
        VpnEncrypt::new(m.allocator(MemDomain(0)), [3u8; 16], 42, CostModel::default())
    }

    #[test]
    fn payload_really_changes_and_is_recoverable() {
        let mut m = machine();
        let mut el = vpn(&mut m);
        let payload = [0x55u8; 64];
        let mut pkt = packet_with_payload(&payload);
        {
            let mut ctx = m.ctx(CoreId(0));
            assert_eq!(el.process(&mut ctx, &mut pkt), Action::Out(0));
        }
        let ct = pkt.payload().unwrap().to_vec();
        assert_ne!(ct, payload.to_vec());
        // Decrypt with the same keystream (counter 0, same nonce/key).
        let aes = Aes128::new([3u8; 16]);
        let ks = aes.ctr_keystream_traced(42, 0, 64, &mut |_, _| {});
        let pt: Vec<u8> = ct.iter().zip(&ks).map(|(c, k)| c ^ k).collect();
        assert_eq!(pt, payload.to_vec());
    }

    #[test]
    fn counter_advances_across_packets() {
        let mut m = machine();
        let mut el = vpn(&mut m);
        let mut p1 = packet_with_payload(&[0u8; 16]);
        let mut p2 = packet_with_payload(&[0u8; 16]);
        {
            let mut ctx = m.ctx(CoreId(0));
            el.process(&mut ctx, &mut p1);
            el.process(&mut ctx, &mut p2);
        }
        assert_ne!(
            p1.payload().unwrap(),
            p2.payload().unwrap(),
            "identical plaintexts must encrypt differently across packets"
        );
    }

    #[test]
    fn charges_160_lookups_per_block() {
        let mut m = machine();
        let mut el = vpn(&mut m);
        let mut pkt = packet_with_payload(&[1u8; 16]); // exactly one block
        {
            let mut ctx = m.ctx(CoreId(0));
            el.process(&mut ctx, &mut pkt);
        }
        let c = m.core(CoreId(0)).counters.total();
        // 160 table lookups + payload read/write lines + header-ish reads.
        assert!(
            c.l1_refs >= 160,
            "expected at least 160 charged lookups, got {}",
            c.l1_refs
        );
    }

    #[test]
    fn tables_stay_private_cache_resident() {
        let mut m = machine();
        let mut el = vpn(&mut m);
        // Warm up with several packets, then check that table lookups are
        // overwhelmingly L1/L2 hits (tables are 5 KB).
        {
            let mut ctx = m.ctx(CoreId(0));
            for _ in 0..10 {
                let mut pkt = packet_with_payload(&[7u8; 128]);
                el.process(&mut ctx, &mut pkt);
            }
        }
        let c = m.core(CoreId(0)).counters.total();
        let private_hits = c.l1_hits + c.l2_hits;
        assert!(
            (private_hits as f64) > 0.9 * c.l1_refs as f64,
            "tables should be private-cache resident: {} hits of {} refs",
            private_hits,
            c.l1_refs
        );
    }

    #[test]
    fn empty_payload_passes_through() {
        let mut m = machine();
        let mut el = vpn(&mut m);
        let mut pkt = packet_with_payload(b"");
        let mut ctx = m.ctx(CoreId(0));
        assert_eq!(el.process(&mut ctx, &mut pkt), Action::Out(0));
        assert_eq!(el.encrypted, 0);
    }
}
