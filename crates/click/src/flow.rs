//! Binding element graphs to simulated cores.
//!
//! [`FlowTask`] is the paper's *parallel* (run-to-completion) configuration:
//! one core receives a packet from its own NIC queue, runs the whole element
//! chain, and transmits — "each core reads from its own receive queue(s) and
//! writes to its own transmit queue(s), which are not shared with other
//! cores".
//!
//! With [`FlowTask::with_batch_size`], one engine turn processes a whole
//! packet *vector* instead: the NIC delivers the burst in one
//! `rx_batch`, the graph runs it via
//! [`run_batch`](crate::graph::ElementGraph::run_batch) (one dispatch +
//! one tag scope per element per batch), and [`FrameworkChurn`] — the
//! model of Click's instruction-stream and metadata footprint — is touched
//! **once per batch**, modelling the I-cache amortization that batched
//! dataplanes measure. The per-batch/per-packet charge split is defined in
//! [`CostModel`]; a batch size of 1 reproduces the scalar path bit for bit.
//!
//! [`SourceStage`] / [`SinkStage`] implement the §2.2 *pipeline*
//! configuration: the chain is split across cores connected by an
//! [`SpscQueue`], with all the cross-core costs that entails. Both stages
//! support burst mode ([`SourceStage::with_batch_size`] /
//! [`SinkStage::with_batch_size`]): the front stage receives a vector in one
//! `rx_batch`, runs it through the front graph with `run_batch`, and hands
//! it off in one [`SpscQueue::push_burst`]; the back stage drains it in one
//! [`SpscQueue::pop_burst`], runs the back graph once per burst, and
//! transmits/recycles through one amortized shared NIC transaction. The
//! head/tail control-line ping-pong is paid once per burst instead of once
//! per packet — the §2.2 handoff cost under vector processing. Burst size 1
//! reproduces the scalar pipeline bit for bit.
//!
//! Every task records per-packet ingress→egress **latency** (simulated
//! cycles, stamped at the receive path and read at completion) into a
//! [`LatencyHistogram`]; grab the shared handle with `latency_handle()`
//! before boxing the task into the engine. Recording is host-side and
//! charge-free, so it never perturbs the measured hierarchy.

use crate::cost::CostModel;
use crate::elements::queue::SpscQueue;
use crate::graph::{BatchOutcome, ElementGraph, GraphOutcome};
use pp_net::gen::traffic::TrafficGen;
use pp_net::packet::Packet;
use pp_net::pool::PacketPool;
use pp_sim::arena::DomainAllocator;
use pp_sim::counters::TagId;
use pp_sim::ctx::ExecCtx;
use pp_sim::engine::{CoreTask, TurnResult};
use pp_sim::fault::{DropStats, TaskControls};
use pp_sim::latency::LatencyHistogram;
use pp_sim::nic::NicQueue;
use pp_sim::types::{Addr, CACHE_LINE};
use std::cell::RefCell;
use std::rc::Rc;

/// Byte the corruption fault flips: Ethernet header (14 B) + the IPv4
/// header-checksum offset (10), i.e. the checksum's high byte. The flip
/// guarantees `verify_checksum` fails, driving the packet down
/// `CheckIpHeader`'s drop path. Applied *after* generation — the traffic
/// generator's frames stay pristine (it asserts against its builders).
const CORRUPT_BYTE: usize = 24;

/// Models the framework's own per-packet memory footprint: Click's
/// instruction stream, element objects, and packet annotations touch many
/// cache lines beyond the applications' data structures. Each packet reads
/// a window of lines that rotates through a region sized like the resident
/// code+metadata set, keeping L1 realistically busy.
#[derive(Debug, Clone)]
pub struct FrameworkChurn {
    region: Addr,
    lines: u64,
    cursor: u64,
    per_packet: u32,
    /// The `framework` tag, interned once (`TagId` protocol).
    tag: TagId,
}

impl FrameworkChurn {
    /// Allocate the churn region in `alloc`'s domain per the cost model.
    pub fn new(alloc: &mut DomainAllocator, cost: &CostModel) -> Self {
        let bytes = cost.framework_region_bytes.max(CACHE_LINE);
        FrameworkChurn {
            region: alloc.alloc_lines(bytes),
            lines: bytes / CACHE_LINE,
            cursor: 0,
            per_packet: cost.framework_lines_per_packet,
            tag: TagId::intern("framework"),
        }
    }

    /// Touch this packet's window of framework lines.
    #[inline]
    pub fn touch(&mut self, ctx: &mut ExecCtx<'_>) {
        ctx.scoped_id(self.tag, |ctx| {
            for _ in 0..self.per_packet {
                ctx.read(self.region + (self.cursor % self.lines) * CACHE_LINE);
                self.cursor += 1;
            }
        });
    }
}

/// A complete run-to-completion flow on one core. See the module docs.
pub struct FlowTask {
    label: Rc<str>,
    gen: TrafficGen,
    nic: Rc<RefCell<NicQueue>>,
    graph: ElementGraph,
    cost: CostModel,
    churn: Option<FrameworkChurn>,
    /// Packets per engine turn: 0 runs the scalar path, n ≥ 1 runs the
    /// batched path with n-packet vectors (n = 1 is charge-identical to
    /// the scalar path but exercises the batched machinery).
    batch_size: usize,
    /// Scratch frame lengths for the batched receive (reused every turn).
    lens: Vec<u64>,
    /// Scratch buffer addresses for the batched receive (reused).
    bufs: Vec<Addr>,
    /// Host-side packet-carcass pool: completed packets return their frame
    /// allocations here and the generator refills them in place, so the
    /// warmed-up flow performs zero per-packet heap allocation (PR 5).
    pool: PacketPool,
    /// Scratch packet vector for the batched turn (reused).
    pkts: Vec<Packet>,
    /// Reusable batch outcome (its vectors retain their allocations).
    outcome: BatchOutcome,
    /// Per-packet ingress→egress simulated cycles (shared handle; see
    /// [`latency_handle`](Self::latency_handle)).
    latency: Rc<RefCell<LatencyHistogram>>,
    /// Loss ledger (shared handle; see [`drop_handle`](Self::drop_handle)).
    /// Host-side and charge-free, like the latency histogram.
    drops: Rc<RefCell<DropStats>>,
    /// Live fault/degradation knobs (shared handle; see
    /// [`controls_handle`](Self::controls_handle)). All-zero = no-op.
    controls: Rc<TaskControls>,
    /// Pacing state: simulated time up to which arrival credit has been
    /// accrued (`u64::MAX` = pacing inactive, accrual restarts on enable).
    pace_last: u64,
    /// Pacing state: arrivals accrued but not yet admitted (capped at the
    /// NIC ring depth; the excess overflows at the wire).
    pace_credit: u64,
    /// Deterministic per-mille accumulator for the shed policy.
    shed_acc: u32,
    /// Deterministic per-mille accumulator for the corruption fault.
    corrupt_acc: u32,
    /// Packets fully processed (forwarded or consciously dropped).
    pub processed: u64,
    /// Packets lost to buffer-pool exhaustion (should stay zero in the
    /// parallel configuration). In batched mode a partial batch counts one
    /// failure per undelivered packet.
    pub rx_failures: u64,
}

impl FlowTask {
    /// Assemble a flow from its traffic source, NIC queue, and graph.
    pub fn new(
        label: impl Into<String>,
        gen: TrafficGen,
        nic: Rc<RefCell<NicQueue>>,
        graph: ElementGraph,
        cost: CostModel,
    ) -> Self {
        FlowTask {
            label: Rc::from(label.into()),
            gen,
            nic,
            graph,
            cost,
            churn: None,
            batch_size: 0,
            lens: Vec::new(),
            bufs: Vec::new(),
            pool: PacketPool::new(),
            pkts: Vec::new(),
            outcome: BatchOutcome::default(),
            latency: Rc::new(RefCell::new(LatencyHistogram::new())),
            drops: Rc::new(RefCell::new(DropStats::default())),
            controls: TaskControls::new_handle(),
            pace_last: u64::MAX,
            pace_credit: 0,
            shed_acc: 0,
            corrupt_acc: 0,
            processed: 0,
            rx_failures: 0,
        }
    }

    /// Carcasses recycled through the host-side packet pool so far
    /// (diagnostic: a warmed-up flow should reuse nearly every take).
    pub fn pool_reuses(&self) -> u64 {
        self.pool.reuses
    }

    /// Shared handle to the per-packet latency histogram (clone it before
    /// boxing the task into the engine; reset it after warmup).
    pub fn latency_handle(&self) -> Rc<RefCell<LatencyHistogram>> {
        self.latency.clone()
    }

    /// Shared handle to the loss ledger (same protocol as
    /// [`latency_handle`](Self::latency_handle): clone before boxing,
    /// reset after warmup).
    pub fn drop_handle(&self) -> Rc<RefCell<DropStats>> {
        self.drops.clone()
    }

    /// Shared handle to the live fault/degradation knobs (clone before
    /// boxing; all knobs idle at zero, in which state the task is
    /// bit-for-bit identical to one without the handle).
    pub fn controls_handle(&self) -> Rc<TaskControls> {
        self.controls.clone()
    }

    /// Shared handle to the NIC queue (clone before boxing). Fault drivers
    /// use it to seize/release buffers
    /// ([`NicQueue::seize_buffers`](pp_sim::nic::NicQueue::seize_buffers))
    /// for pool-pressure scenarios.
    pub fn nic_handle(&self) -> Rc<RefCell<NicQueue>> {
        self.nic.clone()
    }

    /// Accrue offered-load pacing credit up to `now` and admit at most
    /// `want` arrivals. Credit beyond the NIC ring depth overflows at the
    /// wire and is counted ([`DropStats::wire_overflow`]). Host-side only.
    fn pace_admit(&mut self, now: u64, want: u64) -> u64 {
        let pace = self.controls.pace_cycles.get();
        if pace == 0 {
            self.pace_last = u64::MAX;
            self.pace_credit = 0;
            return want;
        }
        if self.pace_last == u64::MAX {
            // Pacing just engaged: start accrual here, with the packet
            // that is arriving now as the initial credit.
            self.pace_last = now;
            self.pace_credit = 1;
        } else {
            let elapsed = now.saturating_sub(self.pace_last);
            let accrued = elapsed / pace;
            self.pace_last += accrued * pace;
            self.pace_credit += accrued;
        }
        let depth = self.nic.borrow().ring_depth();
        if self.pace_credit > depth {
            let overflow = self.pace_credit - depth;
            self.pace_credit = depth;
            let mut d = self.drops.borrow_mut();
            d.offered += overflow;
            d.wire_overflow += overflow;
        }
        let admit = self.pace_credit.min(want);
        self.pace_credit -= admit;
        admit
    }

    /// Attach framework churn (see [`FrameworkChurn`]). The standard
    /// builders in [`crate::pipelines`] always do this; tests that want a
    /// minimal flow can skip it.
    pub fn with_churn(mut self, churn: FrameworkChurn) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Switch to batched execution with `batch` packets per engine turn
    /// (`batch` ≥ 1). See the module docs for the batched cost model.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.set_batch_size(batch);
        self
    }

    /// Re-size the batch at run time (`batch` ≥ 1). The adaptive batch
    /// controller uses this to move a live flow between measurement windows
    /// without rebuilding its graph or tables: the next engine turn simply
    /// receives a different-sized vector. Takes effect between turns — a
    /// turn in flight always completes at the size it started with.
    pub fn set_batch_size(&mut self, batch: usize) {
        self.batch_size = batch.max(1);
    }

    /// Packets per engine turn (0 = scalar path).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The element graph (for inspection / run-time reconfiguration).
    pub fn graph(&self) -> &ElementGraph {
        &self.graph
    }

    /// Mutable access to the element graph.
    pub fn graph_mut(&mut self) -> &mut ElementGraph {
        &mut self.graph
    }

    /// One scalar turn: receive, run the chain, recycle on return.
    #[inline]
    fn run_turn_scalar(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        // Ingress = the start of the turn, when the wire delivered the
        // packet: residence time covers the packet's own processing.
        let ingress = ctx.now();
        // Fault/degradation hooks: all host-side branches, dead when every
        // knob is zero (the default), so the unfaulted path is bit-for-bit
        // what it was before the hooks existed.
        let mut corrupt_pm = 0u32;
        if self.controls.is_active() {
            if self.pace_admit(ingress, 1) == 0 {
                // Paced wire is quiet: idle this turn (the engine charges
                // the poll cost, advancing time so credit accrues).
                return TurnResult::Idle;
            }
            let stall = self.controls.stall_cycles.get();
            if stall > 0 {
                // Frequency derate: the core loses this many cycles of
                // every turn to the (modeled) slower clock.
                ctx.compute(stall, 0);
            }
            let shed_pm = u32::from(self.controls.shed_per_mille.get());
            if shed_pm > 0 {
                self.shed_acc += shed_pm;
                if self.shed_acc >= 1000 {
                    self.shed_acc -= 1000;
                    let mut d = self.drops.borrow_mut();
                    d.offered += 1;
                    d.shed += 1;
                    drop(d);
                    // Shedding is cheap but not free: the drop decision
                    // costs the per-packet overhead (and advances the
                    // clock, as Progress requires).
                    CostModel::charge(ctx, self.cost.per_packet_overhead);
                    return TurnResult::Progress;
                }
            }
            corrupt_pm = u32::from(self.controls.corrupt_per_mille.get());
        } else if self.pace_last != u64::MAX {
            // Pacing just disengaged: forget stale accrual state.
            self.pace_last = u64::MAX;
            self.pace_credit = 0;
        }
        // The wire always has a packet waiting (the paper's generators run
        // at line rate); generation itself is host-side and free — and
        // refills a recycled carcass, so it allocates nothing.
        let mut pkt = self.pool.take();
        self.gen.next_packet_into(&mut pkt);
        if corrupt_pm > 0 {
            self.corrupt_acc += corrupt_pm;
            if self.corrupt_acc >= 1000 {
                self.corrupt_acc -= 1000;
                pkt.data[CORRUPT_BYTE] ^= 0xFF;
            }
        }
        CostModel::charge(ctx, self.cost.per_packet_overhead);
        if let Some(churn) = &mut self.churn {
            churn.touch(ctx);
        }
        let buf = self.nic.borrow_mut().rx(ctx, pkt.len() as u64);
        let Some(buf) = buf else {
            self.rx_failures += 1;
            let mut d = self.drops.borrow_mut();
            d.offered += 1;
            d.nic_rx_exhausted += 1;
            self.pool.put(pkt);
            return TurnResult::Progress; // time advanced by the failed rx
        };
        pkt.buf_addr = buf;
        let drops_before = self.graph.drops;
        match self.graph.run(ctx, pkt) {
            GraphOutcome::Consumed => {
                if let Some(p) = self.graph.take_consumed() {
                    self.pool.put(p);
                }
            }
            GraphOutcome::Returned(p) => {
                if p.buf_addr != 0 {
                    self.nic.borrow_mut().recycle(ctx, p.buf_addr);
                }
                self.pool.put(p);
            }
        }
        {
            let mut d = self.drops.borrow_mut();
            d.offered += 1;
            d.element_dropped += self.graph.drops - drops_before;
        }
        self.processed += 1;
        ctx.retire_packet();
        self.latency.borrow_mut().record(ctx.now() - ingress);
        TurnResult::Progress
    }

    /// One batched turn: receive a vector in one `rx_batch`, run the graph
    /// once per element per batch, recycle all returned buffers in one
    /// `recycle_batch`. The NIC is borrowed twice per *batch* (receive and
    /// recycle) instead of twice per packet, and every host container —
    /// the packet vector, the outcome, and the packet carcasses themselves
    /// — is recycled across turns (zero steady-state allocation).
    fn run_turn_batched(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        let n = self.batch_size;
        // The whole vector arrived by the start of the turn; see the
        // scalar path for the ingress convention.
        let ingress = ctx.now();
        // Fault/degradation hooks — host-side, dead at zero (see the
        // scalar path). Generation below is also host-side and charge-free,
        // so hoisting it above the charges changes no simulated state: the
        // simulated sequence (fixed overhead, per-packet overhead, churn,
        // rx_batch) is bit-for-bit the unfaulted one when the vector is
        // whole.
        let mut admitted = n as u64;
        let mut corrupt_pm = 0u32;
        let mut shed_pm = 0u32;
        if self.controls.is_active() {
            admitted = self.pace_admit(ingress, n as u64);
            if admitted == 0 {
                return TurnResult::Idle; // paced wire is quiet this turn
            }
            let stall = self.controls.stall_cycles.get();
            if stall > 0 {
                ctx.compute(stall, 0);
            }
            shed_pm = u32::from(self.controls.shed_per_mille.get());
            corrupt_pm = u32::from(self.controls.corrupt_per_mille.get());
        } else if self.pace_last != u64::MAX {
            self.pace_last = u64::MAX;
            self.pace_credit = 0;
        }
        self.pkts.clear();
        self.lens.clear();
        let mut shed_count = 0u64;
        for _ in 0..admitted {
            if shed_pm > 0 {
                self.shed_acc += shed_pm;
                if self.shed_acc >= 1000 {
                    self.shed_acc -= 1000;
                    shed_count += 1;
                    continue;
                }
            }
            let mut pkt = self.pool.take();
            self.gen.next_packet_into(&mut pkt);
            if corrupt_pm > 0 {
                self.corrupt_acc += corrupt_pm;
                if self.corrupt_acc >= 1000 {
                    self.corrupt_acc -= 1000;
                    pkt.data[CORRUPT_BYTE] ^= 0xFF;
                }
            }
            self.lens.push(pkt.len() as u64);
            self.pkts.push(pkt);
        }
        if shed_count > 0 {
            let mut d = self.drops.borrow_mut();
            d.offered += shed_count;
            d.shed += shed_count;
        }
        let generated = self.pkts.len();
        if generated == 0 {
            // The whole admitted burst was shed: the drop decisions cost
            // the fixed turn overhead (and advance the clock).
            CostModel::charge(ctx, self.cost.batch_fixed_overhead);
            return TurnResult::Progress;
        }
        // Per-batch fixed overhead plus the per-packet residue; the split
        // sums to the scalar per-packet overhead, so n = 1 charges exactly
        // the scalar amount (see CostModel).
        CostModel::charge(ctx, self.cost.batch_fixed_overhead);
        CostModel::charge_n(ctx, self.cost.batch_per_packet_overhead, generated as u64);
        if let Some(churn) = &mut self.churn {
            // Once per batch: the framework's code + metadata footprint is
            // re-referenced across the vector (I-cache amortization).
            churn.touch(ctx);
        }
        self.bufs.clear();
        let delivered = self.nic.borrow_mut().rx_batch(ctx, &self.lens, &mut self.bufs);
        self.rx_failures += (generated - delivered) as u64;
        {
            let mut d = self.drops.borrow_mut();
            d.offered += generated as u64;
            d.nic_rx_exhausted += (generated - delivered) as u64;
        }
        if delivered == 0 {
            self.pool.put_all(&mut self.pkts);
            return TurnResult::Progress; // time advanced by the failed rx
        }
        // Partial batch: the undelivered tail is lost (carcasses recycle).
        while self.pkts.len() > delivered {
            let p = self.pkts.pop().expect("len checked");
            self.pool.put(p);
        }
        for (pkt, &buf) in self.pkts.iter_mut().zip(self.bufs.iter()) {
            pkt.buf_addr = buf;
        }
        self.graph.run_batch_into(ctx, &mut self.pkts, &mut self.outcome);
        if !self.outcome.dropped.is_empty() {
            self.drops.borrow_mut().element_dropped += self.outcome.dropped.len() as u64;
        }
        self.bufs.clear();
        self.bufs.extend(
            self.outcome
                .returned
                .iter()
                .chain(self.outcome.dropped.iter())
                .map(|p| p.buf_addr)
                .filter(|&a| a != 0),
        );
        if !self.bufs.is_empty() {
            self.nic.borrow_mut().recycle_batch(ctx, &self.bufs);
        }
        // Every completed packet's carcass goes back to the pool.
        self.pool.put_all(&mut self.outcome.returned);
        self.pool.put_all(&mut self.outcome.dropped);
        self.pool.put_all(&mut self.outcome.carcasses);
        self.processed += delivered as u64;
        ctx.retire_packets(delivered as u64);
        // Every packet of the burst was received together and completes
        // together: the whole vector shares one residence time — the
        // latency cost of batching that the histogram makes visible.
        let turn_latency = ctx.now() - ingress;
        let mut lat = self.latency.borrow_mut();
        for _ in 0..delivered {
            lat.record(turn_latency);
        }
        TurnResult::Progress
    }
}

impl CoreTask for FlowTask {
    fn run_turn(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        if self.batch_size >= 1 {
            // The ShrinkBatch rung of the degradation ladder re-sizes the
            // live task through the shared control block (the task is boxed
            // inside the engine, so `set_batch_size` is out of reach).
            let over = self.controls.batch_override.get();
            if over != 0 && over != self.batch_size {
                self.set_batch_size(over);
            }
            self.run_turn_batched(ctx)
        } else {
            self.run_turn_scalar(ctx)
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn label_shared(&self) -> Rc<str> {
        self.label.clone()
    }

    /// Migration drain: pacing credit is arrivals the wire already
    /// presented but the task has not admitted — packets in flight at the
    /// old placement. They cannot travel (the NIC ring and its buffers
    /// stay with the old core's memory domain), so the supervisor's drain
    /// protocol forfeits them as counted `drained` loss and restarts
    /// accrual fresh on the new core. A line-rate (unpaced) task has no
    /// in-flight credit and drains nothing.
    fn on_migrate(&mut self) {
        if self.pace_credit > 0 {
            let mut d = self.drops.borrow_mut();
            d.offered += self.pace_credit;
            d.drained += self.pace_credit;
        }
        self.pace_credit = 0;
        self.pace_last = u64::MAX;
    }
}

/// Pipeline stage 1: receive + the front of the chain, then enqueue.
pub struct SourceStage {
    label: Rc<str>,
    gen: TrafficGen,
    nic: Rc<RefCell<NicQueue>>,
    /// Front sub-chain (may be empty: pure receive stage).
    graph: ElementGraph,
    out: Rc<RefCell<SpscQueue>>,
    cost: CostModel,
    churn: Option<FrameworkChurn>,
    /// Packets per engine turn: 0 = scalar handoff, n ≥ 1 = burst handoff
    /// (a partial burst is sent when the queue has fewer free slots).
    batch_size: usize,
    /// Scratch frame lengths for the batched receive (reused every turn).
    lens: Vec<u64>,
    /// Scratch buffer addresses for the batched receive (reused).
    bufs: Vec<Addr>,
    /// Host-side carcass pool. Shared with the paired [`SinkStage`] (see
    /// [`pool_handle`](Self::pool_handle)): the sink returns completed
    /// packets' frame allocations here and the generator refills them,
    /// mirroring §2.2's cross-core buffer recycling on the host side.
    pool: Rc<RefCell<PacketPool>>,
    /// Scratch packet vector for the burst turn (reused).
    pkts: Vec<Packet>,
    /// Reusable batch outcome for the front chain.
    outcome: BatchOutcome,
    /// Loss ledger for the whole pipeline (share it with the paired
    /// [`SinkStage::share_drops`]; see [`drop_handle`](Self::drop_handle)).
    drops: Rc<RefCell<DropStats>>,
    /// Packets handed to the next stage.
    pub forwarded: u64,
    /// Turns skipped because the queue was full.
    pub stalls: u64,
    /// Packets lost to buffer-pool exhaustion at this stage's NIC (counted
    /// per packet; the drop is also ledgered in
    /// [`DropStats::nic_rx_exhausted`] — it is never silent).
    pub rx_failures: u64,
}

impl SourceStage {
    /// Assemble the front stage.
    pub fn new(
        label: impl Into<String>,
        gen: TrafficGen,
        nic: Rc<RefCell<NicQueue>>,
        graph: ElementGraph,
        out: Rc<RefCell<SpscQueue>>,
        cost: CostModel,
    ) -> Self {
        SourceStage {
            label: Rc::from(label.into()),
            gen,
            nic,
            graph,
            out,
            cost,
            churn: None,
            batch_size: 0,
            lens: Vec::new(),
            bufs: Vec::new(),
            pool: Rc::new(RefCell::new(PacketPool::new())),
            pkts: Vec::new(),
            outcome: BatchOutcome::default(),
            drops: Rc::new(RefCell::new(DropStats::default())),
            forwarded: 0,
            stalls: 0,
            rx_failures: 0,
        }
    }

    /// Shared handle to the pipeline's loss ledger (clone before boxing,
    /// reset after warmup; hand it to [`SinkStage::share_drops`] so both
    /// stages write one ledger).
    pub fn drop_handle(&self) -> Rc<RefCell<DropStats>> {
        self.drops.clone()
    }

    /// Attach framework churn to this stage.
    pub fn with_churn(mut self, churn: FrameworkChurn) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Shared handle to this stage's host-side carcass pool; hand it to
    /// the paired [`SinkStage::share_pool`] so completed packets' frame
    /// allocations flow back to the generator (the standard builders in
    /// [`crate::pipelines`] do this).
    pub fn pool_handle(&self) -> Rc<RefCell<PacketPool>> {
        self.pool.clone()
    }

    /// Switch to burst handoff with up to `batch` packets per engine turn
    /// (`batch` ≥ 1; 1 is charge-identical to the scalar stage).
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.set_batch_size(batch);
        self
    }

    /// Re-size the handoff burst at run time (`batch` ≥ 1); effective from
    /// the next turn. Pair with [`SinkStage::set_batch_size`] — the stages
    /// tolerate differing sizes (the queue carries any mix of bursts), but
    /// the handoff amortization follows the smaller of the two.
    pub fn set_batch_size(&mut self, batch: usize) {
        self.batch_size = batch.max(1);
    }

    /// One scalar turn: receive, run the front chain, enqueue.
    fn run_turn_scalar(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        // Ingress = the start of the turn. The engine's min-clock scheduler
        // guarantees this is ≤ every other core's clock, so the sink's
        // egress reading is always causally after it.
        let ingress = ctx.now();
        let mut pkt = self.pool.borrow_mut().take();
        self.gen.next_packet_into(&mut pkt);
        CostModel::charge(ctx, self.cost.per_packet_overhead);
        if let Some(churn) = &mut self.churn {
            churn.touch(ctx);
        }
        let buf = {
            let mut nic = self.nic.borrow_mut();
            nic.rx(ctx, pkt.len() as u64)
        };
        let Some(buf) = buf else {
            // The silent-drop bug, fixed: pool exhaustion is a counted
            // loss, surfaced both on the stage and in the shared ledger.
            self.rx_failures += 1;
            let mut d = self.drops.borrow_mut();
            d.offered += 1;
            d.nic_rx_exhausted += 1;
            self.pool.borrow_mut().put(pkt);
            return TurnResult::Progress;
        };
        self.drops.borrow_mut().offered += 1;
        pkt.buf_addr = buf;
        pkt.ingress_cycle = ingress;
        let drops_before = self.graph.drops;
        let outcome = if self.graph.is_empty() {
            GraphOutcome::Returned(pkt)
        } else {
            self.graph.run(ctx, pkt)
        };
        match outcome {
            GraphOutcome::Consumed => {
                if let Some(p) = self.graph.take_consumed() {
                    self.pool.borrow_mut().put(p);
                }
                self.drops.borrow_mut().element_dropped +=
                    self.graph.drops - drops_before;
            }
            GraphOutcome::Returned(p) => {
                // A front-chain drop ends the packet here: recycle locally
                // instead of forwarding it downstream.
                if self.graph.drops > drops_before {
                    self.drops.borrow_mut().element_dropped +=
                        self.graph.drops - drops_before;
                    if p.buf_addr != 0 {
                        self.nic.borrow_mut().recycle(ctx, p.buf_addr);
                    }
                    self.pool.borrow_mut().put(p);
                    return TurnResult::Progress;
                }
                let mut q = self.out.borrow_mut();
                if let Err(rejected) = q.push(ctx, p) {
                    // Lost the race against fullness; recycle locally —
                    // a counted queue-full drop, not a silent bounce.
                    self.drops.borrow_mut().queue_full += 1;
                    if rejected.buf_addr != 0 {
                        self.nic.borrow_mut().recycle(ctx, rejected.buf_addr);
                    }
                    self.pool.borrow_mut().put(rejected);
                    self.stalls += 1;
                    return TurnResult::Progress;
                }
                self.forwarded += 1;
            }
        }
        TurnResult::Progress
    }

    /// One burst turn: receive up to `batch_size` packets (backpressure:
    /// never more than the queue's free slots) in one `rx_batch`, run the
    /// front graph once per burst, hand the vector off in one `push_burst`.
    fn run_turn_batched(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        // Partial-burst backpressure: size the burst to the room downstream
        // (host-side check, like the scalar stage's is_full probe).
        let n = self.out.borrow().free_slots().min(self.batch_size);
        if n == 0 {
            self.stalls += 1;
            return TurnResult::Idle;
        }
        // Ingress = the start of the turn (see the scalar path).
        let ingress = ctx.now();
        // Per-burst fixed overhead plus the per-packet residue (the split
        // sums to the scalar per-packet overhead, so a 1-packet burst
        // charges exactly the scalar amount).
        CostModel::charge(ctx, self.cost.batch_fixed_overhead);
        CostModel::charge_n(ctx, self.cost.batch_per_packet_overhead, n as u64);
        if let Some(churn) = &mut self.churn {
            churn.touch(ctx);
        }
        self.pkts.clear();
        self.lens.clear();
        {
            let mut pool = self.pool.borrow_mut();
            for _ in 0..n {
                let mut pkt = pool.take();
                self.gen.next_packet_into(&mut pkt);
                self.lens.push(pkt.len() as u64);
                self.pkts.push(pkt);
            }
        }
        self.bufs.clear();
        let delivered = self.nic.borrow_mut().rx_batch(ctx, &self.lens, &mut self.bufs);
        self.rx_failures += (n - delivered) as u64;
        {
            let mut d = self.drops.borrow_mut();
            d.offered += n as u64;
            d.nic_rx_exhausted += (n - delivered) as u64;
        }
        if delivered == 0 {
            self.pool.borrow_mut().put_all(&mut self.pkts);
            return TurnResult::Progress; // time advanced by the failed rx
        }
        // Partial batch: the pool-starved tail is lost (carcasses recycle).
        {
            let mut pool = self.pool.borrow_mut();
            while self.pkts.len() > delivered {
                let p = self.pkts.pop().expect("len checked");
                pool.put(p);
            }
        }
        for (pkt, &buf) in self.pkts.iter_mut().zip(self.bufs.iter()) {
            pkt.buf_addr = buf;
            pkt.ingress_cycle = ingress;
        }
        if self.graph.is_empty() {
            self.outcome.reset();
            self.outcome.returned.append(&mut self.pkts);
        } else {
            self.graph.run_batch_into(ctx, &mut self.pkts, &mut self.outcome);
        }
        if !self.outcome.dropped.is_empty() {
            self.drops.borrow_mut().element_dropped += self.outcome.dropped.len() as u64;
        }
        let to_queue = &mut self.outcome.returned;
        let pushed = self.out.borrow_mut().push_burst(ctx, to_queue);
        self.forwarded += pushed as u64;
        if !to_queue.is_empty() {
            // Queue filled under us (cannot happen with the room check
            // above, but handled for robustness): counted queue-full drops.
            self.drops.borrow_mut().queue_full += to_queue.len() as u64;
            self.stalls += 1;
        }
        // Recycle locally: front-chain drops plus any burst-rejected tail.
        self.bufs.clear();
        self.bufs.extend(
            self.outcome
                .dropped
                .iter()
                .chain(self.outcome.returned.iter())
                .map(|p| p.buf_addr)
                .filter(|&a| a != 0),
        );
        if !self.bufs.is_empty() {
            self.nic.borrow_mut().recycle_batch(ctx, &self.bufs);
        }
        // Locally-ended packets return their carcasses to the pool (the
        // forwarded ones come back via the sink's shared handle).
        let mut pool = self.pool.borrow_mut();
        pool.put_all(&mut self.outcome.dropped);
        pool.put_all(&mut self.outcome.returned);
        pool.put_all(&mut self.outcome.carcasses);
        TurnResult::Progress
    }
}

impl CoreTask for SourceStage {
    fn run_turn(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        if self.batch_size >= 1 {
            self.run_turn_batched(ctx)
        } else {
            if self.out.borrow().is_full() {
                self.stalls += 1;
                return TurnResult::Idle;
            }
            self.run_turn_scalar(ctx)
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn label_shared(&self) -> Rc<str> {
        self.label.clone()
    }
}

/// Pipeline stage 2: dequeue, run the back of the chain, transmit (with
/// cross-core buffer recycling into the source stage's pool).
pub struct SinkStage {
    label: Rc<str>,
    input: Rc<RefCell<SpscQueue>>,
    graph: ElementGraph,
    /// The *source* core's NIC queue: drops recycle into it cross-core.
    nic: Rc<RefCell<NicQueue>>,
    churn: Option<FrameworkChurn>,
    /// Packets per engine turn: 0 = scalar handoff, n ≥ 1 = burst handoff.
    batch_size: usize,
    /// Staging vector for the burst dequeue (reused every turn).
    scratch: Vec<Packet>,
    /// Scratch ingress stamps for latency recording (reused every turn).
    ingress: Vec<u64>,
    /// Scratch buffer addresses for the batched recycle (reused).
    bufs: Vec<Addr>,
    /// Host-side carcass pool; [`share_pool`](Self::share_pool) points it
    /// at the paired [`SourceStage`]'s pool so completed packets' frame
    /// allocations flow back to the generator.
    pool: Rc<RefCell<PacketPool>>,
    /// Reusable batch outcome for the back chain.
    outcome: BatchOutcome,
    /// Per-packet ingress→egress simulated cycles across the whole
    /// pipeline (stamped by the source stage at receive).
    latency: Rc<RefCell<LatencyHistogram>>,
    /// Loss ledger; [`share_drops`](Self::share_drops) points it at the
    /// paired [`SourceStage`]'s so the pipeline keeps one ledger.
    drops: Rc<RefCell<DropStats>>,
    /// Packets completed at this stage.
    pub processed: u64,
}

impl SinkStage {
    /// Assemble the back stage.
    pub fn new(
        label: impl Into<String>,
        input: Rc<RefCell<SpscQueue>>,
        graph: ElementGraph,
        nic: Rc<RefCell<NicQueue>>,
    ) -> Self {
        SinkStage {
            label: Rc::from(label.into()),
            input,
            graph,
            nic,
            churn: None,
            batch_size: 0,
            scratch: Vec::new(),
            ingress: Vec::new(),
            bufs: Vec::new(),
            pool: Rc::new(RefCell::new(PacketPool::new())),
            outcome: BatchOutcome::default(),
            latency: Rc::new(RefCell::new(LatencyHistogram::new())),
            drops: Rc::new(RefCell::new(DropStats::default())),
            processed: 0,
        }
    }

    /// Attach framework churn to this stage.
    pub fn with_churn(mut self, churn: FrameworkChurn) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Recycle completed packets' carcasses into `pool` — normally the
    /// paired [`SourceStage::pool_handle`], closing the host-side carcass
    /// loop across the pipeline the way the simulated §2.2 recycling
    /// closes the NIC buffer loop (the standard builders in
    /// [`crate::pipelines`] wire this).
    pub fn share_pool(&mut self, pool: Rc<RefCell<PacketPool>>) {
        self.pool = pool;
    }

    /// Write this stage's losses into `drops` — normally the paired
    /// [`SourceStage::drop_handle`], so the whole pipeline keeps one
    /// ledger (the standard builders in [`crate::pipelines`] wire this).
    pub fn share_drops(&mut self, drops: Rc<RefCell<DropStats>>) {
        self.drops = drops;
    }

    /// Switch to burst handoff, draining up to `batch` packets per engine
    /// turn (`batch` ≥ 1; 1 is charge-identical to the scalar stage).
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.set_batch_size(batch);
        self
    }

    /// Re-size the drain burst at run time (`batch` ≥ 1); effective from
    /// the next turn. See [`SourceStage::set_batch_size`].
    pub fn set_batch_size(&mut self, batch: usize) {
        self.batch_size = batch.max(1);
    }

    /// Shared handle to the pipeline's ingress→egress latency histogram
    /// (clone it before boxing the task into the engine; reset it after
    /// warmup).
    pub fn latency_handle(&self) -> Rc<RefCell<LatencyHistogram>> {
        self.latency.clone()
    }

    /// Record completion latencies for a set of ingress stamps (host-side,
    /// charge-free).
    fn record_latencies(&self, now: u64, ingress: &[u64]) {
        let mut lat = self.latency.borrow_mut();
        for &t in ingress {
            if t != 0 && t <= now {
                lat.record(now - t);
            }
        }
    }

    /// One scalar turn: poll, dequeue one packet, run the back chain.
    fn run_turn_scalar(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        let pkt = {
            let mut q = self.input.borrow_mut();
            if !q.poll(ctx) {
                return TurnResult::Idle;
            }
            q.pop(ctx)
        };
        let Some(pkt) = pkt else { return TurnResult::Idle };
        if let Some(churn) = &mut self.churn {
            churn.touch(ctx);
        }
        // Pull the packet's header line from the producing core (it wrote
        // or at least read it there; a modified line costs a transfer).
        if pkt.buf_addr != 0 {
            ctx.shared_read_struct(pkt.buf_addr, 64);
        }
        let ingress = pkt.ingress_cycle;
        let drops_before = self.graph.drops;
        match self.graph.run(ctx, pkt) {
            GraphOutcome::Consumed => {
                if let Some(p) = self.graph.take_consumed() {
                    self.pool.borrow_mut().put(p);
                }
            }
            GraphOutcome::Returned(p) => {
                if p.buf_addr != 0 {
                    // Cross-core recycle into the source core's pool.
                    self.nic.borrow_mut().recycle_shared(ctx, p.buf_addr);
                }
                self.pool.borrow_mut().put(p);
            }
        }
        if self.graph.drops > drops_before {
            self.drops.borrow_mut().element_dropped += self.graph.drops - drops_before;
        }
        self.processed += 1;
        ctx.retire_packet();
        self.record_latencies(ctx.now(), &[ingress]);
        TurnResult::Progress
    }

    /// One burst turn: poll, drain up to `batch_size` packets in one
    /// `pop_burst`, run the back graph once per burst, recycle the returned
    /// buffers in one cross-core batch transaction.
    fn run_turn_batched(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        {
            let mut q = self.input.borrow_mut();
            if !q.poll(ctx) {
                return TurnResult::Idle;
            }
            self.scratch.clear();
            q.pop_burst(ctx, self.batch_size, &mut self.scratch);
        }
        if self.scratch.is_empty() {
            return TurnResult::Idle;
        }
        if let Some(churn) = &mut self.churn {
            // Once per burst: I-cache/metadata amortization.
            churn.touch(ctx);
        }
        // Header pulls stay per packet — each header line is distinct
        // cross-core payload, unlike the amortized control lines.
        for pkt in &self.scratch {
            if pkt.buf_addr != 0 {
                ctx.shared_read_struct(pkt.buf_addr, 64);
            }
        }
        self.ingress.clear();
        self.ingress.extend(self.scratch.iter().map(|p| p.ingress_cycle));
        let n = self.scratch.len() as u64;
        self.graph.run_batch_into(ctx, &mut self.scratch, &mut self.outcome);
        if !self.outcome.dropped.is_empty() {
            self.drops.borrow_mut().element_dropped += self.outcome.dropped.len() as u64;
        }
        self.bufs.clear();
        self.bufs.extend(
            self.outcome
                .returned
                .iter()
                .chain(self.outcome.dropped.iter())
                .map(|p| p.buf_addr)
                .filter(|&a| a != 0),
        );
        if !self.bufs.is_empty() {
            // Cross-core recycle into the source core's pool, one
            // free-list ping-pong per burst.
            self.nic.borrow_mut().recycle_shared_batch(ctx, &self.bufs);
        }
        // Carcasses flow back to the source stage's generator (host-side
        // mirror of the cross-core buffer recycle above).
        {
            let mut pool = self.pool.borrow_mut();
            pool.put_all(&mut self.outcome.returned);
            pool.put_all(&mut self.outcome.dropped);
            pool.put_all(&mut self.outcome.carcasses);
        }
        self.processed += n;
        ctx.retire_packets(n);
        self.record_latencies(ctx.now(), &self.ingress);
        TurnResult::Progress
    }
}

impl CoreTask for SinkStage {
    fn run_turn(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        if self.batch_size >= 1 {
            self.run_turn_batched(ctx)
        } else {
            self.run_turn_scalar(ctx)
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn label_shared(&self) -> Rc<str> {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::elements::basic::{CheckIpHeader, Counter, ToDevice};
    use pp_net::gen::traffic::{TrafficGen, TrafficSpec};
    use pp_sim::config::MachineConfig;
    use pp_sim::engine::Engine;
    use pp_sim::machine::Machine;
    use pp_sim::types::{CoreId, MemDomain};

    fn simple_flow(m: &mut Machine, core_seed: u64) -> FlowTask {
        let cost = CostModel::default();
        let nic = Rc::new(RefCell::new(NicQueue::new(
            m.allocator(MemDomain(0)),
            256,
            64,
            2048,
        )));
        let mut g = ElementGraph::new(cost);
        let a = g.add(Box::new(CheckIpHeader::new(cost)));
        let b = g.add(Box::new(Counter::default()));
        let c = g.add(Box::new(ToDevice::new(nic.clone(), false)));
        g.chain(&[a, b, c]);
        FlowTask::new(
            "test-flow",
            TrafficGen::new(TrafficSpec::random_dst(64, core_seed)),
            nic,
            g,
            cost,
        )
    }

    #[test]
    fn flow_processes_packets_end_to_end() {
        let mut m = Machine::new(MachineConfig::westmere());
        let flow = simple_flow(&mut m, 1);
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(flow));
        let meas = e.measure(100_000, 2_800_000); // 1 ms
        let cm = meas.core(CoreId(0)).unwrap();
        assert!(cm.metrics.pps > 100_000.0, "pps = {}", cm.metrics.pps);
        assert_eq!(&*cm.label, "test-flow");
        // No buffer leaks: pool cycles cleanly.
        assert!(cm.counts.total.packets > 0);
    }

    #[test]
    fn churn_rotates_through_its_region() {
        let mut m = Machine::new(MachineConfig::westmere());
        let cost = CostModel { framework_region_bytes: 4 * 64, framework_lines_per_packet: 3, ..CostModel::default() };
        let mut churn = FrameworkChurn::new(m.allocator(MemDomain(0)), &cost);
        let mut ctx = m.ctx(CoreId(0));
        // 4-line region, 3 lines/packet: after two packets the cursor has
        // wrapped and the region holds, so all reads hit a 4-line footprint.
        churn.touch(&mut ctx);
        churn.touch(&mut ctx);
        let c = m.core(CoreId(0)).counters.tag("framework").unwrap();
        assert_eq!(c.l1_refs, 6);
        // Only 4 distinct lines were ever touched: at most 4 L3 refs.
        assert!(c.l3_refs <= 4, "region should wrap, got {} L3 refs", c.l3_refs);
    }

    #[test]
    fn source_stage_stalls_when_nothing_drains() {
        // A source with a large queue but a tiny buffer pool: once every
        // buffer is parked in the queue, rx fails and forwarding stops.
        let mut m = Machine::new(MachineConfig::westmere());
        let cost = CostModel::default();
        let nic = Rc::new(RefCell::new(NicQueue::new(
            m.allocator(MemDomain(0)),
            64,
            8, // only 8 buffers
            2048,
        )));
        let q = Rc::new(RefCell::new(SpscQueue::new(
            m.allocator(MemDomain(0)),
            128,
            cost,
        )));
        let src = SourceStage::new(
            "front",
            TrafficGen::new(TrafficSpec::random_dst(64, 3)),
            nic.clone(),
            ElementGraph::new(cost),
            q.clone(),
            cost,
        );
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(src));
        e.run_until(2_000_000);
        assert!(
            q.borrow().enqueued <= 8,
            "cannot park more packets than buffers: {}",
            q.borrow().enqueued
        );
        assert_eq!(nic.borrow().free_buffers(), 0, "every buffer is in flight");
    }

    #[test]
    fn flow_without_churn_still_processes() {
        let mut m = Machine::new(MachineConfig::westmere());
        let flow = simple_flow(&mut m, 9); // no with_churn
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(flow));
        let meas = e.measure(100_000, 1_400_000);
        assert!(meas.core(CoreId(0)).unwrap().counts.total.packets > 0);
        assert!(meas.core(CoreId(0)).unwrap().counts.tag("framework").is_none());
    }

    #[test]
    fn batch_of_one_flow_reproduces_scalar_measurements_bit_for_bit() {
        // The acceptance bar for the batched datapath: batch size 1 must
        // equal the scalar path in every counter, tag, and the clock.
        let run = |batch: Option<usize>| {
            let mut m = Machine::new(MachineConfig::westmere());
            let mut flow = simple_flow(&mut m, 42);
            if let Some(b) = batch {
                flow = flow.with_batch_size(b);
            }
            let mut e = Engine::new(m);
            e.set_task(CoreId(0), Box::new(flow));
            e.run_until(2_000_000);
            let snap = e.machine.core(CoreId(0)).counters.snapshot();
            let clock = e.machine.core(CoreId(0)).clock;
            let task = e.take_task(CoreId(0)).unwrap();
            (snap, clock, task)
        };
        let (s_snap, s_clock, _) = run(None);
        let (b_snap, b_clock, _) = run(Some(1));
        assert_eq!(s_snap.total, b_snap.total, "totals must match bit for bit");
        assert_eq!(s_clock, b_clock, "clocks must match");
        assert_eq!(
            s_snap.tags.len(),
            b_snap.tags.len(),
            "same set of function tags"
        );
        for (tag, counts) in &s_snap.tags {
            assert_eq!(
                Some(counts),
                b_snap.tag(tag),
                "per-tag counters for {tag} must match"
            );
        }
    }

    #[test]
    fn batched_flow_processes_the_same_packets_as_scalar() {
        // Semantic equivalence at batch > 1: the same generated packet
        // sequence yields the same processed counts and graph outcomes
        // (cycle counts legitimately differ — that is the speedup).
        let turns = 50usize;
        let batch = 8usize;
        let run = |batch_size: Option<usize>, turns: usize| {
            let mut m = Machine::new(MachineConfig::westmere());
            let mut flow = simple_flow(&mut m, 7);
            if let Some(b) = batch_size {
                flow = flow.with_batch_size(b);
            }
            for _ in 0..turns {
                let mut ctx = m.ctx(CoreId(0));
                let _ = flow.run_turn(&mut ctx);
            }
            (flow.processed, flow.graph().drops, flow.graph().exits)
        };
        let scalar = run(None, turns * batch);
        let batched = run(Some(batch), turns);
        assert_eq!(scalar, batched, "(processed, drops, exits) must agree");
    }

    #[test]
    fn batched_flow_is_cheaper_per_packet_than_scalar() {
        let cycles_per_packet = |batch_size: Option<usize>| {
            let mut m = Machine::new(MachineConfig::westmere());
            let mut flow = simple_flow(&mut m, 5);
            if let Some(b) = batch_size {
                flow = flow.with_batch_size(b);
            }
            let mut e = Engine::new(m);
            e.set_task(CoreId(0), Box::new(flow));
            let meas = e.measure(500_000, 2_800_000);
            let cm = meas.core(CoreId(0)).unwrap();
            cm.counts.total.cycles() as f64 / cm.counts.total.packets as f64
        };
        let scalar = cycles_per_packet(None);
        let batched = cycles_per_packet(Some(32));
        assert!(
            batched < scalar * 0.95,
            "32-packet batches must amortize framework cost: scalar {scalar:.0} vs batched {batched:.0} cycles/packet"
        );
    }

    #[test]
    fn batch_resize_between_windows_takes_effect_and_amortizes() {
        // The adaptive controller's re-sizing path: run a window at batch 1,
        // call set_batch_size(32) on the *live* task between windows, and
        // verify the next window is measurably cheaper per packet — no
        // rebuild, same graph, same tables, same traffic stream.
        let mut m = Machine::new(MachineConfig::westmere());
        let mut flow = simple_flow(&mut m, 13).with_batch_size(1);
        let window_cpp = |m: &mut Machine, flow: &mut FlowTask, turns: usize| {
            let before = m.core(CoreId(0)).counters.snapshot();
            for _ in 0..turns {
                let mut ctx = m.ctx(CoreId(0));
                let _ = flow.run_turn(&mut ctx);
            }
            let d = m.core(CoreId(0)).counters.snapshot().delta(&before);
            d.total.cycles() as f64 / d.total.packets.max(1) as f64
        };
        // Warm the caches, then measure a scalar window.
        let _ = window_cpp(&mut m, &mut flow, 500);
        let scalar_cpp = window_cpp(&mut m, &mut flow, 512);
        // Re-size the live task and measure again (same packet budget).
        flow.set_batch_size(32);
        assert_eq!(flow.batch_size(), 32);
        let batched_cpp = window_cpp(&mut m, &mut flow, 16);
        assert!(
            batched_cpp < scalar_cpp * 0.95,
            "re-sized batch must amortize: {scalar_cpp:.0} -> {batched_cpp:.0} cyc/pkt"
        );
    }

    #[test]
    fn batched_flow_handles_pool_exhaustion_with_partial_batches() {
        // 4 buffers but 8-packet batches: every turn delivers a partial
        // batch of 4 and counts 4 failures; buffers recycle cleanly.
        let mut m = Machine::new(MachineConfig::westmere());
        let cost = CostModel::default();
        let nic = Rc::new(RefCell::new(NicQueue::new(
            m.allocator(MemDomain(0)),
            64,
            4,
            2048,
        )));
        let mut g = ElementGraph::new(cost);
        let a = g.add(Box::new(CheckIpHeader::new(cost)));
        let t = g.add(Box::new(ToDevice::new(nic.clone(), false)));
        g.chain(&[a, t]);
        let mut flow = FlowTask::new(
            "partial",
            TrafficGen::new(TrafficSpec::random_dst(64, 3)),
            nic.clone(),
            g,
            cost,
        )
        .with_batch_size(8);
        for _ in 0..10 {
            let mut ctx = m.ctx(CoreId(0));
            assert_eq!(flow.run_turn(&mut ctx), pp_sim::engine::TurnResult::Progress);
        }
        assert_eq!(flow.processed, 40, "4 delivered per 8-packet batch");
        assert_eq!(flow.rx_failures, 40, "4 undelivered per batch");
        assert_eq!(nic.borrow().free_buffers(), 4, "no buffer leak");
    }

    #[test]
    fn drop_stats_are_exact_under_forced_exhaustion() {
        // 4 buffers, 8-packet batches: every turn offers 8, delivers 4.
        // The ledger must account for every single packet.
        let mut m = Machine::new(MachineConfig::westmere());
        let cost = CostModel::default();
        let nic = Rc::new(RefCell::new(NicQueue::new(
            m.allocator(MemDomain(0)),
            64,
            4,
            2048,
        )));
        let mut g = ElementGraph::new(cost);
        let a = g.add(Box::new(CheckIpHeader::new(cost)));
        let t = g.add(Box::new(ToDevice::new(nic.clone(), false)));
        g.chain(&[a, t]);
        let mut flow = FlowTask::new(
            "exhaust",
            TrafficGen::new(TrafficSpec::random_dst(64, 3)),
            nic,
            g,
            cost,
        )
        .with_batch_size(8);
        let drops = flow.drop_handle();
        for _ in 0..10 {
            let mut ctx = m.ctx(CoreId(0));
            flow.run_turn(&mut ctx);
        }
        let d = *drops.borrow();
        assert_eq!(d.offered, 80, "every offered packet is ledgered");
        assert_eq!(d.nic_rx_exhausted, 40, "exactly the undelivered half");
        assert_eq!(d.total_dropped(), 40, "no other loss category fires");
        assert_eq!(
            d.offered,
            flow.processed + d.undelivered(),
            "conservation: offered == processed + undelivered drops"
        );
    }

    #[test]
    fn corruption_control_drives_the_check_ip_drop_path() {
        // 250 per mille: the deterministic accumulator corrupts exactly
        // every 4th packet, and CheckIpHeader must drop each one.
        let mut m = Machine::new(MachineConfig::westmere());
        let mut flow = simple_flow(&mut m, 11);
        let drops = flow.drop_handle();
        let controls = flow.controls_handle();
        controls.corrupt_per_mille.set(250);
        for _ in 0..40 {
            let mut ctx = m.ctx(CoreId(0));
            flow.run_turn(&mut ctx);
        }
        let d = *drops.borrow();
        assert_eq!(flow.processed, 40, "corrupted packets still complete (as drops)");
        assert_eq!(d.element_dropped, 10, "every 4th packet fails the checksum");
        assert_eq!(flow.graph().drops, 10, "the graph agrees");
        // Turning the knob off stops the corruption.
        controls.corrupt_per_mille.set(0);
        for _ in 0..20 {
            let mut ctx = m.ctx(CoreId(0));
            flow.run_turn(&mut ctx);
        }
        assert_eq!(drops.borrow().element_dropped, 10, "no further drops");
    }

    #[test]
    fn shed_control_drops_half_the_load_with_exact_accounting() {
        let mut m = Machine::new(MachineConfig::westmere());
        let mut flow = simple_flow(&mut m, 17);
        let drops = flow.drop_handle();
        let controls = flow.controls_handle();
        controls.shed_per_mille.set(500);
        for _ in 0..30 {
            let mut ctx = m.ctx(CoreId(0));
            assert_eq!(flow.run_turn(&mut ctx), TurnResult::Progress);
        }
        let d = *drops.borrow();
        assert_eq!(d.shed, 15, "exactly every 2nd arrival shed");
        assert_eq!(flow.processed, 15);
        assert_eq!(d.offered, 30);
        assert_eq!(d.offered, flow.processed + d.undelivered(), "conservation");
    }

    #[test]
    fn pacing_throttles_throughput_without_loss() {
        // Pace far below the service rate: the flow idles between
        // arrivals, processes everything that arrives, and loses nothing.
        let run = |pace: u64| {
            let mut m = Machine::new(MachineConfig::westmere());
            let flow = simple_flow(&mut m, 23);
            let drops = flow.drop_handle();
            let controls = flow.controls_handle();
            controls.pace_cycles.set(pace);
            let mut e = Engine::new(m);
            e.set_task(CoreId(0), Box::new(flow));
            e.run_until(2_000_000);
            let task = e.take_task(CoreId(0)).unwrap();
            // Recover the concrete flow for its processed count.
            let d = *drops.borrow();
            (d, task)
        };
        let (d, _task) = run(20_000); // one packet per 20k cycles: ~100 arrivals
        assert!(d.offered >= 90 && d.offered <= 110, "paced arrivals: {}", d.offered);
        assert_eq!(d.total_dropped(), 0, "throttling is lossless backpressure");
    }

    #[test]
    fn overdriven_pacing_overflows_at_the_wire_with_exact_accounting() {
        // Pace of 1 cycle/packet wildly exceeds the service rate: credit
        // accrues past the NIC ring depth and the excess is a *counted*
        // wire drop. Conservation must still hold exactly.
        let mut m = Machine::new(MachineConfig::westmere());
        let flow = simple_flow(&mut m, 29);
        let drops = flow.drop_handle();
        let controls = flow.controls_handle();
        controls.pace_cycles.set(1);
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(flow));
        e.run_until(1_000_000);
        let task = e.take_task(CoreId(0)).unwrap();
        drop(task);
        let d = *drops.borrow();
        assert!(d.wire_overflow > 0, "overload must surface as wire drops");
        assert_eq!(d.nic_rx_exhausted, 0, "pool never exhausts at batch 0/scalar");
        // offered = processed + overflow (+ nothing else): the ledger
        // accounts for every arrival the 1-cycle pace generated.
        assert_eq!(d.offered, (d.offered - d.total_dropped()) + d.wire_overflow);
    }

    #[test]
    fn batch_override_resizes_the_live_task() {
        let mut m = Machine::new(MachineConfig::westmere());
        let mut flow = simple_flow(&mut m, 31).with_batch_size(32);
        let controls = flow.controls_handle();
        controls.batch_override.set(4);
        let mut ctx = m.ctx(CoreId(0));
        flow.run_turn(&mut ctx);
        assert_eq!(flow.batch_size(), 4, "override takes effect at the next turn");
        assert_eq!(flow.processed, 4, "the turn ran at the overridden size");
    }

    #[test]
    fn pipeline_queue_full_drops_are_counted_not_silent() {
        // Tiny queue, sink never drains: the source stage must count every
        // loss path — and with the scalar stage's is_full pre-check, the
        // packets that cannot be parked simply stall (backpressure).
        let mut m = Machine::new(MachineConfig::westmere());
        let cost = CostModel::default();
        let nic = Rc::new(RefCell::new(NicQueue::new(
            m.allocator(MemDomain(0)),
            64,
            32,
            2048,
        )));
        let q = Rc::new(RefCell::new(SpscQueue::new(m.allocator(MemDomain(0)), 4, cost)));
        let mut src = SourceStage::new(
            "front",
            TrafficGen::new(TrafficSpec::random_dst(64, 3)),
            nic.clone(),
            ElementGraph::new(cost),
            q.clone(),
            cost,
        );
        let drops = src.drop_handle();
        for _ in 0..50 {
            let mut ctx = m.ctx(CoreId(0));
            src.run_turn(&mut ctx);
        }
        let d = *drops.borrow();
        assert_eq!(src.forwarded, 4, "queue holds 4");
        assert_eq!(d.offered, 4, "the stalled turns offered nothing (backpressure)");
        assert_eq!(d.queue_full, 0, "is_full pre-check stalls instead of dropping");
        assert!(src.stalls >= 46);
        // Burst mode with a shrunken cap: the queue fills mid-burst and the
        // rejected tail is a counted queue-full drop.
        let mut src = src.with_batch_size(8);
        q.borrow_mut().clear_capacity_limit();
        {
            let mut q = q.borrow_mut();
            let mut sink_ctx = m.ctx(CoreId(1));
            let mut out = Vec::new();
            q.pop_burst(&mut sink_ctx, 4, &mut out); // drain
        }
        drops.borrow_mut().reset();
        let mut ctx = m.ctx(CoreId(0));
        src.run_turn(&mut ctx);
        let d = *drops.borrow();
        assert_eq!(d.offered, 4, "burst sized to the queue's 4 free slots");
        assert_eq!(d.queue_full, 0, "partial-burst backpressure, not drops");
    }

    #[test]
    fn pipeline_stages_hand_off_packets() {
        let mut m = Machine::new(MachineConfig::westmere());
        let cost = CostModel::default();
        let nic = Rc::new(RefCell::new(NicQueue::new(
            m.allocator(MemDomain(0)),
            256,
            256,
            2048,
        )));
        let q = Rc::new(RefCell::new(SpscQueue::new(
            m.allocator(MemDomain(0)),
            128,
            cost,
        )));
        let mut front = ElementGraph::new(cost);
        front.add(Box::new(CheckIpHeader::new(cost)));
        let src = SourceStage::new(
            "front",
            TrafficGen::new(TrafficSpec::random_dst(64, 3)),
            nic.clone(),
            front,
            q.clone(),
            cost,
        );
        let mut back = ElementGraph::new(cost);
        let cnt = back.add(Box::new(Counter::default()));
        let tx = back.add(Box::new(ToDevice::new(nic.clone(), true)));
        back.chain(&[cnt, tx]);
        let sink = SinkStage::new("back", q.clone(), back, nic.clone());

        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(src));
        e.set_task(CoreId(1), Box::new(sink));
        let meas = e.measure(200_000, 2_800_000);
        let back_m = meas.core(CoreId(1)).unwrap();
        assert!(
            back_m.metrics.pps > 50_000.0,
            "pipeline should move packets, pps = {}",
            back_m.metrics.pps
        );
        // The queue really cycled.
        assert!(q.borrow().dequeued > 0);
        // No buffer leak: free buffers return to the pool over time.
        assert!(nic.borrow().free_buffers() > 0);
    }
}
