//! Binding element graphs to simulated cores.
//!
//! [`FlowTask`] is the paper's *parallel* (run-to-completion) configuration:
//! one core receives a packet from its own NIC queue, runs the whole element
//! chain, and transmits — "each core reads from its own receive queue(s) and
//! writes to its own transmit queue(s), which are not shared with other
//! cores".
//!
//! [`SourceStage`] / [`SinkStage`] implement the §2.2 *pipeline*
//! configuration: the chain is split across cores connected by an
//! [`SpscQueue`], with all the cross-core costs that entails.

use crate::cost::CostModel;
use crate::elements::queue::SpscQueue;
use crate::graph::{ElementGraph, GraphOutcome};
use pp_net::gen::traffic::TrafficGen;
use pp_sim::arena::DomainAllocator;
use pp_sim::ctx::ExecCtx;
use pp_sim::engine::{CoreTask, TurnResult};
use pp_sim::nic::NicQueue;
use pp_sim::types::{Addr, CACHE_LINE};
use std::cell::RefCell;
use std::rc::Rc;

/// Models the framework's own per-packet memory footprint: Click's
/// instruction stream, element objects, and packet annotations touch many
/// cache lines beyond the applications' data structures. Each packet reads
/// a window of lines that rotates through a region sized like the resident
/// code+metadata set, keeping L1 realistically busy.
#[derive(Debug, Clone)]
pub struct FrameworkChurn {
    region: Addr,
    lines: u64,
    cursor: u64,
    per_packet: u32,
}

impl FrameworkChurn {
    /// Allocate the churn region in `alloc`'s domain per the cost model.
    pub fn new(alloc: &mut DomainAllocator, cost: &CostModel) -> Self {
        let bytes = cost.framework_region_bytes.max(CACHE_LINE);
        FrameworkChurn {
            region: alloc.alloc_lines(bytes),
            lines: bytes / CACHE_LINE,
            cursor: 0,
            per_packet: cost.framework_lines_per_packet,
        }
    }

    /// Touch this packet's window of framework lines.
    #[inline]
    pub fn touch(&mut self, ctx: &mut ExecCtx<'_>) {
        ctx.scoped("framework", |ctx| {
            for _ in 0..self.per_packet {
                ctx.read(self.region + (self.cursor % self.lines) * CACHE_LINE);
                self.cursor += 1;
            }
        });
    }
}

/// A complete run-to-completion flow on one core. See the module docs.
pub struct FlowTask {
    label: String,
    gen: TrafficGen,
    nic: Rc<RefCell<NicQueue>>,
    graph: ElementGraph,
    cost: CostModel,
    churn: Option<FrameworkChurn>,
    /// Packets fully processed (forwarded or consciously dropped).
    pub processed: u64,
    /// Packets lost to buffer-pool exhaustion (should stay zero in the
    /// parallel configuration).
    pub rx_failures: u64,
}

impl FlowTask {
    /// Assemble a flow from its traffic source, NIC queue, and graph.
    pub fn new(
        label: impl Into<String>,
        gen: TrafficGen,
        nic: Rc<RefCell<NicQueue>>,
        graph: ElementGraph,
        cost: CostModel,
    ) -> Self {
        FlowTask {
            label: label.into(),
            gen,
            nic,
            graph,
            cost,
            churn: None,
            processed: 0,
            rx_failures: 0,
        }
    }

    /// Attach framework churn (see [`FrameworkChurn`]). The standard
    /// builders in [`crate::pipelines`] always do this; tests that want a
    /// minimal flow can skip it.
    pub fn with_churn(mut self, churn: FrameworkChurn) -> Self {
        self.churn = Some(churn);
        self
    }

    /// The element graph (for inspection / run-time reconfiguration).
    pub fn graph(&self) -> &ElementGraph {
        &self.graph
    }

    /// Mutable access to the element graph.
    pub fn graph_mut(&mut self) -> &mut ElementGraph {
        &mut self.graph
    }
}

impl CoreTask for FlowTask {
    fn run_turn(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        // The wire always has a packet waiting (the paper's generators run
        // at line rate); generation itself is host-side and free.
        let mut pkt = self.gen.next_packet();
        CostModel::charge(ctx, self.cost.per_packet_overhead);
        if let Some(churn) = &mut self.churn {
            churn.touch(ctx);
        }
        let buf = {
            let mut nic = self.nic.borrow_mut();
            nic.rx(ctx, pkt.len() as u64)
        };
        let Some(buf) = buf else {
            self.rx_failures += 1;
            return TurnResult::Progress; // time advanced by the failed rx
        };
        pkt.buf_addr = buf;
        match self.graph.run(ctx, pkt) {
            GraphOutcome::Consumed => {}
            GraphOutcome::Returned(p) => {
                if p.buf_addr != 0 {
                    self.nic.borrow_mut().recycle(ctx, p.buf_addr);
                }
            }
        }
        self.processed += 1;
        ctx.retire_packet();
        TurnResult::Progress
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Pipeline stage 1: receive + the front of the chain, then enqueue.
pub struct SourceStage {
    label: String,
    gen: TrafficGen,
    nic: Rc<RefCell<NicQueue>>,
    /// Front sub-chain (may be empty: pure receive stage).
    graph: ElementGraph,
    out: Rc<RefCell<SpscQueue>>,
    cost: CostModel,
    churn: Option<FrameworkChurn>,
    /// Packets handed to the next stage.
    pub forwarded: u64,
    /// Turns skipped because the queue was full.
    pub stalls: u64,
}

impl SourceStage {
    /// Assemble the front stage.
    pub fn new(
        label: impl Into<String>,
        gen: TrafficGen,
        nic: Rc<RefCell<NicQueue>>,
        graph: ElementGraph,
        out: Rc<RefCell<SpscQueue>>,
        cost: CostModel,
    ) -> Self {
        SourceStage {
            label: label.into(),
            gen,
            nic,
            graph,
            out,
            cost,
            churn: None,
            forwarded: 0,
            stalls: 0,
        }
    }

    /// Attach framework churn to this stage.
    pub fn with_churn(mut self, churn: FrameworkChurn) -> Self {
        self.churn = Some(churn);
        self
    }
}

impl CoreTask for SourceStage {
    fn run_turn(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        if self.out.borrow().is_full() {
            self.stalls += 1;
            return TurnResult::Idle;
        }
        let mut pkt = self.gen.next_packet();
        CostModel::charge(ctx, self.cost.per_packet_overhead);
        if let Some(churn) = &mut self.churn {
            churn.touch(ctx);
        }
        let buf = {
            let mut nic = self.nic.borrow_mut();
            nic.rx(ctx, pkt.len() as u64)
        };
        let Some(buf) = buf else {
            return TurnResult::Progress;
        };
        pkt.buf_addr = buf;
        let outcome = if self.graph.is_empty() {
            GraphOutcome::Returned(pkt)
        } else {
            self.graph.run(ctx, pkt)
        };
        match outcome {
            GraphOutcome::Consumed => {}
            GraphOutcome::Returned(p) => {
                let mut q = self.out.borrow_mut();
                if let Err(rejected) = q.push(ctx, p) {
                    // Lost the race against fullness; recycle locally.
                    if rejected.buf_addr != 0 {
                        self.nic.borrow_mut().recycle(ctx, rejected.buf_addr);
                    }
                    self.stalls += 1;
                    return TurnResult::Progress;
                }
                self.forwarded += 1;
            }
        }
        TurnResult::Progress
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Pipeline stage 2: dequeue, run the back of the chain, transmit (with
/// cross-core buffer recycling into the source stage's pool).
pub struct SinkStage {
    label: String,
    input: Rc<RefCell<SpscQueue>>,
    graph: ElementGraph,
    /// The *source* core's NIC queue: drops recycle into it cross-core.
    nic: Rc<RefCell<NicQueue>>,
    churn: Option<FrameworkChurn>,
    /// Packets completed at this stage.
    pub processed: u64,
}

impl SinkStage {
    /// Assemble the back stage.
    pub fn new(
        label: impl Into<String>,
        input: Rc<RefCell<SpscQueue>>,
        graph: ElementGraph,
        nic: Rc<RefCell<NicQueue>>,
    ) -> Self {
        SinkStage { label: label.into(), input, graph, nic, churn: None, processed: 0 }
    }

    /// Attach framework churn to this stage.
    pub fn with_churn(mut self, churn: FrameworkChurn) -> Self {
        self.churn = Some(churn);
        self
    }
}

impl CoreTask for SinkStage {
    fn run_turn(&mut self, ctx: &mut ExecCtx<'_>) -> TurnResult {
        let pkt = {
            let mut q = self.input.borrow_mut();
            q.pop(ctx)
        };
        let Some(pkt) = pkt else { return TurnResult::Idle };
        if let Some(churn) = &mut self.churn {
            churn.touch(ctx);
        }
        // Pull the packet's header line from the producing core (it wrote
        // or at least read it there; a modified line costs a transfer).
        if pkt.buf_addr != 0 {
            ctx.shared_read_struct(pkt.buf_addr, 64);
        }
        match self.graph.run(ctx, pkt) {
            GraphOutcome::Consumed => {}
            GraphOutcome::Returned(p) => {
                if p.buf_addr != 0 {
                    // Cross-core recycle into the source core's pool.
                    self.nic.borrow_mut().recycle_shared(ctx, p.buf_addr);
                }
            }
        }
        self.processed += 1;
        ctx.retire_packet();
        TurnResult::Progress
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::elements::basic::{CheckIpHeader, Counter, ToDevice};
    use pp_net::gen::traffic::{TrafficGen, TrafficSpec};
    use pp_sim::config::MachineConfig;
    use pp_sim::engine::Engine;
    use pp_sim::machine::Machine;
    use pp_sim::types::{CoreId, MemDomain};

    fn simple_flow(m: &mut Machine, core_seed: u64) -> FlowTask {
        let cost = CostModel::default();
        let nic = Rc::new(RefCell::new(NicQueue::new(
            m.allocator(MemDomain(0)),
            256,
            64,
            2048,
        )));
        let mut g = ElementGraph::new(cost);
        let a = g.add(Box::new(CheckIpHeader::new(cost)));
        let b = g.add(Box::new(Counter::default()));
        let c = g.add(Box::new(ToDevice::new(nic.clone(), false)));
        g.chain(&[a, b, c]);
        FlowTask::new(
            "test-flow",
            TrafficGen::new(TrafficSpec::random_dst(64, core_seed)),
            nic,
            g,
            cost,
        )
    }

    #[test]
    fn flow_processes_packets_end_to_end() {
        let mut m = Machine::new(MachineConfig::westmere());
        let flow = simple_flow(&mut m, 1);
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(flow));
        let meas = e.measure(100_000, 2_800_000); // 1 ms
        let cm = meas.core(CoreId(0)).unwrap();
        assert!(cm.metrics.pps > 100_000.0, "pps = {}", cm.metrics.pps);
        assert_eq!(cm.label, "test-flow");
        // No buffer leaks: pool cycles cleanly.
        assert!(cm.counts.total.packets > 0);
    }

    #[test]
    fn churn_rotates_through_its_region() {
        let mut m = Machine::new(MachineConfig::westmere());
        let cost = CostModel { framework_region_bytes: 4 * 64, framework_lines_per_packet: 3, ..CostModel::default() };
        let mut churn = FrameworkChurn::new(m.allocator(MemDomain(0)), &cost);
        let mut ctx = m.ctx(CoreId(0));
        // 4-line region, 3 lines/packet: after two packets the cursor has
        // wrapped and the region holds, so all reads hit a 4-line footprint.
        churn.touch(&mut ctx);
        churn.touch(&mut ctx);
        let c = m.core(CoreId(0)).counters.tag("framework").unwrap();
        assert_eq!(c.l1_refs, 6);
        // Only 4 distinct lines were ever touched: at most 4 L3 refs.
        assert!(c.l3_refs <= 4, "region should wrap, got {} L3 refs", c.l3_refs);
    }

    #[test]
    fn source_stage_stalls_when_nothing_drains() {
        // A source with a large queue but a tiny buffer pool: once every
        // buffer is parked in the queue, rx fails and forwarding stops.
        let mut m = Machine::new(MachineConfig::westmere());
        let cost = CostModel::default();
        let nic = Rc::new(RefCell::new(NicQueue::new(
            m.allocator(MemDomain(0)),
            64,
            8, // only 8 buffers
            2048,
        )));
        let q = Rc::new(RefCell::new(SpscQueue::new(
            m.allocator(MemDomain(0)),
            128,
            cost,
        )));
        let src = SourceStage::new(
            "front",
            TrafficGen::new(TrafficSpec::random_dst(64, 3)),
            nic.clone(),
            ElementGraph::new(cost),
            q.clone(),
            cost,
        );
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(src));
        e.run_until(2_000_000);
        assert!(
            q.borrow().enqueued <= 8,
            "cannot park more packets than buffers: {}",
            q.borrow().enqueued
        );
        assert_eq!(nic.borrow().free_buffers(), 0, "every buffer is in flight");
    }

    #[test]
    fn flow_without_churn_still_processes() {
        let mut m = Machine::new(MachineConfig::westmere());
        let flow = simple_flow(&mut m, 9); // no with_churn
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(flow));
        let meas = e.measure(100_000, 1_400_000);
        assert!(meas.core(CoreId(0)).unwrap().counts.total.packets > 0);
        assert!(meas.core(CoreId(0)).unwrap().counts.tag("framework").is_none());
    }

    #[test]
    fn pipeline_stages_hand_off_packets() {
        let mut m = Machine::new(MachineConfig::westmere());
        let cost = CostModel::default();
        let nic = Rc::new(RefCell::new(NicQueue::new(
            m.allocator(MemDomain(0)),
            256,
            256,
            2048,
        )));
        let q = Rc::new(RefCell::new(SpscQueue::new(
            m.allocator(MemDomain(0)),
            128,
            cost,
        )));
        let mut front = ElementGraph::new(cost);
        front.add(Box::new(CheckIpHeader::new(cost)));
        let src = SourceStage::new(
            "front",
            TrafficGen::new(TrafficSpec::random_dst(64, 3)),
            nic.clone(),
            front,
            q.clone(),
            cost,
        );
        let mut back = ElementGraph::new(cost);
        let cnt = back.add(Box::new(Counter::default()));
        let tx = back.add(Box::new(ToDevice::new(nic.clone(), true)));
        back.chain(&[cnt, tx]);
        let sink = SinkStage::new("back", q.clone(), back, nic.clone());

        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(src));
        e.set_task(CoreId(1), Box::new(sink));
        let meas = e.measure(200_000, 2_800_000);
        let back_m = meas.core(CoreId(1)).unwrap();
        assert!(
            back_m.metrics.pps > 50_000.0,
            "pipeline should move packets, pps = {}",
            back_m.metrics.pps
        );
        // The queue really cycled.
        assert!(q.borrow().dequeued > 0);
        // No buffer leak: free buffers return to the pool over time.
        assert!(nic.borrow().free_buffers() > 0);
    }
}
