//! The element graph: elements wired port-to-port, executed as a work list.
//!
//! Graphs here are DAGs built programmatically (or from the Click-style
//! config language in [`crate::config`]). Execution is push-based: a packet
//! enters at the entry element and follows edges until an element drops or
//! consumes it, or it exits through an unconnected port (returned to the
//! caller, which owns buffer recycling).

use crate::cost::CostModel;
use crate::element::{Action, Element};
use pp_net::packet::Packet;
use pp_sim::ctx::ExecCtx;

/// Identifies an element within its graph.
pub type ElementId = usize;

/// What happened to a packet pushed through the graph.
#[derive(Debug)]
pub enum GraphOutcome {
    /// An element consumed the packet (buffer already handled).
    Consumed,
    /// An element dropped it, or it exited via an unconnected port:
    /// the caller must recycle the buffer.
    Returned(Packet),
}

/// A wired set of elements. See the module docs.
pub struct ElementGraph {
    elements: Vec<Box<dyn Element>>,
    /// `edges[e][p]` = element receiving `e`'s output port `p`.
    edges: Vec<Vec<Option<ElementId>>>,
    entry: Option<ElementId>,
    cost: CostModel,
    /// Packets dropped by elements (Action::Drop).
    pub drops: u64,
    /// Packets that exited through an unconnected port.
    pub exits: u64,
}

impl ElementGraph {
    /// An empty graph with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        ElementGraph {
            elements: Vec::new(),
            edges: Vec::new(),
            entry: None,
            cost,
            drops: 0,
            exits: 0,
        }
    }

    /// Add an element; the first added element becomes the entry point
    /// unless [`set_entry`](Self::set_entry) overrides it.
    pub fn add(&mut self, e: Box<dyn Element>) -> ElementId {
        self.elements.push(e);
        self.edges.push(Vec::new());
        let id = self.elements.len() - 1;
        if self.entry.is_none() {
            self.entry = Some(id);
        }
        id
    }

    /// Wire `from`'s output port `port` to `to`'s input.
    pub fn connect(&mut self, from: ElementId, port: u8, to: ElementId) {
        assert!(from < self.elements.len() && to < self.elements.len());
        let ports = &mut self.edges[from];
        if ports.len() <= port as usize {
            ports.resize(port as usize + 1, None);
        }
        ports[port as usize] = Some(to);
    }

    /// Convenience: wire a linear chain `a -> b -> c -> ...` on port 0.
    pub fn chain(&mut self, ids: &[ElementId]) {
        for w in ids.windows(2) {
            self.connect(w[0], 0, w[1]);
        }
    }

    /// Set the entry element.
    pub fn set_entry(&mut self, id: ElementId) {
        assert!(id < self.elements.len());
        self.entry = Some(id);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the graph has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Immutable access to an element (diagnostics/tests).
    pub fn element(&self, id: ElementId) -> &dyn Element {
        self.elements[id].as_ref()
    }

    /// Mutable access to an element (reconfiguration, e.g. throttling).
    pub fn element_mut(&mut self, id: ElementId) -> &mut dyn Element {
        self.elements[id].as_mut()
    }

    /// Notify all elements of an epoch boundary.
    pub fn epoch(&mut self) {
        for e in &mut self.elements {
            e.on_epoch();
        }
    }

    /// Push one packet through the graph starting at the entry element.
    pub fn run(&mut self, ctx: &mut ExecCtx<'_>, pkt: Packet) -> GraphOutcome {
        let entry = self.entry.expect("graph has no entry element");
        self.run_from(ctx, entry, pkt)
    }

    /// Push one packet starting at a specific element (used by pipeline
    /// stages that enter mid-graph).
    pub fn run_from(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        start: ElementId,
        mut pkt: Packet,
    ) -> GraphOutcome {
        let mut cur = start;
        loop {
            CostModel::charge(ctx, self.cost.element_hop);
            let el = &mut self.elements[cur];
            let tag = el.tag();
            let action = ctx.scoped(tag, |ctx| el.process(ctx, &mut pkt));
            match action {
                Action::Consumed => return GraphOutcome::Consumed,
                Action::Drop => {
                    self.drops += 1;
                    return GraphOutcome::Returned(pkt);
                }
                Action::Out(port) => {
                    match self.edges[cur].get(port as usize).copied().flatten() {
                        Some(next) => cur = next,
                        None => {
                            self.exits += 1;
                            return GraphOutcome::Returned(pkt);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet};
    use pp_sim::types::CoreId;

    /// Emits on a fixed port, counting invocations.
    struct Emit {
        port: u8,
        seen: u64,
    }
    impl Element for Emit {
        fn class_name(&self) -> &'static str {
            "Emit"
        }
        fn tag(&self) -> &'static str {
            "emit"
        }
        fn process(&mut self, ctx: &mut ExecCtx<'_>, _pkt: &mut Packet) -> Action {
            self.seen += 1;
            ctx.compute(5, 5);
            Action::Out(self.port)
        }
    }

    struct Dropper;
    impl Element for Dropper {
        fn class_name(&self) -> &'static str {
            "Dropper"
        }
        fn tag(&self) -> &'static str {
            "dropper"
        }
        fn process(&mut self, ctx: &mut ExecCtx<'_>, _pkt: &mut Packet) -> Action {
            ctx.compute(1, 1);
            Action::Drop
        }
    }

    struct Sink;
    impl Element for Sink {
        fn class_name(&self) -> &'static str {
            "Sink"
        }
        fn tag(&self) -> &'static str {
            "sink"
        }
        fn process(&mut self, ctx: &mut ExecCtx<'_>, _pkt: &mut Packet) -> Action {
            ctx.compute(1, 1);
            Action::Consumed
        }
    }

    #[test]
    fn linear_chain_reaches_sink() {
        let mut g = ElementGraph::new(CostModel::default());
        let a = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let b = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let c = g.add(Box::new(Sink));
        g.chain(&[a, b, c]);
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        match g.run(&mut ctx, packet()) {
            GraphOutcome::Consumed => {}
            other => panic!("expected Consumed, got {other:?}"),
        }
    }

    #[test]
    fn drop_returns_packet() {
        let mut g = ElementGraph::new(CostModel::default());
        let a = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let b = g.add(Box::new(Dropper));
        g.chain(&[a, b]);
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        assert!(matches!(g.run(&mut ctx, packet()), GraphOutcome::Returned(_)));
        assert_eq!(g.drops, 1);
    }

    #[test]
    fn unconnected_port_exits() {
        let mut g = ElementGraph::new(CostModel::default());
        let a = g.add(Box::new(Emit { port: 3, seen: 0 }));
        let b = g.add(Box::new(Sink));
        g.connect(a, 0, b); // port 3 left unwired
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        assert!(matches!(g.run(&mut ctx, packet()), GraphOutcome::Returned(_)));
        assert_eq!(g.exits, 1);
    }

    #[test]
    fn branching_follows_ports() {
        let mut g = ElementGraph::new(CostModel::default());
        let a = g.add(Box::new(Emit { port: 1, seen: 0 }));
        let dropper = g.add(Box::new(Dropper));
        let sink = g.add(Box::new(Sink));
        g.connect(a, 0, dropper);
        g.connect(a, 1, sink);
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        assert!(matches!(g.run(&mut ctx, packet()), GraphOutcome::Consumed));
        assert_eq!(g.drops, 0);
    }

    #[test]
    fn element_work_is_tagged() {
        let mut g = ElementGraph::new(CostModel::default());
        let a = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let b = g.add(Box::new(Sink));
        g.chain(&[a, b]);
        let mut m = machine();
        {
            let mut ctx = m.ctx(CoreId(0));
            let _ = g.run(&mut ctx, packet());
        }
        let cc = &m.core(CoreId(0)).counters;
        assert_eq!(cc.tag("emit").unwrap().compute_cycles, 5);
        assert_eq!(cc.tag("sink").unwrap().compute_cycles, 1);
    }

    #[test]
    fn hop_cost_charged_per_element() {
        let cost = CostModel::default();
        let mut g = ElementGraph::new(cost);
        let a = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let b = g.add(Box::new(Sink));
        g.chain(&[a, b]);
        let mut m = machine();
        {
            let mut ctx = m.ctx(CoreId(0));
            let _ = g.run(&mut ctx, packet());
        }
        let total = m.core(CoreId(0)).counters.total().compute_cycles;
        assert_eq!(total, 2 * cost.element_hop.0 + 5 + 1);
    }
}
