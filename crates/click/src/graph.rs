//! The element graph: elements wired port-to-port, executed as a work list.
//!
//! Graphs here are DAGs built programmatically (or from the Click-style
//! config language in [`crate::config`]). Execution is push-based: a packet
//! enters at the entry element and follows edges until an element drops or
//! consumes it, or it exits through an unconnected port (returned to the
//! caller, which owns buffer recycling).
//!
//! ## Batched execution and its cost model
//!
//! [`ElementGraph::run_batch`] carries a whole packet vector through the
//! chain: each element is visited **once per batch** — one `element_hop`
//! dispatch charge and one function-tag scope per element per batch,
//! instead of per packet — which is the framework-amortization effect that
//! batched dataplanes (VPP, batched Click) get from I-cache reuse and
//! devirtualized inner loops. On a branch, the batch is scattered into
//! per-output-port sub-batches (relative packet order preserved within
//! each sub-batch) which continue through the graph in FIFO order, port 0
//! first. With a one-packet batch the charge sequence is identical to
//! [`ElementGraph::run`], which is what makes batch-size sweeps comparable
//! against the scalar baseline.

use crate::cost::CostModel;
use crate::element::{Action, Element};
use pp_net::batch::PacketBatch;
use pp_net::packet::Packet;
use pp_sim::counters::TagId;
use pp_sim::ctx::ExecCtx;
use std::collections::VecDeque;

/// Identifies an element within its graph.
pub type ElementId = usize;

/// What happened to a packet pushed through the graph.
#[derive(Debug)]
pub enum GraphOutcome {
    /// An element consumed the packet (buffer already handled).
    Consumed,
    /// An element dropped it, or it exited via an unconnected port:
    /// the caller must recycle the buffer.
    Returned(Packet),
}

/// What happened to a batch pushed through the graph.
#[derive(Debug, Default)]
pub struct BatchOutcome {
    /// Packets an element consumed (buffers already handled).
    pub consumed: u64,
    /// Packets that exited through an unconnected port, in exit order:
    /// the caller decides what happens next (transmit onward, hand off to
    /// the next pipeline stage, or recycle).
    pub returned: Vec<Packet>,
    /// Packets an element dropped (`Action::Drop`), in drop order: the
    /// caller must recycle their buffers (e.g. via
    /// `NicQueue::recycle_batch`) — dropped packets never continue
    /// downstream.
    pub dropped: Vec<Packet>,
    /// The consumed packets' host carcasses (simulated buffers already
    /// handled by the consuming element, e.g. `ToDevice`'s transmit):
    /// kept so the caller can return their frame allocations to a
    /// [`PacketPool`](pp_net::pool::PacketPool) instead of freeing one
    /// heap buffer per consumed packet. Same count as `consumed`.
    pub carcasses: Vec<Packet>,
}

impl BatchOutcome {
    /// Empty the outcome for reuse, retaining every vector's allocation.
    pub fn reset(&mut self) {
        self.consumed = 0;
        self.returned.clear();
        self.dropped.clear();
        self.carcasses.clear();
    }
}

/// A wired set of elements. See the module docs.
pub struct ElementGraph {
    elements: Vec<Box<dyn Element>>,
    /// Each element's function tag, interned once at [`add`](Self::add)
    /// time (the `TagId` protocol: scope entry on the per-packet hot path
    /// is an O(1) handle lookup, never a string search).
    tag_ids: Vec<TagId>,
    /// `edges[e][p]` = element receiving `e`'s output port `p`.
    edges: Vec<Vec<Option<ElementId>>>,
    entry: Option<ElementId>,
    cost: CostModel,
    /// Packets dropped by elements (Action::Drop).
    pub drops: u64,
    /// Packets that exited through an unconnected port.
    pub exits: u64,
    /// Reusable work list for batched execution (host-side; emptied at
    /// the end of every run).
    work: VecDeque<(ElementId, Vec<Packet>)>,
    /// Reusable per-port scatter scratch for batched execution.
    by_port: Vec<(u8, Vec<Packet>)>,
    /// Retired sub-batch vectors, recycled so steady-state batched runs
    /// allocate nothing.
    spare: Vec<Vec<Packet>>,
    /// Reusable per-visit action buffer.
    actions: Vec<Action>,
    /// Carcass of the last packet a scalar [`run`](Self::run) consumed
    /// (see [`take_consumed`](Self::take_consumed)).
    last_consumed: Option<Packet>,
}

impl ElementGraph {
    /// An empty graph with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        ElementGraph {
            elements: Vec::new(),
            tag_ids: Vec::new(),
            edges: Vec::new(),
            entry: None,
            cost,
            drops: 0,
            exits: 0,
            work: VecDeque::new(),
            by_port: Vec::new(),
            spare: Vec::new(),
            actions: Vec::new(),
            last_consumed: None,
        }
    }

    /// The carcass of the most recent packet a scalar
    /// [`run`](Self::run)/[`run_from`](Self::run_from) call consumed
    /// ([`GraphOutcome::Consumed`]), if any: the consuming element already
    /// handled its simulated buffer, so the host `Packet` is free to
    /// return to a [`PacketPool`](pp_net::pool::PacketPool). Cleared by
    /// the call (the batched path reports carcasses through
    /// [`BatchOutcome::carcasses`] instead).
    pub fn take_consumed(&mut self) -> Option<Packet> {
        self.last_consumed.take()
    }

    /// Add an element; the first added element becomes the entry point
    /// unless [`set_entry`](Self::set_entry) overrides it. The element's
    /// function tag is resolved to a [`TagId`] here, once.
    pub fn add(&mut self, e: Box<dyn Element>) -> ElementId {
        self.tag_ids.push(TagId::intern(e.tag()));
        self.elements.push(e);
        self.edges.push(Vec::new());
        let id = self.elements.len() - 1;
        if self.entry.is_none() {
            self.entry = Some(id);
        }
        id
    }

    /// Wire `from`'s output port `port` to `to`'s input.
    pub fn connect(&mut self, from: ElementId, port: u8, to: ElementId) {
        assert!(from < self.elements.len() && to < self.elements.len());
        let ports = &mut self.edges[from];
        if ports.len() <= port as usize {
            ports.resize(port as usize + 1, None);
        }
        ports[port as usize] = Some(to);
    }

    /// Convenience: wire a linear chain `a -> b -> c -> ...` on port 0.
    pub fn chain(&mut self, ids: &[ElementId]) {
        for w in ids.windows(2) {
            self.connect(w[0], 0, w[1]);
        }
    }

    /// Set the entry element.
    pub fn set_entry(&mut self, id: ElementId) {
        assert!(id < self.elements.len());
        self.entry = Some(id);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the graph has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Immutable access to an element (diagnostics/tests).
    pub fn element(&self, id: ElementId) -> &dyn Element {
        self.elements[id].as_ref()
    }

    /// Mutable access to an element (reconfiguration, e.g. throttling).
    pub fn element_mut(&mut self, id: ElementId) -> &mut dyn Element {
        self.elements[id].as_mut()
    }

    /// Notify all elements of an epoch boundary.
    pub fn epoch(&mut self) {
        for e in &mut self.elements {
            e.on_epoch();
        }
    }

    /// Push one packet through the graph starting at the entry element.
    pub fn run(&mut self, ctx: &mut ExecCtx<'_>, pkt: Packet) -> GraphOutcome {
        let entry = self.entry.expect("graph has no entry element");
        self.run_from(ctx, entry, pkt)
    }

    /// Push a whole batch through the graph starting at the entry element.
    /// See the module docs for the batched cost model.
    ///
    /// Allocating convenience wrapper around
    /// [`run_batch_into`](Self::run_batch_into), which steady-state
    /// callers use with reused scratch buffers.
    pub fn run_batch(&mut self, ctx: &mut ExecCtx<'_>, batch: PacketBatch) -> BatchOutcome {
        let entry = self.entry.expect("graph has no entry element");
        self.run_batch_from(ctx, entry, batch)
    }

    /// Push a batch starting at a specific element (pipeline stages that
    /// enter mid-graph). Allocating wrapper around
    /// [`run_batch_from_into`](Self::run_batch_from_into).
    pub fn run_batch_from(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        start: ElementId,
        batch: PacketBatch,
    ) -> BatchOutcome {
        let mut pkts: Vec<Packet> = batch.into_iter().collect();
        let mut outcome = BatchOutcome::default();
        self.run_batch_from_into(ctx, start, &mut pkts, &mut outcome);
        outcome
    }

    /// Push a batch through the graph starting at the entry element,
    /// draining `pkts` and writing results into `outcome` (reset at
    /// entry, allocations retained). The zero-allocation batched path:
    /// internal work-list and scatter vectors are recycled across calls,
    /// so a warmed-up graph runs whole batches without touching the heap.
    /// Charges are identical to [`run_batch`](Self::run_batch).
    pub fn run_batch_into(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        pkts: &mut Vec<Packet>,
        outcome: &mut BatchOutcome,
    ) {
        let entry = self.entry.expect("graph has no entry element");
        self.run_batch_from_into(ctx, entry, pkts, outcome);
    }

    /// [`run_batch_into`](Self::run_batch_into) starting at a specific
    /// element (pipeline stages that enter mid-graph).
    pub fn run_batch_from_into(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        start: ElementId,
        pkts: &mut Vec<Packet>,
        outcome: &mut BatchOutcome,
    ) {
        outcome.reset();
        if pkts.is_empty() {
            return;
        }
        // FIFO work list of (element, sub-batch). Branches scatter packets
        // into per-port sub-batches that keep their relative order. All
        // vectors involved are pooled in `self.spare` between runs.
        debug_assert!(self.work.is_empty());
        let mut entry_vec = self.spare.pop().unwrap_or_default();
        entry_vec.append(pkts);
        self.work.push_back((start, entry_vec));
        while let Some((cur, mut batch)) = self.work.pop_front() {
            // Framework dispatch: once per element per batch (amortized).
            CostModel::charge(ctx, self.cost.element_hop);
            self.actions.clear();
            let el = &mut self.elements[cur];
            let tag = self.tag_ids[cur];
            let actions = &mut self.actions;
            ctx.scoped_id(tag, |ctx| el.process_batch(ctx, &mut batch, actions));
            // Hard assert (once per batch, so cheap): an element that emits
            // fewer actions than packets would silently leak NIC buffers in
            // release builds via the zip below.
            assert_eq!(
                self.actions.len(),
                batch.len(),
                "element {} must emit one action per packet",
                self.elements[cur].class_name()
            );
            // Scatter into per-port sub-batches, preserving packet order.
            debug_assert!(self.by_port.is_empty());
            for (pkt, action) in batch.drain(..).zip(self.actions.drain(..)) {
                match action {
                    Action::Consumed => {
                        outcome.consumed += 1;
                        outcome.carcasses.push(pkt);
                    }
                    Action::Drop => {
                        self.drops += 1;
                        outcome.dropped.push(pkt);
                    }
                    Action::Out(port) => {
                        match self.edges[cur].get(port as usize).copied().flatten() {
                            Some(_) => {
                                match self.by_port.iter_mut().find(|(p, _)| *p == port) {
                                    Some((_, v)) => v.push(pkt),
                                    None => {
                                        let mut v =
                                            self.spare.pop().unwrap_or_default();
                                        v.push(pkt);
                                        self.by_port.push((port, v));
                                    }
                                }
                            }
                            None => {
                                self.exits += 1;
                                outcome.returned.push(pkt);
                            }
                        }
                    }
                }
            }
            self.spare.push(batch); // drained: recycle its allocation
            self.by_port.sort_by_key(|(p, _)| *p);
            for (port, sub) in self.by_port.drain(..) {
                let next = self.edges[cur][port as usize].expect("checked above");
                self.work.push_back((next, sub));
            }
        }
    }

    /// Push one packet starting at a specific element (used by pipeline
    /// stages that enter mid-graph).
    pub fn run_from(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        start: ElementId,
        mut pkt: Packet,
    ) -> GraphOutcome {
        let mut cur = start;
        loop {
            CostModel::charge(ctx, self.cost.element_hop);
            let el = &mut self.elements[cur];
            let tag = self.tag_ids[cur];
            let action = ctx.scoped_id(tag, |ctx| el.process(ctx, &mut pkt));
            match action {
                Action::Consumed => {
                    self.last_consumed = Some(pkt);
                    return GraphOutcome::Consumed;
                }
                Action::Drop => {
                    self.drops += 1;
                    return GraphOutcome::Returned(pkt);
                }
                Action::Out(port) => {
                    match self.edges[cur].get(port as usize).copied().flatten() {
                        Some(next) => cur = next,
                        None => {
                            self.exits += 1;
                            return GraphOutcome::Returned(pkt);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::test_util::{machine, packet};
    use pp_sim::types::CoreId;

    /// Emits on a fixed port, counting invocations.
    struct Emit {
        port: u8,
        seen: u64,
    }
    impl Element for Emit {
        fn class_name(&self) -> &'static str {
            "Emit"
        }
        fn tag(&self) -> &'static str {
            "emit"
        }
        fn process(&mut self, ctx: &mut ExecCtx<'_>, _pkt: &mut Packet) -> Action {
            self.seen += 1;
            ctx.compute(5, 5);
            Action::Out(self.port)
        }
    }

    struct Dropper;
    impl Element for Dropper {
        fn class_name(&self) -> &'static str {
            "Dropper"
        }
        fn tag(&self) -> &'static str {
            "dropper"
        }
        fn process(&mut self, ctx: &mut ExecCtx<'_>, _pkt: &mut Packet) -> Action {
            ctx.compute(1, 1);
            Action::Drop
        }
    }

    struct Sink;
    impl Element for Sink {
        fn class_name(&self) -> &'static str {
            "Sink"
        }
        fn tag(&self) -> &'static str {
            "sink"
        }
        fn process(&mut self, ctx: &mut ExecCtx<'_>, _pkt: &mut Packet) -> Action {
            ctx.compute(1, 1);
            Action::Consumed
        }
    }

    #[test]
    fn linear_chain_reaches_sink() {
        let mut g = ElementGraph::new(CostModel::default());
        let a = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let b = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let c = g.add(Box::new(Sink));
        g.chain(&[a, b, c]);
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        match g.run(&mut ctx, packet()) {
            GraphOutcome::Consumed => {}
            other => panic!("expected Consumed, got {other:?}"),
        }
    }

    #[test]
    fn drop_returns_packet() {
        let mut g = ElementGraph::new(CostModel::default());
        let a = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let b = g.add(Box::new(Dropper));
        g.chain(&[a, b]);
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        assert!(matches!(g.run(&mut ctx, packet()), GraphOutcome::Returned(_)));
        assert_eq!(g.drops, 1);
    }

    #[test]
    fn unconnected_port_exits() {
        let mut g = ElementGraph::new(CostModel::default());
        let a = g.add(Box::new(Emit { port: 3, seen: 0 }));
        let b = g.add(Box::new(Sink));
        g.connect(a, 0, b); // port 3 left unwired
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        assert!(matches!(g.run(&mut ctx, packet()), GraphOutcome::Returned(_)));
        assert_eq!(g.exits, 1);
    }

    #[test]
    fn branching_follows_ports() {
        let mut g = ElementGraph::new(CostModel::default());
        let a = g.add(Box::new(Emit { port: 1, seen: 0 }));
        let dropper = g.add(Box::new(Dropper));
        let sink = g.add(Box::new(Sink));
        g.connect(a, 0, dropper);
        g.connect(a, 1, sink);
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        assert!(matches!(g.run(&mut ctx, packet()), GraphOutcome::Consumed));
        assert_eq!(g.drops, 0);
    }

    #[test]
    fn element_work_is_tagged() {
        let mut g = ElementGraph::new(CostModel::default());
        let a = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let b = g.add(Box::new(Sink));
        g.chain(&[a, b]);
        let mut m = machine();
        {
            let mut ctx = m.ctx(CoreId(0));
            let _ = g.run(&mut ctx, packet());
        }
        let cc = &m.core(CoreId(0)).counters;
        assert_eq!(cc.tag("emit").unwrap().compute_cycles, 5);
        assert_eq!(cc.tag("sink").unwrap().compute_cycles, 1);
    }

    /// Routes packets by `dst_port % fanout` (order-preservation tests).
    struct PortScatter {
        fanout: u8,
    }
    impl Element for PortScatter {
        fn class_name(&self) -> &'static str {
            "PortScatter"
        }
        fn tag(&self) -> &'static str {
            "scatter"
        }
        fn process(&mut self, ctx: &mut ExecCtx<'_>, pkt: &mut Packet) -> Action {
            ctx.compute(1, 1);
            let port = (pkt.flow_key().unwrap().src_port % self.fanout as u16) as u8;
            Action::Out(port)
        }
    }

    fn batch_of(ports: &[u16]) -> pp_net::batch::PacketBatch {
        use pp_net::packet::PacketBuilder;
        use std::net::Ipv4Addr;
        let pkts = ports
            .iter()
            .map(|&p| {
                PacketBuilder::default().udp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    p,
                    9,
                    b"x",
                )
            })
            .collect();
        pp_net::batch::PacketBatch::from_packets(pkts)
    }

    #[test]
    fn run_batch_linear_chain_consumes_everything() {
        let mut g = ElementGraph::new(CostModel::default());
        let a = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let b = g.add(Box::new(Sink));
        g.chain(&[a, b]);
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        let out = g.run_batch(&mut ctx, batch_of(&[1, 2, 3, 4]));
        assert_eq!(out.consumed, 4);
        assert!(out.returned.is_empty());
    }

    #[test]
    fn run_batch_charges_hop_once_per_element_per_batch() {
        let cost = CostModel::default();
        let mut g = ElementGraph::new(cost);
        let a = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let b = g.add(Box::new(Sink));
        g.chain(&[a, b]);
        let mut m = machine();
        {
            let mut ctx = m.ctx(CoreId(0));
            let _ = g.run_batch(&mut ctx, batch_of(&[1, 2, 3, 4]));
        }
        let total = m.core(CoreId(0)).counters.total().compute_cycles;
        // 2 hops per *batch* + per-packet element compute (5 + 1 each).
        assert_eq!(total, 2 * cost.element_hop.0 + 4 * (5 + 1));
    }

    #[test]
    fn run_batch_of_one_charges_exactly_like_run() {
        let cost = CostModel::default();
        let build = || {
            let mut g = ElementGraph::new(cost);
            let a = g.add(Box::new(Emit { port: 0, seen: 0 }));
            let d = g.add(Box::new(Dropper));
            g.chain(&[a, d]);
            g
        };
        let mut m_scalar = machine();
        let mut g_scalar = build();
        {
            let mut ctx = m_scalar.ctx(CoreId(0));
            let _ = g_scalar.run(&mut ctx, packet());
        }
        let mut m_batch = machine();
        let mut g_batch = build();
        {
            let mut ctx = m_batch.ctx(CoreId(0));
            let out = g_batch.run_batch(
                &mut ctx,
                pp_net::batch::PacketBatch::from_packets(vec![packet()]),
            );
            assert_eq!(out.dropped.len(), 1, "the dropper's packet lands in dropped");
            assert!(out.returned.is_empty());
        }
        assert_eq!(g_scalar.drops, g_batch.drops);
        assert_eq!(
            m_scalar.core(CoreId(0)).counters.snapshot().total,
            m_batch.core(CoreId(0)).counters.snapshot().total
        );
        assert_eq!(m_scalar.core(CoreId(0)).clock, m_batch.core(CoreId(0)).clock);
    }

    #[test]
    fn run_batch_scatters_by_port_preserving_order() {
        // scatter -> (port 0: dropper, port 1: unconnected exit). Packets
        // with even src ports drop; odd ones exit. Relative order within
        // each class must survive, and the port-0 sub-batch runs first.
        let mut g = ElementGraph::new(CostModel::default());
        let s = g.add(Box::new(PortScatter { fanout: 2 }));
        let d = g.add(Box::new(Dropper));
        g.connect(s, 0, d); // port 1 left unwired: exits
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        let out = g.run_batch(&mut ctx, batch_of(&[11, 2, 4, 7, 8, 3]));
        assert_eq!(g.exits, 3);
        assert_eq!(g.drops, 3);
        let ports = |pkts: &[pp_net::packet::Packet]| -> Vec<u16> {
            pkts.iter().map(|p| p.flow_key().unwrap().src_port).collect()
        };
        // Exits happen at the scatter element (odd ports, arrival order);
        // the port-0 sub-batch reaches the dropper (even ports, order).
        assert_eq!(ports(&out.returned), vec![11, 7, 3]);
        assert_eq!(ports(&out.dropped), vec![2, 4, 8]);
    }

    #[test]
    fn run_batch_rejoining_branches_keep_per_branch_order() {
        // Both scatter outputs feed the same counter; sub-batches arrive
        // as two visits, each in order, port 0 first.
        let mut g = ElementGraph::new(CostModel::default());
        let s = g.add(Box::new(PortScatter { fanout: 2 }));
        let c = g.add(Box::new(Emit { port: 7, seen: 0 })); // port 7 unwired: exit
        g.connect(s, 0, c);
        g.connect(s, 1, c);
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        let out = g.run_batch(&mut ctx, batch_of(&[1, 2, 3, 4, 5, 6]));
        let ports: Vec<u16> = out
            .returned
            .iter()
            .map(|p| p.flow_key().unwrap().src_port)
            .collect();
        assert_eq!(ports, vec![2, 4, 6, 1, 3, 5], "port-0 batch first, each in order");
        assert_eq!(g.exits, 6);
    }

    #[test]
    fn run_batch_empty_batch_is_a_no_op() {
        let mut g = ElementGraph::new(CostModel::default());
        g.add(Box::new(Sink));
        let mut m = machine();
        let mut ctx = m.ctx(CoreId(0));
        let out = g.run_batch(&mut ctx, pp_net::batch::PacketBatch::with_capacity(4));
        assert_eq!(out.consumed, 0);
        assert!(out.returned.is_empty());
        assert!(out.dropped.is_empty());
        assert_eq!(m.core(CoreId(0)).clock, 0, "no charges for an empty batch");
    }

    #[test]
    fn hop_cost_charged_per_element() {
        let cost = CostModel::default();
        let mut g = ElementGraph::new(cost);
        let a = g.add(Box::new(Emit { port: 0, seen: 0 }));
        let b = g.add(Box::new(Sink));
        g.chain(&[a, b]);
        let mut m = machine();
        {
            let mut ctx = m.ctx(CoreId(0));
            let _ = g.run(&mut ctx, packet());
        }
        let total = m.core(CoreId(0)).counters.total().compute_cycles;
        assert_eq!(total, 2 * cost.element_hop.0 + 5 + 1);
    }
}
