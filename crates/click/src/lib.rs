//! # pp-click — a Click-style packet-processing framework on the simulator
//!
//! Elements ([`element::Element`]) are wired into graphs
//! ([`graph::ElementGraph`]) and bound to simulated cores as flows
//! ([`flow::FlowTask`]), reproducing the software configuration of
//! *Toward Predictable Performance in Software Packet-Processing Platforms*
//! (Dobrescu et al., NSDI 2012): SMP-Click in the *parallel* (one flow per
//! core, run-to-completion) configuration, with the §2.2 *pipeline*
//! configuration also available for the pipeline-vs-parallel experiment.
//!
//! The element library implements the paper's workloads for real — the trie
//! routes, NetFlow counts, the firewall filters, RE fingerprints and
//! deduplicates, AES encrypts — while every data-structure access is charged
//! to the simulated memory hierarchy of `pp-sim`.
//!
//! Use [`pipelines::build_flow`] for ready-made paper workloads, or compose
//! custom graphs from [`elements`].
//!
//! ## Vectorized (batched) execution
//!
//! Beyond the paper's packet-at-a-time model, the framework has a batched
//! datapath ([`flow::FlowTask::with_batch_size`]): one engine turn receives
//! a whole packet vector from the NIC (`rx_batch`), pushes it through the
//! graph with [`graph::ElementGraph::run_batch`], and transmits/recycles it
//! in one amortized NIC transaction. The cost-model contract is:
//!
//! | charge | scalar path | batched path |
//! |---|---|---|
//! | element dispatch (`element_hop`) + tag scope | per element **per packet** | per element **per batch** |
//! | source/driver overhead | `per_packet_overhead` per packet | `batch_fixed_overhead` per batch + `batch_per_packet_overhead` per packet (the two sum to the scalar value) |
//! | [`flow::FrameworkChurn`] (I-cache/metadata footprint) | per packet | per batch |
//! | NIC descriptor ring | read+write per packet | read+write per descriptor *cache line* (4 descriptors/line) |
//! | NIC buffer free list | read+write per packet | read+write per batch |
//! | application work (lookups, scans, crypto, payload) | per packet | per packet (unchanged) |
//!
//! Hot elements (`CheckIPHeader`, `DecIPTTL`, `RadixIPLookup`, `Firewall`,
//! `TupleSpaceClassifier`, `ToDevice`) override
//! [`element::Element::process_batch`] to hoist per-packet setup and issue
//! independent per-packet loads overlapped (`ExecCtx::read_batch` with
//! [`element::BATCH_MLP`] lookahead — software prefetching across lanes);
//! every other element runs unchanged through the default per-packet loop.
//! A batch size of 1 reproduces the scalar path **bit for bit** (same
//! packet, drop, cycle, and per-tag counters), which anchors batch-size
//! sweeps (`repro batch`) to the paper's scalar numbers.
//!
//! ## Burst handoff in the pipeline configuration
//!
//! The §2.2 pipeline ([`flow::SourceStage`] → [`elements::queue::SpscQueue`]
//! → [`flow::SinkStage`]) has the same vector treatment
//! ([`pipelines::PipelineSpec::with_burst`]), with its own cost split:
//!
//! | charge | scalar handoff | burst handoff |
//! |---|---|---|
//! | `queue_op` compute | per packet | per burst |
//! | head/tail control-line ping-pong | per packet | per burst |
//! | queue descriptor slot lines | one line per packet | one line per 4 packets (16-B slots packed as on a NIC ring) |
//! | packet header pull (sink side) | per packet | per packet (unchanged) |
//! | cross-core free-list recycle | per packet | per burst (`tx_shared_batch`) |
//! | [`flow::FrameworkChurn`] per stage | per packet | per burst |
//!
//! All queue charges carry the `handoff` function tag
//! ([`elements::queue::HANDOFF_TAG`]), so experiments read the cross-core
//! handoff cost directly; a burst of 1 is charge-identical to the scalar
//! pipeline. The consumer's idle spin uses [`elements::queue::SpscQueue::poll`]
//! (one head-line read, no `queue_op`). Both stages stamp/record per-packet
//! ingress→egress simulated cycles into a
//! [`LatencyHistogram`](pp_sim::latency::LatencyHistogram), making the
//! batching-vs-latency trade-off measurable (`repro pipeline-batch`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod element;
pub mod elements;
pub mod flow;
pub mod graph;
pub mod pipelines;

/// Glob-import of the commonly used names.
pub mod prelude {
    pub use crate::config::{build_config, parse_config, BuildCtx, BuiltConfig, ConfigError};
    pub use crate::cost::CostModel;
    pub use crate::element::{Action, Element, BATCH_MLP};
    pub use crate::elements::aes::Aes128;
    pub use crate::elements::basic::{
        CheckIpHeader, ClassRule, Classifier, Counter, DecIpTtl, Discard, ToDevice,
    };
    pub use crate::elements::classifier::{TupleSpaceClassifier, Verdict};
    pub use crate::elements::control::{Control, ControlHandle};
    pub use crate::elements::dpi::{AhoCorasick, Dpi, DpiMode};
    pub use crate::elements::firewall::Firewall;
    pub use crate::elements::lpm::{Dir248IpLookup, Dir248Table};
    pub use crate::elements::nat::{Nat, NatConfig};
    pub use crate::elements::netflow::NetFlow;
    pub use crate::elements::queue::{SpscQueue, HANDOFF_TAG, SLOTS_PER_LINE};
    pub use crate::elements::radix::{
        BinaryRadixTrie, MultibitIpLookup, MultibitScratch, MultibitTrie, RadixIpLookup,
    };
    pub use crate::elements::re::{ReConfig, RedundancyElim, RollingHash};
    pub use crate::elements::synthetic::{SynParams, Synthetic};
    pub use crate::elements::vpn::VpnEncrypt;
    pub use crate::flow::{FlowTask, SinkStage, SourceStage};
    pub use crate::graph::{BatchOutcome, ElementGraph, ElementId, GraphOutcome};
    pub use crate::pipelines::{
        build_flow, build_pipeline, two_phase_parallel, two_phase_pipeline, BuiltFlow,
        ChainKind, FlowSpec, PipelineSpec, TwoPhaseParams,
    };
}
