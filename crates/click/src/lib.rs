//! # pp-click — a Click-style packet-processing framework on the simulator
//!
//! Elements ([`element::Element`]) are wired into graphs
//! ([`graph::ElementGraph`]) and bound to simulated cores as flows
//! ([`flow::FlowTask`]), reproducing the software configuration of
//! *Toward Predictable Performance in Software Packet-Processing Platforms*
//! (Dobrescu et al., NSDI 2012): SMP-Click in the *parallel* (one flow per
//! core, run-to-completion) configuration, with the §2.2 *pipeline*
//! configuration also available for the pipeline-vs-parallel experiment.
//!
//! The element library implements the paper's workloads for real — the trie
//! routes, NetFlow counts, the firewall filters, RE fingerprints and
//! deduplicates, AES encrypts — while every data-structure access is charged
//! to the simulated memory hierarchy of `pp-sim`.
//!
//! Use [`pipelines::build_flow`] for ready-made paper workloads, or compose
//! custom graphs from [`elements`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod element;
pub mod elements;
pub mod flow;
pub mod graph;
pub mod pipelines;

/// Glob-import of the commonly used names.
pub mod prelude {
    pub use crate::config::{build_config, parse_config, BuildCtx, BuiltConfig, ConfigError};
    pub use crate::cost::CostModel;
    pub use crate::element::{Action, Element};
    pub use crate::elements::aes::Aes128;
    pub use crate::elements::basic::{
        CheckIpHeader, ClassRule, Classifier, Counter, DecIpTtl, Discard, ToDevice,
    };
    pub use crate::elements::classifier::{TupleSpaceClassifier, Verdict};
    pub use crate::elements::control::{Control, ControlHandle};
    pub use crate::elements::dpi::{AhoCorasick, Dpi, DpiMode};
    pub use crate::elements::firewall::Firewall;
    pub use crate::elements::nat::{Nat, NatConfig};
    pub use crate::elements::netflow::NetFlow;
    pub use crate::elements::queue::SpscQueue;
    pub use crate::elements::radix::{BinaryRadixTrie, MultibitIpLookup, MultibitTrie, RadixIpLookup};
    pub use crate::elements::re::{ReConfig, RedundancyElim, RollingHash};
    pub use crate::elements::synthetic::{SynParams, Synthetic};
    pub use crate::elements::vpn::VpnEncrypt;
    pub use crate::flow::{FlowTask, SinkStage, SourceStage};
    pub use crate::graph::{ElementGraph, ElementId, GraphOutcome};
    pub use crate::pipelines::{
        build_flow, build_pipeline, two_phase_parallel, two_phase_pipeline, BuiltFlow,
        ChainKind, FlowSpec, TwoPhaseParams,
    };
}
