//! Standard flow builders: the paper's five realistic workloads plus SYN,
//! in both the parallel (run-to-completion) and pipeline configurations.
//!
//! Chain composition follows §2.1 exactly:
//!
//! * **IP** — full IP forwarding: `CheckIPHeader → RadixIPLookup → DecIPTTL`
//! * **MON** — IP + NetFlow
//! * **FW** — IP + NetFlow + 1000-rule sequential firewall
//! * **RE** — IP + NetFlow + redundancy elimination
//! * **VPN** — IP + NetFlow + AES-128 encryption
//! * **SYN** — configurable CPU ops + random reads over an L3-sized array
//!
//! All flows end in `ToDevice`. Each flow owns private replicas of its data
//! structures (per-client state, as in the paper's multi-tenant setting) in
//! an explicitly chosen NUMA domain — the lever the Fig. 3 configurations
//! use to isolate cache vs. memory-controller contention.

use crate::cost::CostModel;
use crate::elements::basic::{CheckIpHeader, DecIpTtl, ToDevice};
use crate::elements::classifier::TupleSpaceClassifier;
use crate::elements::control::{Control, ControlHandle};
use crate::elements::dpi::{Dpi, DpiMode};
use crate::elements::firewall::Firewall;
use crate::elements::nat::{Nat, NatConfig};
use crate::elements::netflow::NetFlow;
use crate::elements::queue::SpscQueue;
use crate::elements::radix::RadixIpLookup;
use crate::elements::re::{ReConfig, RedundancyElim};
use crate::elements::synthetic::{SynParams, Synthetic};
use crate::elements::vpn::VpnEncrypt;
use crate::flow::{FlowTask, FrameworkChurn, SinkStage, SourceStage};
use crate::graph::ElementGraph;
use pp_net::gen::prefixes::generate_bgp_table;
use pp_net::gen::rules::{generate_classifier_rules, generate_unmatchable_rules};
use pp_net::gen::signatures::generate_signatures;
use pp_net::gen::traffic::{TrafficGen, TrafficSpec};
use pp_sim::machine::Machine;
use pp_sim::nic::NicQueue;
use pp_sim::types::{CoreId, MemDomain};
use std::cell::RefCell;
use std::rc::Rc;

/// Which workload a flow runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChainKind {
    /// Full IP forwarding.
    Ip,
    /// IP + NetFlow monitoring.
    Mon,
    /// IP + NetFlow + sequential firewall.
    Fw,
    /// IP + NetFlow + redundancy elimination.
    Re,
    /// IP + NetFlow + AES-128 VPN.
    Vpn,
    /// IP + NetFlow + Aho-Corasick deep packet inspection (extension: the
    /// §6 "emerging" workload).
    Dpi,
    /// IP + NetFlow + source NAT (extension: consolidated middlebox
    /// functionality per the paper's introduction).
    Nat,
    /// IP + NetFlow + tuple-space multi-dimensional classification
    /// (extension: related-work workload \[22\]).
    Class,
    /// Synthetic (profiling) workload.
    Syn(SynParams),
}

impl ChainKind {
    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ChainKind::Ip => "IP",
            ChainKind::Mon => "MON",
            ChainKind::Fw => "FW",
            ChainKind::Re => "RE",
            ChainKind::Vpn => "VPN",
            ChainKind::Dpi => "DPI",
            ChainKind::Nat => "NAT",
            ChainKind::Class => "CLASS",
            ChainKind::Syn(_) => "SYN",
        }
    }

    /// Default frame length for this workload (the paper stresses IP/MON/FW
    /// with minimum-size frames; RE and VPN carry payload to process).
    pub fn default_frame_len(&self) -> usize {
        match self {
            ChainKind::Ip | ChainKind::Mon | ChainKind::Fw => 64,
            ChainKind::Vpn => 256,
            ChainKind::Re => 512,
            // DPI scans payload; NAT and CLASS are header workloads.
            ChainKind::Dpi => 512,
            ChainKind::Nat | ChainKind::Class => 64,
            ChainKind::Syn(_) => 64,
        }
    }
}

/// Everything needed to build one flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// The workload.
    pub kind: ChainKind,
    /// Ethernet frame length (`None` = workload default).
    pub frame_len: Option<usize>,
    /// Seed for this flow instance's traffic and access patterns.
    pub seed: u64,
    /// Seed for the flow's *data structures* (routing table, rules, keys).
    /// Instances of the same type share this, so replicas are identical —
    /// as the paper's per-client replicas of one table are — while their
    /// traffic differs per `seed`.
    pub structure_seed: u64,
    /// Compute-cost model.
    pub cost: CostModel,
    /// Routing-table size (paper: 128 000).
    pub n_prefixes: usize,
    /// Concurrent-flow population for the traffic (paper: 100 000).
    pub flow_population: u32,
    /// log2 of NetFlow table slots (paper population at ~0.76 load).
    pub netflow_log2: u32,
    /// Firewall rule count (paper: 1000).
    pub n_rules: usize,
    /// RE sizing.
    pub re: ReConfig,
    /// DPI signature-set size (extension workload).
    pub n_signatures: usize,
    /// NAT pool and table sizing (extension workload).
    pub nat: NatConfig,
    /// Classifier rule count (extension workload; ClassBench-scale).
    pub n_class_rules: usize,
    /// Prepend a `Control` element (for throttling experiments).
    pub with_control: bool,
    /// Packets per engine turn: 0 = scalar path, n ≥ 1 = batched datapath
    /// with n-packet vectors (see [`FlowTask::with_batch_size`]).
    pub batch_size: usize,
}

impl FlowSpec {
    /// Paper-scale defaults for a workload.
    pub fn new(kind: ChainKind, seed: u64) -> Self {
        FlowSpec {
            kind,
            frame_len: None,
            seed,
            structure_seed: seed,
            cost: CostModel::default(),
            n_prefixes: 128_000,
            flow_population: 100_000,
            netflow_log2: 18,
            n_rules: 1000,
            re: ReConfig::default(),
            n_signatures: 1500,
            nat: NatConfig::default(),
            n_class_rules: 16_000,
            with_control: false,
            batch_size: 0,
        }
    }

    /// Scaled-down sizes for fast tests (structures shrink ~4x; behaviour
    /// class is preserved: each flow's trie+table are cacheable alone but
    /// six co-located flows overflow the L3, and RE's working set stays
    /// beyond the L3).
    pub fn small(kind: ChainKind, seed: u64) -> Self {
        FlowSpec {
            n_prefixes: 32_000,
            flow_population: 40_000,
            netflow_log2: 16,
            n_rules: 1000,
            re: ReConfig { log2_fp_slots: 19, store_bytes: 8 << 20, sample_mod: 16 },
            n_signatures: 300,
            nat: NatConfig {
                n_public_ips: 1,
                ports_per_ip: 49152,
                log2_bindings: 16,
                ..NatConfig::default()
            },
            n_class_rules: 4000,
            ..Self::new(kind, seed)
        }
    }

    /// The frame length this spec will generate.
    pub fn frame_len(&self) -> usize {
        self.frame_len.unwrap_or_else(|| self.kind.default_frame_len())
    }

    fn traffic(&self) -> TrafficSpec {
        match self.kind {
            // IP: "packets with random destination addresses, because this
            // maximizes IP's sensitivity to contention".
            ChainKind::Ip => TrafficSpec::random_dst(self.frame_len(), self.seed ^ 0xA5A5),
            // DPI: payloads crafted to tease the signature automaton into
            // deep states — the DPI analogue of the paper's input crafting.
            ChainKind::Dpi => TrafficSpec::dpi_tease(
                self.frame_len(),
                self.flow_population,
                self.n_signatures as u32,
                self.structure_seed ^ 0x3333,
                self.seed ^ 0xA5A5,
            ),
            // Others: a fixed flow population (the NetFlow table holds
            // `flow_population` entries).
            _ => TrafficSpec::flow_population(
                self.frame_len(),
                self.flow_population,
                self.seed ^ 0xA5A5,
            ),
        }
    }
}

/// NIC sizing shared by all flows.
const NIC_DESCS: u64 = 256;
const NIC_BUFFERS: usize = 512;
const NIC_BUF_BYTES: u64 = 2048;

/// Result of building a flow: the task plus optional control handle.
pub struct BuiltFlow {
    /// The schedulable task.
    pub task: FlowTask,
    /// Present when the spec asked for a control element.
    pub control: Option<ControlHandle>,
}

/// Build the element sub-chain for `spec` (everything between the NIC ends),
/// returning the graph and the optional control handle.
fn build_graph(
    machine: &mut Machine,
    domain: MemDomain,
    nic: &Rc<RefCell<NicQueue>>,
    spec: &FlowSpec,
    tx_shared: bool,
) -> (ElementGraph, Option<ControlHandle>) {
    let cost = spec.cost;
    let mut g = ElementGraph::new(cost);
    let mut ids = Vec::new();
    let mut control = None;

    if spec.with_control {
        let handle = ControlHandle::new();
        ids.push(g.add(Box::new(Control::new(handle.clone(), cost))));
        control = Some(handle);
    }

    match spec.kind {
        ChainKind::Syn(params) => {
            let alloc = machine.allocator(domain);
            ids.push(g.add(Box::new(Synthetic::new(alloc, params, cost))));
        }
        kind => {
            ids.push(g.add(Box::new(CheckIpHeader::new(cost))));
            let prefixes = generate_bgp_table(spec.n_prefixes, spec.structure_seed ^ 0x1111);
            {
                let alloc = machine.allocator(domain);
                ids.push(g.add(Box::new(RadixIpLookup::new(alloc, &prefixes, cost))));
            }
            if !matches!(kind, ChainKind::Ip) {
                let alloc = machine.allocator(domain);
                ids.push(g.add(Box::new(NetFlow::new(alloc, spec.netflow_log2, cost))));
            }
            match kind {
                ChainKind::Fw => {
                    let rules = generate_unmatchable_rules(spec.n_rules, spec.structure_seed ^ 0x2222);
                    let alloc = machine.allocator(domain);
                    ids.push(g.add(Box::new(Firewall::new(alloc, &rules, cost))));
                }
                ChainKind::Re => {
                    let alloc = machine.allocator(domain);
                    ids.push(g.add(Box::new(RedundancyElim::new(alloc, spec.re, cost))));
                }
                ChainKind::Vpn => {
                    let alloc = machine.allocator(domain);
                    let key = spec.structure_seed.to_le_bytes();
                    let mut k = [0u8; 16];
                    k[..8].copy_from_slice(&key);
                    k[8..].copy_from_slice(&key);
                    ids.push(g.add(Box::new(VpnEncrypt::new(alloc, k, spec.seed, cost))));
                }
                ChainKind::Dpi => {
                    let sigs =
                        generate_signatures(spec.n_signatures, spec.structure_seed ^ 0x3333);
                    let alloc = machine.allocator(domain);
                    ids.push(g.add(Box::new(Dpi::new(alloc, &sigs, DpiMode::Detect, cost))));
                }
                ChainKind::Nat => {
                    let alloc = machine.allocator(domain);
                    ids.push(g.add(Box::new(Nat::new(alloc, spec.nat, cost))));
                }
                ChainKind::Class => {
                    let rules = generate_classifier_rules(
                        spec.n_class_rules,
                        spec.structure_seed ^ 0x4444,
                    );
                    let alloc = machine.allocator(domain);
                    ids.push(g.add(Box::new(TupleSpaceClassifier::new(
                        alloc,
                        &rules,
                        &[],
                        cost,
                    ))));
                }
                _ => {}
            }
            ids.push(g.add(Box::new(DecIpTtl::new(cost))));
        }
    }

    ids.push(g.add(Box::new(ToDevice::new(nic.clone(), tx_shared))));
    g.chain(&ids);
    (g, control)
}

/// Build a complete run-to-completion flow whose data structures (and NIC
/// rings/buffers) live in `domain`.
pub fn build_flow(machine: &mut Machine, domain: MemDomain, spec: &FlowSpec) -> BuiltFlow {
    let nic = Rc::new(RefCell::new(NicQueue::new(
        machine.allocator(domain),
        NIC_DESCS,
        NIC_BUFFERS,
        NIC_BUF_BYTES,
    )));
    let (graph, control) = build_graph(machine, domain, &nic, spec, false);
    let churn = FrameworkChurn::new(machine.allocator(domain), &spec.cost);
    let gen = TrafficGen::new(spec.traffic());
    let mut task =
        FlowTask::new(spec.kind.name(), gen, nic, graph, spec.cost).with_churn(churn);
    if spec.batch_size >= 1 {
        task = task.with_batch_size(spec.batch_size);
    }
    BuiltFlow { task, control }
}

/// Placement and sizing of a pipeline's cross-core handoff queue — the
/// knobs the queue-placement NUMA scenarios and burst-size sweeps turn.
#[derive(Debug, Clone, Copy)]
pub struct PipelineSpec {
    /// NUMA domain holding the queue's descriptor ring and control lines
    /// (the paper homes it with the receiving stage; homing it remotely is
    /// a queue-placement scenario in its own right).
    pub queue_domain: MemDomain,
    /// Ring capacity in descriptor slots.
    pub queue_capacity: usize,
    /// Packets per cross-core handoff: 0 = scalar (one queue transaction
    /// per packet), n ≥ 1 = burst mode through both stages
    /// ([`SourceStage::with_batch_size`] / [`SinkStage::with_batch_size`];
    /// 1 reproduces the scalar pipeline bit for bit).
    pub burst: usize,
}

impl PipelineSpec {
    /// Scalar pipeline with the queue homed in `queue_domain` and the
    /// default 128-slot ring.
    pub fn new(queue_domain: MemDomain) -> Self {
        PipelineSpec { queue_domain, queue_capacity: 128, burst: 0 }
    }

    /// Override the ring capacity.
    pub fn with_capacity(mut self, slots: usize) -> Self {
        self.queue_capacity = slots;
        self
    }

    /// Switch both stages to burst handoff (`burst` ≥ 1).
    pub fn with_burst(mut self, burst: usize) -> Self {
        self.burst = burst;
        self
    }
}

/// Build the same workload as a two-stage pipeline: stage 1 receives and
/// validates, stage 2 does the heavy processing and transmits. Returns
/// `(front, back, queue)`; bind `front` and `back` to different cores.
/// Queue placement, capacity, and handoff burst come from `pipe`.
pub fn build_pipeline(
    machine: &mut Machine,
    front_domain: MemDomain,
    back_domain: MemDomain,
    spec: &FlowSpec,
    pipe: &PipelineSpec,
) -> (SourceStage, SinkStage, Rc<RefCell<SpscQueue>>) {
    let cost = spec.cost;
    let nic = Rc::new(RefCell::new(NicQueue::new(
        machine.allocator(front_domain),
        NIC_DESCS,
        NIC_BUFFERS,
        NIC_BUF_BYTES,
    )));
    let queue = Rc::new(RefCell::new(SpscQueue::new(
        machine.allocator(pipe.queue_domain),
        pipe.queue_capacity,
        cost,
    )));

    // Front: CheckIPHeader only (classic RX stage).
    let mut front = ElementGraph::new(cost);
    if !matches!(spec.kind, ChainKind::Syn(_)) {
        front.add(Box::new(CheckIpHeader::new(cost)));
    }
    let mut src = SourceStage::new(
        format!("{}-front", spec.kind.name()),
        TrafficGen::new(spec.traffic()),
        nic.clone(),
        front,
        queue.clone(),
        cost,
    )
    .with_churn(FrameworkChurn::new(machine.allocator(front_domain), &cost));

    // Back: everything else. Reuse build_graph minus the leading check by
    // building the full graph in the back domain — the duplicated
    // CheckIPHeader is removed by constructing a back-specific spec.
    let (mut back_graph, _) = build_graph(machine, back_domain, &nic, spec, true);
    // Skip the front's CheckIPHeader stage in the back graph by entering
    // one element further in (element 0 is CheckIPHeader for IP-family
    // chains; the graph entry is adjusted instead of rebuilding).
    if !matches!(spec.kind, ChainKind::Syn(_)) && back_graph.len() > 1 {
        back_graph.set_entry(1);
    }
    let churn = FrameworkChurn::new(machine.allocator(back_domain), &cost);
    let mut sink = SinkStage::new(
        format!("{}-back", spec.kind.name()),
        queue.clone(),
        back_graph,
        nic,
    )
    .with_churn(churn);
    // Close the host-side carcass loop: the sink returns completed
    // packets' frame allocations to the source's generator pool. The two
    // stages also share one loss ledger.
    sink.share_pool(src.pool_handle());
    sink.share_drops(src.drop_handle());
    if pipe.burst >= 1 {
        src = src.with_batch_size(pipe.burst);
        sink = sink.with_batch_size(pipe.burst);
    }
    (src, sink, queue)
}

/// Live re-placement for a two-stage pipeline: move both stages to a new
/// core pair in one step (the supervisor's core-failover path for
/// pipelined tenants). The SPSC queue, NIC, and carcass pool are shared
/// handles that travel with the tasks — packets already queued between the
/// stages stay queued and the sink keeps draining them on its new core, so
/// nothing in flight is lost (the conservation ledger holds across the
/// move). Both moves must succeed; on a half-legal request the function
/// refuses up front and moves nothing. Returns `true` on success.
pub fn migrate_pipeline(
    engine: &mut pp_sim::engine::Engine,
    from: (CoreId, CoreId),
    to: (CoreId, CoreId),
) -> bool {
    let legal = |f: CoreId, t: CoreId| f != t && engine.has_task(f) && !engine.has_task(t);
    if !(legal(from.0, to.0) && legal(from.1, to.1)) || to.0 == to.1 {
        return false;
    }
    let a = engine.migrate_task(from.0, to.0);
    let b = engine.migrate_task(from.1, to.1);
    debug_assert!(a && b, "legality pre-checked");
    a && b
}

/// The §2.2 crafted two-phase synthetic workload: each packet triggers
/// `reads_per_phase` random reads into each of two structures that together
/// are "exactly double the size of an L3 cache". In the parallel
/// configuration one core does both phases (working set 2×L3: thrash); in
/// the pipeline configuration each phase runs on its own socket with its
/// structure local (each fits that socket's L3).
pub struct TwoPhaseParams {
    /// Reads into each phase's structure per packet (paper: >100 each).
    pub reads_per_phase: u32,
    /// Each structure's size (paper: one L3, 12 MB).
    pub phase_bytes: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for TwoPhaseParams {
    fn default() -> Self {
        TwoPhaseParams { reads_per_phase: 110, phase_bytes: 12 << 20, seed: 7 }
    }
}

/// Parallel variant: both phases on one core, both structures in `domain`.
pub fn two_phase_parallel(
    machine: &mut Machine,
    domain: MemDomain,
    p: &TwoPhaseParams,
    cost: CostModel,
) -> FlowTask {
    let nic = Rc::new(RefCell::new(NicQueue::new(
        machine.allocator(domain),
        NIC_DESCS,
        NIC_BUFFERS,
        NIC_BUF_BYTES,
    )));
    let mk = |seed| SynParams {
        ops_per_packet: 50,
        reads_per_packet: p.reads_per_phase,
        working_set_bytes: p.phase_bytes,
        mlp: 4,
        seed,
    };
    let mut g = ElementGraph::new(cost);
    let a = {
        let alloc = machine.allocator(domain);
        g.add(Box::new(Synthetic::new(alloc, mk(p.seed), cost)))
    };
    let b = {
        let alloc = machine.allocator(domain);
        g.add(Box::new(Synthetic::new(alloc, mk(p.seed ^ 1), cost)))
    };
    let t = g.add(Box::new(ToDevice::new(nic.clone(), false)));
    g.chain(&[a, b, t]);
    FlowTask::new(
        "2phase-parallel",
        TrafficGen::new(TrafficSpec::random_dst(64, p.seed)),
        nic,
        g,
        cost,
    )
}

/// Pipeline variant: phase 1 on the front core (structure in
/// `front_domain`), phase 2 + transmit on the back core (structure in
/// `back_domain`). Put the cores on different sockets so each phase enjoys
/// a private L3.
pub fn two_phase_pipeline(
    machine: &mut Machine,
    front_domain: MemDomain,
    back_domain: MemDomain,
    p: &TwoPhaseParams,
    cost: CostModel,
    pipe: &PipelineSpec,
) -> (SourceStage, SinkStage, Rc<RefCell<SpscQueue>>) {
    let nic = Rc::new(RefCell::new(NicQueue::new(
        machine.allocator(front_domain),
        NIC_DESCS,
        NIC_BUFFERS,
        NIC_BUF_BYTES,
    )));
    let queue = Rc::new(RefCell::new(SpscQueue::new(
        machine.allocator(pipe.queue_domain),
        pipe.queue_capacity,
        cost,
    )));
    let mk = |seed| SynParams {
        ops_per_packet: 50,
        reads_per_packet: p.reads_per_phase,
        working_set_bytes: p.phase_bytes,
        mlp: 4,
        seed,
    };
    let mut front = ElementGraph::new(cost);
    {
        let alloc = machine.allocator(front_domain);
        front.add(Box::new(Synthetic::new(alloc, mk(p.seed), cost)));
    }
    let mut src = SourceStage::new(
        "2phase-front",
        TrafficGen::new(TrafficSpec::random_dst(64, p.seed)),
        nic.clone(),
        front,
        queue.clone(),
        cost,
    );
    let mut back = ElementGraph::new(cost);
    let b = {
        let alloc = machine.allocator(back_domain);
        back.add(Box::new(Synthetic::new(alloc, mk(p.seed ^ 1), cost)))
    };
    let t = back.add(Box::new(ToDevice::new(nic.clone(), true)));
    back.chain(&[b, t]);
    let mut sink = SinkStage::new("2phase-back", queue.clone(), back, nic);
    sink.share_pool(src.pool_handle());
    sink.share_drops(src.drop_handle());
    if pipe.burst >= 1 {
        src = src.with_batch_size(pipe.burst);
        sink = sink.with_batch_size(pipe.burst);
    }
    (src, sink, queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_sim::config::MachineConfig;
    use pp_sim::engine::Engine;
    use pp_sim::types::CoreId;

    fn run_flow(kind: ChainKind) -> f64 {
        let mut m = Machine::new(MachineConfig::westmere());
        let spec = FlowSpec::small(kind, 11);
        let built = build_flow(&mut m, MemDomain(0), &spec);
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(built.task));
        let meas = e.measure(1_000_000, 5_600_000); // 2 ms window
        meas.core(CoreId(0)).unwrap().metrics.pps
    }

    #[test]
    fn all_chains_forward_packets() {
        for kind in [ChainKind::Ip, ChainKind::Mon, ChainKind::Fw, ChainKind::Vpn] {
            let pps = run_flow(kind);
            assert!(pps > 10_000.0, "{} pps = {pps}", kind.name());
        }
    }

    #[test]
    fn re_chain_forwards_packets() {
        let pps = run_flow(ChainKind::Re);
        assert!(pps > 5_000.0, "RE pps = {pps}");
    }

    #[test]
    fn syn_chain_forwards_packets() {
        let pps = run_flow(ChainKind::Syn(SynParams::moderate(3)));
        assert!(pps > 10_000.0, "SYN pps = {pps}");
    }

    #[test]
    fn extension_chains_forward_packets() {
        for kind in [ChainKind::Dpi, ChainKind::Nat, ChainKind::Class] {
            let pps = run_flow(kind);
            assert!(pps > 5_000.0, "{} pps = {pps}", kind.name());
        }
    }

    #[test]
    fn chain_costs_are_ordered_like_the_paper() {
        // Table 1 ordering by cycles/packet at small test scale: IP is the
        // cheapest, each add-on costs more, and the FW scan plus RE's
        // per-payload work dominate. (The full paper-scale Table 1
        // comparison — including FW vs RE, which depends on paper-sized
        // structures — is regenerated by `repro table1`.)
        let ip = run_flow(ChainKind::Ip);
        let mon = run_flow(ChainKind::Mon);
        let fw = run_flow(ChainKind::Fw);
        let vpn = run_flow(ChainKind::Vpn);
        let re = run_flow(ChainKind::Re);
        assert!(ip > mon, "IP {ip} vs MON {mon}");
        assert!(mon > vpn, "MON {mon} vs VPN {vpn}");
        assert!(vpn > fw, "VPN {vpn} vs FW {fw}");
        assert!(mon > re, "MON {mon} vs RE {re}");
    }

    #[test]
    fn control_handle_is_returned_when_requested() {
        let mut m = Machine::new(MachineConfig::westmere());
        let mut spec = FlowSpec::small(ChainKind::Fw, 5);
        spec.with_control = true;
        let built = build_flow(&mut m, MemDomain(0), &spec);
        assert!(built.control.is_some());
    }

    #[test]
    fn pipeline_variant_runs() {
        let mut m = Machine::new(MachineConfig::westmere());
        let spec = FlowSpec::small(ChainKind::Mon, 21);
        let pipe = PipelineSpec::new(MemDomain(0)).with_capacity(64);
        let (src, sink, q) = build_pipeline(&mut m, MemDomain(0), MemDomain(0), &spec, &pipe);
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(src));
        e.set_task(CoreId(1), Box::new(sink));
        let meas = e.measure(1_000_000, 5_600_000);
        let pps = meas.core(CoreId(1)).unwrap().metrics.pps;
        assert!(pps > 10_000.0, "pipeline MON pps = {pps}");
        assert!(q.borrow().dequeued > 0);
    }

    #[test]
    fn burst_pipeline_runs_and_beats_scalar() {
        let pps_at = |burst: usize| {
            let mut m = Machine::new(MachineConfig::westmere());
            let spec = FlowSpec::small(ChainKind::Mon, 21);
            let pipe = PipelineSpec::new(MemDomain(0)).with_burst(burst);
            let (src, sink, q) =
                build_pipeline(&mut m, MemDomain(0), MemDomain(0), &spec, &pipe);
            let lat = sink.latency_handle();
            let mut e = Engine::new(m);
            e.set_task(CoreId(0), Box::new(src));
            e.set_task(CoreId(1), Box::new(sink));
            let meas = e.measure(1_000_000, 5_600_000);
            assert!(q.borrow().dequeued > 0);
            assert!(lat.borrow().count() > 0, "sink must record latencies");
            meas.core(CoreId(1)).unwrap().metrics.pps
        };
        let scalar = pps_at(0);
        let burst = pps_at(32);
        assert!(
            burst > scalar * 1.02,
            "burst-32 handoff should lift MON pipeline throughput: {scalar:.0} -> {burst:.0}"
        );
    }

    #[test]
    fn live_pipeline_migrates_without_losing_queued_packets() {
        let mut m = Machine::new(MachineConfig::westmere());
        let spec = FlowSpec::small(ChainKind::Mon, 33);
        let pipe = PipelineSpec::new(MemDomain(0)).with_capacity(64);
        let (src, sink, q) = build_pipeline(&mut m, MemDomain(0), MemDomain(0), &spec, &pipe);
        let drops = src.drop_handle();
        let mut e = Engine::new(m);
        e.set_task(CoreId(0), Box::new(src));
        e.set_task(CoreId(1), Box::new(sink));
        e.measure(1_000_000, 2_800_000);
        drops.borrow_mut().reset();
        // Half-legal requests are refused atomically: nothing moves.
        assert!(!migrate_pipeline(&mut e, (CoreId(0), CoreId(1)), (CoreId(1), CoreId(3))));
        assert!(e.has_task(CoreId(0)) && e.has_task(CoreId(1)));
        // A legal move relocates both stages; the queue travels with them
        // and the pipeline keeps forwarding on the new cores.
        let dequeued_before = q.borrow().dequeued;
        assert!(migrate_pipeline(&mut e, (CoreId(0), CoreId(1)), (CoreId(2), CoreId(3))));
        assert!(!e.has_task(CoreId(0)) && !e.has_task(CoreId(1)));
        let meas = e.measure(0, 2_800_000);
        let pps = meas.core(CoreId(3)).unwrap().metrics.pps;
        assert!(pps > 10_000.0, "post-migration pps = {pps}");
        assert!(q.borrow().dequeued > dequeued_before, "sink kept draining the queue");
        // The move itself loses nothing: unpaced stages carry no in-flight
        // credit, and queued packets drained normally (any queue_full drops
        // here are ordinary backpressure, counted as always).
        assert_eq!(drops.borrow().drained, 0, "no in-flight credit to forfeit");
    }

    #[test]
    fn pipeline_queue_lands_in_requested_domain() {
        let mut m = Machine::new(MachineConfig::westmere());
        let spec = FlowSpec::small(ChainKind::Ip, 5);
        let before = m.allocator(MemDomain(1)).used();
        let pipe = PipelineSpec::new(MemDomain(1)).with_capacity(256);
        let _ = build_pipeline(&mut m, MemDomain(0), MemDomain(0), &spec, &pipe);
        let grew = m.allocator(MemDomain(1)).used() - before;
        // 256 slots * 16 B packed + head and tail lines.
        assert_eq!(grew, 256 * 16 + 2 * 64, "only the queue lives in domain 1");
    }

    #[test]
    fn data_lands_in_requested_domain() {
        let mut m = Machine::new(MachineConfig::westmere());
        let before = m.allocator(MemDomain(1)).used();
        let spec = FlowSpec::small(ChainKind::Mon, 9);
        let _ = build_flow(&mut m, MemDomain(1), &spec);
        let after = m.allocator(MemDomain(1)).used();
        assert!(
            after - before > 1 << 20,
            "MON structures should be several MB in domain 1"
        );
        assert_eq!(m.allocator(MemDomain(0)).used(), 64, "domain 0 untouched");
    }
}
