//! Minimal, API-compatible shim for the subset of the [`bytes`] crate used
//! by this workspace (`BytesMut` as a growable, sliceable byte buffer).
//!
//! The build environment has no route to a crates.io mirror, so the few
//! entry points the packet substrate needs are provided locally. The shim
//! is a thin wrapper over `Vec<u8>`; it does not implement the zero-copy
//! reference counting of the real crate (nothing in this workspace relies
//! on it — packets own their frames outright).
//!
//! [`bytes`]: https://docs.rs/bytes

#![forbid(unsafe_code)]

use std::borrow::{Borrow, BorrowMut};
use std::fmt;
use std::ops::{Deref, DerefMut};

/// A unique, growable buffer of bytes (shim over `Vec<u8>`).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(capacity) }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut { inner: vec![0u8; len] }
    }

    /// Copy `data` into a fresh buffer.
    pub fn from_slice(data: &[u8]) -> Self {
        BytesMut { inner: data.to_vec() }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Append `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Shorten the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Grow or shrink to `new_len`, filling new bytes with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.inner.resize(new_len, value);
    }

    /// Clear the buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// View as a byte slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.inner
    }

    /// View as a mutable byte slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl Borrow<[u8]> for BytesMut {
    fn borrow(&self) -> &[u8] {
        &self.inner
    }
}

impl BorrowMut<[u8]> for BytesMut {
    fn borrow_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.inner {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut::from_slice(data)
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.inner.extend(iter);
    }
}

impl PartialEq<[u8]> for BytesMut {
    fn eq(&self, other: &[u8]) -> bool {
        self.inner.as_slice() == other
    }
}

impl PartialEq<&[u8]> for BytesMut {
    fn eq(&self, other: &&[u8]) -> bool {
        self.inner.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for BytesMut {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.inner == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_index() {
        let mut b = BytesMut::zeroed(8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&x| x == 0));
        b[3] = 0xAB;
        assert_eq!(b[3], 0xAB);
        b[0..2].copy_from_slice(&[1, 2]);
        assert_eq!(&b[..4], &[1, 2, 0, 0xAB]);
    }

    #[test]
    fn equality_and_clone() {
        let a = BytesMut::from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, b"hello"[..]);
    }

    #[test]
    fn debug_is_readable() {
        let b = BytesMut::from_slice(b"a\x00b");
        assert_eq!(format!("{b:?}"), "b\"a\\x00b\"");
    }
}
