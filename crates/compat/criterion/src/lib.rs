//! Minimal, API-compatible shim for the subset of the [`criterion`] crate
//! used by this workspace's `benches/`: `Criterion`, benchmark groups,
//! `bench_function`, `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no route to a crates.io mirror, so this shim
//! provides a small but honest harness: each benchmark is warmed up, then
//! timed over enough iterations to fill the configured measurement window,
//! and the mean ns/iter is printed. There is no statistical analysis, HTML
//! report, or outlier rejection — the goal is that `cargo bench` compiles,
//! runs, and produces comparable numbers in CI logs.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (shim: ignored beyond batching).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Set the number of samples (shim: scales total iterations).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement window per benchmark.
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        // The shim caps the window so `cargo bench` stays fast in CI.
        self.measurement_time = dur.min(Duration::from_millis(500));
        self
    }

    /// Set the warm-up window per benchmark.
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up_time = dur.min(Duration::from_millis(100));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Run one benchmark outside a group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self, id, f);
        self
    }
}

/// A named set of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, &full, f);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Override the measurement window for this group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.criterion.measurement_time = dur.min(Duration::from_millis(500));
        self
    }

    /// Close the group (shim: nothing to flush).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs the timed inner loop.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
    warmup: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up (untimed).
        let w0 = Instant::now();
        while w0.elapsed() < self.warmup {
            black_box(routine());
        }
        // Timed: batches of doubling size until the budget is spent.
        let mut batch = 1u64;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            for _ in 0..batch {
                black_box(routine());
            }
            self.iters_done += batch;
            batch = (batch * 2).min(1 << 20);
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let w0 = Instant::now();
        while w0.elapsed() < self.warmup {
            black_box(routine(setup()));
        }
        let mut timed = Duration::ZERO;
        while timed < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            timed += t0.elapsed();
            self.iters_done += 1;
        }
        self.elapsed = timed;
    }
}

fn run_one(c: &Criterion, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget: c.measurement_time,
        warmup: c.warm_up_time,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{id:<48} (no iterations run)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    println!("{id:<48} {ns:>14.1} ns/iter  ({} iters)", b.iters_done);
}

/// Build a benchmark-group function, as in real criterion. Supports both
/// the plain list form and the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("shim");
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups > 0);
    }
}
