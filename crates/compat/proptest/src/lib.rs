//! Minimal, API-compatible shim for the subset of the [`proptest`] crate
//! used by this workspace: the `proptest!` macro, `any::<T>()`, integer and
//! float range strategies, tuple strategies, `Strategy::prop_map`,
//! `collection::vec`, `prop_assert*`, and `prop_assume!`.
//!
//! The build environment has no route to a crates.io mirror, so this shim
//! provides random-input testing without upstream proptest's shrinking: a
//! failing case panics with the failing assertion message and the case
//! number. Generation is deterministic per test (seeded from the test
//! name), so failures reproduce.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw new ones.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Per-case result type produced by the `proptest!` expansion.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// A deterministic RNG for `test_name` (FNV-1a over the name).
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A value generator. The shim has no shrinking: `generate` is all there is.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (upstream's `prop_map`, minus
    /// shrinking).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0/0);
impl_tuple_strategy!(S0/0, S1/1);
impl_tuple_strategy!(S0/0, S1/1, S2/2);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning several magnitudes.
        let mag: f64 = rng.random();
        let exp: i32 = rng.random_range(-16i32..16);
        let v = mag * 2f64.powi(exp);
        if rng.random::<bool>() {
            v
        } else {
            -v
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec()`](fn@vec): a fixed count or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// Strategy producing `Vec`s of `element` with a size in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `vec(element, 0..10)` or `vec(element, 7)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!`-based test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Assert inside a proptest case; failure reports the case inputs' seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Reject this case's inputs (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Supports the config header and `pat in strategy`
/// argument lists, as in upstream proptest (without shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u64 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases as u64 * 64 + 1024,
                    "proptest {}: too many rejected cases ({} attempts)",
                    stringify!($name),
                    attempts,
                );
                let outcome: $crate::TestCaseResult = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed on case {}: {}",
                            stringify!($name),
                            accepted,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 10u32..20, y in 0u8..=4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn fixed_vec_size(v in crate::collection::vec(any::<u32>(), 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn assume_rejects(mut x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            x += 2;
            prop_assert!(x % 2 == 0);
            prop_assert_ne!(x % 2, 1);
        }

        #[test]
        fn nested_vecs(vv in crate::collection::vec(crate::collection::vec(0u8..4, 1..3), 1..4)) {
            for v in &vv {
                prop_assert!(!v.is_empty() && v.len() < 3);
                prop_assert!(v.iter().all(|&b| b < 4));
            }
        }

        #[test]
        fn tuple_strategies_compose(pairs in crate::collection::vec((0u32..10, 100u8..=200), 1..5)) {
            for &(a, b) in &pairs {
                prop_assert!(a < 10);
                prop_assert!((100..=200).contains(&b));
            }
        }

        #[test]
        fn prop_map_transforms(evens in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert!(evens % 2 == 0 && evens < 100);
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
