//! Minimal, API-compatible shim for the subset of the [`rand`] crate (0.9
//! API) used by this workspace: `rngs::SmallRng`, the `Rng` / `RngCore` /
//! `SeedableRng` traits, `random`, `random_range`, `random_bool`, and
//! `fill_bytes`.
//!
//! The build environment has no route to a crates.io mirror, so this local
//! shim provides the needed slice. `SmallRng` is xoshiro256++ (the same
//! algorithm family the real crate uses on 64-bit targets) seeded through
//! SplitMix64, so all generators in the workspace remain deterministic for
//! a given seed. Exact stream equality with the upstream crate is *not*
//! promised (and nothing in the workspace asserts it); determinism and
//! uniformity are.
//!
//! [`rand`]: https://docs.rs/rand

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw output words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        let mut chunks = dst.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed, expanded with SplitMix64 (as the real
    /// crate does for the xoshiro family).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the standard seed expander.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible uniformly at random by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                    u64 => next_u64, usize => next_u64,
                    i8 => next_u32, i16 => next_u32, i32 => next_u32,
                    i64 => next_u64, isize => next_u64);

impl Standard for u128 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn draw(rng: &mut dyn RngCore) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types samplable uniformly from a range by [`Rng::random_range`].
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample from `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                // Work in u128 so full-width u64 spans cannot overflow.
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample empty range");
                // Widening-multiply range reduction (bias < 2^-64).
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo_w + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
        let _ = inclusive; // measure-zero distinction
        assert!(lo < hi, "cannot sample empty range");
        let unit = f64::draw(rng);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
        let _ = inclusive;
        assert!(lo < hi, "cannot sample empty range");
        let unit = f32::draw(rng);
        lo + (hi - lo) * unit
    }
}

/// Range types accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform random value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform random value from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is the one degenerate fixed point.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "p=0.25 gave {hits}/100000");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
