//! SLA-driven admission control — the operational loop the paper's
//! prediction method enables.
//!
//! Sekar et al. \[25\] (the consolidation argument in the paper's
//! introduction) assume an operator can pack packet-processing functions
//! onto shared boxes; the missing piece is knowing, *before* placing a
//! flow, whether everyone's service level survives. The predictor answers
//! exactly that from offline profiles, so admission control reduces to
//! bookkeeping:
//!
//! 1. every protected flow declares the throughput drop it can tolerate;
//! 2. a candidate placement is admitted iff every flow's *predicted* drop
//!    stays within its tolerance;
//! 3. "how many more X tenants fit?" is a monotone search over 2.
//!
//! Formally, placement `S = {f_1..f_n}` with SLA limits `L_i` is admitted
//! iff for every flow `i`:
//!
//! `curve_{f_i}(Σ_{j≠i} r_j) ≤ L_i`
//!
//! where `r_j` is flow `j`'s solo refs/sec — the predictor's formula
//! applied once per flow, with the rest of the socket as its competitors.
//!
//! Prediction uses the paper's refs/sec method by default; switch to the
//! fill-rate refinement (see [`Predictor`]) when hot-spot workloads (DPI,
//! CLASS) are in the mix. Throughput SLAs are one half of a viable
//! placement; the other half — per-flow latency budgets resolved to batch
//! sizes — is [`plan_socket`](crate::batch_control::plan_socket), which
//! combines this controller with the adaptive batch controller.

use crate::predictor::Predictor;
use crate::workload::FlowType;

/// A service-level agreement for one flow type: the largest
/// contention-induced throughput drop (percent) the tenant tolerates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sla {
    /// The protected flow type.
    pub flow: FlowType,
    /// Maximum tolerated drop, in percent of solo throughput.
    pub max_drop_pct: f64,
}

/// One flow's evaluation within a candidate placement.
#[derive(Debug, Clone, Copy)]
pub struct FlowVerdict {
    /// The flow.
    pub flow: FlowType,
    /// Predicted drop (%) given its co-runners in the placement.
    pub predicted_drop_pct: f64,
    /// The applicable SLA limit, if any.
    pub limit_pct: Option<f64>,
}

impl FlowVerdict {
    /// Whether this flow's prediction respects its SLA (no SLA = always).
    pub fn ok(&self) -> bool {
        self.limit_pct.map(|l| self.predicted_drop_pct <= l).unwrap_or(true)
    }
}

/// The outcome of evaluating one candidate placement.
#[derive(Debug, Clone)]
pub struct AdmissionDecision {
    /// Per-flow verdicts, in placement order.
    pub verdicts: Vec<FlowVerdict>,
}

impl AdmissionDecision {
    /// Whether every flow's SLA holds.
    pub fn admitted(&self) -> bool {
        self.verdicts.iter().all(FlowVerdict::ok)
    }

    /// The flows whose SLAs the placement would violate.
    pub fn violations(&self) -> Vec<&FlowVerdict> {
        self.verdicts.iter().filter(|v| !v.ok()).collect()
    }
}

/// Prediction-backed admission control. See the module docs.
pub struct AdmissionController<'a> {
    predictor: &'a Predictor,
    use_fillrate: bool,
}

impl<'a> AdmissionController<'a> {
    /// A controller using the paper's refs/sec prediction.
    pub fn new(predictor: &'a Predictor) -> Self {
        AdmissionController { predictor, use_fillrate: false }
    }

    /// Switch to the fill-rate refinement (recommended when hot-spot
    /// workloads appear as competitors).
    pub fn with_fillrate(mut self) -> Self {
        self.use_fillrate = true;
        self
    }

    fn predict(&self, target: FlowType, competitors: &[FlowType]) -> f64 {
        if self.use_fillrate {
            self.predictor.predict_drop_fillrate(target, competitors)
        } else {
            self.predictor.predict_drop(target, competitors)
        }
    }

    /// Evaluate a candidate socket placement against a set of SLAs. Flows
    /// without a matching SLA are unconstrained (pure best-effort tenants);
    /// when several SLAs name the same type, the strictest applies.
    pub fn evaluate(&self, socket: &[FlowType], slas: &[Sla]) -> AdmissionDecision {
        let limit_for = |f: FlowType| {
            slas.iter()
                .filter(|s| s.flow == f)
                .map(|s| s.max_drop_pct)
                .fold(None, |acc: Option<f64>, l| Some(acc.map_or(l, |a| a.min(l))))
        };
        let verdicts = socket
            .iter()
            .enumerate()
            .map(|(i, &flow)| {
                let competitors: Vec<FlowType> = socket
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, &c)| c)
                    .collect();
                FlowVerdict {
                    flow,
                    predicted_drop_pct: self.predict(flow, &competitors),
                    limit_pct: limit_for(flow),
                }
            })
            .collect();
        AdmissionDecision { verdicts }
    }

    /// The largest `n ≤ max_candidates` such that `base` plus `n` copies of
    /// `candidate` is admitted under `slas`. Returns 0 when even one
    /// candidate violates an SLA.
    ///
    /// Predicted drop is monotone in added competition (competition
    /// estimates are sums of non-negative solo rates and curves are
    /// monotone), so a linear scan from 1 is exact and the first rejection
    /// is final.
    pub fn max_admissible(
        &self,
        base: &[FlowType],
        slas: &[Sla],
        candidate: FlowType,
        max_candidates: usize,
    ) -> usize {
        let mut best = 0;
        let mut socket = base.to_vec();
        for n in 1..=max_candidates {
            socket.push(candidate);
            if self.evaluate(&socket, slas).admitted() {
                best = n;
            } else {
                break;
            }
        }
        best
    }

    /// Re-admission check for the supervisor's half-open breaker probe:
    /// would putting `candidate` back next to the currently `resident`
    /// flows keep every SLA (including the candidate's own)? The
    /// supervisor consults this *before* spending a trial window — a probe
    /// that prediction already rules out only re-opens the breaker and
    /// burns a window of the evicted tenant's traffic.
    pub fn readmit(
        &self,
        resident: &[FlowType],
        slas: &[Sla],
        candidate: FlowType,
    ) -> AdmissionDecision {
        let mut socket = resident.to_vec();
        socket.push(candidate);
        self.evaluate(&socket, slas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExpParams;

    fn predictor() -> Predictor {
        Predictor::profile(
            &[FlowType::Mon, FlowType::Fw, FlowType::SynMax],
            3,
            ExpParams::quick(),
            2,
        )
    }

    #[test]
    fn benign_placement_admitted_hostile_rejected() {
        let p = predictor();
        let ac = AdmissionController::new(&p);
        let slas = [Sla { flow: FlowType::Mon, max_drop_pct: 8.0 }];
        // MON with gentle FW co-runners: predicted drop tiny -> admit.
        let gentle = [FlowType::Mon, FlowType::Fw, FlowType::Fw];
        assert!(ac.evaluate(&gentle, &slas).admitted());
        // MON with five SYN_MAX: way past 8% -> reject, and the violation
        // names MON.
        let hostile =
            [FlowType::Mon, FlowType::SynMax, FlowType::SynMax, FlowType::SynMax,
             FlowType::SynMax, FlowType::SynMax];
        let d = ac.evaluate(&hostile, &slas);
        assert!(!d.admitted());
        assert_eq!(d.violations()[0].flow, FlowType::Mon);
    }

    #[test]
    fn flows_without_sla_are_unconstrained() {
        let p = predictor();
        let ac = AdmissionController::new(&p);
        let hostile = [FlowType::Mon, FlowType::SynMax, FlowType::SynMax];
        // No SLA at all: everything is admitted regardless of drops.
        assert!(ac.evaluate(&hostile, &[]).admitted());
    }

    #[test]
    fn strictest_sla_wins_on_duplicates() {
        let p = predictor();
        let ac = AdmissionController::new(&p);
        let slas = [
            Sla { flow: FlowType::Mon, max_drop_pct: 90.0 },
            Sla { flow: FlowType::Mon, max_drop_pct: 0.001 },
        ];
        let d = ac.evaluate(&[FlowType::Mon, FlowType::SynMax], &slas);
        assert_eq!(d.verdicts[0].limit_pct, Some(0.001));
        assert!(!d.admitted(), "the strict limit must apply");
    }

    #[test]
    fn max_admissible_monotone_in_sla() {
        let p = predictor();
        let ac = AdmissionController::new(&p);
        let strict = [Sla { flow: FlowType::Mon, max_drop_pct: 1.0 }];
        let loose = [Sla { flow: FlowType::Mon, max_drop_pct: 50.0 }];
        let base = [FlowType::Mon];
        let n_strict = ac.max_admissible(&base, &strict, FlowType::SynMax, 5);
        let n_loose = ac.max_admissible(&base, &loose, FlowType::SynMax, 5);
        assert!(n_loose >= n_strict, "looser SLA admits at least as many");
        assert!(n_loose >= 1, "a 50% SLA tolerates at least one SYN_MAX");
    }

    #[test]
    fn readmit_is_evaluate_with_the_candidate_appended() {
        let p = predictor();
        let ac = AdmissionController::new(&p);
        let slas = [Sla { flow: FlowType::Mon, max_drop_pct: 8.0 }];
        // A benign neighbourhood re-admits the evicted MON tenant...
        let d = ac.readmit(&[FlowType::Fw, FlowType::Fw], &slas, FlowType::Mon);
        assert!(d.admitted());
        assert_eq!(d.verdicts.last().unwrap().flow, FlowType::Mon);
        // ...a hostile one predicts the SLA still breaks: don't probe yet.
        let hostile = [FlowType::SynMax; 5];
        assert!(!ac.readmit(&hostile, &slas, FlowType::Mon).admitted());
    }

    #[test]
    fn fillrate_controller_uses_refinement() {
        let p = predictor();
        let refs = AdmissionController::new(&p);
        let fills = AdmissionController::new(&p).with_fillrate();
        let socket = [FlowType::Mon, FlowType::Fw, FlowType::Fw];
        let a = refs.evaluate(&socket, &[]).verdicts[0].predicted_drop_pct;
        let b = fills.evaluate(&socket, &[]).verdicts[0].predicted_drop_pct;
        // Both are valid predictions; the fill-rate one can never estimate
        // *more* competition than refs/sec.
        assert!(b <= a + 1.0, "fillrate {b:.2} vs refs {a:.2}");
    }

    #[test]
    fn admission_matches_direct_prediction() {
        let p = predictor();
        let ac = AdmissionController::new(&p);
        let socket = [FlowType::Mon, FlowType::Fw, FlowType::Fw];
        let d = ac.evaluate(&socket, &[]);
        let direct = p.predict_drop(FlowType::Mon, &[FlowType::Fw, FlowType::Fw]);
        assert!((d.verdicts[0].predicted_drop_pct - direct).abs() < 1e-9);
    }
}
