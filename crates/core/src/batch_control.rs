//! Adaptive batch control: the first closed loop in the codebase —
//! **model → decision → measurement → verification**.
//!
//! PRs 1–2 gave the datapath a batch-size knob and two fitted cost models;
//! this module turns the knob automatically. The paper's thesis is
//! *predictable* performance: an operator should be able to commit to a
//! service level before running the workload. Batching complicates that in
//! both directions — it raises throughput (framework and handoff charges
//! amortize as `F/b + p` and `C/b + S·ceil(b/L)/b`) but costs latency
//! (every packet waits for its whole vector). The controller resolves the
//! tension from the models alone:
//!
//! 1. **Calibrate** ([`BatchController::calibrate`]): profile the flow solo
//!    at two probe batch sizes (via [`SoloProfile`], on the batched
//!    datapath), fit [`BatchAmortization`] to the measured cycles/packet,
//!    and record a *tail factor* — the worst ratio of measured p99
//!    residence to the model's mean turn time, which captures how much
//!    fatter the tail is than the mean without assuming why.
//! 2. **Decide** ([`BatchController::choose`]): a batch of `b` packets
//!    completes together after one turn of `F + b·p` cycles, so predicted
//!    p99 residence is `tail_factor · (F + b·p) / freq`. Turn time is
//!    strictly increasing in `b` while cycles/packet is strictly
//!    decreasing, so the largest batch whose predicted p99 fits the budget
//!    is also the throughput-best feasible one — the decision is a scan,
//!    no search.
//! 3. **Verify** ([`BatchController::verify`]): run the flow at the chosen
//!    size and read the achieved p99 back from the
//!    [`LatencyHistogram`](pp_sim::latency::LatencyHistogram) (surfaced as
//!    [`LatencySummary`] on every [`FlowResult`](crate::experiment::FlowResult)).
//!    `repro adaptive` asserts the budget holds in every scenario and that
//!    the chosen batch keeps ≥ 90% of the best fixed batch's throughput
//!    under the same budget.
//!
//! The loop closes on the *predictor* too ([`revalidate_predictor`]):
//! batching changes every per-packet cost, so the paper's <3% contention-
//! prediction claim must be re-established on the batched datapath. The
//! same three-step method (solo refs/sec, SYN-ramp sensitivity curve,
//! curve lookup at Σ solo refs/sec) is run entirely at `batch > 1`.
//! Measurement verdict (paper scale): the amortization indeed leaves the
//! sensitivity *mechanism* intact at moderate batches, but the refs/sec
//! abstraction degrades as the batch grows — a batched turn commits a
//! whole vector's accesses as one block, so co-runners interleave at the
//! shared cache in vector-sized chunks the SYN calibration cannot
//! emulate. Worst-case error: <3 pp scalar, ~5 pp at batch 8, ~8 pp at
//! batch 64 (after densifying the curve's low-competition region).
//! `repro adaptive` reports per-mix refs/fill-rate/perfect predictions
//! and asserts the measured envelope (<12 pp at paper scale) as a
//! regression tripwire; see ROADMAP for the paths to tighten it.
//!
//! When even batch 1 cannot meet a budget, batching is the wrong lever:
//! [`ControlAction::Throttle`] points at the §4 containment loop
//! ([`ThrottleController`](crate::throttle::ThrottleController)) — slowing
//! the *co-runners* is the only remaining way to win back latency. And for
//! placement-time decisions, [`plan_socket`] combines this controller's
//! latency budgets with the predictor-backed throughput SLAs of
//! [`AdmissionController`]: a
//! placement is viable iff every flow has an admissible drop *and* a
//! feasible batch.

use crate::admission::{AdmissionController, AdmissionDecision, Sla};
use crate::experiment::{
    corun_against_solo, run_many, ContentionConfig, ExpParams, LatencySummary,
};
use crate::model::{BatchAmortization, CrossCoreHandoff};
use crate::predictor::{PredictionError, Predictor};
use crate::profiler::SoloProfile;
use crate::workload::FlowType;
use pp_sim::config::MachineConfig;

/// The candidate batch sizes the controller picks from — the same
/// power-of-two ladder the `repro batch` sweep measures, so every choice
/// is a size whose fixed-batch behaviour is characterized.
pub const CANDIDATE_BATCHES: [usize; 6] = [1, 4, 8, 16, 32, 64];

/// A per-flow latency budget: the largest acceptable 99th-percentile
/// ingress→egress residence time, in microseconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBudget {
    /// p99 residence-time budget, microseconds.
    pub p99_us: f64,
}

impl LatencyBudget {
    /// A budget of `p99_us` microseconds.
    pub fn us(p99_us: f64) -> Self {
        LatencyBudget { p99_us }
    }
}

/// One calibration probe: the flow measured solo at a fixed batch size.
#[derive(Debug, Clone)]
pub struct BatchProbe {
    /// The probe's batch size.
    pub batch: usize,
    /// Measured total cycles per packet.
    pub cycles_per_packet: f64,
    /// Measured throughput, packets/sec.
    pub pps: f64,
    /// Measured residence-time percentiles.
    pub latency: LatencySummary,
}

/// The controller's decision for one flow under one budget.
#[derive(Debug, Clone, Copy)]
pub struct BatchChoice {
    /// The chosen batch size (always one of [`CANDIDATE_BATCHES`]).
    pub batch: usize,
    /// Model-predicted p99 residence at that size, microseconds.
    pub predicted_p99_us: f64,
    /// Model-predicted total cycles/packet at that size.
    pub predicted_cycles_per_packet: f64,
    /// Whether the prediction fits the budget. `false` means even batch 1
    /// is predicted to miss — the choice is then the least-bad size (1).
    pub feasible: bool,
}

/// What the control plane should do about one (flow, budget) pair.
#[derive(Debug, Clone, Copy)]
pub enum ControlAction {
    /// Run at the chosen batch; the budget is predicted to hold.
    UseBatch(BatchChoice),
    /// No batch meets the budget — batching is the wrong lever. The
    /// remaining one is the §4 containment loop: throttle the co-runners
    /// (see [`ThrottleController`](crate::throttle::ThrottleController))
    /// or re-place the flow. Carries the least-bad choice (batch 1).
    Throttle(BatchChoice),
}

/// A verified decision: the choice plus the measured outcome at that size.
#[derive(Debug, Clone)]
pub struct VerifiedChoice {
    /// The model's decision.
    pub choice: BatchChoice,
    /// The measurement at the chosen size.
    pub achieved: BatchProbe,
    /// Whether the *measured* p99 met the budget.
    pub met_budget: bool,
}

/// Per-flow adaptive batch controller. See the module docs for the loop.
#[derive(Debug, Clone)]
pub struct BatchController {
    /// The flow this controller was calibrated for.
    pub flow: FlowType,
    /// The fitted `F/b + p` amortization model (total cycles/packet).
    pub model: BatchAmortization,
    /// Measured-p99 / model-mean-turn-time ratio at the low probe. A batch
    /// of 1 exposes every per-turn cost fluctuation, so this is usually
    /// the fatter tail.
    pub tail_lo: f64,
    /// The same ratio at the high probe. A 64-packet turn averages 64
    /// per-packet draws, so its p99 hugs the mean — tails *shrink* as
    /// batches grow, which is why one global factor would misprice the
    /// interior sizes.
    pub tail_hi: f64,
    /// Core frequency used to convert model cycles to (simulated)
    /// microseconds. Taken from [`MachineConfig::westmere`] — the same
    /// single config `run_scenario` builds every measurement machine
    /// from, so the probes' `LatencySummary` (converted there) and the
    /// model predictions (converted here) always use one frequency. If
    /// the experiment layer ever grows per-scenario machine configs, this
    /// must start travelling with the probes.
    pub freq_ghz: f64,
    /// The calibration probes (endpoints of [`CANDIDATE_BATCHES`]).
    pub probes: Vec<BatchProbe>,
}

impl BatchController {
    /// Probe one batch size: a solo run of `flow` on the batched datapath.
    fn probe(flow: FlowType, batch: usize, params: ExpParams) -> BatchProbe {
        let p = SoloProfile::measure(flow, params.with_batch(batch));
        BatchProbe {
            batch,
            cycles_per_packet: p.cycles_per_packet,
            pps: p.pps,
            latency: p.raw.latency,
        }
    }

    /// Build a controller from two already-measured probes (ascending
    /// batch sizes). Sweeps that measure the fixed-batch ladder anyway use
    /// this to calibrate without re-running the endpoints; co-run
    /// controllers calibrate from probes measured *in* the co-run (profile
    /// in context, like everything else in the paper's method).
    pub fn from_probes(flow: FlowType, lo: BatchProbe, hi: BatchProbe) -> Self {
        assert!(lo.batch < hi.batch, "probes must be distinct ascending batch sizes");
        let model = BatchAmortization::fit(
            (lo.batch as f64, lo.cycles_per_packet),
            (hi.batch as f64, hi.cycles_per_packet),
        );
        let freq_ghz = MachineConfig::westmere().freq_ghz;
        // Per-probe tail factor: measured p99 over the model's mean turn
        // time, clamped at ≥ 1 (a p99 cannot undercut the mean).
        let tail_at = |p: &BatchProbe| {
            let mean_turn_us =
                p.batch as f64 * model.cycles_per_packet(p.batch as f64) / (freq_ghz * 1e3);
            if mean_turn_us > 0.0 && p.latency.samples > 0 {
                (p.latency.p99_us / mean_turn_us).max(1.0)
            } else {
                1.0
            }
        };
        let (tail_lo, tail_hi) = (tail_at(&lo), tail_at(&hi));
        BatchController { flow, model, tail_lo, tail_hi, freq_ghz, probes: vec![lo, hi] }
    }

    /// Calibrate a controller for `flow`: solo probe runs at batch 1 and
    /// 64 (the ladder's endpoints), a two-point [`BatchAmortization::fit`],
    /// and the per-probe tail factors. Probes run in parallel across host
    /// threads.
    pub fn calibrate(flow: FlowType, params: ExpParams, threads: usize) -> Self {
        let probe_sizes = [CANDIDATE_BATCHES[0], CANDIDATE_BATCHES[5]];
        let mut probes: Vec<BatchProbe> = run_many(probe_sizes.to_vec(), threads, move |b| {
            Self::probe(flow, b, params)
        });
        let hi = probes.pop().expect("two probes");
        let lo = probes.pop().expect("two probes");
        Self::from_probes(flow, lo, hi)
    }

    /// Tail factor at batch `b`: log-log interpolation between the probes'
    /// factors (tails decay smoothly as turn averaging grows), clamped to
    /// the probe interval.
    fn tail_at(&self, batch: usize) -> f64 {
        let (b_lo, b_hi) = (self.probes[0].batch as f64, self.probes[1].batch as f64);
        let t = ((batch as f64).ln() - b_lo.ln()) / (b_hi.ln() - b_lo.ln());
        let t = t.clamp(0.0, 1.0);
        (self.tail_lo.ln() * (1.0 - t) + self.tail_hi.ln() * t).exp()
    }

    /// Model-predicted p99 residence at batch `b`, microseconds: one turn
    /// is `b · cycles_per_packet(b) = F + b·p` cycles and the whole vector
    /// completes together, scaled by the interpolated tail factor.
    pub fn predicted_p99_us(&self, batch: usize) -> f64 {
        let turn_cycles = batch as f64 * self.model.cycles_per_packet(batch as f64);
        self.tail_at(batch) * turn_cycles / (self.freq_ghz * 1e3)
    }

    /// Model-predicted solo throughput at batch `b`, packets/sec:
    /// `freq / cycles_per_packet(b)`. This is the envelope reference the
    /// supervisor's drift detector compares clean windows against — when
    /// measured pps diverges from this for sustained *non-fault* windows,
    /// the model (not the tenant) is wrong, and the right move is a re-fit
    /// rather than a walk down the degradation ladder.
    pub fn predicted_pps(&self, batch: usize) -> f64 {
        self.freq_ghz * 1e9 / self.model.cycles_per_packet(batch as f64)
    }

    /// Shared decision core: descending scan over the candidate ladder
    /// with the given p99 and cycles/packet predictors; falls back to the
    /// least-bad size (1), marked infeasible, when nothing fits.
    fn choose_by(
        &self,
        p99_us: impl Fn(usize) -> f64,
        cycles_per_packet: impl Fn(f64) -> f64,
        budget: LatencyBudget,
    ) -> BatchChoice {
        for &b in CANDIDATE_BATCHES.iter().rev() {
            if p99_us(b) <= budget.p99_us {
                return BatchChoice {
                    batch: b,
                    predicted_p99_us: p99_us(b),
                    predicted_cycles_per_packet: cycles_per_packet(b as f64),
                    feasible: true,
                };
            }
        }
        BatchChoice {
            batch: 1,
            predicted_p99_us: p99_us(1),
            predicted_cycles_per_packet: cycles_per_packet(1.0),
            feasible: false,
        }
    }

    /// Pick the largest candidate batch whose predicted p99 fits `budget`.
    /// Monotonicity makes this optimal: turn time rises with `b`, so the
    /// largest feasible size is unique, and cycles/packet falls with `b`,
    /// so it is also the feasible throughput maximum.
    pub fn choose(&self, budget: LatencyBudget) -> BatchChoice {
        self.choose_by(
            |b| self.predicted_p99_us(b),
            |b| self.model.cycles_per_packet(b),
            budget,
        )
    }

    /// [`choose`](Self::choose), expressed as a control action: an
    /// infeasible budget escalates to the throttle/re-place path instead
    /// of silently running a flow that will breach its SLA.
    pub fn recommend(&self, budget: LatencyBudget) -> ControlAction {
        let choice = self.choose(budget);
        if choice.feasible {
            ControlAction::UseBatch(choice)
        } else {
            ControlAction::Throttle(choice)
        }
    }

    /// Pipeline variant: pick the burst size for a two-stage pipeline from
    /// the combined `F/b + p + C/b + S·ceil(b/L)/b` model. The residence
    /// model adds the handoff term to each turn; queue wait is folded into
    /// the tail factor (calibrated on measured residence, which includes
    /// it at the probe sizes).
    pub fn choose_pipeline(
        &self,
        handoff: &CrossCoreHandoff,
        budget: LatencyBudget,
    ) -> BatchChoice {
        self.choose_by(
            |b| {
                let turn =
                    b as f64 * self.model.pipeline_cycles_per_packet(handoff, b as f64);
                self.tail_at(b) * turn / (self.freq_ghz * 1e3)
            },
            |b| self.model.pipeline_cycles_per_packet(handoff, b),
            budget,
        )
    }

    /// Close the loop with a **solo** run: measure the flow alone at the
    /// chosen size and read the achieved p99 back from the latency
    /// histogram. Verification must match the calibration context — use
    /// this only for controllers calibrated from solo probes
    /// ([`calibrate`](Self::calibrate)); a controller built from co-run
    /// probes must be verified against a measurement of the same co-run
    /// (measure the scenario yourself and pass the point to
    /// [`verify_measured`](Self::verify_measured), as `repro adaptive`
    /// does with its fixed-batch grid).
    pub fn verify(
        &self,
        choice: BatchChoice,
        budget: LatencyBudget,
        params: ExpParams,
    ) -> VerifiedChoice {
        self.verify_measured(choice, budget, Self::probe(self.flow, choice.batch, params))
    }

    /// Close the loop against an externally measured point (any context:
    /// solo, co-run, pipeline), checking the achieved p99 at the chosen
    /// size against the budget.
    pub fn verify_measured(
        &self,
        choice: BatchChoice,
        budget: LatencyBudget,
        achieved: BatchProbe,
    ) -> VerifiedChoice {
        assert_eq!(
            achieved.batch, choice.batch,
            "verification must measure the chosen batch size"
        );
        let met_budget = achieved.latency.p99_us <= budget.p99_us;
        VerifiedChoice { choice, achieved, met_budget }
    }
}

/// Outcome of re-running the paper's prediction methodology entirely on
/// the batched datapath. See [`revalidate_predictor`].
pub struct Revalidation {
    /// The batch size everything (solos, ramps, co-runs) ran at.
    pub batch: usize,
    /// The predictor profiled at that batch size.
    pub predictor: Predictor,
    /// Prediction-vs-measurement comparisons for the requested mixes.
    pub errors: Vec<PredictionError>,
}

impl Revalidation {
    /// Worst absolute prediction error (pp) over all mixes — the batched
    /// analogue of the paper's "<3%" claim.
    pub fn worst_abs_error(&self) -> f64 {
        self.errors.iter().map(|e| e.error().abs()).fold(0.0, f64::max)
    }
}

/// Re-validate the contention predictor under batching: profile `types`
/// (solo + SYN ramp) at `batch` packets per turn, then predict and measure
/// each `(target, competitors)` mix at the same batch size. The per-packet
/// costs all change under batching; the claim under test is that the
/// *sensitivity mechanism* — drop as a function of competing refs/sec —
/// does not, so the three-step method keeps its accuracy.
///
/// One methodological addition over the scalar ramp: batched sensitivity
/// curves are cliff-shaped at low competition (a single 64-packet
/// competitor turn already evicts a lot per interleave), and the standard
/// 5-copy SYN ramp cannot sample below five times the gentlest SYN's
/// refs/sec — every mix landing in that gap would be interpolated
/// linearly from the `(0, 0)` anchor and badly under-predicted. The
/// profiling phase therefore **densifies the low-competition region**
/// with 1-, 2-, and 3-copy runs of the gentlest SYN level (still pure
/// offline SYN profiling — no predicted mix is ever measured).
pub fn revalidate_predictor(
    types: &[FlowType],
    mixes: &[(FlowType, Vec<FlowType>)],
    batch: usize,
    levels: u8,
    params: ExpParams,
    threads: usize,
) -> Revalidation {
    let batched = params.with_batch(batch);
    let predictor = Predictor::profile(types, levels, batched, threads);
    let solos: std::collections::HashMap<FlowType, crate::experiment::FlowResult> = types
        .iter()
        .map(|&t| (t, predictor.solo(t).expect("profiled").raw.clone()))
        .collect();

    // Low-competition densification (see the doc comment above).
    let gentlest = FlowType::Syn { level: 0, levels };
    let low_runs: Vec<(FlowType, usize)> =
        types.iter().flat_map(|&t| [1usize, 2, 3].map(|n| (t, n))).collect();
    let low_solos = solos.clone();
    let low_outcomes = run_many(low_runs, threads, move |(t, n)| {
        let o = corun_against_solo(
            &low_solos[&t],
            t,
            &vec![gentlest; n],
            ContentionConfig::Both,
            batched,
        );
        (t, o)
    });
    let augment = |t: FlowType, pts: &[(f64, f64)], by_fills: bool| {
        let mut pts = pts.to_vec();
        pts.extend(low_outcomes.iter().filter(|(lt, _)| *lt == t).map(|(_, o)| {
            let x =
                if by_fills { o.competing_fills_per_sec } else { o.competing_refs_per_sec };
            (x, o.drop_pct)
        }));
        crate::sensitivity::SensitivityCurve::from_points(pts)
    };
    let curves: Vec<(FlowType, crate::sensitivity::SensitivityCurve)> = types
        .iter()
        .map(|&t| (t, augment(t, predictor.curve(t).expect("profiled").points(), false)))
        .collect();
    let fill_curves: Vec<(FlowType, crate::sensitivity::SensitivityCurve)> = types
        .iter()
        .map(|&t| (t, augment(t, predictor.fill_curve(t).expect("profiled").points(), true)))
        .collect();
    let solo_profiles: Vec<SoloProfile> =
        types.iter().map(|&t| predictor.solo(t).expect("profiled").clone()).collect();
    let predictor =
        Predictor::from_parts(solo_profiles, curves, levels).with_fill_curves(fill_curves);
    let outcomes = run_many(mixes.to_vec(), threads, move |(target, competitors)| {
        let o = corun_against_solo(
            &solos[&target],
            target,
            &competitors,
            ContentionConfig::Both,
            batched,
        );
        (target, competitors, o)
    });
    let errors = outcomes
        .into_iter()
        .map(|(target, competitors, o)| PredictionError {
            target,
            predicted: predictor.predict_drop(target, &competitors),
            predicted_perfect: predictor.predict_drop_perfect(target, o.competing_refs_per_sec),
            measured: o.drop_pct,
            competitors,
        })
        .collect();
    Revalidation { batch, predictor, errors }
}

/// A placement-time plan for one socket: throughput SLAs checked by the
/// predictor-backed admission controller, latency budgets resolved to
/// batch sizes by the per-flow controllers.
#[derive(Debug)]
pub struct SocketPlan {
    /// The admission verdicts (throughput-drop SLAs).
    pub admission: AdmissionDecision,
    /// Per-flow batch decisions, in socket order. `None` for flows with no
    /// declared latency budget (they default to the largest candidate).
    pub batches: Vec<(FlowType, BatchChoice)>,
}

impl SocketPlan {
    /// Whether the placement is viable: every SLA admitted and every
    /// budgeted flow has a feasible batch.
    pub fn viable(&self) -> bool {
        self.admission.admitted() && self.batches.iter().all(|(_, c)| c.feasible)
    }
}

/// Combine admission control with batch control for a candidate socket
/// placement: flow `i` runs at the batch its controller picks for its
/// budget, and the whole placement is admitted only if the predicted
/// throughput drops also respect `slas`. Controllers are looked up by
/// flow type. A flow with neither controller nor budget runs wide open
/// (ladder top, trivially feasible); a flow that *declares a budget* but
/// has no calibrated controller is **infeasible** — an SLA nobody can
/// certify must flag the plan, not silently pass.
pub fn plan_socket(
    controllers: &[BatchController],
    admission: &AdmissionController<'_>,
    socket: &[FlowType],
    slas: &[Sla],
    budgets: &[(FlowType, LatencyBudget)],
) -> SocketPlan {
    let decision = admission.evaluate(socket, slas);
    let batches = socket
        .iter()
        .map(|&f| {
            let ctl = controllers.iter().find(|c| c.flow == f);
            let budget = budgets.iter().find(|(t, _)| *t == f).map(|(_, b)| *b);
            let choice = match (ctl, budget) {
                (Some(c), Some(b)) => c.choose(b),
                (Some(c), None) => c.choose(LatencyBudget::us(f64::INFINITY)),
                // Unconstrained and uncalibrated: run wide open.
                (None, None) => BatchChoice {
                    batch: *CANDIDATE_BATCHES.last().unwrap(),
                    predicted_p99_us: 0.0,
                    predicted_cycles_per_packet: 0.0,
                    feasible: true,
                },
                // A declared budget with no controller cannot be certified:
                // surface it as infeasible at the safe size.
                (None, Some(b)) => BatchChoice {
                    batch: 1,
                    predicted_p99_us: f64::INFINITY,
                    predicted_cycles_per_packet: f64::INFINITY,
                    feasible: b.p99_us.is_infinite(),
                },
            };
            (f, choice)
        })
        .collect();
    SocketPlan { admission: decision, batches }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> BatchController {
        BatchController::calibrate(FlowType::Ip, ExpParams::quick(), 2)
    }

    #[test]
    fn calibration_fits_a_falling_curve() {
        let c = controller();
        assert_eq!(c.probes.len(), 2);
        assert!(c.model.per_batch_cycles > 0.0, "F = {}", c.model.per_batch_cycles);
        assert!(c.model.per_packet_cycles > 0.0, "p = {}", c.model.per_packet_cycles);
        assert!(c.tail_lo >= 1.0 && c.tail_hi >= 1.0, "tail factors below 1");
        assert!(
            c.tail_lo >= c.tail_hi * 0.5,
            "batch-1 tails should not be wildly thinner than batch-64 tails"
        );
        // Sanity: predicted p99 grows with batch size (turn time dominates).
        assert!(c.predicted_p99_us(64) > c.predicted_p99_us(1));
    }

    #[test]
    fn predicted_pps_rises_with_batch_and_inverts_cycles() {
        let c = controller();
        // Larger batches amortize F: cycles/packet falls, pps rises.
        assert!(c.predicted_pps(64) > c.predicted_pps(1));
        // And the definition holds: pps * cycles/packet = core frequency.
        let b = 32;
        let back = c.predicted_pps(b) * c.model.cycles_per_packet(b as f64);
        assert!((back / (c.freq_ghz * 1e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loose_budget_picks_the_top_tight_budget_picks_one() {
        let c = controller();
        let loose = c.choose(LatencyBudget::us(1e9));
        assert_eq!(loose.batch, 64);
        assert!(loose.feasible);
        // A budget below even the batch-1 prediction is infeasible.
        let tight = c.choose(LatencyBudget::us(c.predicted_p99_us(1) * 0.5));
        assert_eq!(tight.batch, 1);
        assert!(!tight.feasible);
        match c.recommend(LatencyBudget::us(c.predicted_p99_us(1) * 0.5)) {
            ControlAction::Throttle(ch) => assert_eq!(ch.batch, 1),
            ControlAction::UseBatch(_) => panic!("infeasible budget must escalate"),
        }
    }

    #[test]
    fn choice_is_monotone_in_the_budget() {
        let c = controller();
        let mut last = 0usize;
        for mult in [0.9, 2.0, 8.0, 32.0, 128.0, 1024.0] {
            let b = c.choose(LatencyBudget::us(c.predicted_p99_us(1) * mult)).batch;
            assert!(b >= last, "budget x{mult}: batch {b} < previous {last}");
            last = b;
        }
        assert_eq!(last, 64, "a huge budget must reach the ladder top");
    }

    #[test]
    fn verified_choice_meets_a_sane_budget() {
        // The end-to-end loop at test scale: pick for a budget 4x the
        // measured batch-1 p99, then verify the measurement agrees.
        let c = controller();
        let budget = LatencyBudget::us(c.probes[0].latency.p99_us * 4.0);
        let choice = c.choose(budget);
        assert!(choice.feasible);
        assert!(choice.batch >= 1);
        let v = c.verify(choice, budget, ExpParams::quick());
        assert!(
            v.met_budget,
            "chosen batch {} achieved p99 {:.2}us over budget {:.2}us",
            choice.batch, v.achieved.latency.p99_us, budget.p99_us
        );
    }

    #[test]
    fn pipeline_choice_shrinks_under_heavy_handoff() {
        let c = controller();
        let light = CrossCoreHandoff {
            control_cycles_per_burst: 10.0,
            slot_line_cycles: 5.0,
            slots_per_line: 4.0,
        };
        let heavy = CrossCoreHandoff {
            control_cycles_per_burst: 10_000.0,
            slot_line_cycles: 5_000.0,
            slots_per_line: 4.0,
        };
        let budget = LatencyBudget::us(c.predicted_p99_us(16));
        let b_light = c.choose_pipeline(&light, budget).batch;
        let b_heavy = c.choose_pipeline(&heavy, budget).batch;
        assert!(
            b_heavy <= b_light,
            "a costlier handoff cannot afford a larger burst: {b_heavy} > {b_light}"
        );
    }

    #[test]
    fn revalidation_reports_errors_for_requested_mixes() {
        // Tiny scale: 2 types, 2 mixes, batch 8, short ramp. The <3pp
        // paper-scale assertion lives in `repro adaptive`; here we check
        // the plumbing (batched profiling + batched co-runs + error calc).
        let types = [FlowType::Mon, FlowType::Fw];
        let mixes = vec![
            (FlowType::Mon, vec![FlowType::Fw; 5]),
            (FlowType::Fw, vec![FlowType::Mon; 5]),
        ];
        let r = revalidate_predictor(&types, &mixes, 8, 3, ExpParams::quick(), 2);
        assert_eq!(r.batch, 8);
        assert_eq!(r.errors.len(), 2);
        for e in &r.errors {
            assert!(e.measured.is_finite() && e.predicted.is_finite());
        }
        // Quick-scale windows are tiny; the bound here is the plumbing
        // bound, not the paper's.
        assert!(
            r.worst_abs_error() < 25.0,
            "batched prediction should be in the right ballpark: {:.1}pp",
            r.worst_abs_error()
        );
    }

    #[test]
    fn socket_plan_combines_admission_and_batching() {
        let predictor = Predictor::profile(
            &[FlowType::Mon, FlowType::Fw],
            3,
            ExpParams::quick(),
            2,
        );
        let admission = AdmissionController::new(&predictor);
        let controllers = vec![controller()]; // IP only
        let socket = [FlowType::Mon, FlowType::Fw];
        let slas = [Sla { flow: FlowType::Mon, max_drop_pct: 99.0 }];
        let plan = plan_socket(&controllers, &admission, &socket, &slas, &[]);
        assert_eq!(plan.batches.len(), 2);
        // No controller and no budget for MON/FW: both run wide open.
        assert!(plan.batches.iter().all(|(_, c)| c.batch == 64 && c.feasible));
        assert!(plan.viable(), "a 99% SLA with feasible batches is viable");
    }

    #[test]
    fn declared_budget_without_controller_is_infeasible() {
        let predictor = Predictor::profile(&[FlowType::Mon], 3, ExpParams::quick(), 2);
        let admission = AdmissionController::new(&predictor);
        // MON declares a tight p99 budget but nobody calibrated a MON
        // controller: the plan must flag it rather than silently admit.
        let plan = plan_socket(
            &[],
            &admission,
            &[FlowType::Mon],
            &[],
            &[(FlowType::Mon, LatencyBudget::us(1.0))],
        );
        assert!(!plan.batches[0].1.feasible, "an uncertifiable SLA cannot be feasible");
        assert_eq!(plan.batches[0].1.batch, 1, "fall back to the safe size");
        assert!(!plan.viable());
    }
}
