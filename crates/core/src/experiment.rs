//! Scenario construction and measurement — the machinery behind every
//! experiment in the paper's evaluation.
//!
//! A [`Scenario`] places flows on cores with explicit NUMA data placement;
//! [`run_scenario`] builds a fresh machine, runs warmup + a measurement
//! window, and returns per-flow metrics (including per-function tag
//! counters). The three contention configurations of Fig. 3 are provided by
//! [`ContentionConfig`]:
//!
//! * `CacheOnly` (3a) — competitors co-run on the target's socket but their
//!   data is homed on the remote socket: they share the target's L3 while
//!   their DRAM traffic uses the remote controller.
//! * `MemCtrlOnly` (3b) — competitors run on the other socket (own L3) but
//!   their data is homed on the target's socket: they share only the
//!   target's memory controller (via QPI).
//! * `Both` (3c) — competitors co-run on the target's socket with local
//!   data: cache and controller are both contended. This is also the
//!   "realistic" co-location used in Fig. 2.
//!
//! Every scenario is an independent, deterministic simulation (seeded RNG,
//! no host-time dependence), so sweeps parallelize across host threads with
//! bitwise-identical results.

use crate::workload::{FlowType, Scale};
use pp_sim::config::MachineConfig;
use pp_sim::counters::{Counts, DerivedMetrics};
use pp_sim::engine::Engine;
use pp_sim::machine::Machine;
use pp_sim::types::{CoreId, Cycles, MemDomain};

/// Measurement parameters shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExpParams {
    /// Simulated warmup before counters are read, in milliseconds.
    pub warmup_ms: f64,
    /// Simulated measurement window, in milliseconds.
    pub window_ms: f64,
    /// Data-structure scale.
    pub scale: Scale,
    /// Master seed; per-flow seeds are derived deterministically.
    pub seed: u64,
    /// Packets per engine turn for every flow in the scenario: 0 runs the
    /// scalar datapath (the paper's configuration and the default), n ≥ 1
    /// runs the batched datapath with n-packet vectors. Profiling at
    /// `batch_size > 0` is how the contention predictor is re-validated
    /// under batching (see [`crate::batch_control`]).
    pub batch_size: usize,
}

impl ExpParams {
    /// Paper-scale measurement (used by the `repro` harness).
    ///
    /// The window was 18 ms through PR 2; the PR-3 simulator speedup pays
    /// for 30 ms at roughly the old wall cost, which covers ~2/3 more
    /// packets per sweep point and visibly smooths the Fig. 5/7 curves.
    /// `repro --packets N` overrides this knob for any size.
    pub fn paper() -> Self {
        ExpParams { warmup_ms: 8.0, window_ms: 30.0, scale: Scale::Paper, seed: 42, batch_size: 0 }
    }

    /// Fast test-scale measurement (used by unit/integration tests).
    pub fn quick() -> Self {
        ExpParams { warmup_ms: 1.0, window_ms: 3.0, scale: Scale::Test, seed: 42, batch_size: 0 }
    }

    /// Run every flow of the scenario on the batched datapath with
    /// `batch`-packet vectors (0 restores the scalar path). Solo profiles,
    /// SYN ramps, and co-runs measured with the same `batch` compare like
    /// with like — the batched analogue of the paper's methodology.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch_size = batch;
        self
    }

    /// Resize the measurement window so a scalar flow covers roughly
    /// `packets` packets — the one knob `repro --packets N` exposes for
    /// simulation size, replacing per-experiment window constants.
    ///
    /// The conversion assumes the nominal ~1000 cycles/packet that the
    /// realistic workloads average at 2.8 GHz; it is a sizing heuristic,
    /// not a guarantee (MON covers fewer packets per window than IP).
    /// Warmup scales to a third of the window, floored so caches still
    /// reach steady state on tiny windows.
    pub fn with_packets(mut self, packets: u64) -> Self {
        const NOMINAL_CYCLES_PER_PACKET: f64 = 1000.0;
        const NOMINAL_GHZ: f64 = 2.8;
        let window_ms =
            packets.max(1) as f64 * NOMINAL_CYCLES_PER_PACKET / (NOMINAL_GHZ * 1e9) * 1e3;
        self.window_ms = window_ms.max(0.1);
        self.warmup_ms = (self.window_ms / 3.0).max(0.3);
        self
    }

    /// Warmup length in cycles on the given machine config.
    pub fn warmup_cycles(&self, cfg: &MachineConfig) -> Cycles {
        cfg.secs_to_cycles(self.warmup_ms / 1e3)
    }

    /// Window length in cycles on the given machine config.
    pub fn window_cycles(&self, cfg: &MachineConfig) -> Cycles {
        cfg.secs_to_cycles(self.window_ms / 1e3)
    }
}

/// One flow pinned to a core, with its data in a chosen NUMA domain.
#[derive(Debug, Clone, Copy)]
pub struct FlowPlacement {
    /// The core that runs the flow.
    pub core: CoreId,
    /// The flow type.
    pub flow: FlowType,
    /// Where the flow's data structures (and NIC state) live.
    pub domain: MemDomain,
}

/// A complete experiment setup.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Flow placements (distinct cores).
    pub flows: Vec<FlowPlacement>,
    /// Measurement parameters.
    pub params: ExpParams,
}

/// Per-packet residence-time percentiles over a measurement window, read
/// back from the flow's [`LatencyHistogram`](pp_sim::latency::LatencyHistogram)
/// after warmup is discarded. This is the latency-budget read-back the
/// adaptive batch controller verifies its decisions against: `repro
/// adaptive` asserts the achieved `p99_us` of a controller-chosen batch
/// stays within the declared budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Median ingress→egress time, microseconds of simulated time.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Mean, microseconds.
    pub mean_us: f64,
    /// Samples recorded in the window (one per completed packet).
    pub samples: u64,
}

impl LatencySummary {
    /// Summarize a histogram at a given core frequency.
    pub fn from_histogram(
        h: &pp_sim::latency::LatencyHistogram,
        freq_ghz: f64,
    ) -> Self {
        let us = |cycles: Cycles| cycles as f64 / (freq_ghz * 1e3);
        LatencySummary {
            p50_us: us(h.p50()),
            p95_us: us(h.p95()),
            p99_us: us(h.p99()),
            mean_us: h.mean() / (freq_ghz * 1e3),
            samples: h.count(),
        }
    }
}

/// Per-flow measurement output.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Where the flow ran.
    pub core: CoreId,
    /// What it was.
    pub flow: FlowType,
    /// Derived per-second / per-packet metrics over the window.
    pub metrics: DerivedMetrics,
    /// Window totals.
    pub counts: Counts,
    /// Per-function-tag window deltas.
    pub tags: Vec<(&'static str, Counts)>,
    /// Bytes of simulated memory this flow's structures occupy.
    pub working_set_bytes: u64,
    /// Ingress→egress residence-time percentiles over the window.
    pub latency: LatencySummary,
    /// Loss ledger over the window: where every packet that did not make
    /// it died ([`DropStats`](pp_sim::fault::DropStats) conservation: `offered` = delivered +
    /// drops). All-zero in an unfaulted run.
    pub drops: pp_sim::fault::DropStats,
}

/// A scenario's complete measurement.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// One result per flow, in scenario order.
    pub flows: Vec<FlowResult>,
    /// The window length used.
    pub window_cycles: Cycles,
}

impl ScenarioResult {
    /// Result for the flow on `core`.
    pub fn on_core(&self, core: CoreId) -> Option<&FlowResult> {
        self.flows.iter().find(|f| f.core == core)
    }

    /// Sum of L3 refs/sec over all flows except the one on `excluding`.
    pub fn competing_refs_per_sec(&self, excluding: CoreId) -> f64 {
        self.flows
            .iter()
            .filter(|f| f.core != excluding)
            .map(|f| f.metrics.l3_refs_per_sec)
            .sum()
    }

    /// Sum of L3 *misses*/sec (cache fills — the eviction pressure) over
    /// all flows except the one on `excluding`. The fill-rate refinement of
    /// the predictor keys on this; see [`Predictor`](crate::predictor).
    pub fn competing_fills_per_sec(&self, excluding: CoreId) -> f64 {
        self.flows
            .iter()
            .filter(|f| f.core != excluding)
            .map(|f| f.metrics.l3_misses_per_sec)
            .sum()
    }
}

/// Derive a per-flow seed from the master seed and the flow's index.
///
/// The target flow of a co-run is always index 0, so its traffic and table
/// seeds are identical in its solo run — drops compare like with like.
fn flow_seed(master: u64, index: usize) -> u64 {
    // SplitMix64 step for decorrelation.
    let mut z = master ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build and measure a scenario on a fresh Westmere machine.
pub fn run_scenario(s: &Scenario) -> ScenarioResult {
    let cfg = MachineConfig::westmere();
    let mut machine = Machine::new(cfg);
    let mut built = Vec::new();
    for (i, p) in s.flows.iter().enumerate() {
        let before = machine.allocator(p.domain).used();
        let b = p.flow.build_with_structure(
            &mut machine,
            p.domain,
            s.params.scale,
            flow_seed(s.params.seed, i),
            p.flow.structure_seed(s.params.seed),
            s.params.batch_size,
        );
        let after = machine.allocator(p.domain).used();
        built.push((*p, b, after - before));
    }
    let mut engine = Engine::new(machine);
    let mut placements = Vec::with_capacity(built.len());
    for (p, b, ws) in built {
        let lat = b.task.latency_handle();
        let drops = b.task.drop_handle();
        engine.set_task(p.core, Box::new(b.task));
        placements.push((p, ws, lat, drops));
    }
    let warmup = s.params.warmup_cycles(engine.machine.config());
    let window = s.params.window_cycles(engine.machine.config());
    // Warm up, discard the warmup's latency samples and loss counts (both
    // recordings are host-side and charge-free, so this leaves every
    // counter bit-for-bit as `engine.measure(warmup, window)` would), then
    // measure the window.
    engine.run_until(warmup);
    for (_, _, lat, drops) in &placements {
        lat.borrow_mut().reset();
        drops.borrow_mut().reset();
    }
    let meas = engine.measure(0, window);
    let freq_ghz = engine.machine.config().freq_ghz;

    let flows = placements
        .iter()
        .map(|(p, ws, lat, drops)| {
            let cm = meas.core(p.core).expect("flow core measured");
            FlowResult {
                core: p.core,
                flow: p.flow,
                metrics: cm.metrics,
                counts: cm.counts.total,
                tags: cm.counts.tags.clone(),
                working_set_bytes: *ws,
                latency: LatencySummary::from_histogram(&lat.borrow(), freq_ghz),
                drops: *drops.borrow(),
            }
        })
        .collect();
    ScenarioResult { flows, window_cycles: window }
}

/// The Fig. 3 contention configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentionConfig {
    /// Fig. 3(a): contend only for the shared L3.
    CacheOnly,
    /// Fig. 3(b): contend only for the memory controller.
    MemCtrlOnly,
    /// Fig. 3(c): contend for both (the realistic co-location).
    Both,
}

impl ContentionConfig {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ContentionConfig::CacheOnly => "cache-only",
            ContentionConfig::MemCtrlOnly => "memctrl-only",
            ContentionConfig::Both => "both",
        }
    }
}

/// A solo scenario: the target alone on core 0, data local (domain 0).
pub fn solo_scenario(flow: FlowType, params: ExpParams) -> Scenario {
    Scenario {
        flows: vec![FlowPlacement { core: CoreId(0), flow, domain: MemDomain(0) }],
        params,
    }
}

/// A co-run scenario: the target on core 0 (socket 0, data local) plus
/// `competitors` placed per the contention configuration.
pub fn corun_scenario(
    target: FlowType,
    competitors: &[FlowType],
    cfg: ContentionConfig,
    params: ExpParams,
) -> Scenario {
    assert!(competitors.len() <= 5, "at most 5 competitors on the paper's platform");
    let mut flows =
        vec![FlowPlacement { core: CoreId(0), flow: target, domain: MemDomain(0) }];
    for (i, &c) in competitors.iter().enumerate() {
        let (core, domain) = match cfg {
            // Same socket, remote data.
            ContentionConfig::CacheOnly => (CoreId(1 + i as u16), MemDomain(1)),
            // Other socket, data homed on the target's socket.
            ContentionConfig::MemCtrlOnly => (CoreId(6 + i as u16), MemDomain(0)),
            // Same socket, local data.
            ContentionConfig::Both => (CoreId(1 + i as u16), MemDomain(0)),
        };
        flows.push(FlowPlacement { core, flow: c, domain });
    }
    Scenario { flows, params }
}

/// The outcome of a target-vs-competitors experiment: solo and contended
/// throughput, the drop, and the measured competition.
#[derive(Debug, Clone)]
pub struct CoRunOutcome {
    /// The target flow type.
    pub target: FlowType,
    /// Solo packets/sec.
    pub solo_pps: f64,
    /// Contended packets/sec.
    pub corun_pps: f64,
    /// Performance drop in percent: `(solo - corun) / solo * 100`.
    pub drop_pct: f64,
    /// Competitors' combined L3 refs/sec *measured during the co-run*.
    pub competing_refs_per_sec: f64,
    /// Competitors' combined L3 misses/sec (fills) during the co-run.
    pub competing_fills_per_sec: f64,
    /// The target's full solo measurement.
    pub solo: FlowResult,
    /// The target's full contended measurement.
    pub corun: FlowResult,
    /// All competitor measurements from the co-run.
    pub competitors: Vec<FlowResult>,
}

/// Run solo + co-run and compute the drop. (For sweeps, prefer computing
/// the solo once and using [`corun_against_solo`].)
pub fn run_corun(
    target: FlowType,
    competitors: &[FlowType],
    cfg: ContentionConfig,
    params: ExpParams,
) -> CoRunOutcome {
    let solo = run_scenario(&solo_scenario(target, params));
    corun_against_solo(&solo.flows[0], target, competitors, cfg, params)
}

/// Run only the co-run, reusing a previously measured solo result.
pub fn corun_against_solo(
    solo: &FlowResult,
    target: FlowType,
    competitors: &[FlowType],
    cfg: ContentionConfig,
    params: ExpParams,
) -> CoRunOutcome {
    let co = run_scenario(&corun_scenario(target, competitors, cfg, params));
    let target_res = co.flows[0].clone();
    let competing = co.competing_refs_per_sec(CoreId(0));
    let competing_fills = co.competing_fills_per_sec(CoreId(0));
    let solo_pps = solo.metrics.pps;
    let corun_pps = target_res.metrics.pps;
    CoRunOutcome {
        target,
        solo_pps,
        corun_pps,
        drop_pct: (solo_pps - corun_pps) / solo_pps * 100.0,
        competing_refs_per_sec: competing,
        competing_fills_per_sec: competing_fills,
        solo: solo.clone(),
        corun: target_res,
        competitors: co.flows[1..].to_vec(),
    }
}

/// Run `f` over `items` on `threads` worker threads, preserving order.
/// Each item is an independent simulation, so results are identical to a
/// sequential run.
pub fn run_many<I, O, F>(items: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    // A shared work queue plus an mpsc results channel covers the MPMC
    // pattern with std primitives alone (no external channel crate).
    let queue = std::sync::Mutex::new(
        items.into_iter().enumerate().collect::<std::collections::VecDeque<(usize, I)>>(),
    );
    let (out_tx, out_rx) = std::sync::mpsc::channel::<(usize, O)>();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            let out_tx = out_tx.clone();
            let queue = &queue;
            let f = &f;
            s.spawn(move || loop {
                let next = queue.lock().expect("work queue poisoned").pop_front();
                let Some((i, item)) = next else { break };
                out_tx.send((i, f(item))).expect("result receiver dropped");
            });
        }
        drop(out_tx);
    });
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    while let Ok((i, o)) = out_rx.recv() {
        slots[i] = Some(o);
    }
    slots.into_iter().map(|o| o.expect("worker died")).collect()
}

/// Default worker-thread count for sweeps.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_scenario_measures_one_flow() {
        let r = run_scenario(&solo_scenario(FlowType::Ip, ExpParams::quick()));
        assert_eq!(r.flows.len(), 1);
        assert!(r.flows[0].metrics.pps > 50_000.0);
        assert!(r.flows[0].working_set_bytes > 1 << 20);
    }

    #[test]
    fn unfaulted_runs_report_zero_loss_with_full_conservation() {
        for batch in [0usize, 16] {
            let r = run_scenario(&solo_scenario(
                FlowType::Ip,
                ExpParams::quick().with_batch(batch),
            ));
            let f = &r.flows[0];
            assert_eq!(f.drops.total_dropped(), 0, "batch {batch}: no loss at steady state");
            assert_eq!(
                f.drops.offered, f.counts.packets,
                "batch {batch}: every offered packet was retired"
            );
        }
    }

    #[test]
    fn run_is_deterministic() {
        let a = run_scenario(&solo_scenario(FlowType::Mon, ExpParams::quick()));
        let b = run_scenario(&solo_scenario(FlowType::Mon, ExpParams::quick()));
        assert_eq!(a.flows[0].counts, b.flows[0].counts);
    }

    #[test]
    fn corun_placements_match_fig3() {
        let s = corun_scenario(
            FlowType::Mon,
            &[FlowType::SynMax; 5],
            ContentionConfig::CacheOnly,
            ExpParams::quick(),
        );
        // Competitors on the target's socket with remote data.
        for p in &s.flows[1..] {
            assert!(p.core.0 >= 1 && p.core.0 <= 5);
            assert_eq!(p.domain, MemDomain(1));
        }
        let s = corun_scenario(
            FlowType::Mon,
            &[FlowType::SynMax; 5],
            ContentionConfig::MemCtrlOnly,
            ExpParams::quick(),
        );
        for p in &s.flows[1..] {
            assert!(p.core.0 >= 6);
            assert_eq!(p.domain, MemDomain(0));
        }
    }

    #[test]
    fn contention_reduces_throughput() {
        let out = run_corun(
            FlowType::Mon,
            &[FlowType::SynMax; 5],
            ContentionConfig::Both,
            ExpParams::quick(),
        );
        assert!(
            out.drop_pct > 2.0,
            "5 SYN_MAX competitors must hurt MON, drop = {:.2}%",
            out.drop_pct
        );
        assert!(out.competing_refs_per_sec > 1e6);
        assert_eq!(out.competitors.len(), 5);
    }

    #[test]
    fn cache_contention_dominates_memctrl() {
        let cache = run_corun(
            FlowType::Mon,
            &[FlowType::SynMax; 5],
            ContentionConfig::CacheOnly,
            ExpParams::quick(),
        );
        let mem = run_corun(
            FlowType::Mon,
            &[FlowType::SynMax; 5],
            ContentionConfig::MemCtrlOnly,
            ExpParams::quick(),
        );
        assert!(
            cache.drop_pct > mem.drop_pct,
            "cache-only drop {:.1}% must exceed memctrl-only {:.1}%",
            cache.drop_pct,
            mem.drop_pct
        );
    }

    #[test]
    fn run_many_preserves_order_and_results() {
        let items: Vec<u64> = (0..20).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        let par = run_many(items, 4, |x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn flow_seed_is_stable_and_distinct() {
        assert_eq!(flow_seed(42, 0), flow_seed(42, 0));
        assert_ne!(flow_seed(42, 0), flow_seed(42, 1));
        assert_ne!(flow_seed(42, 0), flow_seed(43, 0));
    }
}
