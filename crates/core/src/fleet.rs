//! The fleet controller: machine-death detection, stale-telemetry
//! discipline, and budgeted re-placement across a cluster.
//!
//! The supervisor (PR 7) is a machine-level control plane with perfect
//! information: it calls `measure()` and the answer is fresh by
//! construction. The fleet controller faces the two failure domains a
//! cluster adds — machines that die wholesale, and a control plane that
//! lies by omission — and is built around three disciplines:
//!
//! 1. **Liveness is inferred, never assumed.** A machine is `Up` until
//!    its heartbeat goes silent past `heartbeat_timeout` windows, then
//!    `Suspect`: the controller sends probes on a capped exponential
//!    backoff (`probe_backoff_base` doubling to `probe_backoff_max`) and
//!    only after `suspect_probes` unanswered probes declares it `Dead`.
//!    The backoff bounds how hard a flapping network can make the
//!    controller work; the probe count bounds how long a genuinely dead
//!    machine strands its tenants. A heartbeat at any point snaps the
//!    machine back to `Up` — and a heartbeat from a `Dead` machine marks
//!    a restart, which sends displaced tenants home (admission-gated,
//!    free of the re-placement budget: going home restores the plan the
//!    predictor already approved).
//! 2. **Stale telemetry is suspect, never truth.** Estimates come from
//!    the [`telemetry`](crate::telemetry) trackers: last-known-good,
//!    held through silence, confidence-decayed past the freshness
//!    horizon. Violation streaks advance only when a *fresh-ordered*
//!    report arrives, and overload shedding additionally requires
//!    bundle confidence ≥ `act_confidence` — so during a telemetry
//!    blackout the controller holds its last-safe decisions instead of
//!    flapping. Blindness bounds the decision rate by construction.
//! 3. **Re-placement is budgeted and gated.** Tenants orphaned by a dead
//!    machine are re-placed in SLA-priority order, each placement gated
//!    by the same predictor-backed admission the original plan used
//!    (the driver supplies the gate closure wrapping
//!    [`readmit`](crate::admission::AdmissionController::readmit)), and
//!    every cross-machine move consumes a global `replacement_budget`.
//!    A tenant with no admitted machine — or no budget left — parks, and
//!    its refused load is counted `drained`, not silently lost. Under
//!    sustained fresh-telemetry floor violation the controller sheds the
//!    *lowest*-priority resident of the overloaded machine: degradation
//!    by SLA class, not collapse of every tenant.
//!
//! The controller is pure decision logic (schedule/mechanism split): it
//! tracks placement intent and emits [`FleetAction`]s; the cluster-chaos
//! driver actuates them on the engines and owns the loss ledger.

use crate::supervisor::TenantId;
use crate::telemetry::{TelemetryReport, TenantTelemetry};
use crate::workload::FlowType;
use pp_sim::cluster::MachineId;

/// Tuning for the fleet controller. Defaults are sized for the
/// cluster-chaos timelines (windows of a few ms): detection within ~8
/// windows of a crash, action only on fresh evidence.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// EWMA smoothing factor for every telemetry tracker.
    pub ewma_alpha: f64,
    /// Windows of heartbeat silence before a machine turns `Suspect`.
    /// 2 tolerates one lost beat without probing.
    pub heartbeat_timeout: u32,
    /// Unanswered probes before a `Suspect` machine is declared `Dead`.
    pub suspect_probes: u32,
    /// Windows between the first and second probe (doubles per probe).
    pub probe_backoff_base: u32,
    /// Cap on the probe interval, windows.
    pub probe_backoff_max: u32,
    /// Telemetry freshness horizon: a bundle at most this many windows
    /// old has confidence 1.0. Must be ≥ 2: reports describe the window
    /// *before* the tick that reads them, so the natural lag is 1.
    pub stale_after: u32,
    /// Per-window multiplicative confidence decay past the horizon.
    pub confidence_decay: f64,
    /// Minimum bundle confidence for overload actions. With the default
    /// decay 0.8, one window past the horizon (0.8) already falls below
    /// 0.9 — only genuinely fresh telemetry can trigger shedding.
    pub act_confidence: f64,
    /// Maximum residents per machine. Enforced by the controller itself
    /// (not the admission gate) because placements made earlier in the
    /// same tick must count — a gate built on a pre-tick snapshot would
    /// let two same-tick placements overfill one machine.
    pub machine_capacity: usize,
    /// Global budget of cross-machine re-placements (return-home moves
    /// after a restart are free — they restore the approved plan).
    pub replacement_budget: u32,
    /// Consecutive fresh violating reports before an overload shed.
    pub shed_violations: u32,
    /// Windows a shed tenant is held parked before it may be re-placed
    /// (prevents shed→readmit flapping on the machine it just left).
    pub reshed_hold: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            ewma_alpha: 0.3,
            heartbeat_timeout: 2,
            suspect_probes: 2,
            probe_backoff_base: 1,
            probe_backoff_max: 4,
            stale_after: 2,
            confidence_decay: 0.8,
            act_confidence: 0.9,
            machine_capacity: 3,
            replacement_budget: 8,
            shed_violations: 3,
            reshed_hold: 8,
        }
    }
}

/// Controller's belief about one machine's liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineState {
    /// Heartbeats current (or within the timeout).
    Up,
    /// Heartbeats silent past the timeout; probing on capped backoff.
    Suspect,
    /// Declared dead after `suspect_probes` unanswered probes. Tenants
    /// orphaned and re-placed. A heartbeat from here marks a restart.
    Dead,
}

/// One decision the controller asks the driver to actuate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAction {
    /// Send a liveness probe to a suspect machine (not a placement
    /// change — probes do not count toward the decision total).
    ProbeMachine {
        /// The suspect machine.
        machine: MachineId,
    },
    /// The machine failed `suspect_probes` probes: treat it as dead.
    /// Its residents are orphaned and re-placed (or parked) this tick.
    DeclareDead {
        /// The machine being declared.
        machine: MachineId,
    },
    /// Place `tenant` on machine `to` (from parked, from a dead
    /// machine, or home from a refuge after a restart). The driver
    /// moves the task, re-anchors its counters, and drains in-flight
    /// credit as counted loss.
    Replace {
        /// The tenant to move.
        tenant: TenantId,
        /// Destination machine.
        to: MachineId,
    },
    /// Park `tenant`: no admitted machine (or none affordable), or it
    /// was shed from an overloaded machine. The driver refuses its
    /// offered load as counted `drained` loss.
    Park {
        /// The tenant to park.
        tenant: TenantId,
    },
}

impl FleetAction {
    /// Whether the action changes placement (probes do not).
    fn is_decision(&self) -> bool {
        !matches!(self, FleetAction::ProbeMachine { .. })
    }
}

#[derive(Debug)]
struct MachineSlot {
    state: MachineState,
    last_heartbeat: u32,
    probes_sent: u32,
    next_probe_in: u32,
    probe_backoff: u32,
    restarted: bool,
}

#[derive(Debug)]
struct TenantSlot {
    flow: FlowType,
    priority: u8,
    home: MachineId,
    placed: Option<MachineId>,
    telemetry: TenantTelemetry,
    min_pps: f64,
    violate_streak: u32,
    hold_until: u32,
}

/// The fleet-level control plane. See the module docs for the three
/// disciplines; [`tick`](FleetController::tick) is the whole interface
/// the driver calls per window, plus [`heartbeat`](FleetController::heartbeat)
/// and [`ingest`](FleetController::ingest) for the two inbound paths.
#[derive(Debug)]
pub struct FleetController {
    cfg: FleetConfig,
    machines: Vec<MachineSlot>,
    tenants: Vec<TenantSlot>,
    replacements_used: u32,
    decisions: u64,
}

impl FleetController {
    /// A controller with no machines or tenants yet.
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(cfg.stale_after >= 1, "reports lag one window by construction");
        FleetController { cfg, machines: Vec::new(), tenants: Vec::new(), replacements_used: 0, decisions: 0 }
    }

    /// Register a machine (assumed up, heartbeat current at window 0).
    pub fn add_machine(&mut self) -> MachineId {
        let id = MachineId(self.machines.len());
        self.machines.push(MachineSlot {
            state: MachineState::Up,
            last_heartbeat: 0,
            probes_sent: 0,
            next_probe_in: 0,
            probe_backoff: self.cfg.probe_backoff_base,
            restarted: false,
        });
        id
    }

    /// Register a tenant placed on its `home` machine. `priority` orders
    /// re-placement and shedding (higher = more important). The SLA
    /// floor starts at 0 (never violating); set it after calibration
    /// with [`set_floor`](FleetController::set_floor).
    pub fn add_tenant(&mut self, flow: FlowType, priority: u8, home: MachineId) -> TenantId {
        let id = TenantId(self.tenants.len());
        self.tenants.push(TenantSlot {
            flow,
            priority,
            home,
            placed: Some(home),
            telemetry: TenantTelemetry::new(self.cfg.ewma_alpha),
            min_pps: 0.0,
            violate_streak: 0,
            hold_until: 0,
        });
        id
    }

    /// Set the tenant's delivered-rate floor (packets/sec) for overload
    /// detection, typically a fraction of its calibrated solo rate.
    pub fn set_floor(&mut self, t: TenantId, min_pps: f64) {
        self.tenants[t.0].min_pps = min_pps;
    }

    /// A heartbeat from machine `m` observed at window `now`. Snaps
    /// `Suspect` back to `Up`; from `Dead` it marks a restart, which the
    /// next [`tick`](FleetController::tick) answers with return-home
    /// placements.
    pub fn heartbeat(&mut self, m: MachineId, now: u32) {
        let slot = &mut self.machines[m.index()];
        slot.last_heartbeat = slot.last_heartbeat.max(now);
        match slot.state {
            MachineState::Up => {}
            MachineState::Suspect | MachineState::Dead => {
                if slot.state == MachineState::Dead {
                    slot.restarted = true;
                }
                slot.state = MachineState::Up;
                slot.probes_sent = 0;
                slot.probe_backoff = self.cfg.probe_backoff_base;
                slot.next_probe_in = 0;
            }
        }
    }

    /// Ingest one surviving telemetry report for tenant `t`. The
    /// violation streak advances only on *fresh-ordered* reports (ones
    /// that move the bundle's freshness forward): late duplicates from a
    /// delayed channel blend into the estimate but cannot accumulate
    /// toward a shed.
    pub fn ingest(&mut self, t: TenantId, report: &TelemetryReport) {
        let slot = &mut self.tenants[t.0];
        let fresh = slot.telemetry.last_window().is_none_or(|last| report.window > last);
        slot.telemetry.ingest(report);
        if fresh {
            if slot.min_pps > 0.0 && report.pps < slot.min_pps {
                slot.violate_streak += 1;
            } else {
                slot.violate_streak = 0;
            }
        }
    }

    /// One control tick at window `now`. `admit` answers "may `flow` be
    /// placed on this machine right now?" — the driver wraps predictor
    /// admission plus a free-core check. Returns the actions to actuate,
    /// in order.
    pub fn tick(
        &mut self,
        now: u32,
        admit: &mut dyn FnMut(MachineId, FlowType) -> bool,
    ) -> Vec<FleetAction> {
        let mut actions = Vec::new();
        self.tick_restarts(&mut actions, admit);
        let orphaned_now = self.tick_liveness(now, &mut actions);
        self.tick_replacement(now, &orphaned_now, &mut actions, admit);
        self.tick_overload(now, &mut actions);
        self.decisions += actions.iter().filter(|a| a.is_decision()).count() as u64;
        actions
    }

    /// Restarted machines get their displaced tenants back, admission-
    /// gated but budget-free: returning home restores the approved plan.
    fn tick_restarts(
        &mut self,
        actions: &mut Vec<FleetAction>,
        admit: &mut dyn FnMut(MachineId, FlowType) -> bool,
    ) {
        for mi in 0..self.machines.len() {
            if !self.machines[mi].restarted {
                continue;
            }
            self.machines[mi].restarted = false;
            let home = MachineId(mi);
            for ti in 0..self.tenants.len() {
                let t = &self.tenants[ti];
                if t.home == home && t.placed != Some(home) && admit(home, t.flow) {
                    self.tenants[ti].placed = Some(home);
                    actions.push(FleetAction::Replace { tenant: TenantId(ti), to: home });
                }
            }
        }
    }

    /// Returns the tenants orphaned by a `DeclareDead` this tick (so the
    /// replacement pass can announce a one-time `Park` for the ones it
    /// cannot re-home).
    fn tick_liveness(&mut self, now: u32, actions: &mut Vec<FleetAction>) -> Vec<usize> {
        let cfg = self.cfg;
        let mut orphaned = Vec::new();
        for mi in 0..self.machines.len() {
            let m = MachineId(mi);
            let slot = &mut self.machines[mi];
            match slot.state {
                MachineState::Up => {
                    if now.saturating_sub(slot.last_heartbeat) > cfg.heartbeat_timeout {
                        slot.state = MachineState::Suspect;
                        slot.probes_sent = 0;
                        slot.probe_backoff = cfg.probe_backoff_base;
                        slot.next_probe_in = 0;
                    }
                }
                MachineState::Suspect => {
                    if slot.next_probe_in > 0 {
                        slot.next_probe_in -= 1;
                    } else if slot.probes_sent >= cfg.suspect_probes {
                        slot.state = MachineState::Dead;
                        actions.push(FleetAction::DeclareDead { machine: m });
                        for (ti, t) in self.tenants.iter_mut().enumerate() {
                            if t.placed == Some(m) {
                                t.placed = None;
                                t.violate_streak = 0;
                                orphaned.push(ti);
                            }
                        }
                    } else {
                        slot.probes_sent += 1;
                        actions.push(FleetAction::ProbeMachine { machine: m });
                        slot.next_probe_in = slot.probe_backoff;
                        slot.probe_backoff = (slot.probe_backoff * 2).min(cfg.probe_backoff_max);
                    }
                }
                MachineState::Dead => {}
            }
        }
        orphaned
    }

    /// Re-place parked tenants in priority order (stable by id within a
    /// priority), budget- and admission-gated. A tenant that stays
    /// parked emits `Park` only on the tick it *became* parked, so a
    /// long outage costs one decision, not one per window.
    fn tick_replacement(
        &mut self,
        now: u32,
        orphaned_now: &[usize],
        actions: &mut Vec<FleetAction>,
        admit: &mut dyn FnMut(MachineId, FlowType) -> bool,
    ) {
        let mut order: Vec<usize> = (0..self.tenants.len())
            .filter(|&ti| self.tenants[ti].placed.is_none() && now >= self.tenants[ti].hold_until)
            .collect();
        order.sort_by_key(|&ti| std::cmp::Reverse(self.tenants[ti].priority));
        for ti in order {
            let dest = if self.replacements_used < self.cfg.replacement_budget {
                self.best_machine(self.tenants[ti].flow, admit)
            } else {
                None
            };
            match dest {
                Some(m) => {
                    self.replacements_used += 1;
                    self.tenants[ti].placed = Some(m);
                    actions.push(FleetAction::Replace { tenant: TenantId(ti), to: m });
                }
                None => {
                    // Only a tenant orphaned *this tick* announces its
                    // parking; older parked tenants already did.
                    if orphaned_now.contains(&ti) {
                        actions.push(FleetAction::Park { tenant: TenantId(ti) });
                    }
                }
            }
        }
    }

    /// Shed the lowest-priority resident of a machine whose tenants show
    /// a sustained, *fresh* floor violation. One shed per machine per
    /// tick; streaks reset so the next shed needs fresh evidence again.
    fn tick_overload(&mut self, now: u32, actions: &mut Vec<FleetAction>) {
        let cfg = self.cfg;
        for mi in 0..self.machines.len() {
            if self.machines[mi].state != MachineState::Up {
                continue;
            }
            let m = MachineId(mi);
            let residents: Vec<usize> =
                (0..self.tenants.len()).filter(|&ti| self.tenants[ti].placed == Some(m)).collect();
            if residents.len() < 2 {
                continue; // shedding the only tenant helps nobody
            }
            let overloaded = residents.iter().any(|&ti| {
                let t = &self.tenants[ti];
                t.violate_streak >= cfg.shed_violations
                    && t.telemetry.confidence(now, cfg.stale_after, cfg.confidence_decay)
                        >= cfg.act_confidence
            });
            if !overloaded {
                continue;
            }
            let &victim = residents
                .iter()
                .min_by_key(|&&ti| (self.tenants[ti].priority, std::cmp::Reverse(ti)))
                .expect("residents is non-empty");
            self.tenants[victim].placed = None;
            self.tenants[victim].hold_until = now.saturating_add(cfg.reshed_hold);
            for &ti in &residents {
                self.tenants[ti].violate_streak = 0;
            }
            actions.push(FleetAction::Park { tenant: TenantId(victim) });
        }
    }

    /// Scored placement: among up machines that pass the admission gate,
    /// pick the one with the fewest residents, breaking ties by lowest
    /// aggregate rate estimate (last-known-good EWMA — a machine gone
    /// quiet does not look empty), then lowest id for determinism.
    fn best_machine(
        &self,
        flow: FlowType,
        admit: &mut dyn FnMut(MachineId, FlowType) -> bool,
    ) -> Option<MachineId> {
        let mut best: Option<(usize, f64, usize)> = None;
        for mi in 0..self.machines.len() {
            if self.machines[mi].state != MachineState::Up {
                continue;
            }
            let m = MachineId(mi);
            let residents = self.tenants.iter().filter(|t| t.placed == Some(m)).count();
            if residents >= self.cfg.machine_capacity || !admit(m, flow) {
                continue;
            }
            let load: f64 = self
                .tenants
                .iter()
                .filter(|t| t.placed == Some(m))
                .filter_map(|t| t.telemetry.rate.value())
                .sum();
            let better = match best {
                None => true,
                Some((r, l, _)) => residents < r || (residents == r && load < l),
            };
            if better {
                best = Some((residents, load, mi));
            }
        }
        best.map(|(_, _, mi)| MachineId(mi))
    }

    /// Controller's belief about machine `m`.
    pub fn machine_state(&self, m: MachineId) -> MachineState {
        self.machines[m.index()].state
    }

    /// Current placement intent for tenant `t` (`None` = parked).
    pub fn placement(&self, t: TenantId) -> Option<MachineId> {
        self.tenants[t.0].placed
    }

    /// The tenant's home machine.
    pub fn home(&self, t: TenantId) -> MachineId {
        self.tenants[t.0].home
    }

    /// Total placement-changing decisions emitted so far (probes
    /// excluded). The blackout scenario asserts this stays flat while
    /// the controller is blind.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Cross-machine re-placements charged against the budget.
    pub fn replacements_used(&self) -> u32 {
        self.replacements_used
    }

    /// Last-known-good rate estimate for tenant `t`, if any report ever
    /// arrived.
    pub fn rate_estimate(&self, t: TenantId) -> Option<f64> {
        self.tenants[t.0].telemetry.rate.value()
    }

    /// Age of tenant `t`'s telemetry bundle at window `now`.
    pub fn staleness(&self, t: TenantId, now: u32) -> Option<u32> {
        self.tenants[t.0].telemetry.staleness(now)
    }

    /// Confidence in tenant `t`'s bundle at window `now`.
    pub fn confidence(&self, t: TenantId, now: u32) -> f64 {
        self.tenants[t.0].telemetry.confidence(
            now,
            self.cfg.stale_after,
            self.cfg.confidence_decay,
        )
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Tenants currently parked (no placement).
    pub fn parked_count(&self) -> usize {
        self.tenants.iter().filter(|t| t.placed.is_none()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl(n_machines: usize) -> (FleetController, Vec<MachineId>) {
        let mut c = FleetController::new(FleetConfig::default());
        let ms: Vec<_> = (0..n_machines).map(|_| c.add_machine()).collect();
        (c, ms)
    }

    fn admit_all(_m: MachineId, _f: FlowType) -> bool {
        true
    }

    /// Walk a silent machine through Suspect → probes → Dead, returning
    /// the window at which it was declared and the probe windows.
    fn windows_to_death(cfg: FleetConfig) -> (u32, Vec<u32>) {
        let mut c = FleetController::new(cfg);
        let m = c.add_machine();
        c.add_tenant(FlowType::Ip, 1, m);
        let mut probes = Vec::new();
        for w in 0..100 {
            // no heartbeats at all
            for a in c.tick(w, &mut admit_all) {
                match a {
                    FleetAction::ProbeMachine { .. } => probes.push(w),
                    FleetAction::DeclareDead { .. } => return (w, probes),
                    _ => {}
                }
            }
        }
        panic!("machine never declared dead");
    }

    #[test]
    fn heartbeat_timeout_probes_with_capped_backoff_then_declares() {
        let cfg = FleetConfig::default();
        let (death, probes) = windows_to_death(cfg);
        // Silence from w0: suspect once silence > timeout (w3), first
        // probe next tick, the second after base·2 windows, the
        // declaration once the doubled interval expires with no answer.
        assert_eq!(probes, vec![4, 6], "probe schedule follows the backoff");
        assert_eq!(death, 9, "declared after the capped backoff runs out");
        // A tighter backoff cap cannot slow detection down.
        let (d2, _) =
            windows_to_death(FleetConfig { probe_backoff_max: 1, ..FleetConfig::default() });
        assert!(d2 <= death);
    }

    #[test]
    fn heartbeat_mid_suspect_recovers_without_decisions() {
        let (mut c, ms) = ctrl(1);
        c.add_tenant(FlowType::Ip, 1, ms[0]);
        for w in 0..4 {
            let _ = c.tick(w, &mut admit_all); // silence: suspect by w3
        }
        assert_eq!(c.machine_state(ms[0]), MachineState::Suspect);
        c.heartbeat(ms[0], 4);
        assert_eq!(c.machine_state(ms[0]), MachineState::Up);
        let _ = c.tick(4, &mut admit_all);
        assert_eq!(c.decisions(), 0, "a flap that recovers costs no placement change");
    }

    #[test]
    fn dead_machine_orphans_replaced_by_priority_within_budget() {
        let (mut c, ms) = ctrl(3);
        let hi = c.add_tenant(FlowType::Ip, 2, ms[0]);
        let lo = c.add_tenant(FlowType::Mon, 0, ms[0]);
        let mid = c.add_tenant(FlowType::Fw, 1, ms[0]);
        c.add_tenant(FlowType::Ip, 1, ms[1]); // existing resident on m1
        let mut placed_order = Vec::new();
        for w in 0..12 {
            c.heartbeat(ms[1], w);
            c.heartbeat(ms[2], w);
            for a in c.tick(w, &mut admit_all) {
                if let FleetAction::Replace { tenant, .. } = a {
                    placed_order.push(tenant);
                }
            }
        }
        assert_eq!(c.machine_state(ms[0]), MachineState::Dead);
        assert_eq!(placed_order, vec![hi, mid, lo], "highest priority re-places first");
        // Scored placement: hi goes to the emptier machine (m2), mid to
        // m1/m2 (fewest residents), and everything ends placed.
        assert_eq!(c.placement(hi), Some(ms[2]), "fewest residents wins");
        assert_eq!(c.parked_count(), 0);
        assert_eq!(c.replacements_used(), 3);
    }

    #[test]
    fn exhausted_budget_parks_instead_of_placing() {
        let cfg = FleetConfig { replacement_budget: 1, ..FleetConfig::default() };
        let mut c = FleetController::new(cfg);
        let m0 = c.add_machine();
        let m1 = c.add_machine();
        let hi = c.add_tenant(FlowType::Ip, 2, m0);
        let lo = c.add_tenant(FlowType::Mon, 0, m0);
        let mut parked = Vec::new();
        for w in 0..12 {
            c.heartbeat(m1, w);
            for a in c.tick(w, &mut admit_all) {
                if let FleetAction::Park { tenant } = a {
                    parked.push(tenant);
                }
            }
        }
        assert_eq!(c.placement(hi), Some(m1), "the budget goes to the higher priority");
        assert_eq!(c.placement(lo), None);
        assert_eq!(parked, vec![lo], "parking announced once, not per window");
        assert_eq!(c.replacements_used(), 1);
    }

    #[test]
    fn restart_returns_tenants_home_budget_free() {
        let (mut c, ms) = ctrl(2);
        let t = c.add_tenant(FlowType::Ip, 1, ms[0]);
        for w in 0..12 {
            c.heartbeat(ms[1], w);
            let _ = c.tick(w, &mut admit_all);
        }
        assert_eq!(c.machine_state(ms[0]), MachineState::Dead);
        assert_eq!(c.placement(t), Some(ms[1]), "refugee placed on the survivor");
        let used = c.replacements_used();
        c.heartbeat(ms[0], 12); // restart
        let acts = c.tick(12, &mut admit_all);
        assert!(acts.contains(&FleetAction::Replace { tenant: t, to: ms[0] }));
        assert_eq!(c.placement(t), Some(ms[0]), "home again");
        assert_eq!(c.replacements_used(), used, "going home is budget-free");
    }

    #[test]
    fn stale_telemetry_cannot_trigger_a_shed() {
        let (mut c, ms) = ctrl(1);
        let a = c.add_tenant(FlowType::Ip, 1, ms[0]);
        let _b = c.add_tenant(FlowType::Mon, 0, ms[0]);
        c.set_floor(a, 1000.0);
        // Three violating reports, but the last is 10 windows old by the
        // time the controller ticks: confidence has decayed, so it holds.
        for w in 0..3 {
            c.ingest(a, &TelemetryReport { window: w, pps: 10.0, p99_us: 50.0, loss_frac: 0.0 });
        }
        c.heartbeat(ms[0], 12);
        let acts = c.tick(12, &mut admit_all);
        assert!(acts.is_empty(), "stale evidence is suspect, never acted on: {acts:?}");
        assert_eq!(c.decisions(), 0);
        // The same evidence fresh *does* shed — and takes the low-
        // priority tenant, not the violating high-priority one.
        for w in 10..13 {
            c.heartbeat(ms[0], w);
            c.ingest(a, &TelemetryReport { window: w, pps: 10.0, p99_us: 50.0, loss_frac: 0.0 });
        }
        let acts = c.tick(13, &mut admit_all);
        assert_eq!(acts, vec![FleetAction::Park { tenant: _b }], "shed by priority");
    }

    #[test]
    fn late_duplicate_reports_do_not_accumulate_violations() {
        let (mut c, ms) = ctrl(1);
        let a = c.add_tenant(FlowType::Ip, 1, ms[0]);
        c.add_tenant(FlowType::Mon, 0, ms[0]);
        c.set_floor(a, 1000.0);
        // One fresh violating report, then the same window re-delivered
        // by a delayed channel: streak must stay at 1.
        let r = TelemetryReport { window: 5, pps: 10.0, p99_us: 50.0, loss_frac: 0.0 };
        c.ingest(a, &r);
        c.ingest(a, &r);
        c.ingest(a, &r);
        c.heartbeat(ms[0], 6);
        let acts = c.tick(6, &mut admit_all);
        assert!(acts.is_empty(), "replayed evidence is one observation, not three");
    }

    #[test]
    fn shed_victim_holds_before_replacement_retry() {
        let (mut c, ms) = ctrl(2);
        let a = c.add_tenant(FlowType::Ip, 1, ms[0]);
        let b = c.add_tenant(FlowType::Mon, 0, ms[0]);
        c.set_floor(a, 1000.0);
        for w in 0..3 {
            c.heartbeat(ms[0], w);
            c.heartbeat(ms[1], w);
            c.ingest(a, &TelemetryReport { window: w, pps: 10.0, p99_us: 50.0, loss_frac: 0.0 });
        }
        let acts = c.tick(3, &mut admit_all);
        assert_eq!(acts, vec![FleetAction::Park { tenant: b }]);
        // m1 has room and admits everything, but the hold keeps the shed
        // tenant parked — no shed→readmit flap.
        for w in 4..8 {
            c.heartbeat(ms[0], w);
            c.heartbeat(ms[1], w);
            assert!(c.tick(w, &mut admit_all).is_empty(), "held parked at w{w}");
        }
        // Past the hold it may be re-placed (elsewhere, by the score).
        let mut placed = None;
        for w in 8..14 {
            c.heartbeat(ms[0], w);
            c.heartbeat(ms[1], w);
            for act in c.tick(w, &mut admit_all) {
                if let FleetAction::Replace { tenant, to } = act {
                    assert_eq!(tenant, b);
                    placed = Some(to);
                }
            }
        }
        assert_eq!(placed, Some(ms[1]), "re-placed on the empty machine after the hold");
    }

    #[test]
    fn no_admitted_machine_means_parked_not_forced() {
        let (mut c, ms) = ctrl(2);
        let t = c.add_tenant(FlowType::Ip, 1, ms[0]);
        let mut deny_all = |_m: MachineId, _f: FlowType| false;
        for w in 0..12 {
            c.heartbeat(ms[1], w);
            let _ = c.tick(w, &mut deny_all);
        }
        assert_eq!(c.placement(t), None, "admission gate refused: parked");
        assert_eq!(c.replacements_used(), 0);
    }
}
