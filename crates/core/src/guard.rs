//! Windowed runtime guard: detect model drift, degrade gracefully, climb
//! back.
//!
//! The prediction machinery (profiles → [`Predictor`](crate::predictor) →
//! [`BatchController`](crate::batch_control)) promises an *envelope*:
//! at least this much throughput, at most this much tail latency, at most
//! this much loss. PRs 4–5 only ever checked the promise once, right after
//! calibration, against the same steady load the model was fitted on. The
//! guard closes the loop at run time: every measurement window it compares
//! what actually happened ([`WindowObservation`]) against the envelope
//! ([`GuardEnvelope`]) and, on *sustained* violation, walks a
//! hysteresis-protected **degradation ladder**:
//!
//! 1. [`DegradeLevel::Reprobe`] — the model may merely be stale: request a
//!    re-probe (with exponential backoff between retries, so a persistent
//!    disturbance does not drown the system in calibration work);
//! 2. [`DegradeLevel::ShrinkBatch`] — trade throughput for tail latency by
//!    re-sizing the live flow down the
//!    [`BatchController`](crate::batch_control)'s candidate ladder;
//! 3. [`DegradeLevel::Throttle`] — pace the offered load below capacity
//!    (lossless backpressure, the
//!    [`ControlAction::Throttle`](crate::batch_control::ControlAction)
//!    admission outcome applied at run time);
//! 4. [`DegradeLevel::Shed`] — explicitly drop a fraction of arrivals at
//!    the wire, the last resort: loss, but *counted, bounded, and chosen*,
//!    never silent.
//!
//! Hysteresis works in both directions: it takes
//! [`GuardConfig::violations_to_degrade`] consecutive bad windows to step
//! down a rung and [`GuardConfig::clean_to_recover`] consecutive good ones
//! to step back up, so a single noisy window can neither trigger
//! degradation nor abort it. The guard itself is pure decision logic — it
//! never touches the machine; the chaos driver (pp-bench `repro chaos`)
//! maps each level onto the mechanism (`TaskControls`, the controller's
//! `choose`, the pace knob). That separation keeps it unit-testable as a
//! state machine and reusable by the ROADMAP's fleet controller.

use std::collections::VecDeque;
use std::fmt;

/// Capacity of the guard's transition history ring. Long-running
/// supervisors observe unboundedly many windows; the trace keeps the most
/// recent moves only (with [`RuntimeGuard::transitions_recorded`] counting
/// every move ever made), so memory stays O(1) per tenant.
pub const TRANSITION_CAP: usize = 256;

/// The predictor's promise for one flow: the bounds a healthy window must
/// stay inside.
#[derive(Debug, Clone, Copy)]
pub struct GuardEnvelope {
    /// Minimum acceptable delivered throughput, packets/sec.
    pub min_pps: f64,
    /// Maximum acceptable p99 residence time, microseconds.
    pub max_p99_us: f64,
    /// Maximum acceptable loss fraction (drops / offered).
    pub max_loss_frac: f64,
}

impl GuardEnvelope {
    /// The first envelope dimension `o` violates, if any.
    pub fn violation(&self, o: &WindowObservation) -> Option<&'static str> {
        if o.loss_frac > self.max_loss_frac {
            Some("loss")
        } else if o.pps < self.min_pps {
            Some("throughput")
        } else if o.p99_us > self.max_p99_us {
            Some("p99")
        } else {
            None
        }
    }
}

/// What one measurement window actually delivered.
#[derive(Debug, Clone, Copy)]
pub struct WindowObservation {
    /// Delivered throughput over the window, packets/sec.
    pub pps: f64,
    /// p99 residence time over the window, microseconds.
    pub p99_us: f64,
    /// Loss fraction over the window (drops / offered).
    pub loss_frac: f64,
}

/// Guard tuning: hysteresis depths and the re-probe backoff schedule.
#[derive(Debug, Clone, Copy)]
pub struct GuardConfig {
    /// Consecutive violating windows before stepping down one rung.
    pub violations_to_degrade: u32,
    /// Consecutive clean windows before stepping back up one rung.
    pub clean_to_recover: u32,
    /// Initial re-probe backoff, in windows (the first retry interval).
    pub backoff_base: u32,
    /// Backoff ceiling, in windows (doubling stops here).
    pub backoff_max: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            violations_to_degrade: 2,
            clean_to_recover: 3,
            backoff_base: 1,
            backoff_max: 8,
        }
    }
}

/// The degradation ladder, from healthy to last-resort. Ordered:
/// `Normal < Reprobe < ShrinkBatch < Throttle < Shed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// Inside the envelope; no intervention.
    Normal,
    /// Re-probe the model (retry with exponential backoff).
    Reprobe,
    /// Shrink the batch via the batch controller's candidate ladder.
    ShrinkBatch,
    /// Pace offered load below capacity (lossless backpressure).
    Throttle,
    /// Shed a fraction of load at the wire (explicit, counted drops).
    Shed,
}

impl DegradeLevel {
    /// One rung further down the ladder (saturates at [`Shed`](Self::Shed)).
    pub fn degrade(self) -> Self {
        match self {
            DegradeLevel::Normal => DegradeLevel::Reprobe,
            DegradeLevel::Reprobe => DegradeLevel::ShrinkBatch,
            DegradeLevel::ShrinkBatch => DegradeLevel::Throttle,
            DegradeLevel::Throttle | DegradeLevel::Shed => DegradeLevel::Shed,
        }
    }

    /// One rung back up (saturates at [`Normal`](Self::Normal)).
    pub fn recover(self) -> Self {
        match self {
            DegradeLevel::Shed => DegradeLevel::Throttle,
            DegradeLevel::Throttle => DegradeLevel::ShrinkBatch,
            DegradeLevel::ShrinkBatch => DegradeLevel::Reprobe,
            DegradeLevel::Reprobe | DegradeLevel::Normal => DegradeLevel::Normal,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DegradeLevel::Normal => "normal",
            DegradeLevel::Reprobe => "reprobe",
            DegradeLevel::ShrinkBatch => "shrink-batch",
            DegradeLevel::Throttle => "throttle",
            DegradeLevel::Shed => "shed",
        }
    }
}

impl fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded ladder move: at window `window` the guard moved `from` →
/// `to` because of `cause` (an envelope dimension, or "recovered").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardTransition {
    /// Window index (counted from the guard's first observation).
    pub window: u32,
    /// Level before the move.
    pub from: DegradeLevel,
    /// Level after the move.
    pub to: DegradeLevel,
    /// Why: the violated envelope dimension, or "recovered".
    pub cause: &'static str,
}

/// What the guard wants done after a window.
#[derive(Debug, Clone, Copy)]
pub struct GuardDirective {
    /// The ladder level now in force.
    pub level: DegradeLevel,
    /// Whether to re-probe the model *this* window (subject to the
    /// exponential-backoff schedule while degradation persists).
    pub reprobe_now: bool,
    /// Whether `level` changed at this observation.
    pub changed: bool,
}

/// The windowed runtime guard. Feed it one [`WindowObservation`] per
/// measurement window; it answers with the ladder level to enforce.
#[derive(Debug, Clone)]
pub struct RuntimeGuard {
    envelope: GuardEnvelope,
    config: GuardConfig,
    level: DegradeLevel,
    violation_streak: u32,
    clean_streak: u32,
    /// Current re-probe retry interval, in windows (doubles per retry).
    backoff: u32,
    /// Windows until the next re-probe is allowed while degraded.
    cooldown: u32,
    window: u32,
    /// Most recent ladder moves, capped at [`TRANSITION_CAP`] (ring).
    transitions: VecDeque<GuardTransition>,
    /// Every ladder move ever made, including evicted ring entries.
    transitions_recorded: u64,
}

impl RuntimeGuard {
    /// A guard holding `envelope` with `config` hysteresis.
    pub fn new(envelope: GuardEnvelope, config: GuardConfig) -> Self {
        RuntimeGuard {
            envelope,
            config,
            level: DegradeLevel::Normal,
            violation_streak: 0,
            clean_streak: 0,
            backoff: config.backoff_base.max(1),
            cooldown: 0,
            window: 0,
            transitions: VecDeque::new(),
            transitions_recorded: 0,
        }
    }

    /// The envelope currently enforced.
    pub fn envelope(&self) -> &GuardEnvelope {
        &self.envelope
    }

    /// Replace the envelope (after a re-probe refits the model to the new
    /// operating point). Resets both hysteresis streaks: windows judged
    /// against the *old* envelope must not count toward a move under the
    /// new one — a mid-run refit would otherwise let one stale violating
    /// window plus one fresh one trip a rung the new envelope never saw
    /// two bad windows of.
    pub fn set_envelope(&mut self, envelope: GuardEnvelope) {
        self.envelope = envelope;
        self.violation_streak = 0;
        self.clean_streak = 0;
    }

    /// The ladder level currently in force.
    pub fn level(&self) -> DegradeLevel {
        self.level
    }

    /// The most recent ladder moves, in order (ring-capped at
    /// [`TRANSITION_CAP`]; see [`transitions_recorded`](Self::transitions_recorded)
    /// for the lifetime total).
    pub fn transitions(&self) -> &VecDeque<GuardTransition> {
        &self.transitions
    }

    /// Every ladder move ever made, including ones the ring has evicted.
    pub fn transitions_recorded(&self) -> u64 {
        self.transitions_recorded
    }

    /// Return the guard to a fresh `Normal` state: streaks, backoff, and
    /// re-probe cooldown cleared, window counter and transition trace
    /// kept. The supervisor uses this when a tenant's placement changes
    /// (migration, eviction, breaker close) — history accrued on the old
    /// placement must not bias the new one.
    pub fn reset(&mut self) {
        self.level = DegradeLevel::Normal;
        self.violation_streak = 0;
        self.clean_streak = 0;
        self.backoff = self.config.backoff_base.max(1);
        self.cooldown = 0;
    }

    fn push_transition(&mut self, t: GuardTransition) {
        if self.transitions.len() == TRANSITION_CAP {
            self.transitions.pop_front();
        }
        self.transitions.push_back(t);
        self.transitions_recorded += 1;
    }

    /// Feed one window's measurement; returns the directive to enforce
    /// until the next window.
    pub fn observe(&mut self, o: &WindowObservation) -> GuardDirective {
        let w = self.window;
        self.window += 1;
        let mut changed = false;
        match self.envelope.violation(o) {
            Some(cause) => {
                self.clean_streak = 0;
                self.violation_streak += 1;
                if self.violation_streak >= self.config.violations_to_degrade
                    && self.level != DegradeLevel::Shed
                {
                    let from = self.level;
                    self.level = self.level.degrade();
                    self.violation_streak = 0;
                    self.push_transition(GuardTransition {
                        window: w,
                        from,
                        to: self.level,
                        cause,
                    });
                    changed = true;
                }
            }
            None => {
                self.violation_streak = 0;
                self.clean_streak += 1;
                if self.clean_streak >= self.config.clean_to_recover
                    && self.level != DegradeLevel::Normal
                {
                    let from = self.level;
                    self.level = self.level.recover();
                    self.clean_streak = 0;
                    self.push_transition(GuardTransition {
                        window: w,
                        from,
                        to: self.level,
                        cause: "recovered",
                    });
                    changed = true;
                }
            }
        }
        // Re-probe scheduling: while any degradation is in force, retry
        // the model probe on an exponential-backoff clock (base, 2×base,
        // 4×base, … capped at backoff_max). Full recovery resets the
        // schedule.
        let mut reprobe_now = false;
        if self.level == DegradeLevel::Normal {
            self.backoff = self.config.backoff_base.max(1);
            self.cooldown = 0;
        } else if self.cooldown == 0 {
            reprobe_now = true;
            self.cooldown = self.backoff;
            self.backoff = (self.backoff * 2).min(self.config.backoff_max.max(1));
        } else {
            self.cooldown -= 1;
        }
        GuardDirective { level: self.level, reprobe_now, changed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope() -> GuardEnvelope {
        GuardEnvelope { min_pps: 1_000_000.0, max_p99_us: 100.0, max_loss_frac: 0.005 }
    }

    fn good() -> WindowObservation {
        WindowObservation { pps: 2_000_000.0, p99_us: 40.0, loss_frac: 0.0 }
    }

    fn bad() -> WindowObservation {
        WindowObservation { pps: 400_000.0, p99_us: 40.0, loss_frac: 0.0 }
    }

    #[test]
    fn one_bad_window_does_not_degrade() {
        let mut g = RuntimeGuard::new(envelope(), GuardConfig::default());
        let d = g.observe(&bad());
        assert_eq!(d.level, DegradeLevel::Normal);
        assert!(!d.changed);
        // A clean window resets the streak; another single violation still
        // does not trip the ladder.
        g.observe(&good());
        let d = g.observe(&bad());
        assert_eq!(d.level, DegradeLevel::Normal, "hysteresis holds");
        assert!(g.transitions().is_empty());
    }

    #[test]
    fn sustained_violation_walks_the_whole_ladder_and_back() {
        let mut g = RuntimeGuard::new(envelope(), GuardConfig::default());
        let mut seen = vec![g.level()];
        for _ in 0..10 {
            let d = g.observe(&bad());
            if d.changed {
                seen.push(d.level);
            }
        }
        assert_eq!(
            seen,
            vec![
                DegradeLevel::Normal,
                DegradeLevel::Reprobe,
                DegradeLevel::ShrinkBatch,
                DegradeLevel::Throttle,
                DegradeLevel::Shed,
            ],
            "every second bad window steps one rung down, saturating at Shed"
        );
        // Recovery: every third clean window climbs one rung.
        let mut climb = Vec::new();
        for _ in 0..12 {
            let d = g.observe(&good());
            if d.changed {
                climb.push(d.level);
            }
        }
        assert_eq!(
            climb,
            vec![
                DegradeLevel::Throttle,
                DegradeLevel::ShrinkBatch,
                DegradeLevel::Reprobe,
                DegradeLevel::Normal,
            ]
        );
        assert_eq!(g.level(), DegradeLevel::Normal);
        // The trace names the violated dimension and the recovery.
        assert!(g.transitions().iter().take(4).all(|t| t.cause == "throughput"));
        assert!(g.transitions().iter().skip(4).all(|t| t.cause == "recovered"));
    }

    #[test]
    fn loss_dominates_the_violation_report() {
        let g = RuntimeGuard::new(envelope(), GuardConfig::default());
        let o = WindowObservation { pps: 1.0, p99_us: 1e9, loss_frac: 1.0 };
        assert_eq!(g.envelope().violation(&o), Some("loss"));
        let o = WindowObservation { pps: 1.0, p99_us: 1e9, loss_frac: 0.0 };
        assert_eq!(g.envelope().violation(&o), Some("throughput"));
        let o = WindowObservation { pps: 2e6, p99_us: 1e9, loss_frac: 0.0 };
        assert_eq!(g.envelope().violation(&o), Some("p99"));
        assert_eq!(g.envelope().violation(&good()), None);
    }

    #[test]
    fn reprobe_retries_follow_exponential_backoff() {
        let mut g = RuntimeGuard::new(envelope(), GuardConfig::default());
        let mut reprobe_windows = Vec::new();
        for w in 0..25u32 {
            let d = g.observe(&bad());
            if d.reprobe_now {
                reprobe_windows.push(w);
            }
        }
        // First reprobe when degradation engages (window 1: second bad
        // window), then gaps of 1, 2, 4, 8, 8 … windows (base 1, cap 8).
        let gaps: Vec<u32> =
            reprobe_windows.windows(2).map(|p| p[1] - p[0]).collect();
        assert_eq!(reprobe_windows[0], 1, "first reprobe at the first degrade");
        assert_eq!(&gaps[..4], &[2, 3, 5, 9], "doubling backoff (gap = backoff+1)");
        // Recovery resets the schedule.
        for _ in 0..20 {
            g.observe(&good());
        }
        assert_eq!(g.level(), DegradeLevel::Normal);
        let d1 = g.observe(&bad());
        assert!(!d1.reprobe_now, "still Normal: no probe");
        let d2 = g.observe(&bad());
        assert!(d2.reprobe_now, "fresh degradation probes immediately again");
    }

    #[test]
    fn set_envelope_mid_run_resets_hysteresis_counters() {
        let mut g = RuntimeGuard::new(envelope(), GuardConfig::default());
        // One violating window: streak at 1, one short of a degrade.
        g.observe(&bad());
        assert_eq!(g.level(), DegradeLevel::Normal);
        // Refit mid-run. The stale violating window must not carry over.
        g.set_envelope(envelope());
        let d = g.observe(&bad());
        assert_eq!(d.level, DegradeLevel::Normal, "streak restarted at the refit");
        assert!(!d.changed);
        // The *next* violating window (two post-refit) does degrade.
        let d = g.observe(&bad());
        assert_eq!(d.level, DegradeLevel::Reprobe);
        // Same for the clean streak: two clean windows, refit, then the
        // recovery count restarts from zero.
        g.observe(&good());
        g.observe(&good());
        g.set_envelope(envelope());
        g.observe(&good());
        g.observe(&good());
        assert_eq!(g.level(), DegradeLevel::Reprobe, "2 clean post-refit: no recovery yet");
        let d = g.observe(&good());
        assert!(d.changed && d.level == DegradeLevel::Normal);
    }

    #[test]
    fn recovery_from_shed_walks_every_rung() {
        let mut g = RuntimeGuard::new(envelope(), GuardConfig::default());
        for _ in 0..8 {
            g.observe(&bad());
        }
        assert_eq!(g.level(), DegradeLevel::Shed);
        // Climb back: each recovery transition must be exactly one rung,
        // visiting Throttle, ShrinkBatch, and Reprobe on the way to Normal
        // — never skipping straight home.
        let mut rungs = Vec::new();
        for _ in 0..12 {
            let d = g.observe(&good());
            if d.changed {
                rungs.push(d.level);
            }
        }
        assert_eq!(
            rungs,
            vec![
                DegradeLevel::Throttle,
                DegradeLevel::ShrinkBatch,
                DegradeLevel::Reprobe,
                DegradeLevel::Normal,
            ],
            "no rung skipped on the way up"
        );
        for pair in g.transitions().iter().collect::<Vec<_>>().windows(2) {
            assert_eq!(pair[0].to, pair[1].from, "trace is a connected walk");
        }
    }

    #[test]
    fn transition_history_is_ring_capped() {
        // Alternate 2-bad / 3-good forever: every cycle records two moves
        // (down one rung, back up). Run enough cycles to overflow the ring.
        let mut g = RuntimeGuard::new(envelope(), GuardConfig::default());
        let cycles = (TRANSITION_CAP as u32 / 2) + 40;
        for _ in 0..cycles {
            for _ in 0..2 {
                g.observe(&bad());
            }
            for _ in 0..3 {
                g.observe(&good());
            }
        }
        assert_eq!(g.transitions().len(), TRANSITION_CAP, "ring is full, not growing");
        assert_eq!(g.transitions_recorded(), 2 * cycles as u64, "lifetime count keeps going");
        // The ring holds the *most recent* moves: its first entry is later
        // than the evicted prefix.
        let dropped = g.transitions_recorded() as usize - g.transitions().len();
        assert!(g.transitions()[0].window > dropped as u32);
    }

    #[test]
    fn reset_returns_to_fresh_normal() {
        let mut g = RuntimeGuard::new(envelope(), GuardConfig::default());
        for _ in 0..8 {
            g.observe(&bad());
        }
        assert_eq!(g.level(), DegradeLevel::Shed);
        let recorded = g.transitions_recorded();
        g.reset();
        assert_eq!(g.level(), DegradeLevel::Normal);
        assert_eq!(g.transitions_recorded(), recorded, "trace survives a reset");
        // Hysteresis is fresh: one bad window does not degrade, and the
        // backoff schedule restarts from base (probe fires at first
        // degrade, exactly like a new guard).
        let d = g.observe(&bad());
        assert_eq!(d.level, DegradeLevel::Normal);
        assert!(!d.reprobe_now);
        let d = g.observe(&bad());
        assert_eq!(d.level, DegradeLevel::Reprobe);
        assert!(d.reprobe_now, "backoff schedule restarted from base");
    }

    #[test]
    fn envelope_can_be_refit_after_a_probe() {
        let mut g = RuntimeGuard::new(envelope(), GuardConfig::default());
        for _ in 0..2 {
            g.observe(&bad());
        }
        assert_eq!(g.level(), DegradeLevel::Reprobe);
        // The probe discovers the world really did change: accept the new
        // operating point, and the same observation is now clean.
        g.set_envelope(GuardEnvelope { min_pps: 300_000.0, ..envelope() });
        for _ in 0..3 {
            g.observe(&bad());
        }
        assert_eq!(g.level(), DegradeLevel::Normal, "recovered under the refit envelope");
    }
}
