//! # pp-core — predictable performance for software packet processing
//!
//! The primary contribution of *Toward Predictable Performance in Software
//! Packet-Processing Platforms* (Dobrescu, Argyraki, Ratnasamy — NSDI
//! 2012), reimplemented as a library:
//!
//! * **Profiling** ([`profiler`]) — solo-run characterization of each
//!   packet-processing flow type (Table 1): refs/sec, hits/sec, CPI,
//!   per-packet cache behaviour.
//! * **Sensitivity curves** ([`sensitivity`]) — a target's drop as a
//!   function of competing L3 refs/sec, measured against a SYN ramp
//!   (Figs. 4, 5).
//! * **Prediction** ([`predictor`]) — the paper's three-step method: sum
//!   the co-runners' *solo* refs/sec and read the target's curve there.
//!   The paper (and this reproduction) achieve errors below 3% (Figs. 8, 9).
//! * **Analytical models** ([`model`]) — Equation 1's worst-case bound
//!   (Fig. 6) and the Appendix A cache-sharing model explaining the
//!   conversion-rate shape (Fig. 7).
//! * **Placement study** ([`placement`]) — exhaustive best/worst flow-to-
//!   core placement evaluation, showing contention-aware scheduling buys
//!   only ~2% for realistic mixes (Fig. 10).
//! * **Containment** ([`throttle`]) — monitoring + control-element
//!   feedback that clamps a flow to its profiled refs/sec (§4).
//! * **Adaptive batch control** ([`batch_control`]) — beyond the paper:
//!   the closed loop that picks each flow's datapath batch size from the
//!   fitted `F/b + p` (+ `C/b + S·ceil(b/L)/b` for pipelines) cost models
//!   subject to a p99 latency budget, verifies the decision against the
//!   measured latency histogram, and re-validates the contention predictor
//!   on the batched datapath (`repro adaptive`).
//! * **Runtime guard** ([`guard`]) — beyond the paper: the windowed
//!   envelope check and hysteresis-protected degradation ladder
//!   (re-probe → shrink batch → throttle → shed) that keeps the closed
//!   loop honest under churn, overload, and loss (`repro chaos`).
//! * **Tenant supervisor** ([`supervisor`]) — beyond the paper: one guard
//!   per admitted flow composed into a machine-level control plane —
//!   circuit-breaker admission with jittered half-open probes, core
//!   failover under sustained violation, and drift-triggered model
//!   re-calibration (`repro fleet-chaos`).
//! * **Fleet controller** ([`fleet`], [`telemetry`]) — beyond the paper:
//!   the cluster-level control plane — timestamped EWMA telemetry with
//!   staleness-decayed confidence, heartbeat-timeout machine-death
//!   detection with capped probe backoff, and budgeted admission-gated
//!   re-placement across survivors (`repro cluster-chaos`).
//!
//! The measurement substrate is `pp-sim` (a deterministic multicore
//! simulator) with workloads from `pp-click`; see ARCHITECTURE.md at the
//! repository root for the crate map and charging-model invariants.
//!
//! ## Example: predict a mix you never measured
//!
//! ```no_run
//! use pp_core::prelude::*;
//!
//! // Offline: profile each type alone (solo run + SYN ramp).
//! let params = ExpParams::paper();
//! let predictor = Predictor::profile(
//!     &[FlowType::Mon, FlowType::Fw, FlowType::Vpn],
//!     8,
//!     params,
//!     default_threads(),
//! );
//!
//! // Online: predict MON's drop in a mix that was never co-run.
//! let drop = predictor.predict_drop(
//!     FlowType::Mon,
//!     &[FlowType::Fw, FlowType::Fw, FlowType::Vpn, FlowType::Vpn, FlowType::Mon],
//! );
//! println!("expected MON drop: {drop:.1}%");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod batch_control;
pub mod experiment;
pub mod fleet;
pub mod guard;
pub mod model;
pub mod persist;
pub mod placement;
pub mod predictor;
pub mod profiler;
pub mod report;
pub mod sensitivity;
pub mod supervisor;
pub mod telemetry;
pub mod throttle;
pub mod workload;

/// Glob-import of the commonly used names.
pub mod prelude {
    pub use crate::admission::{AdmissionController, AdmissionDecision, FlowVerdict, Sla};
    pub use crate::batch_control::{
        plan_socket, revalidate_predictor, BatchChoice, BatchController, BatchProbe,
        ControlAction, LatencyBudget, Revalidation, SocketPlan, VerifiedChoice,
        CANDIDATE_BATCHES,
    };
    pub use crate::experiment::{
        corun_against_solo, corun_scenario, default_threads, run_corun, run_many,
        run_scenario, solo_scenario, ContentionConfig, CoRunOutcome, ExpParams,
        FlowPlacement, FlowResult, LatencySummary, Scenario, ScenarioResult,
    };
    pub use crate::fleet::{FleetAction, FleetConfig, FleetController, MachineState};
    pub use crate::guard::{
        DegradeLevel, GuardConfig, GuardDirective, GuardEnvelope, GuardTransition,
        RuntimeGuard, WindowObservation,
    };
    pub use crate::model::{
        eq1_drop, worst_case_drop, BatchAmortization, CacheModel, CrossCoreHandoff,
        PAPER_DELTA_SECS,
    };
    pub use crate::persist::{PersistError, ProfileStore, StoredProfile};
    pub use crate::placement::{
        enumerate_placements, evaluate_measured, evaluate_predicted, study_measured,
        study_predicted, Placement, PlacementEval,
    };
    pub use crate::predictor::{PredictionError, Predictor};
    pub use crate::profiler::SoloProfile;
    pub use crate::report::{f as fmt_f, millions, Table};
    pub use crate::sensitivity::SensitivityCurve;
    pub use crate::supervisor::{
        Supervisor, SupervisorAction, SupervisorConfig, SupervisorDirective, TenantId,
        TenantState, TenantStats,
    };
    pub use crate::telemetry::{EwmaTracker, TelemetryReport, TenantTelemetry};
    pub use crate::throttle::{
        run_containment_demo, ContainmentResult, ContainmentSample, ThrottleController,
    };
    pub use crate::workload::{FlowType, Scale, EXTENDED, REALISTIC};
}
