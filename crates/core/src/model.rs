//! The analytical models: the paper's Equation 1 (worst-case drop from
//! solo hits/sec, Fig. 6) and Appendix A probabilistic cache-sharing model
//! for the hit→miss conversion-rate shape (Fig. 7), plus the two batching
//! cost models this reproduction adds for its vectorized datapath:
//!
//! | model | formula | fitted from | used by |
//! |---|---|---|---|
//! | [`eq1_drop`] | `drop = 1 / (1 + 1/(δ·κ·h))` | closed form | `repro fig6` |
//! | [`CacheModel`] | `P(hit) = pt / (1 − (1−pev)(1−pt))` | closed form | `repro fig7` |
//! | [`BatchAmortization`] | `cycles/pkt(b) = F/b + p` | 2 batch sizes | `repro batch`, [`batch_control`](crate::batch_control) |
//! | [`CrossCoreHandoff`] | `handoff/pkt(b) = C/b + S·⌈b/L⌉/b` | 2 burst sizes | `repro pipeline-batch`, [`batch_control`](crate::batch_control) |
//!
//! The batching models are *fitted*, not assumed: the sweeps measure the
//! ladder endpoints, solve for the parameters, and report interpolation
//! error at the interior sizes (the doc-tests below pin the fit shape).

/// Equation 1: the drop (fraction, 0..1) of a flow that achieves `h`
/// hits/sec solo, suffers hit→miss conversion rate `kappa`, with `delta`
/// seconds of extra latency per converted miss:
///
/// `drop = 1 / (1 + 1 / (delta * kappa * h))`
pub fn eq1_drop(kappa: f64, delta_secs: f64, hits_per_sec: f64) -> f64 {
    let dkh = delta_secs * kappa * hits_per_sec;
    if dkh <= 0.0 {
        return 0.0;
    }
    1.0 / (1.0 + 1.0 / dkh)
}

/// Worst-case drop (κ = 1): every solo hit becomes a miss.
pub fn worst_case_drop(delta_secs: f64, hits_per_sec: f64) -> f64 {
    eq1_drop(1.0, delta_secs, hits_per_sec)
}

/// The paper's δ for its platform: 43.75 ns.
pub const PAPER_DELTA_SECS: f64 = 43.75e-9;

/// Appendix A: a target sharing a direct-mapped cache of `cache_lines`
/// lines with competitors that access it uniformly.
///
/// * `pev = 1 / C` — each competing reference evicts the target's line with
///   this probability.
/// * `pt = (Ht/W) / (Ht/W + Rc)` — probability the next reference to the
///   line is the target's own re-reference rather than a competitor's.
/// * `P(hit) = pt / (1 - (1-pev)(1-pt))`; conversion rate = `1 - P(hit)`.
#[derive(Debug, Clone, Copy)]
pub struct CacheModel {
    /// Cache size in lines (the paper's C).
    pub cache_lines: f64,
    /// The target's working set in lines (the paper's W).
    pub target_working_lines: f64,
    /// The target's solo hits/sec (the paper's Ht).
    pub target_hits_per_sec: f64,
}

impl CacheModel {
    /// The model's hit→miss conversion rate (0..1) at a given competing
    /// refs/sec.
    pub fn conversion_rate(&self, competing_refs_per_sec: f64) -> f64 {
        if competing_refs_per_sec <= 0.0 {
            return 0.0;
        }
        let pev = 1.0 / self.cache_lines;
        let per_chunk_rate = self.target_hits_per_sec / self.target_working_lines;
        let pt = per_chunk_rate / (per_chunk_rate + competing_refs_per_sec);
        let p_hit = pt / (1.0 - (1.0 - pev) * (1.0 - pt));
        (1.0 - p_hit).clamp(0.0, 1.0)
    }

    /// Combine with Equation 1 into a predicted drop (fraction) at a given
    /// competition level — the paper's "analytical estimate of a MON flow's
    /// performance drop as a function of competition".
    pub fn drop(&self, competing_refs_per_sec: f64, delta_secs: f64) -> f64 {
        let kappa = self.conversion_rate(competing_refs_per_sec);
        eq1_drop(kappa, delta_secs, self.target_hits_per_sec)
    }
}

/// Batch-amortization model for the vectorized datapath.
///
/// Per-packet framework cost under batching decomposes into a fixed
/// per-batch term `F` (dispatch hops, tag scopes, NIC descriptor-ring and
/// free-list transactions, the framework's I-cache/metadata churn) and an
/// irreducible per-packet term `p`:
///
/// `cycles/packet(b) = F / b + p`
///
/// which is strictly decreasing in the batch size `b` and asymptotes to
/// `p` — the shape the `repro batch` experiment measures and the NFV
/// dataplane-benchmarking literature reports for VPP-style vector
/// processing. The predictor uses it to translate a flow's measured
/// per-packet cost at one batch size to another, and the adaptive batch
/// controller ([`crate::batch_control`]) turns it into latency-budgeted
/// batch choices.
///
/// The two-point fit recovers the parameters exactly and interpolates the
/// full hyperbola — measure the ladder endpoints, predict everything
/// between:
///
/// ```
/// use pp_core::model::BatchAmortization;
///
/// // Ground truth: F = 620 cycles/batch, p = 300 cycles/packet. The fit
/// // sees only the two endpoint measurements c(1) = 920, c(64) = 309.6875.
/// let fit = BatchAmortization::fit((1.0, 920.0), (64.0, 620.0 / 64.0 + 300.0));
/// assert!((fit.per_batch_cycles - 620.0).abs() < 1e-9);
/// assert!((fit.per_packet_cycles - 300.0).abs() < 1e-9);
///
/// // Interior sizes follow the F/b + p hyperbola exactly...
/// assert!((fit.cycles_per_packet(8.0) - (620.0 / 8.0 + 300.0)).abs() < 1e-9);
/// // ...which is strictly decreasing and floored by p,
/// let ladder = [1.0, 4.0, 8.0, 16.0, 32.0, 64.0];
/// assert!(ladder.windows(2).all(|w| {
///     fit.cycles_per_packet(w[1]) < fit.cycles_per_packet(w[0])
/// }));
/// assert!(fit.cycles_per_packet(1e9) > fit.per_packet_cycles);
/// // ...so the asymptotic speedup is c(1)/p.
/// assert!((fit.max_speedup() - 920.0 / 300.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchAmortization {
    /// Fixed per-batch framework cycles (`F`).
    pub per_batch_cycles: f64,
    /// Irreducible per-packet cycles (`p`).
    pub per_packet_cycles: f64,
}

impl BatchAmortization {
    /// Fit the two-parameter model from measurements at two batch sizes
    /// (`(batch, cycles_per_packet)` pairs, `b1 != b2`).
    pub fn fit(p1: (f64, f64), p2: (f64, f64)) -> Self {
        let (b1, c1) = p1;
        let (b2, c2) = p2;
        assert!(b1 > 0.0 && b2 > 0.0 && b1 != b2, "need two distinct batch sizes");
        // c = F/b + p  =>  F = (c1 - c2) / (1/b1 - 1/b2).
        let per_batch = (c1 - c2) / (1.0 / b1 - 1.0 / b2);
        BatchAmortization {
            per_batch_cycles: per_batch.max(0.0),
            per_packet_cycles: (c1 - per_batch / b1).max(0.0),
        }
    }

    /// Predicted cycles/packet at batch size `b`.
    pub fn cycles_per_packet(&self, batch: f64) -> f64 {
        assert!(batch >= 1.0, "batch size must be at least 1");
        self.per_batch_cycles / batch + self.per_packet_cycles
    }

    /// Predicted throughput speedup of batch `b` over batch 1.
    pub fn speedup(&self, batch: f64) -> f64 {
        self.cycles_per_packet(1.0) / self.cycles_per_packet(batch)
    }

    /// The asymptotic speedup as the batch size grows without bound.
    pub fn max_speedup(&self) -> f64 {
        if self.per_packet_cycles <= 0.0 {
            return f64::INFINITY;
        }
        self.cycles_per_packet(1.0) / self.per_packet_cycles
    }

    /// The pipeline extension of the model: framework amortization plus the
    /// cross-core handoff term, i.e. predicted cycles/packet for a
    /// two-stage pipeline running burst-mode handoff at burst size `b`.
    pub fn pipeline_cycles_per_packet(&self, handoff: &CrossCoreHandoff, burst: f64) -> f64 {
        self.cycles_per_packet(burst) + handoff.cycles_per_packet(burst)
    }
}

/// Cross-core handoff term for the pipeline's burst-mode SPSC ring.
///
/// The §2.2 handoff has two kinds of shared-line traffic: **control-line
/// transactions** (the producer's tail read + head publish, the consumer's
/// head read + tail publish, plus the `queue_op` arithmetic around them),
/// which burst mode pays once per burst; and **descriptor slot lines**,
/// packed `slots_per_line` descriptors per cache line, of which a burst of
/// `b` touches `ceil(b / slots_per_line)` on each side. Per-packet handoff
/// cost is therefore
///
/// `handoff/packet(b) = C / b + S * ceil(b / L) / b`
///
/// which equals `C + S` at `b = 1` (the scalar pipeline) and falls to
/// `S / L` as the burst grows — strictly decreasing over power-of-two burst
/// sizes, the shape `repro pipeline-batch` asserts.
///
/// Like [`BatchAmortization`], the model is a two-point fit that pins the
/// whole curve — including the `⌈b/L⌉` staircase the line packing causes:
///
/// ```
/// use pp_core::model::CrossCoreHandoff;
///
/// // Ground truth: C = 400 control cycles/burst, S = 120 cycles per slot
/// // line, L = 4 slots/line. Fit from b = 1 (pays C + S = 520) and b = 64.
/// let h64 = 400.0 / 64.0 + 120.0 * (64.0f64 / 4.0).ceil() / 64.0;
/// let fit = CrossCoreHandoff::fit(4.0, (1.0, 520.0), (64.0, h64));
/// assert!((fit.control_cycles_per_burst - 400.0).abs() < 1e-6);
/// assert!((fit.slot_line_cycles - 120.0).abs() < 1e-6);
///
/// // Interior power-of-two bursts interpolate exactly: a burst of 8 moves
/// // ceil(8/4) = 2 slot lines, so pays 400/8 + 120*2/8 = 80 cycles/packet.
/// assert!((fit.cycles_per_packet(8.0) - 80.0).abs() < 1e-6);
/// // The curve is strictly decreasing over the swept ladder and floored by
/// // the one-line-per-L-packets asymptote S/L.
/// let ladder = [1.0, 4.0, 8.0, 16.0, 32.0, 64.0];
/// assert!(ladder.windows(2).all(|w| {
///     fit.cycles_per_packet(w[1]) < fit.cycles_per_packet(w[0])
/// }));
/// assert!(fit.cycles_per_packet(1e6) >= 120.0 / 4.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CrossCoreHandoff {
    /// Control-line cycles per burst (`C`): queue_op compute plus the
    /// head/tail ping-pong, both sides combined.
    pub control_cycles_per_burst: f64,
    /// Cycles per descriptor slot-line transfer (`S`), both sides combined.
    pub slot_line_cycles: f64,
    /// Descriptor slots per cache line (`L`; 4 with 16-byte slots).
    pub slots_per_line: f64,
}

impl CrossCoreHandoff {
    /// Relative slot-line touches per packet at a given burst size.
    fn slot_lines_per_packet(slots_per_line: f64, burst: f64) -> f64 {
        (burst / slots_per_line).ceil() / burst
    }

    /// Predicted handoff cycles/packet at burst size `b` (≥ 1).
    pub fn cycles_per_packet(&self, burst: f64) -> f64 {
        assert!(burst >= 1.0, "burst size must be at least 1");
        self.control_cycles_per_burst / burst
            + self.slot_line_cycles * Self::slot_lines_per_packet(self.slots_per_line, burst)
    }

    /// Fit `C` and `S` from measured handoff cycles/packet at two distinct
    /// burst sizes (`(burst, cycles_per_packet)` pairs).
    pub fn fit(slots_per_line: f64, p1: (f64, f64), p2: (f64, f64)) -> Self {
        let (b1, h1) = p1;
        let (b2, h2) = p2;
        assert!(b1 >= 1.0 && b2 >= 1.0 && b1 != b2, "need two distinct burst sizes");
        // h = C * a + S * d with a = 1/b, d = ceil(b/L)/b: a 2x2 solve.
        let (a1, a2) = (1.0 / b1, 1.0 / b2);
        let d1 = Self::slot_lines_per_packet(slots_per_line, b1);
        let d2 = Self::slot_lines_per_packet(slots_per_line, b2);
        let det = a1 * d2 - a2 * d1;
        assert!(det.abs() > 1e-12, "degenerate fit points");
        CrossCoreHandoff {
            control_cycles_per_burst: ((h1 * d2 - h2 * d1) / det).max(0.0),
            slot_line_cycles: ((a1 * h2 - a2 * h1) / det).max(0.0),
            slots_per_line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 6 spot values: for δ = 43.75 ns, the worst-case
    /// drops of the five workloads (from their Table 1 hits/sec) are
    /// 47, 48, 9, 19, 24 percent.
    #[test]
    fn fig6_spot_values() {
        let cases = [
            (20.21e6, 47.0), // IP
            (21.32e6, 48.0), // MON
            (2.13e6, 9.0),   // FW
            (5.52e6, 19.0),  // RE
            (7.08e6, 24.0),  // VPN
        ];
        for (h, want_pct) in cases {
            let got = worst_case_drop(PAPER_DELTA_SECS, h) * 100.0;
            assert!(
                (got - want_pct).abs() < 1.0,
                "hits/sec {h}: got {got:.1}%, paper says {want_pct}%"
            );
        }
    }

    #[test]
    fn eq1_limits() {
        assert_eq!(eq1_drop(0.0, PAPER_DELTA_SECS, 20e6), 0.0);
        assert_eq!(eq1_drop(1.0, PAPER_DELTA_SECS, 0.0), 0.0);
        // Huge hits/sec: drop approaches 100%.
        assert!(worst_case_drop(PAPER_DELTA_SECS, 1e12) > 0.99);
        // Monotone in every argument.
        assert!(
            eq1_drop(0.5, PAPER_DELTA_SECS, 20e6) < eq1_drop(1.0, PAPER_DELTA_SECS, 20e6)
        );
        assert!(eq1_drop(1.0, 30e-9, 20e6) < eq1_drop(1.0, 60e-9, 20e6));
    }

    fn mon_model() -> CacheModel {
        // MON on the paper's platform: 12 MB / 64 B = 196 608 lines;
        // working set ≈ 7 MB ≈ 114 688 lines; Ht = 21.32 M hits/sec.
        CacheModel {
            cache_lines: 196_608.0,
            target_working_lines: 114_688.0,
            target_hits_per_sec: 21.32e6,
        }
    }

    #[test]
    fn conversion_shape_sharp_then_flat() {
        let m = mon_model();
        let at25 = m.conversion_rate(25e6);
        let at50 = m.conversion_rate(50e6);
        let at100 = m.conversion_rate(100e6);
        let at250 = m.conversion_rate(250e6);
        // Rising.
        assert!(at25 < at50 && at50 < at100 && at100 < at250);
        // Sharp at first, then flattening: the first 50M refs/sec convert
        // more than the next 200M.
        assert!(
            at50 > (at250 - at50),
            "initial rise {at50:.2} should dominate the tail {:.2}",
            at250 - at50
        );
        // Most susceptible hits converted by ~50M refs/sec (the paper's
        // turning point).
        assert!(at50 > 0.4, "at 50M refs/sec conversion should be substantial: {at50:.2}");
    }

    #[test]
    fn conversion_bounds() {
        let m = mon_model();
        assert_eq!(m.conversion_rate(0.0), 0.0);
        let big = m.conversion_rate(1e15);
        assert!(big <= 1.0 && big > 0.99);
    }

    #[test]
    fn model_drop_combines_eq1() {
        let m = mon_model();
        let d = m.drop(100e6, PAPER_DELTA_SECS);
        // κ(100M) ≈ 0.7–0.9; Eq. 1 with h = 21.32M, δ = 43.75ns gives
        // ~40–46% — comfortably between the measured 25% (real MON has
        // hot spots the model ignores) and the worst case 48%.
        assert!(d > 0.3 && d < 0.5, "model drop = {d:.3}");
    }

    #[test]
    fn batch_amortization_fit_recovers_parameters() {
        let truth = BatchAmortization { per_batch_cycles: 800.0, per_packet_cycles: 450.0 };
        let fit = BatchAmortization::fit(
            (1.0, truth.cycles_per_packet(1.0)),
            (16.0, truth.cycles_per_packet(16.0)),
        );
        assert!((fit.per_batch_cycles - 800.0).abs() < 1e-9);
        assert!((fit.per_packet_cycles - 450.0).abs() < 1e-9);
        // The model interpolates exactly at unseen batch sizes.
        assert!((fit.cycles_per_packet(8.0) - truth.cycles_per_packet(8.0)).abs() < 1e-9);
    }

    #[test]
    fn handoff_term_is_monotone_over_swept_burst_sizes() {
        let h = CrossCoreHandoff {
            control_cycles_per_burst: 400.0,
            slot_line_cycles: 120.0,
            slots_per_line: 4.0,
        };
        assert!((h.cycles_per_packet(1.0) - 520.0).abs() < 1e-9, "b=1 pays C + S");
        let mut last = f64::INFINITY;
        for b in [1.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let c = h.cycles_per_packet(b);
            assert!(c < last, "handoff cycles/packet must fall at burst {b}");
            last = c;
        }
        // Asymptote: one slot line per slots_per_line packets.
        let floor = 120.0 / 4.0;
        assert!((h.cycles_per_packet(1e6) - floor) < 0.01);
    }

    #[test]
    fn handoff_fit_recovers_parameters() {
        let truth = CrossCoreHandoff {
            control_cycles_per_burst: 350.0,
            slot_line_cycles: 90.0,
            slots_per_line: 4.0,
        };
        let fit = CrossCoreHandoff::fit(
            4.0,
            (1.0, truth.cycles_per_packet(1.0)),
            (64.0, truth.cycles_per_packet(64.0)),
        );
        assert!((fit.control_cycles_per_burst - 350.0).abs() < 1e-6);
        assert!((fit.slot_line_cycles - 90.0).abs() < 1e-6);
        // Exact interpolation at power-of-two interior sizes.
        for b in [4.0, 8.0, 16.0, 32.0] {
            assert!((fit.cycles_per_packet(b) - truth.cycles_per_packet(b)).abs() < 1e-6);
        }
    }

    #[test]
    fn pipeline_model_combines_framework_and_handoff_terms() {
        let fw = BatchAmortization { per_batch_cycles: 620.0, per_packet_cycles: 300.0 };
        let h = CrossCoreHandoff {
            control_cycles_per_burst: 400.0,
            slot_line_cycles: 120.0,
            slots_per_line: 4.0,
        };
        let combined1 = fw.pipeline_cycles_per_packet(&h, 1.0);
        assert!((combined1 - (920.0 + 520.0)).abs() < 1e-9);
        let mut last = f64::INFINITY;
        for b in [1.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let c = fw.pipeline_cycles_per_packet(&h, b);
            assert!(c < last, "combined pipeline cost must fall at burst {b}");
            assert!(c > fw.per_packet_cycles, "never below the irreducible floor");
            last = c;
        }
    }

    #[test]
    fn batch_amortization_is_monotone_and_bounded() {
        let m = BatchAmortization { per_batch_cycles: 620.0, per_packet_cycles: 300.0 };
        let mut last = f64::INFINITY;
        for b in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let c = m.cycles_per_packet(b);
            assert!(c < last, "cycles/packet must fall with batch size");
            assert!(c >= m.per_packet_cycles, "never below the irreducible floor");
            last = c;
        }
        assert!(m.speedup(64.0) > 1.0);
        assert!(m.speedup(64.0) < m.max_speedup());
        assert!((m.max_speedup() - 920.0 / 300.0).abs() < 1e-9);
    }
}
