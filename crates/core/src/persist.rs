//! Persistence for profiling artifacts.
//!
//! The paper's method is *offline* profiling: an operator profiles each
//! application once, stores the profiles, and predicts placements later —
//! possibly on a different machine, possibly weeks later. This module
//! serializes the two artifacts the predictor needs (solo profiles and
//! sensitivity curves) to a plain CSV-based format and loads them back.
//!
//! The format is deliberately human-auditable (the operator should be able
//! to eyeball a profile):
//!
//! ```text
//! # predictable-pp profiles v1
//! solo,MON,pps,1128000.0
//! solo,MON,l3_refs_per_sec,20710000.0
//! ...
//! curve,MON,44020000.0,14.5
//! curve,MON,77570000.0,20.3
//! ```

use crate::predictor::Predictor;
use crate::profiler::SoloProfile;
use crate::sensitivity::SensitivityCurve;
use crate::workload::FlowType;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Magic first line of the format (current version).
const HEADER: &str = "# predictable-pp profiles v2";
/// Previous version, still accepted on load (it simply lacks `fillcurve`
/// rows, so fill-rate prediction is unavailable from such stores).
const HEADER_V1: &str = "# predictable-pp profiles v1";

/// Errors from loading a profile store.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not in the expected format.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn flow_type_from_name(name: &str) -> Option<FlowType> {
    match name {
        "IP" => Some(FlowType::Ip),
        "MON" => Some(FlowType::Mon),
        "FW" => Some(FlowType::Fw),
        "RE" => Some(FlowType::Re),
        "VPN" => Some(FlowType::Vpn),
        "DPI" => Some(FlowType::Dpi),
        "NAT" => Some(FlowType::Nat),
        "CLASS" => Some(FlowType::Class),
        "SYN_MAX" => Some(FlowType::SynMax),
        other => {
            // SYN<level> of an 8-level ramp (the standard profiling ramp).
            let level: u8 = other.strip_prefix("SYN")?.parse().ok()?;
            Some(FlowType::Syn { level, levels: 8 })
        }
    }
}

/// The serializable subset of a solo profile (everything prediction needs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoredProfile {
    /// Packets/sec solo.
    pub pps: f64,
    /// L3 refs/sec solo (the aggressiveness metric).
    pub l3_refs_per_sec: f64,
    /// L3 hits/sec solo (the sensitivity metric).
    pub l3_hits_per_sec: f64,
    /// Cycles per packet solo.
    pub cycles_per_packet: f64,
    /// Working set in bytes (for the Appendix A model).
    pub working_set_bytes: f64,
}

impl StoredProfile {
    /// Extract from a full profile.
    pub fn from_profile(p: &SoloProfile) -> Self {
        StoredProfile {
            pps: p.pps,
            l3_refs_per_sec: p.l3_refs_per_sec,
            l3_hits_per_sec: p.l3_hits_per_sec,
            cycles_per_packet: p.cycles_per_packet,
            working_set_bytes: p.working_set_bytes as f64,
        }
    }
}

/// A saved/loaded set of profiling artifacts.
#[derive(Debug, Clone, Default)]
pub struct ProfileStore {
    /// Solo metrics per type.
    pub solos: HashMap<FlowType, StoredProfile>,
    /// Sensitivity curves per type (drop vs competing refs/sec).
    pub curves: HashMap<FlowType, SensitivityCurve>,
    /// Fill-rate curves per type (drop vs competing misses/sec); empty
    /// when loaded from a v1 store.
    pub fill_curves: HashMap<FlowType, SensitivityCurve>,
}

impl ProfileStore {
    /// Capture a predictor's artifacts.
    pub fn from_predictor(p: &Predictor) -> Self {
        let mut store = ProfileStore::default();
        for t in p.types() {
            if let Some(solo) = p.solo(t) {
                store.solos.insert(t, StoredProfile::from_profile(solo));
            }
            if let Some(curve) = p.curve(t) {
                store.curves.insert(t, curve.clone());
            }
            if let Some(curve) = p.fill_curve(t) {
                store.fill_curves.insert(t, curve.clone());
            }
        }
        store
    }

    /// Serialize to the CSV-based text format.
    pub fn to_string_repr(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let mut types: Vec<&FlowType> = self.solos.keys().collect();
        types.sort();
        for t in &types {
            let s = &self.solos[t];
            let n = t.name();
            let _ = writeln!(out, "solo,{n},pps,{}", s.pps);
            let _ = writeln!(out, "solo,{n},l3_refs_per_sec,{}", s.l3_refs_per_sec);
            let _ = writeln!(out, "solo,{n},l3_hits_per_sec,{}", s.l3_hits_per_sec);
            let _ = writeln!(out, "solo,{n},cycles_per_packet,{}", s.cycles_per_packet);
            let _ = writeln!(out, "solo,{n},working_set_bytes,{}", s.working_set_bytes);
        }
        let mut ctypes: Vec<&FlowType> = self.curves.keys().collect();
        ctypes.sort();
        for t in &ctypes {
            for &(x, y) in self.curves[t].points() {
                let _ = writeln!(out, "curve,{},{x},{y}", t.name());
            }
        }
        let mut ftypes: Vec<&FlowType> = self.fill_curves.keys().collect();
        ftypes.sort();
        for t in &ftypes {
            for &(x, y) in self.fill_curves[t].points() {
                let _ = writeln!(out, "fillcurve,{},{x},{y}", t.name());
            }
        }
        out
    }

    /// Parse the text format.
    pub fn from_string_repr(text: &str) -> Result<Self, PersistError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == HEADER || h.trim() == HEADER_V1 => {}
            other => {
                return Err(PersistError::Format(format!(
                    "missing header, found {other:?}"
                )))
            }
        }
        let mut store = ProfileStore::default();
        let mut curve_points: HashMap<FlowType, Vec<(f64, f64)>> = HashMap::new();
        let mut fill_points: HashMap<FlowType, Vec<(f64, f64)>> = HashMap::new();
        for (lineno, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            let bad = |m: &str| PersistError::Format(format!("line {}: {m}", lineno + 2));
            match fields.as_slice() {
                ["solo", name, key, value] => {
                    let t = flow_type_from_name(name)
                        .ok_or_else(|| bad(&format!("unknown flow type {name}")))?;
                    let v: f64 =
                        value.parse().map_err(|_| bad(&format!("bad number {value}")))?;
                    let e = store.solos.entry(t).or_default();
                    match *key {
                        "pps" => e.pps = v,
                        "l3_refs_per_sec" => e.l3_refs_per_sec = v,
                        "l3_hits_per_sec" => e.l3_hits_per_sec = v,
                        "cycles_per_packet" => e.cycles_per_packet = v,
                        "working_set_bytes" => e.working_set_bytes = v,
                        other => return Err(bad(&format!("unknown solo key {other}"))),
                    }
                }
                ["curve", name, x, y] | ["fillcurve", name, x, y] => {
                    let t = flow_type_from_name(name)
                        .ok_or_else(|| bad(&format!("unknown flow type {name}")))?;
                    let x: f64 = x.parse().map_err(|_| bad(&format!("bad number {x}")))?;
                    let y: f64 = y.parse().map_err(|_| bad(&format!("bad number {y}")))?;
                    if fields[0] == "curve" {
                        curve_points.entry(t).or_default().push((x, y));
                    } else {
                        fill_points.entry(t).or_default().push((x, y));
                    }
                }
                _ => {
                    return Err(bad(
                        "expected 'solo,<type>,<key>,<v>' or '[fill]curve,<type>,<x>,<y>'",
                    ))
                }
            }
        }
        for (t, pts) in curve_points {
            store.curves.insert(t, SensitivityCurve::from_points(pts));
        }
        for (t, pts) in fill_points {
            store.fill_curves.insert(t, SensitivityCurve::from_points(pts));
        }
        Ok(store)
    }

    /// Save to a file (creating parent directories).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_string_repr())?;
        Ok(())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::from_string_repr(&std::fs::read_to_string(path)?)
    }

    /// Predict a target's drop from the stored artifacts (the paper's
    /// method, applied to loaded profiles).
    pub fn predict_drop(&self, target: FlowType, competitors: &[FlowType]) -> Option<f64> {
        let curve = self.curves.get(&target)?;
        let mut competition = 0.0;
        for c in competitors {
            competition += self.solos.get(c)?.l3_refs_per_sec;
        }
        Some(curve.interpolate(competition))
    }

    /// Predict with the fill-rate refinement from stored artifacts
    /// (`None` when the store is v1 and has no fill curves, or a type is
    /// missing). Solo misses/sec is derived as refs − hits.
    pub fn predict_drop_fillrate(
        &self,
        target: FlowType,
        competitors: &[FlowType],
    ) -> Option<f64> {
        let curve = self.fill_curves.get(&target)?;
        let mut competition = 0.0;
        for c in competitors {
            let s = self.solos.get(c)?;
            competition += s.l3_refs_per_sec - s.l3_hits_per_sec;
        }
        Some(curve.interpolate(competition))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ProfileStore {
        let mut s = ProfileStore::default();
        s.solos.insert(
            FlowType::Mon,
            StoredProfile {
                pps: 1.128e6,
                l3_refs_per_sec: 20.7e6,
                l3_hits_per_sec: 15.7e6,
                cycles_per_packet: 2482.0,
                working_set_bytes: 35e6,
            },
        );
        s.solos.insert(
            FlowType::Fw,
            StoredProfile {
                pps: 0.112e6,
                l3_refs_per_sec: 2.1e6,
                l3_hits_per_sec: 1.2e6,
                cycles_per_packet: 24979.0,
                working_set_bytes: 35e6,
            },
        );
        s.curves.insert(
            FlowType::Mon,
            SensitivityCurve::from_points(vec![(50e6, 8.0), (100e6, 11.0), (300e6, 14.0)]),
        );
        s
    }

    #[test]
    fn roundtrip_through_text() {
        let s = sample_store();
        let text = s.to_string_repr();
        let back = ProfileStore::from_string_repr(&text).unwrap();
        assert_eq!(back.solos[&FlowType::Mon], s.solos[&FlowType::Mon]);
        assert_eq!(back.solos[&FlowType::Fw], s.solos[&FlowType::Fw]);
        assert_eq!(
            back.curves[&FlowType::Mon].points(),
            s.curves[&FlowType::Mon].points()
        );
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("pp-persist-test");
        let path = dir.join("profiles.csv");
        sample_store().save(&path).unwrap();
        let back = ProfileStore::load(&path).unwrap();
        assert_eq!(back.solos.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prediction_from_loaded_store() {
        let s = sample_store();
        let text = s.to_string_repr();
        let loaded = ProfileStore::from_string_repr(&text).unwrap();
        // 5 FW competitors: 10.5M refs/sec -> interpolated below first knot.
        let d = loaded.predict_drop(FlowType::Mon, &[FlowType::Fw; 5]).unwrap();
        assert!(d > 0.0 && d < 8.0, "drop = {d}");
        // Unknown competitor type -> None.
        assert!(loaded.predict_drop(FlowType::Mon, &[FlowType::Re]).is_none());
    }

    #[test]
    fn rejects_bad_header_and_rows() {
        assert!(ProfileStore::from_string_repr("nope").is_err());
        let bad = format!("{HEADER}\nsolo,MON,pps,not_a_number\n");
        assert!(ProfileStore::from_string_repr(&bad).is_err());
        let bad = format!("{HEADER}\nsolo,WAT,pps,1\n");
        assert!(ProfileStore::from_string_repr(&bad).is_err());
        let bad = format!("{HEADER}\ngarbage row\n");
        assert!(ProfileStore::from_string_repr(&bad).is_err());
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let text = format!("{HEADER}\n\n# a comment\nsolo,IP,pps,1000\n");
        let s = ProfileStore::from_string_repr(&text).unwrap();
        assert_eq!(s.solos[&FlowType::Ip].pps, 1000.0);
    }

    #[test]
    fn syn_names_roundtrip() {
        assert_eq!(flow_type_from_name("SYN3"), Some(FlowType::Syn { level: 3, levels: 8 }));
        assert_eq!(flow_type_from_name("SYN_MAX"), Some(FlowType::SynMax));
        assert_eq!(flow_type_from_name("IP"), Some(FlowType::Ip));
        assert_eq!(flow_type_from_name("DPI"), Some(FlowType::Dpi));
        assert_eq!(flow_type_from_name("NAT"), Some(FlowType::Nat));
        assert_eq!(flow_type_from_name("CLASS"), Some(FlowType::Class));
        assert_eq!(flow_type_from_name("NOPE"), None);
    }

    #[test]
    fn fill_curves_roundtrip_and_predict() {
        let mut s = sample_store();
        s.fill_curves.insert(
            FlowType::Mon,
            SensitivityCurve::from_points(vec![(10e6, 6.0), (40e6, 12.0)]),
        );
        let text = s.to_string_repr();
        assert!(text.starts_with("# predictable-pp profiles v2"));
        let back = ProfileStore::from_string_repr(&text).unwrap();
        assert_eq!(
            back.fill_curves[&FlowType::Mon].points(),
            s.fill_curves[&FlowType::Mon].points()
        );
        // 5 FW competitors: misses/sec = (2.1 - 1.2) M x 5 = 4.5M.
        let d = back.predict_drop_fillrate(FlowType::Mon, &[FlowType::Fw; 5]).unwrap();
        assert!(d > 0.0 && d < 6.0, "drop = {d}");
    }

    #[test]
    fn v1_stores_still_load_without_fill_curves() {
        let s = sample_store();
        let v2 = s.to_string_repr();
        let v1_text = v2.replace("profiles v2", "profiles v1");
        let back = ProfileStore::from_string_repr(&v1_text).unwrap();
        assert!(!back.curves.is_empty());
        assert!(back.predict_drop_fillrate(FlowType::Mon, &[FlowType::Fw]).is_none());
    }

    #[test]
    fn from_real_predictor() {
        use crate::experiment::ExpParams;
        let p = Predictor::profile(&[FlowType::Fw], 2, ExpParams::quick(), 2);
        let store = ProfileStore::from_predictor(&p);
        assert!(store.solos.contains_key(&FlowType::Fw));
        assert!(store.curves.contains_key(&FlowType::Fw));
        let text = store.to_string_repr();
        let back = ProfileStore::from_string_repr(&text).unwrap();
        // Predictions agree between live predictor and stored artifacts.
        let live = p.predict_drop(FlowType::Fw, &[FlowType::Fw; 5]);
        let stored = back.predict_drop(FlowType::Fw, &[FlowType::Fw; 5]).unwrap();
        assert!((live - stored).abs() < 1e-9);
    }
}
